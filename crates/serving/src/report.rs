//! Query answer rendering: one deterministic JSON line per query.
//!
//! Measure answers embed the engine's
//! [`PortfolioReportJson`](flexoffers_engine::report::PortfolioReportJson),
//! schedule/trade answers its
//! [`ScenarioReportJson`](flexoffers_engine::scenario_report::ScenarioReportJson)
//! — both deliberately exclude threads/timing, so the live and batch paths
//! serialise identical bytes. Aggregate answers get their own mirror here
//! ([`AggregateReportJson`]). Every answer is wrapped in a `{"query": ...,
//! "report": ...}` envelope (or `{"query": ..., "error": ...}` when the
//! underlying pipeline refuses, e.g. a schedule query over an empty book).

use serde::{Serialize, Value};

use flexoffers_aggregation::Aggregate;

use crate::event::QueryKind;

/// Serialisable mirror of an aggregate-query result: the grouping outcome
/// plus a per-aggregate summary, all pure functions of the logical
/// portfolio and the grouping tolerances.
#[derive(Clone, Debug, Serialize)]
pub struct AggregateReportJson {
    /// Portfolio size the grouping ran over.
    pub offers: usize,
    /// Number of aggregates produced.
    pub aggregates: usize,
    /// Per-aggregate summaries, in grouping order.
    pub groups: Vec<AggregateSummaryJson>,
}

/// One aggregate, flattened for reporting.
#[derive(Clone, Debug, Serialize)]
pub struct AggregateSummaryJson {
    /// Member count.
    pub members: usize,
    /// The aggregate flex-offer's earliest start.
    pub earliest_start: i64,
    /// The aggregate flex-offer's time flexibility (the minimum over
    /// members — what start-alignment aggregation retains).
    pub time_flexibility: i64,
    /// The aggregate's total minimum energy.
    pub total_min: i64,
    /// The aggregate's total maximum energy.
    pub total_max: i64,
}

/// Builds the aggregate-query mirror from the engine's aggregation output.
pub fn aggregate_report(offers: usize, aggregates: &[Aggregate]) -> AggregateReportJson {
    AggregateReportJson {
        offers,
        aggregates: aggregates.len(),
        groups: aggregates
            .iter()
            .map(|agg| {
                let fo = agg.flexoffer();
                AggregateSummaryJson {
                    members: agg.members().len(),
                    earliest_start: fo.earliest_start(),
                    time_flexibility: fo.time_flexibility(),
                    total_min: fo.total_min(),
                    total_max: fo.total_max(),
                }
            })
            .collect(),
    }
}

/// Wraps a query report in the one-line answer envelope.
pub fn answer_line(kind: QueryKind, report: &impl Serialize) -> String {
    let envelope = Value::Object(vec![
        ("query".to_owned(), Value::Str(kind.name().to_owned())),
        ("report".to_owned(), report.to_value()),
    ]);
    serde_json::to_string(&envelope).expect("answer envelopes serialize")
}

/// Wraps a query refusal in the one-line answer envelope. Both the live
/// and the batch paths route their pipeline errors through here, so a
/// refused query still compares byte-for-byte.
pub fn error_line(kind: QueryKind, message: &str) -> String {
    let envelope = Value::Object(vec![
        ("query".to_owned(), Value::Str(kind.name().to_owned())),
        ("error".to_owned(), Value::Str(message.to_owned())),
    ]);
    serde_json::to_string(&envelope).expect("answer envelopes serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_aggregation::{aggregate_portfolio, GroupingParams};
    use flexoffers_model::{FlexOffer, Slice};

    #[test]
    fn aggregate_report_flattens_the_grouping() {
        let offers = vec![
            FlexOffer::new(0, 2, vec![Slice::new(1, 3).unwrap()]).unwrap(),
            FlexOffer::new(0, 2, vec![Slice::new(0, 2).unwrap()]).unwrap(),
            FlexOffer::new(9, 12, vec![Slice::new(2, 4).unwrap()]).unwrap(),
        ];
        let aggregates = aggregate_portfolio(&offers, &GroupingParams::with_tolerances(1, 1));
        let report = aggregate_report(offers.len(), &aggregates);
        assert_eq!(report.offers, 3);
        assert_eq!(report.aggregates, aggregates.len());
        assert_eq!(report.groups[0].members, 2);
        let line = answer_line(QueryKind::Aggregate, &report);
        assert!(line.starts_with("{\"query\":\"aggregate\",\"report\":{"));
        assert!(!line.contains('\n'), "answers are single lines");
    }

    #[test]
    fn error_lines_carry_the_kind_and_message() {
        let line = error_line(QueryKind::Schedule, "empty portfolio — nothing to simulate");
        assert_eq!(
            line,
            "{\"query\":\"schedule\",\"error\":\"empty portfolio — nothing to simulate\"}"
        );
    }
}
