//! The mpsc event loop: an [`EventSink`] owned by a dedicated thread,
//! driven through a cloneable-free, ordered channel.
//!
//! [`LiveServer::spawn`] moves a fresh [`LiveBook`] onto a worker thread
//! and hands back a [`LiveHandle`]; [`LiveServer::spawn_sink`] does the
//! same for any [`EventSink`] — the durability tier wraps the book in a
//! journaling sink and drives it through this exact loop. Mutations are
//! fire-and-forget sends (the loop applies them in arrival order); queries
//! carry a reply channel and block the *caller* — never the loop — until
//! their answer line comes back. Because one thread owns all state,
//! answers are linearisable: a query observes exactly the mutations sent
//! before it.
//!
//! A sink error (an unknown id — impossible for scripts that went through
//! [`parse_script`](crate::parse_script), which validates ids statically —
//! or a journal write failure) stops the loop: subsequent sends report
//! [`ServeError::Gone`], and [`LiveHandle::shutdown`] surfaces the
//! original error. Sends after `shutdown()` report [`ServeError::Closed`]
//! instead of panicking.

use std::error::Error;
use std::fmt;
use std::sync::mpsc;
use std::thread::JoinHandle;

use flexoffers_engine::{Engine, EngineError};
use flexoffers_model::FlexOffer;

use crate::config::ServeConfig;
use crate::event::{Event, QueryKind};
use crate::live::{LiveBook, LiveError};

/// Why a handle could not deliver an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// This handle was shut down; events after [`LiveHandle::shutdown`]
    /// are rejected, not panicked on.
    Closed,
    /// The loop terminated on its own — it stopped on a sink error
    /// ([`LiveHandle::shutdown`] reports which).
    Gone,
    /// A [`LiveHandle::query_deadline`] wait expired before the answer
    /// arrived. The query still runs to completion inside the loop (its
    /// slot in the serialization order is already taken); only the wait
    /// for its answer was abandoned.
    DeadlineExceeded,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Closed => f.write_str("serving handle closed by shutdown()"),
            ServeError::Gone => f.write_str("serving loop terminated — shutdown() reports why"),
            ServeError::DeadlineExceeded => {
                f.write_str("query deadline exceeded — the answer wait was abandoned")
            }
        }
    }
}

impl Error for ServeError {}

/// A consumer of serving events — what the loop thread owns and drives.
///
/// [`LiveBook`] is the memory-only sink; the storage crate's durable book
/// journals each mutation before delegating to an inner `LiveBook`, which
/// is how "journal before apply" rides the unchanged serving loop.
pub trait EventSink: Send + 'static {
    /// What stops the loop (surfaced by [`LiveHandle::shutdown`]).
    type Error: Send + 'static;

    /// Applies one event: mutations return `Ok(None)`, queries
    /// `Ok(Some(answer_line))`. An `Err` terminates the loop.
    fn apply(&mut self, event: Event) -> Result<Option<String>, Self::Error>;

    /// Called once when the channel drains cleanly (shutdown or last
    /// handle dropped) — the sink's chance to flush.
    fn finish(&mut self) -> Result<(), Self::Error> {
        Ok(())
    }
}

impl EventSink for LiveBook {
    type Error = LiveError;

    fn apply(&mut self, event: Event) -> Result<Option<String>, LiveError> {
        LiveBook::apply(self, event)
    }
}

enum Request {
    Mutate(Event),
    Query(QueryKind, mpsc::Sender<String>),
}

/// Spawner for the serving loop.
pub struct LiveServer;

impl LiveServer {
    /// Spawns a serving loop over an empty [`LiveBook`] with the given
    /// shard count and engine budget.
    pub fn spawn(
        config: ServeConfig,
        shards: usize,
        engine: Engine,
    ) -> Result<LiveHandle, EngineError> {
        let book = LiveBook::new(config, shards, engine)?;
        Ok(Self::spawn_sink(book))
    }

    /// Spawns the serving loop over an arbitrary [`EventSink`] — same
    /// ordering and linearisability guarantees as [`spawn`](Self::spawn).
    pub fn spawn_sink<S: EventSink>(mut sink: S) -> LiveHandle<S::Error> {
        let (tx, rx) = mpsc::channel::<Request>();
        let thread = std::thread::spawn(move || {
            for request in rx {
                match request {
                    Request::Mutate(event) => {
                        sink.apply(event)?;
                    }
                    Request::Query(kind, reply) => {
                        let answer = sink
                            .apply(Event::Query(kind))?
                            .expect("queries always answer");
                        // Explicitly ignored: the receiver is gone when a
                        // `query_deadline` wait already expired (or the
                        // caller hung up). `send` into a dropped channel
                        // returns `Err` — it cannot panic — and the loop
                        // carries on, so an abandoned answer never wedges
                        // the worker that served it.
                        let _ = reply.send(answer);
                    }
                }
            }
            sink.finish()
        });
        LiveHandle {
            tx: Some(tx),
            thread: Some(thread),
        }
    }
}

/// The caller's side of the serving loop.
#[derive(Debug)]
pub struct LiveHandle<E = LiveError> {
    tx: Option<mpsc::Sender<Request>>,
    thread: Option<JoinHandle<Result<(), E>>>,
}

impl<E> LiveHandle<E> {
    fn sender(&self) -> Result<&mpsc::Sender<Request>, ServeError> {
        self.tx.as_ref().ok_or(ServeError::Closed)
    }

    /// Sends one event: mutations return `Ok(None)` immediately (applied
    /// in order by the loop), queries block for their answer line.
    pub fn send(&self, event: Event) -> Result<Option<String>, ServeError> {
        match event {
            Event::Query(kind) => self.query(kind).map(Some),
            mutation => self
                .sender()?
                .send(Request::Mutate(mutation))
                .map(|()| None)
                .map_err(|_| ServeError::Gone),
        }
    }

    /// Enqueues an add (the loop assigns the next logical id).
    pub fn add(&self, offer: FlexOffer) -> Result<(), ServeError> {
        self.send(Event::Add(offer)).map(|_| ())
    }

    /// Enqueues an in-place update of offer `id`.
    pub fn update(&self, id: u64, offer: FlexOffer) -> Result<(), ServeError> {
        self.send(Event::Update { id, offer }).map(|_| ())
    }

    /// Enqueues a removal of offer `id`.
    pub fn remove(&self, id: u64) -> Result<(), ServeError> {
        self.send(Event::Remove { id }).map(|_| ())
    }

    /// Runs a query against the state after every previously sent event
    /// and blocks until its one-line JSON answer arrives.
    pub fn query(&self, kind: QueryKind) -> Result<String, ServeError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.sender()?
            .send(Request::Query(kind, reply_tx))
            .map_err(|_| ServeError::Gone)?;
        reply_rx.recv().map_err(|_| ServeError::Gone)
    }

    /// [`query`](Self::query), but waits at most `deadline` for the
    /// answer. On [`ServeError::DeadlineExceeded`] the query itself still
    /// runs (it was already enqueued in serialization order; dropping the
    /// reply receiver just discards the answer) — because queries never
    /// mutate the book, an abandoned answer leaves the event history
    /// exactly as if the query had been answered.
    pub fn query_deadline(
        &self,
        kind: QueryKind,
        deadline: std::time::Duration,
    ) -> Result<String, ServeError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.sender()?
            .send(Request::Query(kind, reply_tx))
            .map_err(|_| ServeError::Gone)?;
        match reply_rx.recv_timeout(deadline) {
            Ok(answer) => Ok(answer),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::DeadlineExceeded),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::Gone),
        }
    }

    /// Closes the channel, drains the loop, and reports how it ended:
    /// `Ok(())` after a clean drain, or the sink error that stopped it.
    /// Idempotent — a second call returns `Ok(())`; sends after the first
    /// call report [`ServeError::Closed`].
    pub fn shutdown(&mut self) -> Result<(), E> {
        self.tx.take();
        let Some(thread) = self.thread.take() else {
            return Ok(());
        };
        match thread.join() {
            Ok(result) => result,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

impl<E> Drop for LiveHandle<E> {
    fn drop(&mut self) {
        self.tx.take();
        if let Some(thread) = self.thread.take() {
            // A drop without shutdown() still drains the loop; apply
            // errors are intentionally discarded here.
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;

    fn offer(tes: i64) -> FlexOffer {
        FlexOffer::new(tes, tes + 2, vec![Slice::new(1, 3).unwrap()]).unwrap()
    }

    fn spawn() -> LiveHandle {
        LiveServer::spawn(ServeConfig::default(), 3, Engine::sequential()).unwrap()
    }

    #[test]
    fn queries_observe_all_prior_events_in_order() {
        let mut handle = spawn();
        for tes in 0..10 {
            handle.add(offer(tes)).unwrap();
        }
        handle.remove(4).unwrap();
        handle.update(5, offer(99)).unwrap();
        let served = handle.query(QueryKind::Measure).unwrap();

        let mut direct = LiveBook::new(ServeConfig::default(), 3, Engine::sequential()).unwrap();
        for tes in 0..10 {
            direct.add(offer(tes));
        }
        direct.remove(4).unwrap();
        direct.update(5, offer(99)).unwrap();
        assert_eq!(served, direct.answer(QueryKind::Measure));
        handle.shutdown().unwrap();
    }

    #[test]
    fn zero_shards_is_rejected_at_spawn() {
        assert_eq!(
            LiveServer::spawn(ServeConfig::default(), 0, Engine::sequential()).unwrap_err(),
            EngineError::ZeroShards
        );
    }

    #[test]
    fn mutation_errors_stop_the_loop_and_surface_at_shutdown() {
        let mut handle = spawn();
        handle.remove(42).unwrap(); // enqueued fine; fails in the loop
                                    // The channel is ordered, so the loop hits the bad remove (and
                                    // exits) before it could ever answer this query.
        let gone = handle.query(QueryKind::Measure).unwrap_err();
        assert_eq!(gone, ServeError::Gone);
        assert!(gone.to_string().contains("terminated"));
        assert_eq!(
            handle.shutdown().unwrap_err(),
            LiveError::UnknownId { id: 42 }
        );
    }

    #[test]
    fn sends_after_shutdown_report_closed_not_panic() {
        let mut handle = spawn();
        handle.add(offer(0)).unwrap();
        handle.shutdown().unwrap();

        assert_eq!(handle.add(offer(1)).unwrap_err(), ServeError::Closed);
        assert_eq!(handle.update(0, offer(2)).unwrap_err(), ServeError::Closed);
        assert_eq!(handle.remove(0).unwrap_err(), ServeError::Closed);
        assert_eq!(
            handle.query(QueryKind::Measure).unwrap_err(),
            ServeError::Closed
        );
        assert_eq!(
            handle.send(Event::Add(offer(3))).unwrap_err(),
            ServeError::Closed
        );
        assert!(ServeError::Closed.to_string().contains("closed"));

        // shutdown() is idempotent.
        assert_eq!(handle.shutdown(), Ok(()));
    }

    #[test]
    fn spawn_sink_drives_a_custom_sink_and_calls_finish() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        struct Recorder {
            lines: Vec<String>,
            finished: Arc<AtomicBool>,
            fail_on_remove: bool,
        }
        #[derive(Debug, PartialEq)]
        struct RecorderError;
        impl EventSink for Recorder {
            type Error = RecorderError;
            fn apply(&mut self, event: Event) -> Result<Option<String>, RecorderError> {
                if matches!(event, Event::Remove { .. }) && self.fail_on_remove {
                    return Err(RecorderError);
                }
                self.lines.push(event.to_json_line());
                Ok(match event {
                    Event::Query(_) => Some(format!("answer {}", self.lines.len())),
                    _ => None,
                })
            }
            fn finish(&mut self) -> Result<(), RecorderError> {
                self.finished.store(true, Ordering::SeqCst);
                Ok(())
            }
        }

        let finished = Arc::new(AtomicBool::new(false));
        let mut handle = LiveServer::spawn_sink(Recorder {
            lines: Vec::new(),
            finished: Arc::clone(&finished),
            fail_on_remove: false,
        });
        handle.add(offer(0)).unwrap();
        assert_eq!(handle.query(QueryKind::Measure).unwrap(), "answer 2");
        handle.shutdown().unwrap();
        assert!(finished.load(Ordering::SeqCst), "clean drain flushes");

        let failed_finish = Arc::new(AtomicBool::new(false));
        let mut failing = LiveServer::spawn_sink(Recorder {
            lines: Vec::new(),
            finished: Arc::clone(&failed_finish),
            fail_on_remove: true,
        });
        failing.remove(7).unwrap(); // enqueued; the sink rejects it
        assert_eq!(failing.shutdown().unwrap_err(), RecorderError);
        assert!(
            !failed_finish.load(Ordering::SeqCst),
            "an errored loop does not fake a clean flush"
        );
    }

    #[test]
    fn send_routes_queries_and_mutations() {
        let mut handle = spawn();
        assert_eq!(handle.send(Event::Add(offer(1))).unwrap(), None);
        let answer = handle
            .send(Event::Query(QueryKind::Aggregate))
            .unwrap()
            .expect("queries answer");
        assert!(answer.contains("\"offers\":1"), "{answer}");
        handle.shutdown().unwrap();
    }

    #[test]
    fn query_deadline_abandons_slow_answers_but_not_fast_ones() {
        use std::time::Duration;

        struct SlowSink;
        impl EventSink for SlowSink {
            type Error = LiveError;
            fn apply(&mut self, event: Event) -> Result<Option<String>, LiveError> {
                Ok(match event {
                    Event::Query(_) => {
                        std::thread::sleep(Duration::from_millis(200));
                        Some("slow answer".to_owned())
                    }
                    _ => None,
                })
            }
        }

        let mut slow = LiveServer::spawn_sink(SlowSink);
        assert_eq!(
            slow.query_deadline(QueryKind::Measure, Duration::from_millis(1))
                .unwrap_err(),
            ServeError::DeadlineExceeded
        );
        // The abandoned query still ran; the loop survives and later
        // queries with room to breathe succeed.
        assert_eq!(
            slow.query_deadline(QueryKind::Measure, Duration::from_secs(30))
                .unwrap(),
            "slow answer"
        );
        slow.shutdown().unwrap();
        assert!(ServeError::DeadlineExceeded
            .to_string()
            .contains("deadline"));

        let mut handle = spawn();
        handle.add(offer(0)).unwrap();
        let timed = handle
            .query_deadline(QueryKind::Measure, Duration::from_secs(30))
            .unwrap();
        assert_eq!(timed, handle.query(QueryKind::Measure).unwrap());
        handle.shutdown().unwrap();
        assert_eq!(
            handle
                .query_deadline(QueryKind::Measure, Duration::from_secs(1))
                .unwrap_err(),
            ServeError::Closed
        );
    }

    #[test]
    fn back_to_back_expired_queries_do_not_wedge_the_loop() {
        use std::time::Duration;

        struct SlowSink;
        impl EventSink for SlowSink {
            type Error = LiveError;
            fn apply(&mut self, event: Event) -> Result<Option<String>, LiveError> {
                Ok(match event {
                    Event::Query(_) => {
                        std::thread::sleep(Duration::from_millis(20));
                        Some("slow answer".to_owned())
                    }
                    _ => None,
                })
            }
        }

        // Every expired wait drops its reply receiver while the query is
        // still queued (or running) in the loop; the loop's send into the
        // dropped channel must be a no-op, not a panic, N times in a row.
        let mut slow = LiveServer::spawn_sink(SlowSink);
        for i in 0..8 {
            assert_eq!(
                slow.query_deadline(QueryKind::Measure, Duration::from_millis(1))
                    .unwrap_err(),
                ServeError::DeadlineExceeded,
                "expiry #{i}"
            );
        }
        // The loop drained all eight abandoned queries and still answers.
        assert_eq!(
            slow.query_deadline(QueryKind::Measure, Duration::from_secs(30))
                .unwrap(),
            "slow answer"
        );
        slow.shutdown().unwrap();
    }

    #[test]
    fn dropping_the_handle_does_not_hang() {
        let handle = spawn();
        handle.add(offer(0)).unwrap();
        drop(handle);
    }
}
