//! The mpsc event loop: a [`LiveBook`] owned by a dedicated thread,
//! driven through a cloneable-free, ordered channel.
//!
//! [`LiveServer::spawn`] moves a fresh book onto a worker thread and hands
//! back a [`LiveHandle`]. Mutations are fire-and-forget sends (the loop
//! applies them in arrival order); queries carry a reply channel and block
//! the *caller* — never the loop — until their answer line comes back.
//! Because one thread owns all state, answers are linearisable: a query
//! observes exactly the mutations sent before it.
//!
//! A mutation error (an unknown id — impossible for scripts that went
//! through [`parse_script`](crate::parse_script), which validates ids
//! statically) stops the loop: subsequent sends report [`ServerGone`], and
//! [`LiveHandle::shutdown`] surfaces the original [`LiveError`].

use std::error::Error;
use std::fmt;
use std::sync::mpsc;
use std::thread::JoinHandle;

use flexoffers_engine::{Engine, EngineError};
use flexoffers_model::FlexOffer;

use crate::config::ServeConfig;
use crate::event::{Event, QueryKind};
use crate::live::{LiveBook, LiveError};

/// The loop has terminated — either shut down, or stopped on a mutation
/// error ([`LiveHandle::shutdown`] tells which).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerGone;

impl fmt::Display for ServerGone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serving loop terminated — shutdown() reports why")
    }
}

impl Error for ServerGone {}

enum Request {
    Mutate(Event),
    Query(QueryKind, mpsc::Sender<String>),
}

/// Spawner for the serving loop.
pub struct LiveServer;

impl LiveServer {
    /// Spawns a serving loop over an empty [`LiveBook`] with the given
    /// shard count and engine budget.
    pub fn spawn(
        config: ServeConfig,
        shards: usize,
        engine: Engine,
    ) -> Result<LiveHandle, EngineError> {
        let mut book = LiveBook::new(config, shards, engine)?;
        let (tx, rx) = mpsc::channel::<Request>();
        let thread = std::thread::spawn(move || {
            for request in rx {
                match request {
                    Request::Mutate(event) => {
                        book.apply(event)?;
                    }
                    Request::Query(kind, reply) => {
                        // A dropped reply receiver just means the caller
                        // stopped waiting; the loop carries on.
                        let _ = reply.send(book.answer(kind));
                    }
                }
            }
            Ok(())
        });
        Ok(LiveHandle {
            tx: Some(tx),
            thread: Some(thread),
        })
    }
}

/// The caller's side of the serving loop.
#[derive(Debug)]
pub struct LiveHandle {
    tx: Option<mpsc::Sender<Request>>,
    thread: Option<JoinHandle<Result<(), LiveError>>>,
}

impl LiveHandle {
    fn sender(&self) -> &mpsc::Sender<Request> {
        self.tx.as_ref().expect("sender lives until shutdown/drop")
    }

    /// Sends one event: mutations return `Ok(None)` immediately (applied
    /// in order by the loop), queries block for their answer line.
    pub fn send(&self, event: Event) -> Result<Option<String>, ServerGone> {
        match event {
            Event::Query(kind) => self.query(kind).map(Some),
            mutation => self
                .sender()
                .send(Request::Mutate(mutation))
                .map(|()| None)
                .map_err(|_| ServerGone),
        }
    }

    /// Enqueues an add (the loop assigns the next logical id).
    pub fn add(&self, offer: FlexOffer) -> Result<(), ServerGone> {
        self.send(Event::Add(offer)).map(|_| ())
    }

    /// Enqueues an in-place update of offer `id`.
    pub fn update(&self, id: u64, offer: FlexOffer) -> Result<(), ServerGone> {
        self.send(Event::Update { id, offer }).map(|_| ())
    }

    /// Enqueues a removal of offer `id`.
    pub fn remove(&self, id: u64) -> Result<(), ServerGone> {
        self.send(Event::Remove { id }).map(|_| ())
    }

    /// Runs a query against the state after every previously sent event
    /// and blocks until its one-line JSON answer arrives.
    pub fn query(&self, kind: QueryKind) -> Result<String, ServerGone> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.sender()
            .send(Request::Query(kind, reply_tx))
            .map_err(|_| ServerGone)?;
        reply_rx.recv().map_err(|_| ServerGone)
    }

    /// Closes the channel, drains the loop, and reports how it ended:
    /// `Ok(())` after a clean drain, or the [`LiveError`] that stopped it.
    pub fn shutdown(mut self) -> Result<(), LiveError> {
        self.tx.take();
        let thread = self.thread.take().expect("not yet joined");
        match thread.join() {
            Ok(result) => result,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

impl Drop for LiveHandle {
    fn drop(&mut self) {
        self.tx.take();
        if let Some(thread) = self.thread.take() {
            // A drop without shutdown() still drains the loop; apply
            // errors are intentionally discarded here.
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;

    fn offer(tes: i64) -> FlexOffer {
        FlexOffer::new(tes, tes + 2, vec![Slice::new(1, 3).unwrap()]).unwrap()
    }

    fn spawn() -> LiveHandle {
        LiveServer::spawn(ServeConfig::default(), 3, Engine::sequential()).unwrap()
    }

    #[test]
    fn queries_observe_all_prior_events_in_order() {
        let handle = spawn();
        for tes in 0..10 {
            handle.add(offer(tes)).unwrap();
        }
        handle.remove(4).unwrap();
        handle.update(5, offer(99)).unwrap();
        let served = handle.query(QueryKind::Measure).unwrap();

        let mut direct = LiveBook::new(ServeConfig::default(), 3, Engine::sequential()).unwrap();
        for tes in 0..10 {
            direct.add(offer(tes));
        }
        direct.remove(4).unwrap();
        direct.update(5, offer(99)).unwrap();
        assert_eq!(served, direct.answer(QueryKind::Measure));
        handle.shutdown().unwrap();
    }

    #[test]
    fn zero_shards_is_rejected_at_spawn() {
        assert_eq!(
            LiveServer::spawn(ServeConfig::default(), 0, Engine::sequential()).unwrap_err(),
            EngineError::ZeroShards
        );
    }

    #[test]
    fn mutation_errors_stop_the_loop_and_surface_at_shutdown() {
        let handle = spawn();
        handle.remove(42).unwrap(); // enqueued fine; fails in the loop
                                    // The channel is ordered, so the loop hits the bad remove (and
                                    // exits) before it could ever answer this query.
        let gone = handle.query(QueryKind::Measure).unwrap_err();
        assert_eq!(gone, ServerGone);
        assert!(gone.to_string().contains("terminated"));
        assert_eq!(
            handle.shutdown().unwrap_err(),
            LiveError::UnknownId { id: 42 }
        );
    }

    #[test]
    fn send_routes_queries_and_mutations() {
        let handle = spawn();
        assert_eq!(handle.send(Event::Add(offer(1))).unwrap(), None);
        let answer = handle
            .send(Event::Query(QueryKind::Aggregate))
            .unwrap()
            .expect("queries answer");
        assert!(answer.contains("\"offers\":1"), "{answer}");
        handle.shutdown().unwrap();
    }

    #[test]
    fn dropping_the_handle_does_not_hang() {
        let handle = spawn();
        handle.add(offer(0)).unwrap();
        drop(handle);
    }
}
