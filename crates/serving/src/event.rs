//! The serving tier's event model and its JSONL wire format.
//!
//! One event per line, tagged by an `"event"` field:
//!
//! ```text
//! {"event":"add","offer":{...}}            // assigned the next logical id
//! {"event":"update","id":3,"offer":{...}}  // revise a live offer in place
//! {"event":"remove","id":3}                // withdraw a live offer
//! {"event":"query","kind":"measure"}       // measure | aggregate | schedule | trade
//! ```
//!
//! Offers use the model crate's serde format (the same JSON `flexctl
//! measure` reads). Ids are implicit: the `k`-th `add` line owns logical id
//! `k`, matching [`flexoffers_workloads::OfferEvent`]'s contract, so a
//! recorded script replays identically anywhere. [`parse_script`] validates
//! the whole script statically — malformed lines, unknown event/kind tags,
//! and references to ids that are not live at that point all fail with the
//! offending line number before any replay starts.
//!
//! The normative specification of this format — shared by serve scripts,
//! the journal file, and the network tier's request framing — lives in
//! `docs/PROTOCOL.md` at the repository root (`flexoffers-jsonl/1`). This
//! module is its reference implementation.

use std::error::Error;
use std::fmt;

use serde::{Serialize, Value};

use flexoffers_model::FlexOffer;
use flexoffers_workloads::OfferEvent;

/// Which query a [`Event::Query`] asks — the serving counterparts of the
/// engine's batch entry points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// The paper's eight measures over the live portfolio
    /// ([`Engine::measure_portfolio_all`] semantics).
    ///
    /// [`Engine::measure_portfolio_all`]: flexoffers_engine::Engine::measure_portfolio_all
    Measure,
    /// The tolerance grouping plus per-group start-alignment aggregation
    /// ([`Engine::aggregate_portfolio`] semantics).
    ///
    /// [`Engine::aggregate_portfolio`]: flexoffers_engine::Engine::aggregate_portfolio
    Aggregate,
    /// The Scenario 1 pipeline toward the config's target profile.
    Schedule,
    /// The Scenario 2 pipeline on the config's spot market.
    Trade,
}

impl QueryKind {
    /// The wire-format name (also the `"query"` tag of the answer line).
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Measure => "measure",
            QueryKind::Aggregate => "aggregate",
            QueryKind::Schedule => "schedule",
            QueryKind::Trade => "trade",
        }
    }

    /// Parses a wire-format name. `"market"` is accepted as an alias for
    /// `trade` (the scenario the query runs is named `market`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "measure" => Some(QueryKind::Measure),
            "aggregate" => Some(QueryKind::Aggregate),
            "schedule" => Some(QueryKind::Schedule),
            "trade" | "market" => Some(QueryKind::Trade),
            _ => None,
        }
    }

    /// All four kinds, in wire-format order.
    pub fn all() -> [QueryKind; 4] {
        [
            QueryKind::Measure,
            QueryKind::Aggregate,
            QueryKind::Schedule,
            QueryKind::Trade,
        ]
    }
}

impl fmt::Display for QueryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One message of the serving event loop: a book mutation or a query.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A new flex-offer arrives (assigned the next logical id).
    Add(FlexOffer),
    /// The offer with logical id `id` is revised in place.
    Update {
        /// Logical id assigned at add time.
        id: u64,
        /// The replacement flex-offer.
        offer: FlexOffer,
    },
    /// The offer with logical id `id` leaves the book.
    Remove {
        /// Logical id assigned at add time.
        id: u64,
    },
    /// Answer a query over the current book state.
    Query(QueryKind),
}

impl From<OfferEvent> for Event {
    fn from(event: OfferEvent) -> Self {
        match event {
            OfferEvent::Add(offer) => Event::Add(offer),
            OfferEvent::Update { id, offer } => Event::Update { id, offer },
            OfferEvent::Remove { id } => Event::Remove { id },
        }
    }
}

impl Event {
    /// Renders the event as one compact JSONL line (no trailing newline) —
    /// the exact format [`parse_script`] reads back.
    pub fn to_json_line(&self) -> String {
        let tagged = |tag: &str, mut rest: Vec<(String, Value)>| {
            let mut fields = vec![("event".to_owned(), Value::Str(tag.to_owned()))];
            fields.append(&mut rest);
            Value::Object(fields)
        };
        let value = match self {
            Event::Add(offer) => tagged("add", vec![("offer".to_owned(), offer.to_value())]),
            Event::Update { id, offer } => tagged(
                "update",
                vec![
                    ("id".to_owned(), Value::U64(*id)),
                    ("offer".to_owned(), offer.to_value()),
                ],
            ),
            Event::Remove { id } => tagged("remove", vec![("id".to_owned(), Value::U64(*id))]),
            Event::Query(kind) => tagged(
                "query",
                vec![("kind".to_owned(), Value::Str(kind.name().to_owned()))],
            ),
        };
        serde_json::to_string(&value).expect("event values serialize")
    }

    /// Parses one JSONL line. Blank lines are the caller's business
    /// ([`parse_script`] skips them).
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        let value: Value =
            serde_json::from_str(line).map_err(|e| format!("malformed event JSON: {e}"))?;
        Self::from_value(&value)
    }

    /// Parses an already-decoded event object — what [`from_json_line`]
    /// does after JSON decoding, split out so embedders (the network
    /// tier's `{"id":…,"event":{…}}` framing) can validate an event
    /// nested inside a larger value without re-serializing it.
    ///
    /// [`from_json_line`]: Self::from_json_line
    pub fn from_value(value: &Value) -> Result<Self, String> {
        let tag = value
            .get("event")
            .and_then(Value::as_str)
            .ok_or("event object needs a string `event` tag")?;
        // Ids are strictly non-negative integers. The float and negative
        // cases are named explicitly rather than left to the generic
        // deserializer: the journal replays untrusted files, and
        // `{"id":3.0}` must fail loudly instead of coercing through the
        // vendored `Value`'s numeric tower.
        let id = |value: &Value| -> Result<u64, String> {
            match value.get("id").ok_or("missing `id`")? {
                Value::U64(n) => Ok(*n),
                Value::I64(n) if *n >= 0 => Ok(*n as u64),
                Value::I64(n) => Err(format!("bad `id`: id must be non-negative, got {n}")),
                Value::F64(f) => Err(format!("bad `id`: id must be an integer, got {f:?}")),
                other => Err(format!(
                    "bad `id`: expected integer, found {}",
                    other.kind()
                )),
            }
        };
        let offer = |value: &Value| -> Result<FlexOffer, String> {
            let raw = value.get("offer").ok_or("missing `offer`")?;
            use serde::Deserialize;
            FlexOffer::from_value(raw).map_err(|e| format!("bad `offer`: {e}"))
        };
        match tag {
            "add" => Ok(Event::Add(offer(value)?)),
            "update" => Ok(Event::Update {
                id: id(value)?,
                offer: offer(value)?,
            }),
            "remove" => Ok(Event::Remove { id: id(value)? }),
            "query" => {
                let kind = value
                    .get("kind")
                    .and_then(Value::as_str)
                    .ok_or("query needs a string `kind`")?;
                QueryKind::parse(kind)
                    .map(Event::Query)
                    .ok_or_else(|| format!("unknown query kind `{kind}`"))
            }
            other => Err(format!("unknown event `{other}`")),
        }
    }
}

/// Why a script could not be parsed or validated.
#[derive(Clone, Debug, PartialEq)]
pub enum ScriptError {
    /// The script held no events at all (blank lines only, or empty).
    Empty,
    /// A specific line failed to parse or referenced a dead id.
    Line {
        /// 1-based line number in the script.
        line: usize,
        /// What went wrong on it.
        message: String,
    },
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::Empty => write!(f, "empty script — no events to replay"),
            ScriptError::Line { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl Error for ScriptError {}

/// Parses a whole JSONL script and statically validates its id references:
/// the `k`-th add owns id `k`, updates must name a live id, removes kill
/// one. Returns the events in script order, or the first offending line.
/// The script format is specified normatively in `docs/PROTOCOL.md`.
pub fn parse_script(text: &str) -> Result<Vec<Event>, ScriptError> {
    parse_script_from(text, Vec::new(), 0)
}

/// [`parse_script`] seeded with a book's current state — the validation a
/// script that *continues* an existing history (a journaled serve being
/// resumed) must pass: updates and removes may name ids the prior run
/// added, and the first add of the new script owns `next_id`, not 0.
pub fn parse_script_from(
    text: &str,
    live_ids: Vec<u64>,
    start_id: u64,
) -> Result<Vec<Event>, ScriptError> {
    let mut events = Vec::new();
    let mut next_id: u64 = start_id;
    let mut live: std::collections::BTreeSet<u64> = live_ids.into_iter().collect();
    for (at, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fail = |message: String| ScriptError::Line {
            line: at + 1,
            message,
        };
        let event = Event::from_json_line(line).map_err(fail)?;
        match &event {
            Event::Add(_) => {
                live.insert(next_id);
                next_id += 1;
            }
            Event::Update { id, .. } => {
                if !live.contains(id) {
                    return Err(fail(format!("update of unknown offer id {id}")));
                }
            }
            Event::Remove { id } => {
                if !live.remove(id) {
                    return Err(fail(format!("remove of unknown offer id {id}")));
                }
            }
            Event::Query(_) => {}
        }
        events.push(event);
    }
    if events.is_empty() {
        return Err(ScriptError::Empty);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;

    fn offer() -> FlexOffer {
        FlexOffer::new(0, 2, vec![Slice::new(1, 3).unwrap()]).unwrap()
    }

    #[test]
    fn events_round_trip_through_jsonl() {
        let events = vec![
            Event::Add(offer()),
            Event::Update {
                id: 0,
                offer: offer(),
            },
            Event::Query(QueryKind::Measure),
            Event::Remove { id: 0 },
            Event::Query(QueryKind::Trade),
        ];
        let script: String = events
            .iter()
            .map(|e| e.to_json_line() + "\n")
            .collect::<String>();
        assert_eq!(parse_script(&script).unwrap(), events);
    }

    #[test]
    fn kind_names_round_trip_and_market_aliases_trade() {
        for kind in QueryKind::all() {
            assert_eq!(QueryKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(QueryKind::parse("market"), Some(QueryKind::Trade));
        assert_eq!(QueryKind::parse("imbalance"), None);
    }

    #[test]
    fn malformed_lines_name_their_line_number() {
        let script = format!("{}\nnot json\n", Event::Add(offer()).to_json_line());
        let err = parse_script(&script).unwrap_err();
        assert!(matches!(err, ScriptError::Line { line: 2, .. }), "{err}");
        assert!(err.to_string().starts_with("line 2:"), "{err}");
    }

    #[test]
    fn unknown_ids_fail_validation() {
        let script = format!(
            "{}\n{}\n",
            Event::Add(offer()).to_json_line(),
            Event::Remove { id: 5 }.to_json_line()
        );
        let err = parse_script(&script).unwrap_err();
        assert!(
            err.to_string().contains("remove of unknown offer id 5"),
            "{err}"
        );

        // A removed id is dead: updating it afterwards is an error too.
        let script = format!(
            "{}\n{}\n{}\n",
            Event::Add(offer()).to_json_line(),
            Event::Remove { id: 0 }.to_json_line(),
            Event::Update {
                id: 0,
                offer: offer()
            }
            .to_json_line()
        );
        let err = parse_script(&script).unwrap_err();
        assert!(
            err.to_string().contains("update of unknown offer id 0"),
            "{err}"
        );
    }

    #[test]
    fn seeded_parsing_validates_a_continuation_script() {
        // Ids 0 and 2 live, next add takes id 3: exactly the state left
        // by add,add,add,remove(1) — a resumed journal's continuation may
        // touch the survivors but not the hole or the future.
        let script = format!(
            "{}\n{}\n{}\n",
            Event::Update {
                id: 2,
                offer: offer()
            }
            .to_json_line(),
            Event::Add(offer()).to_json_line(),
            Event::Remove { id: 3 }.to_json_line(), // the add above owns 3
        );
        let events = parse_script_from(&script, vec![0, 2], 3).unwrap();
        assert_eq!(events.len(), 3);
        // The same script from a cold start fails on the first line.
        let err = parse_script(&script).unwrap_err();
        assert!(matches!(err, ScriptError::Line { line: 1, .. }), "{err}");
        // The hole (removed id 1) stays dead in the seeded parse too.
        let err =
            parse_script_from("{\"event\":\"remove\",\"id\":1}\n", vec![0, 2], 3).unwrap_err();
        assert!(
            err.to_string().contains("remove of unknown offer id 1"),
            "{err}"
        );
    }

    #[test]
    fn unknown_tags_and_kinds_are_rejected() {
        let err = parse_script("{\"event\":\"upsert\",\"id\":0}\n").unwrap_err();
        assert!(err.to_string().contains("unknown event `upsert`"), "{err}");
        let err = parse_script("{\"event\":\"query\",\"kind\":\"forecast\"}\n").unwrap_err();
        assert!(
            err.to_string().contains("unknown query kind `forecast`"),
            "{err}"
        );
    }

    #[test]
    fn empty_scripts_are_rejected_and_blank_lines_skipped() {
        assert_eq!(parse_script(""), Err(ScriptError::Empty));
        assert_eq!(parse_script("\n  \n\n"), Err(ScriptError::Empty));
        let script = format!("\n{}\n\n", Event::Query(QueryKind::Schedule).to_json_line());
        assert_eq!(parse_script(&script).unwrap().len(), 1);
    }

    #[test]
    fn float_and_negative_ids_are_rejected_with_line_numbers() {
        // `3.0` is numerically integral, but an id position must hold an
        // integer token — the journal replays untrusted files.
        let script = format!(
            "{}\n{{\"event\":\"remove\",\"id\":3.0}}\n",
            Event::Add(offer()).to_json_line()
        );
        let err = parse_script(&script).unwrap_err();
        assert!(matches!(err, ScriptError::Line { line: 2, .. }), "{err}");
        assert!(err.to_string().contains("id must be an integer"), "{err}");

        for bad in [
            "{\"event\":\"remove\",\"id\":2.5}",
            "{\"event\":\"remove\",\"id\":-3}",
            "{\"event\":\"update\",\"id\":0.0,\"offer\":{}}",
            "{\"event\":\"update\",\"id\":-1,\"offer\":{}}",
            "{\"event\":\"remove\",\"id\":\"3\"}",
        ] {
            let err = Event::from_json_line(bad).unwrap_err();
            assert!(err.starts_with("bad `id`"), "{bad} -> {err}");
        }
        let err = Event::from_json_line("{\"event\":\"remove\",\"id\":-3}").unwrap_err();
        assert!(err.contains("non-negative"), "{err}");
    }

    #[test]
    fn integral_floats_in_offer_fields_are_rejected() {
        // The offer body goes through the vendored serde, which must be as
        // strict as the id path: `"earliest_start":7.0` used to coerce to 7.
        let line = Event::Add(offer()).to_json_line();
        let fuzzed = line.replacen("\"earliest_start\":0", "\"earliest_start\":0.0", 1);
        assert_ne!(
            line, fuzzed,
            "fixture offer should serialize earliest_start"
        );
        let err = Event::from_json_line(&fuzzed).unwrap_err();
        assert!(err.starts_with("bad `offer`"), "{err}");
        assert!(err.contains("expected integer"), "{err}");
    }

    #[test]
    fn offer_events_convert() {
        let event: Event = flexoffers_workloads::OfferEvent::Remove { id: 9 }.into();
        assert_eq!(event, Event::Remove { id: 9 });
    }
}
