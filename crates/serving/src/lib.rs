//! `flexoffers_serving` — the live serving tier on top of the sharded
//! engine.
//!
//! The paper's measures are defined over a portfolio *snapshot*; a
//! production flexibility platform receives a continuous stream of
//! flex-offers (adds, revisions, withdrawals) and must answer
//! measure/schedule/trade queries *between* updates. Rebuilding a
//! [`ShardedBook`](flexoffers_engine::ShardedBook) and restarting the batch
//! pipelines on every query throws away almost all of the previous
//! evaluation: a single-offer update invalidates one shard's rows, not the
//! book's.
//!
//! This crate keeps exactly that incremental state:
//!
//! * [`LiveBook`] — the event-driven book. Adds route through the same
//!   stable hash placement a batch
//!   [`collect_hashed`](flexoffers_engine::ShardedBook::collect_hashed)
//!   build uses ([`stable_shard`](flexoffers_engine::stable_shard)); each
//!   shard caches its **prepared-offer measure rows** and its **baseline
//!   partial**, guarded by a dirty bit, so a query re-runs the measure pass
//!   on dirtied shards only and re-merges cached partials from the rest. A
//!   per-shard **group-key digest** spots updates that leave the `(tes,
//!   tf)` key multiset unchanged, keeping the grouping cache warm; when
//!   keys do change, re-grouping is an incremental re-sweep over the
//!   already-sorted [`KeyIndex`](flexoffers_aggregation::KeyIndex) — no
//!   per-query sort.
//! * [`LiveServer`] / [`LiveHandle`] — the mpsc event loop:
//!   [`Event`]`::{Add, Update, Remove, Query}` messages drain into a
//!   `LiveBook` on a dedicated thread, queries reply with one JSON line.
//! * [`Event`] / script parsing ([`parse_script`]) — the JSONL wire format
//!   `flexctl serve --script` replays, statically validated (line-numbered
//!   errors, unknown-id references, empty scripts).
//! * [`batch`] — the from-scratch oracle: the same queries answered by
//!   rebuilding the portfolio and running the flat engine.
//!
//! # Determinism
//!
//! Every query answer is **byte-identical** to rebuilding the book from
//! scratch at that point and running the flat engine ([`batch::answer`]),
//! at any shards × threads × chunk budget. The measure reduction, the
//! correlation tables, and the scenario report assembly are the engine's
//! own public functions — the live path feeds them cached per-shard state
//! instead of freshly computed rows, and the property suite in
//! `tests/props.rs` pins the bytes across random Add/Update/Remove/Query
//! interleavings.
//!
//! # Quickstart
//!
//! ```
//! use flexoffers_engine::Engine;
//! use flexoffers_serving::{LiveBook, QueryKind, ServeConfig};
//! use flexoffers_workloads::event_stream;
//!
//! let mut book = LiveBook::new(ServeConfig::default(), 4, Engine::sequential())?;
//! for event in event_stream(7, 30, 0.1) {
//!     book.apply_offer_event(event)?;
//! }
//! let answer = book.answer(QueryKind::Measure);
//! assert!(answer.starts_with("{\"query\":\"measure\""));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod config;
pub mod event;
pub mod live;
pub mod report;
pub mod server;

pub use config::{DurabilityConfig, ServeConfig};
pub use event::{parse_script, parse_script_from, Event, QueryKind, ScriptError};
pub use live::{
    BookExport, ImportError, LiveBook, LiveError, MeasureRow, ShardCacheExport, ShardExport,
};
pub use report::{AggregateReportJson, AggregateSummaryJson};
pub use server::{EventSink, LiveHandle, LiveServer, ServeError};
