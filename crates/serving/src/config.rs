//! The serving tier's query configuration.

use flexoffers_aggregation::GroupingParams;
use flexoffers_engine::{Scenario, ScenarioKind, SchedulerChoice};

/// Every knob a live book needs to answer its four query kinds — the
/// [`Scenario`] fields minus the workload source (the portfolio arrives as
/// events, not from a generator). All derived artefacts (target profile,
/// spot prices) are pure functions of these fields plus the book's current
/// offer count, so equal configs over equal logical portfolios answer with
/// equal bytes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeConfig {
    /// Seed for the target and price traces (not for the portfolio — that
    /// is the event stream's business).
    pub seed: u64,
    /// Grouping tolerances for aggregate/schedule/trade queries.
    pub grouping: GroupingParams,
    /// Scheduler for schedule queries.
    pub scheduler: SchedulerChoice,
    /// Horizon of the target and price traces, in days.
    pub days: usize,
    /// Minimum tradeable lot volume for trade queries.
    pub min_lot: i64,
    /// Imbalance penalty for trade queries, as a multiple of the peak spot
    /// price.
    pub penalty_multiplier: f64,
}

impl ServeConfig {
    /// The [`Scenario`] this config answers `kind` queries with. The
    /// scenario's workload fields are pinned (`households` 0 — the live
    /// portfolio replaces the generated city), so the batch oracle and the
    /// live path serialise identical scenario headers.
    pub fn scenario(&self, kind: ScenarioKind) -> Scenario {
        Scenario {
            kind,
            seed: self.seed,
            households: 0,
            grouping: self.grouping,
            scheduler: self.scheduler,
            days: self.days,
            min_lot: self.min_lot,
            penalty_multiplier: self.penalty_multiplier,
        }
    }
}

impl Default for ServeConfig {
    /// Mirrors [`Scenario::city_portfolio`]'s defaults: seed 7, tolerances
    /// (2, 2), greedy scheduling, a 2-day horizon, minimum lot 25, penalty
    /// multiplier 2.0 — so a served query and a `flexctl simulate` run
    /// over the same offers agree out of the box.
    fn default() -> Self {
        Self {
            seed: 7,
            grouping: GroupingParams::with_tolerances(2, 2),
            scheduler: SchedulerChoice::Greedy,
            days: 2,
            min_lot: 25,
            penalty_multiplier: 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mirrors_the_city_scenario_defaults() {
        let config = ServeConfig::default();
        let reference = Scenario::city_portfolio(ScenarioKind::Schedule, 0);
        assert_eq!(config.scenario(ScenarioKind::Schedule), reference);
    }

    #[test]
    fn scenario_kind_is_the_callers_choice() {
        let config = ServeConfig::default();
        assert_eq!(
            config.scenario(ScenarioKind::Market).kind,
            ScenarioKind::Market
        );
        assert_eq!(config.scenario(ScenarioKind::Market).households, 0);
    }
}
