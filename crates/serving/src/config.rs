//! The serving tier's query configuration.

use std::path::{Path, PathBuf};

use flexoffers_aggregation::GroupingParams;
use flexoffers_engine::{Scenario, ScenarioKind, SchedulerChoice};

/// Where and how a serving loop persists its event stream.
///
/// The journal is the event wire format itself — each applied mutation is
/// one [`Event::to_json_line`](crate::Event::to_json_line) appended to
/// `journal`, so the journal is a replayable
/// [`parse_script`](crate::parse_script) script. Snapshots (when enabled)
/// bound replay time; recovery without one replays the whole journal.
#[derive(Clone, Debug, PartialEq)]
pub struct DurabilityConfig {
    /// The append-only event journal path.
    pub journal: PathBuf,
    /// Snapshot path; `None` defaults to `journal` + `.snap`.
    pub snapshot: Option<PathBuf>,
    /// Write a snapshot every this many journaled mutations; `None`
    /// disables periodic snapshots (one is still written at clean
    /// shutdown).
    pub snapshot_every: Option<u64>,
    /// fsync the journal every this many mutations (and always before a
    /// snapshot and at shutdown). 1 = sync every event.
    pub sync_every: u64,
}

impl DurabilityConfig {
    /// Journals to `journal` with default batching: fsync every 64
    /// mutations, snapshot only at clean shutdown.
    pub fn new(journal: impl Into<PathBuf>) -> Self {
        Self {
            journal: journal.into(),
            snapshot: None,
            snapshot_every: None,
            sync_every: 64,
        }
    }

    /// The effective snapshot path (`snapshot`, or `journal` + `.snap`).
    pub fn snapshot_path(&self) -> PathBuf {
        match &self.snapshot {
            Some(path) => path.clone(),
            None => {
                let mut name = self.journal.file_name().unwrap_or_default().to_owned();
                name.push(".snap");
                self.journal.with_file_name(name)
            }
        }
    }

    /// The journal path.
    pub fn journal_path(&self) -> &Path {
        &self.journal
    }
}

/// Every knob a live book needs to answer its four query kinds — the
/// [`Scenario`] fields minus the workload source (the portfolio arrives as
/// events, not from a generator). All derived artefacts (target profile,
/// spot prices) are pure functions of these fields plus the book's current
/// offer count, so equal configs over equal logical portfolios answer with
/// equal bytes.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeConfig {
    /// Seed for the target and price traces (not for the portfolio — that
    /// is the event stream's business).
    pub seed: u64,
    /// Grouping tolerances for aggregate/schedule/trade queries.
    pub grouping: GroupingParams,
    /// Scheduler for schedule queries.
    pub scheduler: SchedulerChoice,
    /// Horizon of the target and price traces, in days.
    pub days: usize,
    /// Minimum tradeable lot volume for trade queries.
    pub min_lot: i64,
    /// Imbalance penalty for trade queries, as a multiple of the peak spot
    /// price.
    pub penalty_multiplier: f64,
    /// Journal/snapshot persistence; `None` serves memory-only. Purely
    /// operational — durability never changes an answer's bytes.
    pub durability: Option<DurabilityConfig>,
}

impl ServeConfig {
    /// The [`Scenario`] this config answers `kind` queries with. The
    /// scenario's workload fields are pinned (`households` 0 — the live
    /// portfolio replaces the generated city), so the batch oracle and the
    /// live path serialise identical scenario headers.
    pub fn scenario(&self, kind: ScenarioKind) -> Scenario {
        Scenario {
            kind,
            seed: self.seed,
            households: 0,
            grouping: self.grouping,
            scheduler: self.scheduler,
            days: self.days,
            min_lot: self.min_lot,
            penalty_multiplier: self.penalty_multiplier,
        }
    }
}

impl Default for ServeConfig {
    /// Mirrors [`Scenario::city_portfolio`]'s defaults: seed 7, tolerances
    /// (2, 2), greedy scheduling, a 2-day horizon, minimum lot 25, penalty
    /// multiplier 2.0 — so a served query and a `flexctl simulate` run
    /// over the same offers agree out of the box.
    fn default() -> Self {
        Self {
            seed: 7,
            grouping: GroupingParams::with_tolerances(2, 2),
            scheduler: SchedulerChoice::Greedy,
            days: 2,
            min_lot: 25,
            penalty_multiplier: 2.0,
            durability: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mirrors_the_city_scenario_defaults() {
        let config = ServeConfig::default();
        let reference = Scenario::city_portfolio(ScenarioKind::Schedule, 0);
        assert_eq!(config.scenario(ScenarioKind::Schedule), reference);
    }

    #[test]
    fn snapshot_path_defaults_next_to_the_journal() {
        let durability = DurabilityConfig::new("/var/lib/flex/events.jsonl");
        assert_eq!(
            durability.snapshot_path(),
            PathBuf::from("/var/lib/flex/events.jsonl.snap")
        );
        assert_eq!(durability.sync_every, 64);
        assert_eq!(durability.snapshot_every, None);

        let explicit = DurabilityConfig {
            snapshot: Some(PathBuf::from("/elsewhere/book.snap")),
            ..DurabilityConfig::new("events.jsonl")
        };
        assert_eq!(
            explicit.snapshot_path(),
            PathBuf::from("/elsewhere/book.snap")
        );
    }

    #[test]
    fn scenario_kind_is_the_callers_choice() {
        let config = ServeConfig::default();
        assert_eq!(
            config.scenario(ScenarioKind::Market).kind,
            ScenarioKind::Market
        );
        assert_eq!(config.scenario(ScenarioKind::Market).households, 0);
    }
}
