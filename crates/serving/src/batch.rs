//! The from-scratch oracle: every serving query answered by rebuilding the
//! logical portfolio and running the flat engine — no incremental state at
//! all. This is what "byte-identical" is measured against: `flexctl serve
//! --batch` replays a script through a [`BatchBook`], CI `cmp`s its output
//! against the live replay, and the property suite does the same per
//! event.

use std::collections::BTreeMap;

use flexoffers_engine::{Engine, EngineError, Partitioner, ScenarioKind, ShardedBook};
use flexoffers_model::{FlexOffer, Portfolio};

use crate::config::ServeConfig;
use crate::event::{Event, QueryKind};
use crate::live::LiveError;
use crate::report::{aggregate_report, answer_line, error_line};

/// Answers one query over `offers` (the logical portfolio, in id order) by
/// running the flat engine from scratch — the batch-restart cost the
/// serving tier exists to avoid, kept as the correctness oracle.
pub fn answer(
    engine: &Engine,
    config: &ServeConfig,
    offers: &[FlexOffer],
    kind: QueryKind,
) -> String {
    match kind {
        QueryKind::Measure => answer_line(kind, &engine.measure_portfolio_all(offers).json()),
        QueryKind::Aggregate => {
            let aggregates = engine.aggregate_portfolio(offers, &config.grouping);
            answer_line(kind, &aggregate_report(offers.len(), &aggregates))
        }
        QueryKind::Schedule | QueryKind::Trade => {
            let scenario_kind = match kind {
                QueryKind::Schedule => ScenarioKind::Schedule,
                _ => ScenarioKind::Market,
            };
            let scenario = config.scenario(scenario_kind);
            let portfolio = Portfolio::from_offers(offers.to_vec());
            match engine.simulate_portfolio(&scenario, &portfolio) {
                Ok(report) => answer_line(kind, &report.json()),
                Err(e) => error_line(kind, &e.to_string()),
            }
        }
    }
}

/// Like [`answer`], but through a **freshly partitioned**
/// [`ShardedBook`] and the engine's book pipelines — the other
/// from-scratch oracle (the acceptance bar is byte-identity against both
/// the flat engine and a fresh book build, at any shard count).
pub fn answer_sharded(
    engine: &Engine,
    config: &ServeConfig,
    offers: &[FlexOffer],
    shards: usize,
    kind: QueryKind,
) -> Result<String, EngineError> {
    let book = ShardedBook::partition(offers, shards, &Partitioner::HashById)?;
    Ok(match kind {
        QueryKind::Measure => answer_line(kind, &engine.measure_book_all(&book).json()),
        QueryKind::Aggregate => {
            let aggregates = engine.aggregate_book(&book, &config.grouping);
            answer_line(kind, &aggregate_report(offers.len(), &aggregates))
        }
        QueryKind::Schedule | QueryKind::Trade => {
            let scenario_kind = match kind {
                QueryKind::Schedule => ScenarioKind::Schedule,
                _ => ScenarioKind::Market,
            };
            let scenario = config.scenario(scenario_kind);
            match engine.simulate_book(&scenario, &book) {
                Ok(report) => answer_line(kind, &report.json()),
                Err(e) => error_line(kind, &e.to_string()),
            }
        }
    })
}

/// A replay sink with the exact event contract of
/// [`LiveBook::apply`](crate::LiveBook::apply) — same ids, same errors,
/// same answer lines — but answering every query with a from-scratch flat
/// evaluation. The serving determinism gate is `live replay == batch
/// replay`, byte for byte.
#[derive(Debug)]
pub struct BatchBook {
    config: ServeConfig,
    engine: Engine,
    offers: BTreeMap<u64, FlexOffer>,
    next_id: u64,
}

impl BatchBook {
    /// An empty batch book answering under `config` with `engine`.
    pub fn new(config: ServeConfig, engine: Engine) -> Self {
        Self {
            config,
            engine,
            offers: BTreeMap::new(),
            next_id: 0,
        }
    }

    /// Number of live offers.
    pub fn len(&self) -> usize {
        self.offers.len()
    }

    /// `true` when no offers are live.
    pub fn is_empty(&self) -> bool {
        self.offers.is_empty()
    }

    /// Applies one event; same contract as
    /// [`LiveBook::apply`](crate::LiveBook::apply).
    pub fn apply(&mut self, event: Event) -> Result<Option<String>, LiveError> {
        match event {
            Event::Add(offer) => {
                self.offers.insert(self.next_id, offer);
                self.next_id += 1;
                Ok(None)
            }
            Event::Update { id, offer } => match self.offers.get_mut(&id) {
                Some(slot) => {
                    *slot = offer;
                    Ok(None)
                }
                None => Err(LiveError::UnknownId { id }),
            },
            Event::Remove { id } => match self.offers.remove(&id) {
                Some(_) => Ok(None),
                None => Err(LiveError::UnknownId { id }),
            },
            Event::Query(kind) => {
                let flat: Vec<FlexOffer> = self.offers.values().cloned().collect();
                Ok(Some(answer(&self.engine, &self.config, &flat, kind)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;

    fn offer(tes: i64) -> FlexOffer {
        FlexOffer::new(tes, tes + 2, vec![Slice::new(1, 3).unwrap()]).unwrap()
    }

    #[test]
    fn batch_book_tracks_ids_like_the_live_book() {
        let mut book = BatchBook::new(ServeConfig::default(), Engine::sequential());
        assert!(book.is_empty());
        book.apply(Event::Add(offer(0))).unwrap();
        book.apply(Event::Add(offer(1))).unwrap();
        book.apply(Event::Remove { id: 0 }).unwrap();
        assert_eq!(book.len(), 1);
        assert_eq!(
            book.apply(Event::Remove { id: 0 }).unwrap_err(),
            LiveError::UnknownId { id: 0 }
        );
        assert_eq!(
            book.apply(Event::Update {
                id: 7,
                offer: offer(0)
            })
            .unwrap_err(),
            LiveError::UnknownId { id: 7 }
        );
        let answer = book
            .apply(Event::Query(QueryKind::Measure))
            .unwrap()
            .expect("queries answer");
        assert!(answer.contains("\"offers\":1"), "{answer}");
    }

    #[test]
    fn empty_scenario_queries_refuse_like_the_engine() {
        let book_answer = answer(
            &Engine::sequential(),
            &ServeConfig::default(),
            &[],
            QueryKind::Schedule,
        );
        assert!(
            book_answer.contains("\"error\":\"empty portfolio"),
            "{book_answer}"
        );
    }
}
