//! The live book: incremental per-shard state between queries.
//!
//! A [`LiveBook`] is the event-driven counterpart of a batch
//! [`ShardedBook`](flexoffers_engine::ShardedBook). Offers carry stable
//! logical ids (a monotone counter, never reused); adds route through the
//! batch book's own hash placement
//! ([`stable_shard`](flexoffers_engine::stable_shard)), and the *logical
//! portfolio* at any instant is the live offers in id order — exactly the
//! portfolio a from-scratch build would hold, which is what every query
//! answer is pinned against.
//!
//! # Cache architecture
//!
//! Three layers of incremental state, each invalidated as narrowly as the
//! mutation allows:
//!
//! * **Per-shard measure rows** — the prepared-offer row pass
//!   ([`Engine::per_offer_rows`]) cached per shard behind a dirty bit. A
//!   single-offer update re-runs the pass on exactly one shard (asserted
//!   by the per-shard evaluation counters, [`LiveBook::evaluations`]); the
//!   merge gathers cached rows from everyone else.
//! * **Per-shard baseline partials** — the no-flexibility load summed per
//!   shard; integer series addition is exact, so folding partials equals
//!   the flat [`Engine::baseline_load_parallel`] bit for bit.
//! * **Group-key state** — a sorted
//!   [`KeyIndex`](flexoffers_aggregation::KeyIndex) maintained per event
//!   (no per-query sort), a cached position grouping, and per-shard
//!   **key digests** (a commutative multiset hash of the shard's
//!   `(tes, tf)` keys, maintained in O(1) per mutation). An update that
//!   keeps its offer's grouping key leaves every digest unchanged and
//!   keeps the grouping cache warm (the in-process check compares the old
//!   and new key directly — exact, collision-free; the digests are the
//!   equivalent shard-level summary, exposed for observability and as the
//!   16-byte-per-shard comparison a future *cross-process* shard would
//!   ship instead of its keys). Only key-changing mutations force the
//!   (linear, sort-free) re-sweep.
//!
//! Queries recombine this state through the engine's own public reduction
//! and report-assembly functions, which is what makes every answer
//! byte-identical to a batch rebuild ([`crate::batch::answer`]).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::Mutex;
use std::time::Instant;

use flexoffers_aggregation::{aggregate, Aggregate, KeyIndex};
use flexoffers_engine::scenario::{flatten_rows, ScenarioError};
use flexoffers_engine::{
    parallel_map, reduce_measure_rows, splitmix64, stable_shard, Engine, EngineError,
    PortfolioReport, ScenarioKind,
};
use flexoffers_market::baseline_load;
use flexoffers_measures::{all_measures, ColumnarBatch, MeasureError};
use flexoffers_model::{Assignment, FlexOffer, Portfolio};
use flexoffers_scheduling::{earliest_start_assignment, Schedule};
use flexoffers_timeseries::ops::sum_series;
use flexoffers_timeseries::Series;
use flexoffers_workloads::OfferEvent;

use crate::config::ServeConfig;
use crate::event::{Event, QueryKind};
use crate::report::{aggregate_report, answer_line, error_line};

/// One per-offer row of measure values (all eight measures) — what the
/// per-shard cache stores and what a snapshot serializes.
pub type MeasureRow = Vec<Result<f64, MeasureError>>;

/// Local alias kept for brevity.
type Row = MeasureRow;

/// Errors applying a mutation to a live book.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum LiveError {
    /// An update or remove referenced an id that is not live (never added,
    /// or already removed — ids are not reused).
    UnknownId {
        /// The dead id.
        id: u64,
    },
    /// An [`add_at`](LiveBook::add_at) named an id that is already live —
    /// caller-assigned ids must be fresh.
    IdTaken {
        /// The live id.
        id: u64,
    },
}

impl fmt::Display for LiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveError::UnknownId { id } => write!(f, "unknown offer id {id} — not live"),
            LiveError::IdTaken { id } => {
                write!(
                    f,
                    "offer id {id} is already live — caller-assigned ids must be fresh"
                )
            }
        }
    }
}

impl Error for LiveError {}

/// Why a [`BookExport`] could not be turned back into a [`LiveBook`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ImportError {
    /// The export held no shards.
    ZeroShards,
    /// The same logical id appeared twice.
    DuplicateId {
        /// The repeated id.
        id: u64,
    },
    /// An id sat in a shard other than its `stable_shard` placement.
    MisplacedId {
        /// The misplaced id.
        id: u64,
    },
    /// The id counter was not strictly past every live id — replaying a
    /// journal suffix would reassign a live id.
    StaleNextId {
        /// The exported counter.
        next_id: u64,
        /// A live id it failed to clear.
        id: u64,
    },
    /// A shard's stored key digest disagreed with its offers.
    DigestMismatch {
        /// The offending shard index.
        shard: usize,
    },
    /// A shard's parallel arrays (ids/offers, or cached rows) disagreed in
    /// length.
    CacheShape {
        /// The offending shard index.
        shard: usize,
    },
    /// An [`import_shard`](LiveBook::import_shard) named a shard index the
    /// book does not have.
    NoSuchShard {
        /// The out-of-range index.
        shard: usize,
    },
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::ZeroShards => f.write_str("export holds no shards"),
            ImportError::DuplicateId { id } => write!(f, "duplicate offer id {id}"),
            ImportError::MisplacedId { id } => {
                write!(f, "offer id {id} is not in its stable shard")
            }
            ImportError::StaleNextId { next_id, id } => {
                write!(f, "next id {next_id} does not clear live id {id}")
            }
            ImportError::DigestMismatch { shard } => {
                write!(f, "shard {shard}: key digest disagrees with its offers")
            }
            ImportError::CacheShape { shard } => {
                write!(f, "shard {shard}: parallel arrays disagree in length")
            }
            ImportError::NoSuchShard { shard } => {
                write!(f, "shard index {shard} is out of range")
            }
        }
    }
}

impl Error for ImportError {}

/// A serializable image of one shard's cached evaluation state — the rows
/// and baseline partial a clean shard would otherwise recompute.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardCacheExport {
    /// Per-offer measure rows, aligned with the shard's local offer order.
    pub rows: Vec<MeasureRow>,
    /// The shard's no-flexibility baseline partial.
    pub baseline: Series<i64>,
}

/// A serializable image of one [`LiveBook`] shard.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardExport {
    /// The shard's live ids, in local (arrival/swap-remove) order.
    pub ids: Vec<u64>,
    /// The offers, aligned with `ids`.
    pub offers: Vec<FlexOffer>,
    /// The shard's commutative `(tes, tf)` key digest.
    pub key_digest: u64,
    /// The cached evaluation state, when the shard was clean.
    pub cache: Option<ShardCacheExport>,
}

/// A full serializable image of a live book's incremental state — what a
/// snapshot persists and [`LiveBook::from_export`] validates back into a
/// book. Deliberately excludes the evaluation counters (observability,
/// reset on import) and the scratch arenas (rebuilt on first refresh).
#[derive(Clone, Debug, PartialEq)]
pub struct BookExport {
    /// The monotone id counter (strictly past every live id).
    pub next_id: u64,
    /// Per-shard state, in shard order.
    pub shards: Vec<ShardExport>,
}

/// Locks a scratch arena, recovering from poison: the arena holds no
/// results — only reusable buffers that every pass overwrites before
/// reading — so a worker panicking mid-fill leaves nothing worth
/// preserving and nothing that can corrupt a later refresh.
fn lock_scratch(arena: &Mutex<ColumnarBatch>) -> std::sync::MutexGuard<'_, ColumnarBatch> {
    arena
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Unwraps a scratch arena back out of its fan-out wrapper, recovering
/// from poison for the same reason as [`lock_scratch`].
fn reclaim_scratch(arena: Mutex<ColumnarBatch>) -> ColumnarBatch {
    arena
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The cached evaluation state of one shard, valid only while the shard is
/// clean (any mutation of the shard drops the whole cache).
struct ShardCache {
    /// Per-offer measure rows, aligned with the shard's local offer order.
    rows: Vec<Row>,
    /// The shard's no-flexibility baseline partial.
    baseline: Series<i64>,
}

/// One shard of a [`LiveBook`]: parallel id/offer arrays (local order is
/// arrival order with swap-remove holes — global order is restored through
/// the id ranks, never from shard order).
struct LiveShard {
    ids: Vec<u64>,
    offers: Vec<FlexOffer>,
    cache: Option<ShardCache>,
    key_digest: u64,
    evaluations: usize,
    /// The shard's columnar scratch arena: the measure pass and baseline
    /// partial run inside it ([`Engine::per_offer_rows_in`]), and its
    /// buffers persist across refreshes — once a shard has been evaluated
    /// at its steady-state size, re-evaluations allocate nothing in the
    /// kernels.
    arena: ColumnarBatch,
}

impl LiveShard {
    fn new() -> Self {
        Self {
            ids: Vec::new(),
            offers: Vec::new(),
            cache: None,
            key_digest: 0,
            evaluations: 0,
            arena: ColumnarBatch::new(),
        }
    }
}

/// An offer's grouping key — the 16 bytes the aggregation layer sweeps.
fn grouping_key(offer: &FlexOffer) -> (i64, i64) {
    (offer.earliest_start(), offer.time_flexibility())
}

/// A commutative multiset hash of one grouping key: shard digests are the
/// wrapping sum of member key hashes, so insert/remove/update maintain
/// them in O(1) and equal key multisets give equal digests regardless of
/// arrival order. (The engine's [`splitmix64`] twice — the exact mix the
/// hash partitioner uses — so near-identical keys do not cancel.)
fn key_hash((tes, tf): (i64, i64)) -> u64 {
    splitmix64(splitmix64(tes as u64) ^ (tf as u64))
}

/// The event-driven book — see the module docs for the cache architecture
/// and the crate docs for the byte-identity contract.
pub struct LiveBook {
    config: ServeConfig,
    engine: Engine,
    shards: Vec<LiveShard>,
    /// `owners[id] = (shard, local)` for every live id; iteration order is
    /// id order, i.e. logical portfolio order.
    owners: BTreeMap<u64, (usize, usize)>,
    next_id: u64,
    /// The live `(tes, tf)` keys, kept sorted across mutations.
    keys: KeyIndex,
    /// The grouping as *positions* into the logical portfolio, cached
    /// until a mutation changes the key multiset or the id set.
    groups_cache: Option<Vec<Vec<usize>>>,
}

impl LiveBook {
    /// An empty book over `shards` shards, answering queries under
    /// `config` with `engine`'s budget.
    pub fn new(config: ServeConfig, shards: usize, engine: Engine) -> Result<Self, EngineError> {
        if shards == 0 {
            return Err(EngineError::ZeroShards);
        }
        Ok(Self {
            config,
            engine,
            shards: (0..shards).map(|_| LiveShard::new()).collect(),
            owners: BTreeMap::new(),
            next_id: 0,
            keys: KeyIndex::new(),
            groups_cache: None,
        })
    }

    /// Number of live offers.
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// `true` when no offers are live.
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard live offer counts, in shard order.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.ids.len()).collect()
    }

    /// The serving configuration queries run under.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// How many times each shard's measure pass has run — the observable
    /// the incremental contract is asserted on: after a warm query, a
    /// single-offer update followed by another query bumps exactly one
    /// shard's counter.
    pub fn evaluations(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.evaluations).collect()
    }

    /// Per-shard group-key digests (commutative multiset hashes of the
    /// shard's `(tes, tf)` keys). Equal digests across a mutation mean the
    /// grouping inputs did not change. In process the warm-cache decision
    /// uses the exact old-vs-new key comparison (see
    /// [`update`](Self::update)); the digests are the shard-level summary
    /// of the same fact — what tests observe, and what a cross-process
    /// shard would ship to prove its key multiset unchanged without
    /// resending the keys.
    pub fn key_digests(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.key_digest).collect()
    }

    /// `true` while the cached position grouping is valid (no key- or
    /// id-set-changing mutation since it was computed).
    pub fn groups_cached(&self) -> bool {
        self.groups_cache.is_some()
    }

    /// The live ids in logical (id) order.
    pub fn live_ids(&self) -> Vec<u64> {
        self.owners.keys().copied().collect()
    }

    /// The id the next add will receive. Together with [`live_ids`]
    /// this is the state [`parse_script_from`](crate::parse_script_from)
    /// needs to validate a script that *continues* this book's history.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// The logical portfolio at this instant: live offers in id order —
    /// exactly what a from-scratch build would evaluate. Clones every
    /// offer; meant for oracles and tests, not the serving hot path.
    pub fn to_portfolio(&self) -> Portfolio {
        self.owners
            .values()
            .map(|&(s, local)| self.shards[s].offers[local].clone())
            .collect()
    }

    /// A serializable image of the book's incremental state — per-shard
    /// ids, offers, key digests, cached rows/baseline partials, and the id
    /// counter. Clones everything; meant for the snapshot path, which runs
    /// off the hot loop's cadence.
    pub fn export(&self) -> BookExport {
        BookExport {
            next_id: self.next_id,
            shards: (0..self.shards.len())
                .map(|s| self.export_shard(s))
                .collect(),
        }
    }

    /// A serializable image of one shard — the per-shard slice of
    /// [`export`](Self::export). The cluster tier uses it on both sides of
    /// the pipe: a shard worker serializes *its own* shard (the rest of
    /// its book is empty), and the supervisor extracts a respawn baseline
    /// for one worker from its persistent merged book.
    ///
    /// # Panics
    ///
    /// If `s` is not a shard index of this book.
    pub fn export_shard(&self, s: usize) -> ShardExport {
        let shard = &self.shards[s];
        ShardExport {
            ids: shard.ids.clone(),
            offers: shard.offers.clone(),
            key_digest: shard.key_digest,
            cache: shard.cache.as_ref().map(|cache| ShardCacheExport {
                rows: cache.rows.clone(),
                baseline: cache.baseline.clone(),
            }),
        }
    }

    /// Rebuilds a book from an export, revalidating every structural
    /// invariant a fresh build would have established: unique ids in their
    /// stable shards, an id counter strictly past every live id, key
    /// digests that match the offers, and aligned parallel arrays. The
    /// owner table and sorted key index are reconstructed (they are pure
    /// functions of the shard arrays); evaluation counters reset and the
    /// grouping cache starts cold.
    pub fn from_export(
        config: ServeConfig,
        engine: Engine,
        export: BookExport,
    ) -> Result<Self, ImportError> {
        if export.shards.is_empty() {
            return Err(ImportError::ZeroShards);
        }
        let shard_count = export.shards.len();
        let mut owners = BTreeMap::new();
        let mut keys = KeyIndex::new();
        let mut shards = Vec::with_capacity(shard_count);
        for (s, shard) in export.shards.into_iter().enumerate() {
            if shard.ids.len() != shard.offers.len() {
                return Err(ImportError::CacheShape { shard: s });
            }
            if let Some(cache) = &shard.cache {
                if cache.rows.len() != shard.offers.len() {
                    return Err(ImportError::CacheShape { shard: s });
                }
            }
            let mut digest = 0u64;
            for (local, (&id, offer)) in shard.ids.iter().zip(&shard.offers).enumerate() {
                if stable_shard(id, shard_count) != s {
                    return Err(ImportError::MisplacedId { id });
                }
                if owners.insert(id, (s, local)).is_some() {
                    return Err(ImportError::DuplicateId { id });
                }
                if id >= export.next_id {
                    return Err(ImportError::StaleNextId {
                        next_id: export.next_id,
                        id,
                    });
                }
                let key = grouping_key(offer);
                digest = digest.wrapping_add(key_hash(key));
                keys.insert(id, key);
            }
            if digest != shard.key_digest {
                return Err(ImportError::DigestMismatch { shard: s });
            }
            shards.push(LiveShard {
                ids: shard.ids,
                offers: shard.offers,
                cache: shard.cache.map(|cache| ShardCache {
                    rows: cache.rows,
                    baseline: cache.baseline,
                }),
                key_digest: shard.key_digest,
                evaluations: 0,
                arena: ColumnarBatch::new(),
            });
        }
        Ok(Self {
            config,
            engine,
            shards,
            owners,
            next_id: export.next_id,
            keys,
            groups_cache: None,
        })
    }

    /// Advances the id counter to at least `next_id` (it never rewinds).
    /// The delta-gather supervisor owns the global counter and raises its
    /// merged book's before importing shards, so
    /// [`import_shard`](Self::import_shard)'s `StaleNextId` check is
    /// against the *global* horizon, not whatever this book last saw.
    pub fn reserve_ids(&mut self, next_id: u64) {
        self.next_id = self.next_id.max(next_id);
    }

    /// Replaces shard `s` wholesale with an exported image — the delta
    /// gather's merge step: a persistent merged book swaps in only the
    /// shards whose digests changed, instead of
    /// [`from_export`](Self::from_export) rebuilding all of them.
    ///
    /// Revalidates everything `from_export` would for that shard (stable
    /// placement, no duplicate ids — including against offers *other*
    /// shards of this book already hold — an id counter that clears every
    /// imported id, a key digest matching the offers, aligned parallel
    /// arrays) **before** mutating, so a failed import leaves the book
    /// untouched. Callers whose counter may trail the import call
    /// [`reserve_ids`](Self::reserve_ids) first.
    ///
    /// The owner table and sorted key index are patched incrementally; the
    /// grouping cache survives exactly when the shard's id sequence and
    /// per-position grouping keys are unchanged (a profile-only refresh),
    /// and the shard's scratch arena and evaluation counter are kept.
    pub fn import_shard(&mut self, s: usize, shard: ShardExport) -> Result<(), ImportError> {
        let shard_count = self.shards.len();
        if s >= shard_count {
            return Err(ImportError::NoSuchShard { shard: s });
        }
        if shard.ids.len() != shard.offers.len() {
            return Err(ImportError::CacheShape { shard: s });
        }
        if let Some(cache) = &shard.cache {
            if cache.rows.len() != shard.offers.len() {
                return Err(ImportError::CacheShape { shard: s });
            }
        }
        let mut digest = 0u64;
        let mut fresh = std::collections::BTreeSet::new();
        for (&id, offer) in shard.ids.iter().zip(&shard.offers) {
            if stable_shard(id, shard_count) != s {
                return Err(ImportError::MisplacedId { id });
            }
            // An owner entry pointing at shard `s` is being replaced; one
            // pointing anywhere else means the id is live twice.
            if !fresh.insert(id) || self.owners.get(&id).is_some_and(|&(owner, _)| owner != s) {
                return Err(ImportError::DuplicateId { id });
            }
            if id >= self.next_id {
                return Err(ImportError::StaleNextId {
                    next_id: self.next_id,
                    id,
                });
            }
            digest = digest.wrapping_add(key_hash(grouping_key(offer)));
        }
        if digest != shard.key_digest {
            return Err(ImportError::DigestMismatch { shard: s });
        }

        // Validation passed — commit. First decide whether the grouping
        // inputs changed (exact per-position comparison, the same standard
        // `update` applies in process: digests summarize, ids + keys
        // decide).
        let unchanged = {
            let old = &self.shards[s];
            old.ids == shard.ids
                && old
                    .offers
                    .iter()
                    .zip(&shard.offers)
                    .all(|(old, new)| grouping_key(old) == grouping_key(new))
        };
        for local in 0..self.shards[s].ids.len() {
            let id = self.shards[s].ids[local];
            let key = grouping_key(&self.shards[s].offers[local]);
            self.owners.remove(&id);
            assert!(self.keys.remove(id, key), "owner table and keys agree");
        }
        for (local, (&id, offer)) in shard.ids.iter().zip(&shard.offers).enumerate() {
            self.owners.insert(id, (s, local));
            self.keys.insert(id, grouping_key(offer));
        }
        let live = &mut self.shards[s];
        live.ids = shard.ids;
        live.offers = shard.offers;
        live.key_digest = shard.key_digest;
        live.cache = shard.cache.map(|cache| ShardCache {
            rows: cache.rows,
            baseline: cache.baseline,
        });
        if !unchanged {
            self.groups_cache = None;
        }
        Ok(())
    }

    /// Applies one mutation or query. Mutations return `Ok(None)`; queries
    /// return `Ok(Some(answer))` with the one-line JSON answer.
    pub fn apply(&mut self, event: Event) -> Result<Option<String>, LiveError> {
        match event {
            Event::Add(offer) => {
                self.add(offer);
                Ok(None)
            }
            Event::Update { id, offer } => self.update(id, offer).map(|()| None),
            Event::Remove { id } => self.remove(id).map(|()| None),
            Event::Query(kind) => Ok(Some(self.answer(kind))),
        }
    }

    /// Applies one workload mutation ([`flexoffers_workloads::OfferEvent`]).
    pub fn apply_offer_event(&mut self, event: OfferEvent) -> Result<(), LiveError> {
        self.apply(event.into()).map(|answer| {
            debug_assert!(answer.is_none(), "offer events are never queries");
        })
    }

    /// Adds an offer, assigning and returning the next logical id. Routes
    /// to `stable_shard(id, shards)` — the same placement a batch
    /// [`collect_hashed`](flexoffers_engine::ShardedBook::collect_hashed)
    /// build computes from logical positions; the placement is irrelevant
    /// to answers (the merge is partition-independent), it only spreads
    /// load.
    pub fn add(&mut self, offer: FlexOffer) -> u64 {
        let id = self.next_id;
        self.add_at(id, offer)
            .expect("next_id is strictly past every live id");
        id
    }

    /// Adds an offer under a *caller-assigned* logical id — the
    /// cross-process shard worker's entry point: the supervisor owns the
    /// monotone id counter, and a worker inserts each routed offer under
    /// the global id it arrived with, so the worker's shard arrays stay
    /// byte-equal to the in-process book's. The id must not be live
    /// ([`LiveError::IdTaken`] otherwise) but *may* sit below
    /// [`next_id`](Self::next_id): a respawned worker replays journal
    /// events whose ids its counter already passed. The counter only ever
    /// advances (`next_id = max(next_id, id + 1)`, saturating), keeping
    /// the export invariant that it strictly clears every live id.
    pub fn add_at(&mut self, id: u64, offer: FlexOffer) -> Result<(), LiveError> {
        if self.owners.contains_key(&id) {
            return Err(LiveError::IdTaken { id });
        }
        self.next_id = self.next_id.max(id.saturating_add(1));
        let s = stable_shard(id, self.shards.len());
        let key = grouping_key(&offer);
        let shard = &mut self.shards[s];
        self.owners.insert(id, (s, shard.ids.len()));
        shard.ids.push(id);
        shard.offers.push(offer);
        shard.cache = None;
        shard.key_digest = shard.key_digest.wrapping_add(key_hash(key));
        self.keys.insert(id, key);
        self.groups_cache = None;
        Ok(())
    }

    /// Replaces the offer with logical id `id` in place. Dirties exactly
    /// that offer's shard; when the replacement keeps the offer's grouping
    /// key, the key index, digests, and cached grouping all stay warm.
    pub fn update(&mut self, id: u64, offer: FlexOffer) -> Result<(), LiveError> {
        let &(s, local) = self.owners.get(&id).ok_or(LiveError::UnknownId { id })?;
        let shard = &mut self.shards[s];
        let old_key = grouping_key(&shard.offers[local]);
        let new_key = grouping_key(&offer);
        if old_key != new_key {
            assert!(self.keys.remove(id, old_key), "owner table and keys agree");
            self.keys.insert(id, new_key);
            shard.key_digest = shard
                .key_digest
                .wrapping_sub(key_hash(old_key))
                .wrapping_add(key_hash(new_key));
            self.groups_cache = None;
        }
        shard.offers[local] = offer;
        shard.cache = None;
        Ok(())
    }

    /// Removes the offer with logical id `id` (ids are never reused).
    pub fn remove(&mut self, id: u64) -> Result<(), LiveError> {
        let (s, local) = self.owners.remove(&id).ok_or(LiveError::UnknownId { id })?;
        let shard = &mut self.shards[s];
        let key = grouping_key(&shard.offers[local]);
        shard.ids.swap_remove(local);
        shard.offers.swap_remove(local);
        if let Some(&moved) = shard.ids.get(local) {
            // swap_remove relocated the former tail into the hole.
            self.owners.insert(moved, (s, local));
        }
        shard.cache = None;
        shard.key_digest = shard.key_digest.wrapping_sub(key_hash(key));
        assert!(self.keys.remove(id, key), "owner table and keys agree");
        self.groups_cache = None;
        Ok(())
    }

    /// Answers one query from the incremental state as a single JSON line
    /// — byte-identical to a from-scratch batch evaluation of the current
    /// logical portfolio ([`crate::batch::answer`]).
    pub fn answer(&mut self, kind: QueryKind) -> String {
        match kind {
            QueryKind::Measure => self.measure_answer(),
            QueryKind::Aggregate => self.aggregate_answer(),
            QueryKind::Schedule => self.schedule_answer(),
            QueryKind::Trade => self.trade_answer(),
        }
    }

    fn measure_answer(&mut self) -> String {
        let started = Instant::now();
        self.refresh_dirty();
        let measures = all_measures();
        let rows = self.gather_rows();
        let summaries = reduce_measure_rows(&measures, &rows);
        let report = PortfolioReport {
            offers: rows.len(),
            threads: self.engine.budget().threads(),
            chunk_size: self.engine.budget().chunk_size_for(rows.len()),
            elapsed: started.elapsed(),
            summaries,
        };
        answer_line(QueryKind::Measure, &report.json())
    }

    fn aggregate_answer(&mut self) -> String {
        self.ensure_groups();
        let aggregates = self.aggregate_groups(self.cached_groups());
        answer_line(
            QueryKind::Aggregate,
            &aggregate_report(self.len(), &aggregates),
        )
    }

    fn schedule_answer(&mut self) -> String {
        let kind = QueryKind::Schedule;
        if self.is_empty() {
            return error_line(kind, &ScenarioError::EmptyPortfolio.to_string());
        }
        let started = Instant::now();
        self.refresh_dirty();
        self.ensure_groups();
        let groups = self.cached_groups();
        let scenario = self.config.scenario(ScenarioKind::Schedule);
        let n = self.len();
        let target = scenario.target_for(n);

        // The Scenario 1 pipeline over incrementally grouped state — the
        // engine's own back half, so the stages cannot drift from the
        // flat and sharded paths.
        let aggregates = self.aggregate_groups(groups);
        let scheduler = scenario.scheduler.build();
        let outcome = match self.engine.schedule_aggregates(
            &aggregates,
            groups,
            n,
            &target,
            scheduler.as_ref(),
        ) {
            Ok(outcome) => outcome,
            Err(e) => return error_line(kind, &ScenarioError::from(e).to_string()),
        };

        // Earliest-start baseline: per-offer, computed per shard and
        // scattered back to logical order.
        let per_shard: Vec<Vec<Assignment>> =
            parallel_map(&self.shards, self.engine.budget().threads(), |shard| {
                shard.offers.iter().map(earliest_start_assignment).collect()
            });
        let baseline = Schedule::new(self.scatter(per_shard));
        let imbalance_before = baseline.imbalance(&target);
        let imbalance_after = outcome.schedule.imbalance(&target);

        // Correlations reuse the cached measure rows; shifts come from the
        // realized schedule against each offer's earliest start.
        let rows = flatten_rows(self.gather_rows());
        let earliest: Vec<i64> = self
            .owners
            .values()
            .map(|&(s, local)| self.shards[s].offers[local].earliest_start())
            .collect();
        let shifts: Vec<f64> = outcome
            .schedule
            .assignments()
            .iter()
            .zip(&earliest)
            .map(|(a, tes)| (a.start() - tes) as f64)
            .collect();

        let report = self.engine.schedule_report(
            &scenario,
            n,
            &outcome,
            imbalance_before,
            imbalance_after,
            &rows,
            &shifts,
            started,
        );
        answer_line(kind, &report.json())
    }

    fn trade_answer(&mut self) -> String {
        let kind = QueryKind::Trade;
        if self.is_empty() {
            return error_line(kind, &ScenarioError::EmptyPortfolio.to_string());
        }
        let started = Instant::now();
        self.refresh_dirty();
        self.ensure_groups();
        let scenario = self.config.scenario(ScenarioKind::Market);
        let aggregates = self.aggregate_groups(self.cached_groups());
        // The baseline folds the cached per-shard partials — integer
        // series addition makes this the flat baseline bit for bit.
        let baseline = sum_series(
            self.shards
                .iter()
                .map(|s| &s.cache.as_ref().expect("refreshed above").baseline),
        );
        let report =
            self.engine
                .market_report(&scenario, self.len(), &aggregates, &baseline, started);
        answer_line(kind, &report.json())
    }

    /// Refreshes every dirty shard's cached rows and baseline partial —
    /// the public face of the per-query refresh, for callers that need a
    /// warm [`export`](Self::export) *without* answering a query: a
    /// cross-process shard worker refreshes before shipping its state, so
    /// the supervisor's merge gathers only clean caches and re-evaluates
    /// nothing.
    pub fn refresh(&mut self) {
        self.refresh_dirty();
    }

    /// Re-runs the measure pass and the baseline partial on every dirty
    /// shard (dirty shards fan out across the budget's threads, each
    /// worker getting a per-shard split of the budget over the *dirty*
    /// count — on the one-dirty-shard hot path that single worker gets the
    /// whole thread budget; the split is throughput-only, results are
    /// budget-invariant) and bumps those shards' evaluation counters.
    /// Clean shards are not touched — this is the "one shard per
    /// single-offer update" contract.
    fn refresh_dirty(&mut self) {
        let dirty: Vec<usize> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, shard)| shard.cache.is_none())
            .map(|(i, _)| i)
            .collect();
        if dirty.is_empty() {
            return;
        }
        let worker = Engine::new(self.engine.budget().per_shard(dirty.len()));
        let measures = all_measures();
        // Each dirty shard's arena is taken out of the shard (and wrapped
        // for the fan-out) so a worker can mutate it while the shard's
        // offers stay borrowed, then handed back below — the buffers
        // survive the round trip, which is what makes steady-state
        // refreshes allocation-free in the kernels.
        let arenas: Vec<Mutex<ColumnarBatch>> = dirty
            .iter()
            .map(|&i| Mutex::new(std::mem::take(&mut self.shards[i].arena)))
            .collect();
        let computed: Vec<ShardCache> = {
            let work: Vec<(&[FlexOffer], &Mutex<ColumnarBatch>)> = dirty
                .iter()
                .zip(&arenas)
                .map(|(&i, arena)| (&self.shards[i].offers[..], arena))
                .collect();
            parallel_map(&work, self.engine.budget().threads(), |&(offers, arena)| {
                let mut arena = lock_scratch(arena);
                ShardCache {
                    rows: worker.per_offer_rows_in(&mut arena, offers, &measures),
                    baseline: if offers.is_empty() {
                        baseline_load(&[])
                    } else {
                        worker.baseline_load_parallel_in(&mut arena, offers)
                    },
                }
            })
        };
        for ((i, cache), arena) in dirty.into_iter().zip(computed).zip(arenas) {
            self.shards[i].cache = Some(cache);
            self.shards[i].evaluations += 1;
            self.shards[i].arena = reclaim_scratch(arena);
        }
    }

    /// Cached per-offer measure rows in logical portfolio order. Callers
    /// must [`refresh_dirty`](Self::refresh_dirty) first.
    fn gather_rows(&self) -> Vec<Row> {
        self.owners
            .values()
            .map(|&(s, local)| {
                self.shards[s].cache.as_ref().expect("refreshed").rows[local].clone()
            })
            .collect()
    }

    /// Fills the grouping cache if a mutation invalidated it: the
    /// tolerance grouping as positions into the logical portfolio. The
    /// sweep runs over the already-sorted [`KeyIndex`] — no per-query
    /// sort — and id order is position order, so the groups are exactly
    /// [`flexoffers_aggregation::group_keys`] over the logical portfolio.
    /// Borrow the result with [`cached_groups`](Self::cached_groups) —
    /// the warm path is allocation-free.
    fn ensure_groups(&mut self) {
        if self.groups_cache.is_some() {
            return;
        }
        let ids: Vec<u64> = self.owners.keys().copied().collect();
        let groups: Vec<Vec<usize>> = self
            .keys
            .group_ids(&self.config.grouping)
            .into_iter()
            .map(|group| {
                group
                    .into_iter()
                    .map(|id| ids.binary_search(&id).expect("grouped ids are live"))
                    .collect()
            })
            .collect();
        self.groups_cache = Some(groups);
    }

    /// The cached grouping; callers run
    /// [`ensure_groups`](Self::ensure_groups) first.
    fn cached_groups(&self) -> &[Vec<usize>] {
        self.groups_cache.as_deref().expect("ensure_groups ran")
    }

    /// Aggregates every group in parallel, members gathered through the
    /// owner table in group order — the live counterpart of the batch
    /// book's per-group aggregation, same output order and content.
    fn aggregate_groups(&self, groups: &[Vec<usize>]) -> Vec<Aggregate> {
        let flat: Vec<&FlexOffer> = self
            .owners
            .values()
            .map(|&(s, local)| &self.shards[s].offers[local])
            .collect();
        parallel_map(groups, self.engine.budget().threads(), |indices| {
            let members: Vec<FlexOffer> = indices.iter().map(|&g| flat[g].clone()).collect();
            aggregate(&members).expect("grouping never yields empty groups")
        })
    }

    /// The merge tier's scatter: per-shard results reassembled into
    /// logical portfolio order through the id ranks.
    fn scatter<T>(&self, per_shard: Vec<Vec<T>>) -> Vec<T> {
        let ids: Vec<u64> = self.owners.keys().copied().collect();
        let mut out: Vec<Option<T>> = (0..ids.len()).map(|_| None).collect();
        for (shard, results) in self.shards.iter().zip(per_shard) {
            assert_eq!(shard.ids.len(), results.len(), "one result per offer");
            for (&id, r) in shard.ids.iter().zip(results) {
                let pos = ids.binary_search(&id).expect("shard ids are live");
                out[pos] = Some(r);
            }
        }
        out.into_iter()
            .map(|r| r.expect("shards partition the book"))
            .collect()
    }
}

impl fmt::Debug for LiveBook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LiveBook")
            .field("offers", &self.len())
            .field("shards", &self.shard_count())
            .field("next_id", &self.next_id)
            .field("groups_cached", &self.groups_cached())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;

    fn offer(tes: i64, window: i64, lo: i64) -> FlexOffer {
        FlexOffer::new(tes, tes + window, vec![Slice::new(lo, lo + 2).unwrap()]).unwrap()
    }

    fn book(shards: usize) -> LiveBook {
        LiveBook::new(ServeConfig::default(), shards, Engine::sequential()).unwrap()
    }

    #[test]
    fn zero_shards_is_the_documented_error() {
        assert_eq!(
            LiveBook::new(ServeConfig::default(), 0, Engine::sequential()).unwrap_err(),
            EngineError::ZeroShards
        );
    }

    #[test]
    fn ids_are_monotone_and_the_logical_portfolio_is_id_ordered() {
        let mut book = book(3);
        let a = book.add(offer(0, 2, 1));
        let b = book.add(offer(1, 3, -1));
        let c = book.add(offer(2, 1, 0));
        assert_eq!((a, b, c), (0, 1, 2));
        book.remove(b).unwrap();
        let d = book.add(offer(5, 2, 2));
        assert_eq!(d, 3, "ids are never reused");
        let logical = book.to_portfolio();
        assert_eq!(logical.len(), 3);
        assert_eq!(logical.as_slice()[0], offer(0, 2, 1));
        assert_eq!(logical.as_slice()[1], offer(2, 1, 0));
        assert_eq!(logical.as_slice()[2], offer(5, 2, 2));
    }

    #[test]
    fn unknown_ids_are_reported_not_panicked() {
        let mut book = book(2);
        assert_eq!(
            book.update(4, offer(0, 1, 0)).unwrap_err(),
            LiveError::UnknownId { id: 4 }
        );
        assert_eq!(book.remove(4).unwrap_err(), LiveError::UnknownId { id: 4 });
        assert!(LiveError::UnknownId { id: 4 }
            .to_string()
            .contains("unknown offer id 4"));
    }

    #[test]
    fn single_offer_update_reevaluates_exactly_one_shard() {
        let mut book = book(4);
        let ids: Vec<u64> = (0..40).map(|i| book.add(offer(i % 5, i % 3, -1))).collect();
        book.answer(QueryKind::Measure);
        let warm = book.evaluations();
        assert!(warm.iter().all(|&e| e == 1), "first query evaluates all");

        let victim = ids[7];
        let &(victim_shard, _) = book.owners.get(&victim).unwrap();
        book.update(victim, offer(9, 1, 1)).unwrap();
        book.answer(QueryKind::Measure);
        let after = book.evaluations();
        for (s, (&w, &a)) in warm.iter().zip(&after).enumerate() {
            if s == victim_shard {
                assert_eq!(a, w + 1, "dirty shard re-evaluates");
            } else {
                assert_eq!(a, w, "clean shard {s} must not re-evaluate");
            }
        }

        // A query with nothing dirty evaluates nothing.
        book.answer(QueryKind::Measure);
        assert_eq!(book.evaluations(), after);
    }

    #[test]
    fn key_preserving_updates_keep_the_grouping_cache_warm() {
        let mut book = book(2);
        let id = book.add(offer(0, 2, 1));
        book.add(offer(0, 2, -1));
        book.answer(QueryKind::Aggregate);
        assert!(book.groups_cached());
        let digests = book.key_digests();

        // Same (tes, tf), different profile: grouping inputs unchanged.
        book.update(id, offer(0, 2, 0)).unwrap();
        assert_eq!(book.key_digests(), digests, "digest spots the no-op");
        assert!(book.groups_cached(), "grouping cache survives");

        // A key-changing update invalidates.
        book.update(id, offer(7, 2, 0)).unwrap();
        assert_ne!(book.key_digests(), digests);
        assert!(!book.groups_cached());
    }

    #[test]
    fn adds_and_removes_invalidate_the_grouping_cache() {
        let mut book = book(2);
        book.add(offer(0, 2, 1));
        book.answer(QueryKind::Aggregate);
        assert!(book.groups_cached());
        let id = book.add(offer(1, 2, 1));
        assert!(!book.groups_cached());
        book.answer(QueryKind::Aggregate);
        assert!(book.groups_cached());
        book.remove(id).unwrap();
        assert!(!book.groups_cached());
    }

    #[test]
    fn empty_book_answers_match_the_batch_semantics() {
        let mut book = book(3);
        let measure = book.answer(QueryKind::Measure);
        assert!(measure.contains("\"offers\":0"), "{measure}");
        let aggregate = book.answer(QueryKind::Aggregate);
        assert!(aggregate.contains("\"aggregates\":0"), "{aggregate}");
        for kind in [QueryKind::Schedule, QueryKind::Trade] {
            let answer = book.answer(kind);
            assert!(answer.contains("\"error\":\"empty portfolio"), "{answer}");
        }
    }

    #[test]
    fn a_panicking_worker_does_not_poison_subsequent_refreshes() {
        let mut book = book(2);
        book.add(offer(0, 2, 1));
        book.add(offer(1, 3, -1));

        // Simulate a measure kernel panicking while it holds a shard's
        // scratch arena — the scenario that used to trip the refresh-time
        // `expect` on the poisoned lock.
        let arena = Mutex::new(std::mem::take(&mut book.shards[0].arena));
        std::thread::scope(|s| {
            let worker = s.spawn(|| {
                let _guard = lock_scratch(&arena);
                panic!("custom measure panicked");
            });
            assert!(worker.join().is_err());
        });
        assert!(arena.is_poisoned());
        drop(lock_scratch(&arena)); // the lock path recovers
        book.shards[0].arena = reclaim_scratch(arena); // the reclaim path too

        // Refreshes keep working on the recovered arena.
        let answer = book.answer(QueryKind::Measure);
        assert!(answer.contains("\"offers\":2"), "{answer}");
        let again = book.answer(QueryKind::Measure);
        assert_eq!(answer, again);
    }

    #[test]
    fn add_at_inserts_under_caller_ids_and_rejects_live_ones() {
        let mut routed = book(3);
        let mut direct = book(3);
        for i in 0..12 {
            direct.add(offer(i, 2, 1));
            routed.add_at(i as u64, offer(i, 2, 1)).unwrap();
        }
        // Same ids in the same order → byte-equal shard state.
        assert_eq!(routed.export(), direct.export());

        let taken = routed.add_at(3, offer(0, 1, 0)).unwrap_err();
        assert_eq!(taken, LiveError::IdTaken { id: 3 });
        assert!(taken.to_string().contains("already live"));

        // A dead below-counter id is insertable again — exactly what a
        // respawned worker's journal replay does — without rewinding the
        // counter.
        routed.remove(3).unwrap();
        routed.add_at(3, offer(3, 2, 1)).unwrap();
        assert_eq!(routed.next_id(), 12, "counter already cleared id 3");

        // Gaps advance the counter past the id.
        routed.add_at(100, offer(0, 2, 1)).unwrap();
        assert_eq!(routed.next_id(), 101);
        assert_eq!(routed.add(offer(1, 1, 1)), 101);
    }

    #[test]
    fn refresh_warms_the_export_without_a_query() {
        let mut book = book(2);
        for i in 0..8 {
            book.add(offer(i, 2, 1));
        }
        assert!(book.export().shards.iter().all(|s| s.cache.is_none()));
        book.refresh();
        assert!(book.export().shards.iter().all(|s| s.cache.is_some()));
        // The refreshed caches are the ones a query would have computed.
        let evals = book.evaluations();
        book.answer(QueryKind::Measure);
        assert_eq!(book.evaluations(), evals, "query found everything warm");
    }

    #[test]
    fn export_round_trips_and_answers_identically() {
        let mut book = book(3);
        for i in 0..20 {
            book.add(offer(i % 5, i % 3 + 1, -1));
        }
        book.remove(7).unwrap();
        book.update(3, offer(9, 2, 2)).unwrap();
        book.answer(QueryKind::Measure); // warm the caches

        let export = book.export();
        let mut revived =
            LiveBook::from_export(ServeConfig::default(), Engine::sequential(), export.clone())
                .unwrap();
        assert_eq!(revived.live_ids(), book.live_ids());
        assert_eq!(revived.key_digests(), book.key_digests());
        for kind in QueryKind::all() {
            assert_eq!(revived.answer(kind), book.answer(kind), "{kind}");
        }
        // A warm export revives with warm caches: the first measure query
        // re-evaluates nothing.
        assert!(revived.evaluations().iter().all(|&e| e == 0));
        // And mutation after import keeps going where the export left off.
        let id = revived.add(offer(1, 1, 0));
        assert_eq!(id, 20, "ids continue past the exported counter");
        assert_eq!(revived.export().next_id, 21);
        // Round trip of the round trip is exact.
        let again = LiveBook::from_export(
            ServeConfig::default(),
            Engine::sequential(),
            revived.export(),
        )
        .unwrap()
        .export();
        assert_eq!(again, revived.export());
        let _ = export;
    }

    #[test]
    fn imports_revalidate_structural_invariants() {
        let mut book = book(3);
        for i in 0..9 {
            book.add(offer(i, 2, 1));
        }
        book.answer(QueryKind::Measure); // warm the caches
        let export = book.export();
        let full = export
            .shards
            .iter()
            .position(|s| !s.offers.is_empty())
            .expect("nine offers fill some shard");
        let config = ServeConfig::default;
        let import = |e| LiveBook::from_export(config(), Engine::sequential(), e);

        assert_eq!(
            import(BookExport {
                next_id: 0,
                shards: Vec::new()
            })
            .unwrap_err(),
            ImportError::ZeroShards
        );

        let mut stale = export.clone();
        stale.next_id = 5;
        assert!(matches!(
            import(stale).unwrap_err(),
            ImportError::StaleNextId { next_id: 5, .. }
        ));

        let mut tampered = export.clone();
        tampered.shards[0].key_digest ^= 1;
        assert_eq!(
            import(tampered).unwrap_err(),
            ImportError::DigestMismatch { shard: 0 }
        );

        let mut misplaced = export.clone();
        let moved = misplaced.shards[0].ids[0];
        let moved_offer = misplaced.shards[0].offers[0].clone();
        let wrong = (stable_shard(moved, 3) + 1) % 3;
        misplaced.shards[wrong].ids.push(moved);
        misplaced.shards[wrong].offers.push(moved_offer);
        misplaced.shards[wrong].cache = None;
        let err = import(misplaced).unwrap_err();
        assert_eq!(err, ImportError::MisplacedId { id: moved });

        let mut duplicated = export.clone();
        let dup = duplicated.shards[0].ids[0];
        let dup_offer = duplicated.shards[0].offers[0].clone();
        duplicated.shards[0].ids.push(dup);
        duplicated.shards[0].offers.push(dup_offer);
        duplicated.shards[0].cache = None;
        assert_eq!(
            import(duplicated).unwrap_err(),
            ImportError::DuplicateId { id: dup }
        );

        let mut ragged = export.clone();
        ragged.shards[full].offers.pop();
        ragged.shards[full].ids.pop();
        assert_eq!(
            import(ragged).unwrap_err(),
            ImportError::CacheShape { shard: full }
        );

        let mut short_rows = export;
        short_rows.shards[full]
            .cache
            .as_mut()
            .expect("caches were warmed")
            .rows
            .pop();
        assert_eq!(
            import(short_rows).unwrap_err(),
            ImportError::CacheShape { shard: full }
        );
    }

    #[test]
    fn import_shard_swaps_one_shard_and_answers_like_a_full_rebuild() {
        // Reference: an in-process book driven through a mutation history.
        let mut reference = book(3);
        for i in 0..20 {
            reference.add(offer(i % 5, i % 3 + 1, -1));
        }
        reference.answer(QueryKind::Measure);

        // Merged: seeded from the same export, then kept current shard by
        // shard as the reference mutates.
        let mut merged = LiveBook::from_export(
            ServeConfig::default(),
            Engine::sequential(),
            reference.export(),
        )
        .unwrap();

        reference.update(3, offer(9, 2, 2)).unwrap();
        reference.remove(7).unwrap();
        let id = reference.add(offer(2, 4, 1));
        reference.answer(QueryKind::Measure); // warm the dirty shards

        let dirty: Vec<usize> = [3, 7, id]
            .iter()
            .map(|&id| stable_shard(id, 3))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        merged.reserve_ids(reference.next_id());
        for &s in &dirty {
            merged.import_shard(s, reference.export_shard(s)).unwrap();
        }
        assert_eq!(merged.export(), reference.export(), "state converges");
        let evals_before = merged.evaluations();
        for kind in QueryKind::all() {
            assert_eq!(merged.answer(kind), reference.answer(kind), "{kind}");
        }
        // The imported caches were warm, so the merged book re-evaluated
        // nothing — the O(dirty) contract.
        assert_eq!(merged.evaluations(), evals_before);
    }

    #[test]
    fn import_shard_validates_before_mutating() {
        let mut book3 = book(3);
        for i in 0..9 {
            book3.add(offer(i, 2, 1));
        }
        book3.answer(QueryKind::Measure);
        let pristine = book3.export();
        let full = pristine
            .shards
            .iter()
            .position(|s| !s.offers.is_empty())
            .expect("nine offers fill some shard");

        assert_eq!(
            book3
                .import_shard(3, pristine.shards[0].clone())
                .unwrap_err(),
            ImportError::NoSuchShard { shard: 3 }
        );
        assert!(ImportError::NoSuchShard { shard: 3 }
            .to_string()
            .contains("out of range"));

        // Misplaced: a shard image handed to the wrong index.
        let wrong = (full + 1) % 3;
        let err = book3
            .import_shard(wrong, pristine.shards[full].clone())
            .unwrap_err();
        assert!(matches!(err, ImportError::MisplacedId { .. }), "{err}");

        // Duplicate against an id another shard already holds.
        let mut invaded = pristine.shards[full].clone();
        let foreign = pristine
            .shards
            .iter()
            .enumerate()
            .find(|(s, shard)| *s != full && !shard.ids.is_empty())
            .expect("another populated shard");
        invaded.ids.push(foreign.1.ids[0]);
        invaded.offers.push(foreign.1.offers[0].clone());
        invaded.cache = None;
        invaded.key_digest = invaded
            .key_digest
            .wrapping_add(key_hash(grouping_key(&foreign.1.offers[0])));
        // (placement check fires first only if the id routes elsewhere —
        // pick the error without pinning which one)
        assert!(book3.import_shard(full, invaded).is_err());

        // An id at or past the counter is stale until reserved.
        let horizon = book3.next_id();
        let mut future = pristine.shards[full].clone();
        let future_id = (horizon..).find(|&id| stable_shard(id, 3) == full).unwrap();
        future.ids.push(future_id);
        future.offers.push(offer(1, 2, 1));
        future.cache = None;
        future.key_digest = future
            .key_digest
            .wrapping_add(key_hash(grouping_key(&offer(1, 2, 1))));
        assert!(matches!(
            book3.import_shard(full, future.clone()).unwrap_err(),
            ImportError::StaleNextId { .. }
        ));
        book3.reserve_ids(future_id + 1);
        book3.import_shard(full, future).unwrap();

        // Tampered digest and ragged arrays are named; the failed imports
        // above and below leave the book coherent (round-trips exactly).
        let mut tampered = book3.export_shard(full);
        tampered.key_digest ^= 1;
        assert_eq!(
            book3.import_shard(full, tampered).unwrap_err(),
            ImportError::DigestMismatch { shard: full }
        );
        let mut ragged = book3.export_shard(full);
        ragged.ids.pop();
        assert_eq!(
            book3.import_shard(full, ragged).unwrap_err(),
            ImportError::CacheShape { shard: full }
        );
        let snapshot = book3.export();
        let revived = LiveBook::from_export(
            ServeConfig::default(),
            Engine::sequential(),
            snapshot.clone(),
        )
        .unwrap();
        assert_eq!(revived.export(), snapshot);
    }

    #[test]
    fn import_shard_keeps_the_grouping_cache_only_for_key_preserving_swaps() {
        let mut source = book(2);
        let mut merged = book(2);
        let id = source.add(offer(0, 2, 1));
        source.add(offer(0, 2, -1));
        source.refresh();
        merged.reserve_ids(source.next_id());
        for s in 0..2 {
            merged.import_shard(s, source.export_shard(s)).unwrap();
        }
        merged.answer(QueryKind::Aggregate);
        assert!(merged.groups_cached());

        // Same (tes, tf), different profile: the re-imported shard keeps
        // the grouping warm.
        source.update(id, offer(0, 2, 0)).unwrap();
        source.refresh();
        let s = stable_shard(id, 2);
        merged.import_shard(s, source.export_shard(s)).unwrap();
        assert!(merged.groups_cached(), "key-preserving import stays warm");

        // A key-changing update invalidates through the import too.
        source.update(id, offer(7, 2, 0)).unwrap();
        source.refresh();
        merged.import_shard(s, source.export_shard(s)).unwrap();
        assert!(!merged.groups_cached());
        assert_eq!(
            merged.answer(QueryKind::Aggregate),
            source.answer(QueryKind::Aggregate)
        );
    }

    #[test]
    fn apply_routes_queries_and_mutations() {
        let mut book = book(2);
        assert_eq!(book.apply(Event::Add(offer(0, 1, 1))).unwrap(), None);
        let answer = book
            .apply(Event::Query(QueryKind::Measure))
            .unwrap()
            .expect("queries answer");
        assert!(answer.starts_with("{\"query\":\"measure\""));
        assert_eq!(
            book.apply(Event::Remove { id: 9 }).unwrap_err(),
            LiveError::UnknownId { id: 9 }
        );
    }
}
