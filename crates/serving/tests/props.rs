//! Serving determinism properties — the acceptance bar of the live tier.
//!
//! After *any* interleaving of Add/Update/Remove/Query events, every query
//! answer out of a [`LiveBook`] must byte-match (a) a from-scratch flat
//! engine evaluation of the same logical portfolio, (b) a freshly
//! partitioned [`ShardedBook`] run through the engine's book pipelines,
//! and (c) any *other* `LiveBook` driven by the same events under a
//! different shards × threads × chunk budget. The incremental caches
//! (per-shard rows, baseline partials, key digests, grouping cache) must
//! be invisible in the answers.

use flexoffers_engine::{Budget, Engine};
use flexoffers_model::{FlexOffer, Slice};
use flexoffers_serving::batch::{answer, answer_sharded, BatchBook};
use flexoffers_serving::{Event, LiveBook, QueryKind, ServeConfig};
use proptest::prelude::*;

fn arb_flexoffer() -> impl Strategy<Value = FlexOffer> {
    (
        0i64..4,
        0i64..5,
        prop::collection::vec((-5i64..5, 0i64..5), 1..5),
        0.0f64..1.0,
        0.0f64..1.0,
    )
        .prop_map(|(tes, window, raw, cmin_pos, cmax_pos)| {
            let slices: Vec<Slice> = raw
                .into_iter()
                .map(|(min, w)| Slice::new(min, min + w).unwrap())
                .collect();
            let pmin: i64 = slices.iter().map(Slice::min).sum();
            let pmax: i64 = slices.iter().map(Slice::max).sum();
            let cmin = pmin + ((pmax - pmin) as f64 * cmin_pos) as i64;
            let cmax = cmin + ((pmax - cmin) as f64 * cmax_pos) as i64;
            FlexOffer::with_totals(tes, tes + window, slices, cmin, cmax).unwrap()
        })
}

/// A raw op: interpreted against the set of ids live at apply time, so any
/// generated sequence is valid (updates/removes of an empty book are
/// skipped, picks wrap around the live count).
#[derive(Clone, Debug)]
enum RawOp {
    Add(FlexOffer),
    Update(usize, FlexOffer),
    Remove(usize),
    Query(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<RawOp>> {
    // Weighted by selector bands: 3× add, 2× update, 1× remove, 2× query.
    let op = (0usize..8, 0usize..1 << 20, arb_flexoffer()).prop_map(|(sel, pick, fo)| match sel {
        0..=2 => RawOp::Add(fo),
        3 | 4 => RawOp::Update(pick, fo),
        5 => RawOp::Remove(pick),
        _ => RawOp::Query(pick),
    });
    prop::collection::vec(op, 0..24)
}

/// Resolves raw ops into concrete events, tracking live ids exactly the
/// way the books assign them (k-th add owns id k).
fn resolve(ops: Vec<RawOp>) -> Vec<Event> {
    let mut live: Vec<u64> = Vec::new();
    let mut next_id: u64 = 0;
    let mut events = Vec::new();
    for op in ops {
        match op {
            RawOp::Add(offer) => {
                live.push(next_id);
                next_id += 1;
                events.push(Event::Add(offer));
            }
            RawOp::Update(pick, offer) => {
                if !live.is_empty() {
                    let id = live[pick % live.len()];
                    events.push(Event::Update { id, offer });
                }
            }
            RawOp::Remove(pick) => {
                if !live.is_empty() {
                    let id = live.swap_remove(pick % live.len());
                    events.push(Event::Remove { id });
                }
            }
            RawOp::Query(pick) => {
                events.push(Event::Query(QueryKind::all()[pick % 4]));
            }
        }
    }
    // Always interrogate the final state with every query kind.
    for kind in QueryKind::all() {
        events.push(Event::Query(kind));
    }
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The flagship property: a live book under any (shards, threads,
    /// chunk) answers every query byte-identically to the from-scratch
    /// batch replay of the same events — at every query point, not just
    /// the end.
    #[test]
    fn live_answers_byte_match_batch_rebuild_at_every_query(
        ops in arb_ops(),
        shards in 1usize..7,
        threads in 1usize..5,
        chunk in 1usize..9,
    ) {
        let budget = Budget::with_threads(threads).unwrap().with_chunk_size(chunk).unwrap();
        let mut live = LiveBook::new(ServeConfig::default(), shards, Engine::new(budget)).unwrap();
        let mut oracle = BatchBook::new(ServeConfig::default(), Engine::sequential());
        for event in resolve(ops) {
            let lhs = live.apply(event.clone()).expect("resolved events are valid");
            let rhs = oracle.apply(event).expect("resolved events are valid");
            prop_assert_eq!(lhs, rhs, "live and batch answers diverged");
        }
    }

    /// Two live books under *different* budgets and shard counts agree
    /// with each other on every answer (1-vs-N threads, 1-vs-K shards).
    #[test]
    fn live_books_agree_across_shard_and_thread_budgets(
        ops in arb_ops(),
        shards in 2usize..9,
        threads in 2usize..5,
    ) {
        let mut one = LiveBook::new(ServeConfig::default(), 1, Engine::sequential()).unwrap();
        let budget = Budget::with_threads(threads).unwrap();
        let mut many = LiveBook::new(ServeConfig::default(), shards, Engine::new(budget)).unwrap();
        for event in resolve(ops) {
            let lhs = one.apply(event.clone()).expect("valid");
            let rhs = many.apply(event).expect("valid");
            prop_assert_eq!(lhs, rhs, "1-shard and {}-shard books diverged", shards);
        }
    }

    /// The final state also byte-matches a *freshly partitioned*
    /// ShardedBook run through the engine's book pipelines — the book the
    /// live tier replaces.
    #[test]
    fn final_state_matches_a_fresh_sharded_book_build(
        ops in arb_ops(),
        live_shards in 1usize..6,
        fresh_shards in 1usize..6,
        threads in 1usize..5,
    ) {
        let budget = Budget::with_threads(threads).unwrap();
        let engine = Engine::new(budget);
        let mut live = LiveBook::new(ServeConfig::default(), live_shards, engine).unwrap();
        for event in resolve(ops) {
            live.apply(event).expect("valid");
        }
        let logical = live.to_portfolio();
        let config = ServeConfig::default();
        for kind in QueryKind::all() {
            let served = live.answer(kind);
            let flat = answer(&engine, &config, logical.as_slice(), kind);
            prop_assert_eq!(&served, &flat, "{} diverged from the flat engine", kind);
            let sharded =
                answer_sharded(&engine, &config, logical.as_slice(), fresh_shards, kind)
                    .expect("non-zero shard count");
            prop_assert_eq!(&served, &sharded, "{} diverged from a fresh book", kind);
        }
    }

    /// The incremental contract under random traffic: after a warm query,
    /// one single-offer update re-runs the measure pass on exactly one
    /// shard.
    #[test]
    fn one_update_reevaluates_exactly_one_shard(
        adds in prop::collection::vec(arb_flexoffer(), 1..20),
        replacement in arb_flexoffer(),
        pick in 0usize..1 << 20,
        shards in 1usize..6,
    ) {
        let mut live =
            LiveBook::new(ServeConfig::default(), shards, Engine::sequential()).unwrap();
        let n = adds.len();
        for offer in adds {
            live.add(offer);
        }
        live.answer(QueryKind::Measure);
        let warm = live.evaluations();
        live.update((pick % n) as u64, replacement).unwrap();
        live.answer(QueryKind::Measure);
        let after = live.evaluations();
        let bumped: usize = warm
            .iter()
            .zip(&after)
            .map(|(&w, &a)| {
                prop_assert!(a == w || a == w + 1, "counters only step by one");
                Ok(a - w)
            })
            .collect::<Result<Vec<usize>, TestCaseError>>()?
            .into_iter()
            .sum();
        prop_assert_eq!(bumped, 1, "exactly one shard re-evaluates");
    }
}
