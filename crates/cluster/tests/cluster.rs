//! Cross-process byte-identity properties — the acceptance bar of the
//! cluster tier.
//!
//! A [`ClusterBook`] must answer bitwise equal to the in-process
//! [`LiveBook`] fed the same event stream, at any workers × threads ×
//! kernel budget — and killing a worker process at a random event must be
//! invisible in the answer stream (the supervisor respawns and replays
//! behind the scenes). The durable composition must recover, seed the
//! fleet, and write snapshots the single-process tier can adopt.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use flexoffers_cluster::{ClusterBook, ClusterError, DurableCluster, WorkerSpec};
use flexoffers_engine::{Budget, Engine, Kernel};
use flexoffers_model::{FlexOffer, Slice};
use flexoffers_serving::{
    DurabilityConfig, Event, EventSink, LiveBook, LiveServer, QueryKind, ServeConfig,
};
use flexoffers_storage::DurableBook;
use proptest::prelude::*;

/// The standalone worker binary, built by cargo alongside this test.
fn worker_spec() -> WorkerSpec {
    WorkerSpec::new(env!("CARGO_BIN_EXE_flex_shard_worker"))
}

/// Scratch dir under the system temp dir (no tempfile crate in the tree),
/// removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn scratch_dir(tag: &str) -> ScratchDir {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "flexoffers_cluster_{tag}_{}_{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    ScratchDir(dir)
}

fn arb_flexoffer() -> impl Strategy<Value = FlexOffer> {
    (
        0i64..4,
        0i64..5,
        prop::collection::vec((-5i64..5, 0i64..5), 1..5),
        0.0f64..1.0,
        0.0f64..1.0,
    )
        .prop_map(|(tes, window, raw, cmin_pos, cmax_pos)| {
            let slices: Vec<Slice> = raw
                .into_iter()
                .map(|(min, w)| Slice::new(min, min + w).unwrap())
                .collect();
            let pmin: i64 = slices.iter().map(Slice::min).sum();
            let pmax: i64 = slices.iter().map(Slice::max).sum();
            let cmin = pmin + ((pmax - pmin) as f64 * cmin_pos) as i64;
            let cmax = cmin + ((pmax - cmin) as f64 * cmax_pos) as i64;
            FlexOffer::with_totals(tes, tes + window, slices, cmin, cmax).unwrap()
        })
}

/// A raw op resolved against the ids live at apply time, so any generated
/// sequence is a valid event stream (the storage tier's recovery idiom).
#[derive(Clone, Debug)]
enum RawOp {
    Add(FlexOffer),
    Update(usize, FlexOffer),
    Remove(usize),
    Query(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<RawOp>> {
    let op = (0usize..8, 0usize..1 << 20, arb_flexoffer()).prop_map(|(sel, pick, fo)| match sel {
        0..=2 => RawOp::Add(fo),
        3 | 4 => RawOp::Update(pick, fo),
        5 => RawOp::Remove(pick),
        _ => RawOp::Query(pick),
    });
    prop::collection::vec(op, 0..16)
}

fn resolve(ops: Vec<RawOp>) -> Vec<Event> {
    let mut live: Vec<u64> = Vec::new();
    let mut next_id: u64 = 0;
    let mut events = Vec::new();
    for op in ops {
        match op {
            RawOp::Add(offer) => {
                live.push(next_id);
                next_id += 1;
                events.push(Event::Add(offer));
            }
            RawOp::Update(pick, offer) => {
                if !live.is_empty() {
                    let id = live[pick % live.len()];
                    events.push(Event::Update { id, offer });
                }
            }
            RawOp::Remove(pick) => {
                if !live.is_empty() {
                    let id = live.swap_remove(pick % live.len());
                    events.push(Event::Remove { id });
                }
            }
            RawOp::Query(pick) => {
                events.push(Event::Query(QueryKind::all()[pick % 4]));
            }
        }
    }
    events
}

proptest! {
    // Each case spawns real OS processes, so the case count stays low;
    // coverage comes from the event-stream and budget dimensions.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The flagship property: every answer a cluster produces — mid-stream
    /// and final, across all query kinds — byte-matches the in-process
    /// book fed the same events, at any workers × threads × kernel.
    #[test]
    fn cluster_answers_byte_match_the_in_process_book(
        ops in arb_ops(),
        workers_pick in 0usize..3,
        threads in 1usize..3,
        kernel_pick in 0usize..3,
    ) {
        let workers = [1, 2, 4][workers_pick];
        let kernel = [Kernel::Scalar, Kernel::Columnar, Kernel::Auto][kernel_pick];
        let budget = Budget::with_threads(threads).unwrap().with_kernel(kernel);
        let config = ServeConfig::default();
        let events = resolve(ops);

        let mut cluster =
            ClusterBook::spawn(config.clone(), budget, workers, worker_spec()).unwrap();
        let mut reference = LiveBook::new(config, workers, Engine::sequential()).unwrap();
        for (i, event) in events.into_iter().enumerate() {
            let got = cluster.apply(event.clone()).expect("resolved events are valid");
            let want = reference.apply(event).expect("resolved events are valid");
            prop_assert_eq!(got, want, "event {} diverged", i);
        }
        for kind in QueryKind::all() {
            prop_assert_eq!(cluster.answer(kind).unwrap(), reference.answer(kind), "{}", kind);
        }
        prop_assert_eq!(cluster.live_ids(), reference.live_ids());
        prop_assert_eq!(cluster.next_id(), reference.next_id());
        prop_assert_eq!(cluster.respawns(), 0, "no failures were injected");
        cluster.shutdown();
    }

    /// Kill a worker process (SIGKILL, no warning to the supervisor) at a
    /// random event, and again right before the final queries: every
    /// answer must still byte-match the in-process reference, with the
    /// respawn visible only in the supervisor's counter.
    #[test]
    fn killing_a_worker_at_a_random_event_is_invisible_in_answers(
        ops in arb_ops(),
        kill_frac in 0usize..=100,
        victim_pick in 0usize..4,
        workers_pick in 0usize..2,
    ) {
        let workers = [2, 4][workers_pick];
        let victim = victim_pick % workers;
        let config = ServeConfig::default();
        let events = resolve(ops);
        let kill_at = events.len() * kill_frac / 100;

        let mut cluster =
            ClusterBook::spawn(config.clone(), Budget::sequential(), workers, worker_spec())
                .unwrap();
        let mut reference = LiveBook::new(config, workers, Engine::sequential()).unwrap();
        for (i, event) in events.into_iter().enumerate() {
            if i == kill_at {
                cluster.kill_worker(victim);
            }
            let got = cluster.apply(event.clone()).expect("repaired cluster applies");
            let want = reference.apply(event).expect("resolved events are valid");
            prop_assert_eq!(got, want, "event {} diverged after the kill", i);
        }
        // A second kill right before the gather guarantees at least one
        // respawn happens on the query path itself.
        cluster.kill_worker(victim);
        for kind in QueryKind::all() {
            prop_assert_eq!(
                cluster.answer(kind).unwrap(),
                reference.answer(kind),
                "{} diverged after the pre-query kill",
                kind
            );
        }
        prop_assert!(cluster.respawns() >= 1, "the kill was repaired by respawn");
        prop_assert_eq!(cluster.live_ids(), reference.live_ids());
        cluster.shutdown();
    }

    /// The delta-gather contract: at every query in a random
    /// interleaving, the delta answer byte-matches both the full-gather
    /// oracle ([`ClusterBook::answer_full`]) and the in-process
    /// reference — including when a worker is SIGKILLed at a random
    /// event. Afterwards, the caching behaviour itself is pinned: a
    /// back-to-back clean query confirms every shard by digest (zero
    /// dirty), and a kill forces exactly the respawned victim to ship a
    /// full export again (respawn invalidates the digest; the gather
    /// repairs the merge book).
    #[test]
    fn delta_gathers_match_the_full_gather_oracle_and_cache_clean_shards(
        ops in arb_ops(),
        workers_pick in 0usize..3,
        kernel_pick in 0usize..3,
        kill_frac in 0usize..=100,
        victim_pick in 0usize..4,
    ) {
        let workers = [1, 2, 4][workers_pick];
        let kernel = [Kernel::Scalar, Kernel::Columnar, Kernel::Auto][kernel_pick];
        let budget = Budget::sequential().with_kernel(kernel);
        let victim = victim_pick % workers;
        let config = ServeConfig::default();
        let events = resolve(ops);
        let kill_at = events.len() * kill_frac / 100;

        let mut cluster =
            ClusterBook::spawn(config.clone(), budget, workers, worker_spec()).unwrap();
        let mut reference = LiveBook::new(config, workers, Engine::sequential()).unwrap();
        for (i, event) in events.into_iter().enumerate() {
            if i == kill_at {
                cluster.kill_worker(victim);
            }
            if let Event::Query(kind) = event {
                let full = cluster.answer_full(kind).expect("full-gather oracle answers");
                let delta = cluster.answer(kind).expect("delta gather answers");
                let want = reference.answer(kind);
                prop_assert_eq!(&delta, &full, "event {}: delta vs full-gather oracle", i);
                prop_assert_eq!(&delta, &want, "event {}: delta vs in-process", i);
            } else {
                cluster.apply(event.clone()).expect("resolved events are valid");
                reference.apply(event).expect("resolved events are valid");
            }
        }

        // Settle the merge book, then pin the cache behaviour: with no
        // mutations in between, the next gather confirms every shard.
        prop_assert_eq!(
            cluster.answer(QueryKind::Measure).unwrap(),
            reference.answer(QueryKind::Measure)
        );
        let before = cluster.gather_stats();
        prop_assert_eq!(
            cluster.answer(QueryKind::Measure).unwrap(),
            reference.answer(QueryKind::Measure)
        );
        let clean = cluster.gather_stats();
        prop_assert_eq!(clean.dirty_shards - before.dirty_shards, 0,
            "a clean back-to-back gather ships nothing");
        prop_assert_eq!(clean.cached_shards - before.cached_shards, workers as u64,
            "every shard confirms by digest");

        // A SIGKILL invalidates exactly the victim's digest: the respawn
        // replays its shard and the next gather pulls one full export.
        cluster.kill_worker(victim);
        prop_assert_eq!(
            cluster.answer(QueryKind::Aggregate).unwrap(),
            reference.answer(QueryKind::Aggregate)
        );
        let repaired = cluster.gather_stats();
        prop_assert_eq!(repaired.dirty_shards - clean.dirty_shards, 1,
            "the respawned worker must report a digest miss");
        prop_assert_eq!(repaired.cached_shards - clean.cached_shards, (workers - 1) as u64,
            "untouched workers stay cached through a peer's respawn");
        cluster.shutdown();
    }
}

fn offer(tes: i64) -> FlexOffer {
    FlexOffer::new(tes, tes + 3, vec![Slice::new(-1, 2).unwrap()]).unwrap()
}

fn durable_config(journal: &Path, snapshot_every: Option<u64>) -> ServeConfig {
    ServeConfig {
        durability: Some(DurabilityConfig {
            snapshot_every,
            sync_every: 1,
            ..DurabilityConfig::new(journal)
        }),
        ..ServeConfig::default()
    }
}

/// The durable composition end to end: an in-process durable run crashes;
/// a cluster recovers it, continues the history, and shuts down; a plain
/// in-process durable book then adopts the cluster's snapshot + journal
/// with zero replay and answers byte-identically.
#[test]
fn durable_cluster_recovers_continues_and_writes_adoptable_snapshots() {
    let dir = scratch_dir("durable");
    let config = durable_config(&dir.path().join("events.jsonl"), None);

    // Phase 1: single-process history, crash (no shutdown snapshot).
    let (mut durable, _) = DurableBook::open(config.clone(), 3, Engine::sequential()).unwrap();
    for i in 0..7 {
        durable.apply(Event::Add(offer(i))).unwrap();
    }
    durable.apply(Event::Remove { id: 2 }).unwrap();
    durable
        .apply(Event::Update {
            id: 4,
            offer: offer(9),
        })
        .unwrap();
    drop(durable);

    // Phase 2: the cluster recovers and continues the same history.
    let (mut cluster, report) =
        DurableCluster::open(config.clone(), Budget::sequential(), 3, worker_spec()).unwrap();
    assert_eq!(report.journal_events, 9);
    assert_eq!(cluster.cluster().live_ids(), vec![0, 1, 3, 4, 5, 6]);
    assert_eq!(cluster.cluster().next_id(), 7);
    cluster.apply(Event::Add(offer(11))).unwrap();
    cluster.apply(Event::Remove { id: 0 }).unwrap();
    let clustered = cluster
        .apply(Event::Query(QueryKind::Measure))
        .unwrap()
        .expect("queries answer");
    cluster.finish().unwrap();
    assert_eq!(cluster.seq(), 11);

    // The uninterrupted in-process reference over the whole history.
    let mut reference = LiveBook::new(ServeConfig::default(), 3, Engine::sequential()).unwrap();
    for i in 0..7 {
        reference.add(offer(i));
    }
    reference.remove(2).unwrap();
    reference.update(4, offer(9)).unwrap();
    reference.add(offer(11));
    reference.remove(0).unwrap();
    assert_eq!(clustered, reference.answer(QueryKind::Measure));

    // Phase 3: the single-process tier adopts the cluster's files.
    let (mut adopted, report) = DurableBook::open(config, 3, Engine::sequential()).unwrap();
    assert_eq!(report.snapshot_seq, Some(11), "cluster shutdown snapshot");
    assert_eq!(report.replayed, 0);
    for kind in QueryKind::all() {
        assert_eq!(
            adopted.book_mut().answer(kind),
            reference.answer(kind),
            "{kind} diverged after adoption"
        );
    }
}

/// The cluster is a first-class [`EventSink`]: the unchanged serving loop
/// drives it through [`LiveServer::spawn_sink`] like any local book.
#[test]
fn the_serving_loop_drives_a_cluster_sink() {
    let config = ServeConfig::default();
    let cluster =
        ClusterBook::spawn(config.clone(), Budget::sequential(), 2, worker_spec()).unwrap();
    let mut handle = LiveServer::spawn_sink(cluster);
    handle.add(offer(0)).unwrap();
    handle.add(offer(1)).unwrap();
    handle.remove(0).unwrap();
    let answer = handle.query(QueryKind::Aggregate).unwrap();
    handle.shutdown().unwrap();

    let mut reference = LiveBook::new(config, 2, Engine::sequential()).unwrap();
    reference.add(offer(0));
    reference.add(offer(1));
    reference.remove(0).unwrap();
    assert_eq!(answer, reference.answer(QueryKind::Aggregate));
}

/// Failure conditions are structured, named errors — never hangs or
/// panics.
#[test]
fn failure_conditions_surface_as_named_errors() {
    let config = ServeConfig::default();
    assert!(matches!(
        ClusterBook::spawn(config.clone(), Budget::sequential(), 0, worker_spec()),
        Err(ClusterError::ZeroWorkers)
    ));
    assert!(matches!(
        ClusterBook::spawn(
            config.clone(),
            Budget::sequential(),
            2,
            WorkerSpec::new("/nonexistent/flex_shard_worker"),
        ),
        Err(ClusterError::Spawn { worker: 0, .. })
    ));

    let mut cluster = ClusterBook::spawn(config, Budget::sequential(), 2, worker_spec()).unwrap();
    assert_eq!(
        cluster.update(42, offer(0)),
        Err(ClusterError::UnknownId { id: 42 })
    );
    assert_eq!(cluster.remove(42), Err(ClusterError::UnknownId { id: 42 }));
    let id = cluster.add(offer(0)).unwrap();
    assert_eq!(
        cluster.add_at(id, offer(1)),
        Err(ClusterError::IdTaken { id })
    );
    cluster.remove(id).unwrap();
    assert_eq!(
        cluster.update(id, offer(1)),
        Err(ClusterError::UnknownId { id })
    );
    cluster.shutdown();
}
