//! `flexoffers_cluster` — cross-process shard workers for the serving
//! tier.
//!
//! The in-process [`LiveBook`](flexoffers_serving::LiveBook) already
//! partitions its offers into shards by a stable hash; this crate moves
//! those shards into separate OS processes without moving the answer
//! bytes by a single bit:
//!
//! * [`wire`] — the supervisor ↔ worker JSONL protocol over stdio pipes,
//!   reusing the stack's event and snapshot codecs so the wire format and
//!   the persistence format are the same bytes.
//! * [`worker`] ([`run_stdio_worker`]) — the shard executor loop: a full
//!   K-shard book in which only the worker's own shard is ever populated.
//! * [`supervisor`] ([`ClusterBook`]) — scatter mutations by the owner
//!   hash, delta-gather per query (conditional exports confirm clean
//!   shards by state digest; only dirty shards ship), and splice the
//!   dirty shards into a persistent merged book via
//!   [`LiveBook::import_shard`](flexoffers_serving::LiveBook::import_shard)
//!   so the answer comes from the same code as the in-process tier.
//!   Worker death is repaired by respawn + merged-shard-and-suffix
//!   replay, invisibly to the answer stream.
//! * [`durable`] ([`DurableCluster`]) — the journal-before-apply sink
//!   composing cross-process sharding with the storage tier: recover
//!   in-process, seed the fleet, journal every mutation before it
//!   scatters, snapshot from the gathered merged export.
//!
//! # Byte identity
//!
//! The cluster inherits the serving tier's contract: `serve --workers N`
//! answers bitwise equal to the in-process book and to the batch oracle,
//! at any workers × threads × kernel budget, with or without a worker
//! being killed mid-stream. This is pinned by the crate's proptests
//! (random event interleavings × worker counts × kernels, plus a
//! kill-a-worker-at-a-random-event case).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod durable;
pub mod supervisor;
pub mod wire;
pub mod worker;

pub use durable::{DurableCluster, DurableClusterError};
pub use supervisor::{ClusterBook, ClusterError, GatherStats, WorkerSpec, RESPAWN_ATTEMPTS};
pub use wire::{WorkerReply, WorkerRequest, WORKER_PROTOCOL};
pub use worker::{run_stdio_worker, run_worker};
