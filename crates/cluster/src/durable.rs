//! The durable cluster: a [`ClusterBook`] behind the same
//! journal-before-apply [`EventSink`] discipline as
//! [`DurableBook`](flexoffers_storage::DurableBook).
//!
//! [`DurableCluster::open`] recovers the book **in-process** (snapshot +
//! journal-suffix replay through the existing
//! [`recover`](flexoffers_storage::recover) path — recovery correctness
//! stays single-process and already-proptested), then seeds the worker
//! fleet by routing every recovered offer under its original id. Because
//! answers are invariant under shard-local insertion order only insofar
//! as the *routed subsequences* match — and seeding in ascending id order
//! reproduces exactly the local orders a compacted book would have — the
//! seeded cluster answers byte-identically to the recovered in-process
//! book.
//!
//! From there the discipline is `DurableBook`'s, verbatim: each mutation
//! journals before it routes, queries are never journaled, snapshots are
//! cut from the *gathered* merged export every `snapshot_every` mutations
//! (journal synced first) and at clean shutdown. The snapshot a cluster
//! writes is bit-compatible with the in-process tier's — `serve
//! --workers N` and plain `serve` can adopt each other's files.

use std::path::PathBuf;

use flexoffers_engine::{Budget, Engine};
use flexoffers_serving::{Event, EventSink, ServeConfig};
use flexoffers_storage::{recover, save_snapshot, Journal, RecoveryReport, Snapshot, StorageError};

use crate::supervisor::{ClusterBook, ClusterError, WorkerSpec};

/// What a durable-cluster operation can fail with: the storage tier's
/// errors (journal, snapshot, recovery) or the cluster tier's (worker
/// loss, protocol faults).
#[derive(Debug)]
#[non_exhaustive]
pub enum DurableClusterError {
    /// The journal/snapshot/recovery layer failed.
    Storage(StorageError),
    /// The worker fleet failed.
    Cluster(ClusterError),
}

impl std::fmt::Display for DurableClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableClusterError::Storage(e) => write!(f, "{e}"),
            DurableClusterError::Cluster(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DurableClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableClusterError::Storage(e) => Some(e),
            DurableClusterError::Cluster(e) => Some(e),
        }
    }
}

impl From<StorageError> for DurableClusterError {
    fn from(e: StorageError) -> Self {
        DurableClusterError::Storage(e)
    }
}

impl From<ClusterError> for DurableClusterError {
    fn from(e: ClusterError) -> Self {
        DurableClusterError::Cluster(e)
    }
}

/// A worker fleet whose mutations are journaled before they scatter.
pub struct DurableCluster {
    cluster: ClusterBook,
    journal: Journal,
    snapshot_path: PathBuf,
    snapshot_every: Option<u64>,
    last_snapshot_seq: u64,
}

impl DurableCluster {
    /// Recovers from `config.durability`'s journal + snapshot, spawns
    /// `workers` shard processes, and seeds them with the recovered
    /// offers. Returns the sink alongside what recovery found.
    pub fn open(
        config: ServeConfig,
        budget: Budget,
        workers: usize,
        spec: WorkerSpec,
    ) -> Result<(Self, RecoveryReport), DurableClusterError> {
        let durability = config
            .durability
            .clone()
            .ok_or(StorageError::MissingDurability)?;
        // Recover in-process first: the worker count is the shard count,
        // so the recovered book's placement is exactly the cluster's.
        let (recovered, report) = recover(&config, workers, Engine::new(budget))?;
        let journal = Journal::resume(
            &durability.journal,
            durability.sync_every,
            report.committed_bytes,
            report.journal_events,
        )?;
        let mut cluster = ClusterBook::spawn(config, budget, workers, spec)?;
        // Seed in ascending id order — the same local orders a compacted
        // in-process book has, so answers stay byte-identical.
        let ids = recovered.live_ids();
        let offers = recovered.to_portfolio();
        for (id, offer) in ids.into_iter().zip(offers) {
            cluster.add_at(id, offer)?;
        }
        cluster.reserve_ids(recovered.next_id());
        Ok((
            Self {
                cluster,
                journal,
                snapshot_path: durability.snapshot_path(),
                snapshot_every: durability.snapshot_every,
                last_snapshot_seq: report.snapshot_seq.unwrap_or(0),
            },
            report,
        ))
    }

    /// The wrapped cluster supervisor (respawn counters, pids, kill
    /// hooks).
    pub fn cluster(&self) -> &ClusterBook {
        &self.cluster
    }

    /// Mutable access to the wrapped supervisor.
    pub fn cluster_mut(&mut self) -> &mut ClusterBook {
        &mut self.cluster
    }

    /// The journal sequence of the last journaled mutation.
    pub fn seq(&self) -> u64 {
        self.journal.seq()
    }

    /// Syncs the journal and writes a snapshot of the *gathered* cluster
    /// state at the current sequence, returning that sequence. The sync
    /// comes first so the snapshot's `seq` never points past durable
    /// journal bytes.
    pub fn snapshot_now(&mut self) -> Result<u64, DurableClusterError> {
        self.journal.sync()?;
        let snapshot = Snapshot {
            seq: self.journal.seq(),
            export: self.cluster.export()?,
        };
        save_snapshot(&self.snapshot_path, &snapshot)?;
        self.last_snapshot_seq = snapshot.seq;
        Ok(snapshot.seq)
    }

    fn maybe_snapshot(&mut self) -> Result<(), DurableClusterError> {
        if let Some(every) = self.snapshot_every {
            if self.journal.seq() - self.last_snapshot_seq >= every.max(1) {
                self.snapshot_now()?;
            }
        }
        Ok(())
    }
}

impl EventSink for DurableCluster {
    type Error = DurableClusterError;

    fn apply(&mut self, event: Event) -> Result<Option<String>, DurableClusterError> {
        let mutation = !matches!(event, Event::Query(_));
        if mutation {
            self.journal.append(&event)?;
        }
        let answer = self.cluster.apply(event)?;
        if mutation {
            self.maybe_snapshot()?;
        }
        Ok(answer)
    }

    fn finish(&mut self) -> Result<(), DurableClusterError> {
        self.journal.sync()?;
        self.snapshot_now()?;
        self.cluster.shutdown();
        Ok(())
    }
}
