//! The cluster supervisor: scatter mutations, delta-gather shard exports,
//! answer from a persistent merged book.
//!
//! A [`ClusterBook`] owns one OS process per shard. Each worker holds a
//! full K-shard [`LiveBook`] in which only its own shard is populated, so
//! the supervisor's routing — the same
//! [`stable_shard`](flexoffers_engine::stable_shard) placement the
//! in-process book uses — keeps worker `w`'s shard `w` byte-equal to
//! shard `w` of an in-process K-shard book fed the same serialized
//! mutation stream.
//!
//! # Delta gather
//!
//! The supervisor keeps a persistent **merged book** — a real in-process
//! [`LiveBook`] holding every shard as of the last gather — plus, per
//! slot, the worker's last confirmed state digest. A gather pipelines
//! `export {if_digest}` to every worker; clean workers answer the tiny
//! `not_modified` frame (digest equality over the canonical shard JSON
//! implies content equality, so the merged book's copy is already exact),
//! and only dirty workers ship their shard, which
//! [`LiveBook::import_shard`] splices into the merged book in place.
//! Queries then answer straight off the merged book — the merge and the
//! answer bytes come from the *same code* as the in-process tier, which
//! is what makes cross-process answers byte-identical at any
//! workers × threads × kernel budget, and a mostly-clean book pays for
//! one dirty shard instead of K full exports. `import_shard`'s structural
//! validation (placement, duplicate ids, digests, cache shapes) doubles
//! as wire-integrity checking on everything a worker ships back, and
//! [`answer_full`](ClusterBook::answer_full) keeps the old
//! full-gather path alive as a byte-identity oracle.
//!
//! # Failure handling
//!
//! Worker death is detected on the pipe (a failed write or an EOF read)
//! and repaired in place: the supervisor respawns the process, rehydrates
//! it from the merged book's copy of its shard plus a replay of the
//! mutation suffix routed to it since the last gather, and retries the
//! in-flight operation. The suffix is recorded *before* the pipe
//! round-trip, so an op that killed the pipe mid-flight is replayed into
//! the fresh process exactly once. A respawn also clears the slot's
//! digest, so the next gather always pulls (and re-validates) a full
//! export from the rebuilt process rather than trusting a cached hash.
//! Respawn attempts are bounded; exhaustion surfaces as the structured
//! [`ClusterError::WorkerLost`], never a panic or a hang.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

use flexoffers_engine::{stable_shard, Budget, Engine};
use flexoffers_model::FlexOffer;
use flexoffers_serving::{
    BookExport, Event, EventSink, ImportError, LiveBook, QueryKind, ServeConfig, ShardExport,
};
use flexoffers_storage::shard_digest;

use crate::wire::{
    parse_export_payload, parse_reply, write_request_line, ExportPayload, WorkerReply,
    WorkerRequest,
};

/// How many consecutive boot attempts a single respawn may make before
/// the worker is declared lost.
pub const RESPAWN_ATTEMPTS: usize = 3;

/// What a cluster operation can fail with. Every variant is a named,
/// structured condition — worker death mid-operation is repaired
/// internally and only surfaces here once repair itself is exhausted.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// A worker count of zero was requested; the cluster always needs at
    /// least one shard process.
    ZeroWorkers,
    /// A worker process could not be started at all (bad program path,
    /// exec failure).
    Spawn {
        /// The worker index.
        worker: usize,
        /// The spawn failure detail.
        message: String,
    },
    /// A worker died and every respawn attempt failed — the cluster can
    /// no longer answer for its shard.
    WorkerLost {
        /// The lost worker's index (== its shard).
        worker: usize,
    },
    /// A worker answered with a coded protocol error. These are
    /// deterministic (a replay would hit them again), so they are fatal
    /// rather than respawn-and-retried.
    Worker {
        /// The worker index.
        worker: usize,
        /// The machine-readable error code.
        code: String,
        /// The human-readable detail.
        message: String,
    },
    /// A gathered shard failed [`LiveBook::import_shard`] validation — a
    /// worker shipped a structurally corrupt shard.
    Import(ImportError),
    /// An update or remove referenced an id that is not live.
    UnknownId {
        /// The dead id.
        id: u64,
    },
    /// A seeded add named an id that is already live.
    IdTaken {
        /// The live id.
        id: u64,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::ZeroWorkers => f.write_str("worker count must be at least 1"),
            ClusterError::Spawn { worker, message } => {
                write!(f, "failed to start cluster worker {worker}: {message}")
            }
            ClusterError::WorkerLost { worker } => {
                write!(
                    f,
                    "cluster worker {worker} lost — {RESPAWN_ATTEMPTS} respawn attempts exhausted"
                )
            }
            ClusterError::Worker {
                worker,
                code,
                message,
            } => write!(f, "cluster worker {worker} failed [{code}]: {message}"),
            ClusterError::Import(e) => write!(f, "gathered shard export rejected: {e}"),
            ClusterError::UnknownId { id } => write!(f, "unknown offer id {id} — not live"),
            ClusterError::IdTaken { id } => {
                write!(
                    f,
                    "offer id {id} is already live — seeded ids must be fresh"
                )
            }
        }
    }
}

impl Error for ClusterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClusterError::Import(e) => Some(e),
            _ => None,
        }
    }
}

/// How to start one worker process. The supervisor spawns `program` with
/// `args`, a piped stdin/stdout, and an inherited stderr (worker logs
/// land in the supervisor's stderr stream).
#[derive(Clone, Debug)]
pub struct WorkerSpec {
    /// The program to execute — `flexctl` (whose hidden `shard-worker`
    /// subcommand runs the loop) or the standalone `flex_shard_worker`.
    pub program: PathBuf,
    /// Arguments to pass before the worker takes over stdio.
    pub args: Vec<String>,
}

impl WorkerSpec {
    /// A spec running `program` with no arguments.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        Self {
            program: program.into(),
            args: Vec::new(),
        }
    }

    /// Appends one argument.
    pub fn arg(mut self, arg: impl Into<String>) -> Self {
        self.args.push(arg.into());
        self
    }
}

/// Cumulative gather-path counters — how much of the cluster's query
/// traffic the delta path absorbed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GatherStats {
    /// How many gathers ran.
    pub gathers: u64,
    /// Shard exports that shipped in full (digest miss or first contact).
    pub dirty_shards: u64,
    /// Shard exports answered `not_modified` (digest hit; nothing
    /// deserialized, nothing imported).
    pub cached_shards: u64,
    /// Total reply-line bytes of the full exports — what the delta path
    /// actually moved over the pipes.
    pub dirty_bytes: u64,
}

/// Why one pipe round-trip failed — drives the repair decision.
enum ConnFailure {
    /// The pipe broke (EPIPE, EOF, or an unreadable reply stream): the
    /// process is dead or poisoned. Repairable by respawn.
    Io(String),
    /// The worker answered with a coded error: deterministic, fatal.
    Fault {
        /// The machine-readable code.
        code: String,
        /// The human-readable detail.
        message: String,
    },
}

/// One live worker process and its pipes. The request and reply line
/// buffers live here so the per-event scatter and per-query gather reuse
/// their allocations across round-trips instead of allocating two strings
/// per pipe exchange.
struct WorkerConn {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
    next_request: u64,
    write_buf: String,
    reply_buf: String,
}

impl WorkerConn {
    fn spawn(spec: &WorkerSpec) -> io::Result<Self> {
        let mut child = Command::new(&spec.program)
            .args(&spec.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        Ok(Self {
            child,
            stdin,
            stdout,
            next_request: 0,
            write_buf: String::new(),
            reply_buf: String::new(),
        })
    }

    fn pid(&self) -> u32 {
        self.child.id()
    }

    /// Writes one request line; returns its id for the matching read.
    fn send(&mut self, request: &WorkerRequest) -> io::Result<u64> {
        let id = self.next_request;
        self.next_request += 1;
        write_request_line(&mut self.write_buf, id, request);
        self.write_buf.push('\n');
        self.stdin.write_all(self.write_buf.as_bytes())?;
        self.stdin.flush()?;
        Ok(id)
    }

    /// Reads one reply line and checks it echoes `expect`. Anything that
    /// breaks the strict request/reply cadence — EOF, garbage, a stray
    /// id — means the stream can no longer be trusted and reads as a
    /// repairable [`ConnFailure::Io`]. The raw line stays in `reply_buf`
    /// until the next read, so [`last_reply_len`](Self::last_reply_len)
    /// can meter what a full export actually cost on the wire.
    fn read_reply(&mut self, expect: u64) -> Result<serde::Value, ConnFailure> {
        self.reply_buf.clear();
        let n = self
            .stdout
            .read_line(&mut self.reply_buf)
            .map_err(|e| ConnFailure::Io(e.to_string()))?;
        if n == 0 {
            return Err(ConnFailure::Io("worker closed its pipe".to_owned()));
        }
        let (id, reply) = parse_reply(self.reply_buf.trim_end()).map_err(ConnFailure::Io)?;
        if id != Some(expect) {
            return Err(ConnFailure::Io(format!(
                "reply id {id:?} does not echo request {expect}"
            )));
        }
        match reply {
            WorkerReply::Ok(payload) => Ok(payload),
            WorkerReply::Err { code, message } => Err(ConnFailure::Fault { code, message }),
        }
    }

    /// The byte length of the most recently read reply line.
    fn last_reply_len(&self) -> usize {
        self.reply_buf.trim_end().len()
    }

    fn roundtrip(&mut self, request: &WorkerRequest) -> Result<serde::Value, ConnFailure> {
        let id = self
            .send(request)
            .map_err(|e| ConnFailure::Io(e.to_string()))?;
        self.read_reply(id)
    }
}

impl Drop for WorkerConn {
    fn drop(&mut self) {
        // Best effort: a replaced or abandoned connection must not leak
        // its process or leave a zombie.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One mutation as routed to a worker — the replay unit for respawn.
#[derive(Clone, Debug)]
enum RoutedOp {
    Add { id: u64, offer: FlexOffer },
    Update { id: u64, offer: FlexOffer },
    Remove { id: u64 },
}

impl RoutedOp {
    fn id(&self) -> u64 {
        match self {
            RoutedOp::Add { id, .. } | RoutedOp::Update { id, .. } | RoutedOp::Remove { id } => *id,
        }
    }

    fn request(&self) -> WorkerRequest {
        match self {
            RoutedOp::Add { id, offer } => WorkerRequest::Add {
                offer_id: *id,
                offer: offer.clone(),
            },
            RoutedOp::Update { id, offer } => WorkerRequest::Update {
                offer_id: *id,
                offer: offer.clone(),
            },
            RoutedOp::Remove { id } => WorkerRequest::Remove { offer_id: *id },
        }
    }
}

/// One worker slot: the live connection, the state digest the worker
/// confirmed at the last gather (`None` until first contact and after
/// every respawn — a `None` digest forces the next gather to pull a full
/// export), and the mutation suffix routed since the last gather. The
/// respawn baseline is *not* stored here: the supervisor's merged book
/// already holds every shard as of the last gather, so one copy serves
/// both querying and worker rehydration.
struct Slot {
    conn: WorkerConn,
    digest: Option<u64>,
    suffix: Vec<RoutedOp>,
}

/// Boots one worker process to operational state: spawn, `init`, `load`
/// the shard image, replay the suffix. Free function so `respawn` can
/// call it while borrowing slot state immutably.
fn try_boot(
    spec: &WorkerSpec,
    workers: usize,
    budget: Budget,
    w: usize,
    snapshot: &ShardExport,
    suffix: &[RoutedOp],
    next_id: u64,
) -> Result<WorkerConn, ConnFailure> {
    let mut conn = WorkerConn::spawn(spec).map_err(|e| ConnFailure::Io(e.to_string()))?;
    conn.roundtrip(&WorkerRequest::Init {
        shard: w,
        shards: workers,
        threads: budget.threads(),
        kernel: budget.kernel(),
    })?;
    let shards = (0..workers)
        .map(|s| {
            if s == w {
                snapshot.clone()
            } else {
                empty_shard()
            }
        })
        .collect();
    conn.roundtrip(&WorkerRequest::Load {
        book: BookExport { next_id, shards },
    })?;
    for op in suffix {
        conn.roundtrip(&op.request())?;
    }
    Ok(conn)
}

fn empty_shard() -> ShardExport {
    ShardExport {
        ids: Vec::new(),
        offers: Vec::new(),
        key_digest: 0,
        cache: None,
    }
}

/// Splits a worker's gathered export into its populated shard, rejecting
/// exports whose shape or placement is off. (Value-level corruption —
/// digests, duplicate ids, cache shapes — is caught by the merged book's
/// [`LiveBook::import_shard`].)
fn own_shard(w: usize, workers: usize, export: BookExport) -> Result<ShardExport, ClusterError> {
    let fault = |message: String| ClusterError::Worker {
        worker: w,
        code: "bad_export".to_owned(),
        message,
    };
    if export.shards.len() != workers {
        return Err(fault(format!(
            "export has {} shards, cluster has {workers}",
            export.shards.len()
        )));
    }
    for (s, shard) in export.shards.iter().enumerate() {
        if s != w && !shard.ids.is_empty() {
            return Err(fault(format!(
                "worker for shard {w} shipped {} offers in foreign shard {s}",
                shard.ids.len()
            )));
        }
    }
    let mut shards = export.shards;
    Ok(shards.swap_remove(w))
}

/// The supervisor: a live book whose shards are worker processes.
///
/// Mutations scatter to the owning worker synchronously (one pipe
/// round-trip); queries delta-gather — conditional exports confirm clean
/// shards by digest and ship only dirty ones, which are imported into the
/// supervisor's persistent merged [`LiveBook`] before it answers. The
/// public surface mirrors [`LiveBook`] — [`apply`](ClusterBook::apply)
/// speaks the same [`Event`] stream, and [`EventSink`] lets
/// [`LiveServer::spawn_sink`](flexoffers_serving::LiveServer::spawn_sink)
/// and the TCP tier drive a cluster exactly like a local book.
pub struct ClusterBook {
    budget: Budget,
    spec: WorkerSpec,
    slots: Vec<Slot>,
    /// Every shard as of the last gather, behind the same engine the
    /// in-process tier answers with. Doubles as the respawn baseline
    /// store: worker `w` rehydrates from `merged.export_shard(w)`.
    merged: LiveBook,
    live: BTreeSet<u64>,
    next_id: u64,
    respawns: u64,
    stats: GatherStats,
}

impl ClusterBook {
    /// Spawns `workers` shard processes and initializes each with the
    /// full cluster shard count and the given evaluation budget.
    pub fn spawn(
        config: ServeConfig,
        budget: Budget,
        workers: usize,
        spec: WorkerSpec,
    ) -> Result<Self, ClusterError> {
        if workers == 0 {
            return Err(ClusterError::ZeroWorkers);
        }
        let merged = LiveBook::new(config, workers, Engine::new(budget))
            .expect("workers >= 1, so the merged book has shards");
        let mut slots = Vec::with_capacity(workers);
        for w in 0..workers {
            let conn = try_boot(&spec, workers, budget, w, &empty_shard(), &[], 0).map_err(
                |e| match e {
                    ConnFailure::Io(message) => ClusterError::Spawn { worker: w, message },
                    ConnFailure::Fault { code, message } => ClusterError::Worker {
                        worker: w,
                        code,
                        message,
                    },
                },
            )?;
            eprintln!("cluster worker {w} started (pid {})", conn.pid());
            slots.push(Slot {
                conn,
                digest: None,
                suffix: Vec::new(),
            });
        }
        Ok(Self {
            budget,
            spec,
            slots,
            merged,
            live: BTreeSet::new(),
            next_id: 0,
            respawns: 0,
            stats: GatherStats::default(),
        })
    }

    /// The number of worker processes (== the cluster shard count).
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// The number of live offers.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no offers are live.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Every live id, ascending.
    pub fn live_ids(&self) -> Vec<u64> {
        self.live.iter().copied().collect()
    }

    /// The next id [`add`](ClusterBook::add) will assign.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// How many worker respawns the supervisor has performed.
    pub fn respawns(&self) -> u64 {
        self.respawns
    }

    /// Cumulative delta-gather counters.
    pub fn gather_stats(&self) -> GatherStats {
        self.stats
    }

    /// The current worker process ids, by shard.
    pub fn worker_pids(&self) -> Vec<u32> {
        self.slots.iter().map(|s| s.conn.pid()).collect()
    }

    /// Kills worker `w`'s process outright (SIGKILL) without telling the
    /// supervisor — a failure-injection hook for tests and the CI smoke
    /// script. The next operation touching the shard detects the broken
    /// pipe and respawns.
    pub fn kill_worker(&mut self, w: usize) {
        let _ = self.slots[w].conn.child.kill();
        let _ = self.slots[w].conn.child.wait();
    }

    /// Rebuilds worker `w` from the merged book's copy of its shard plus
    /// the slot's suffix, and clears the slot digest — a rebuilt process
    /// must prove its state with a full export on the next gather.
    /// Bounded attempts; exhaustion is [`ClusterError::WorkerLost`].
    fn respawn(&mut self, w: usize) -> Result<(), ClusterError> {
        let snapshot = self.merged.export_shard(w);
        for _ in 0..RESPAWN_ATTEMPTS {
            let boot = try_boot(
                &self.spec,
                self.slots.len(),
                self.budget,
                w,
                &snapshot,
                &self.slots[w].suffix,
                self.next_id,
            );
            match boot {
                Ok(conn) => {
                    eprintln!("cluster worker {w} respawned (pid {})", conn.pid());
                    self.slots[w].conn = conn;
                    self.slots[w].digest = None;
                    self.respawns += 1;
                    return Ok(());
                }
                // A fresh process failing with an I/O error may be bad
                // luck (it died again); try the next attempt.
                Err(ConnFailure::Io(_)) => continue,
                // A coded error replaying known-good state is a bug a
                // retry cannot fix.
                Err(ConnFailure::Fault { code, message }) => {
                    return Err(ClusterError::Worker {
                        worker: w,
                        code,
                        message,
                    })
                }
            }
        }
        Err(ClusterError::WorkerLost { worker: w })
    }

    /// Routes one mutation to its owning worker. The suffix entry is
    /// recorded *before* the round-trip so a pipe failure respawns into a
    /// state that already includes this op.
    fn route(&mut self, op: RoutedOp) -> Result<(), ClusterError> {
        let w = stable_shard(op.id(), self.slots.len());
        let request = op.request();
        self.slots[w].suffix.push(op);
        match self.slots[w].conn.roundtrip(&request) {
            Ok(_) => Ok(()),
            Err(ConnFailure::Io(_)) => self.respawn(w),
            Err(ConnFailure::Fault { code, message }) => Err(ClusterError::Worker {
                worker: w,
                code,
                message,
            }),
        }
    }

    /// Inserts an offer under a caller-assigned id (the journal-replay
    /// seeding path); the id must be fresh.
    pub fn add_at(&mut self, id: u64, offer: FlexOffer) -> Result<(), ClusterError> {
        if self.live.contains(&id) {
            return Err(ClusterError::IdTaken { id });
        }
        self.route(RoutedOp::Add { id, offer })?;
        self.live.insert(id);
        self.next_id = self.next_id.max(id.saturating_add(1));
        Ok(())
    }

    /// Inserts an offer and returns its assigned id.
    pub fn add(&mut self, offer: FlexOffer) -> Result<u64, ClusterError> {
        let id = self.next_id;
        self.add_at(id, offer)?;
        Ok(id)
    }

    /// Replaces the offer with the given id.
    pub fn update(&mut self, id: u64, offer: FlexOffer) -> Result<(), ClusterError> {
        if !self.live.contains(&id) {
            return Err(ClusterError::UnknownId { id });
        }
        self.route(RoutedOp::Update { id, offer })
    }

    /// Removes the offer with the given id.
    pub fn remove(&mut self, id: u64) -> Result<(), ClusterError> {
        if !self.live.contains(&id) {
            return Err(ClusterError::UnknownId { id });
        }
        self.route(RoutedOp::Remove { id })?;
        self.live.remove(&id);
        Ok(())
    }

    /// Collects worker `w`'s export on a connection that just failed:
    /// respawn, then one retry on the fresh process. The respawn cleared
    /// the slot digest, so the retry is unconditional and must ship full.
    fn regather_one(&mut self, w: usize) -> Result<serde::Value, ClusterError> {
        self.respawn(w)?;
        let request = WorkerRequest::Export { if_digest: None };
        match self.slots[w].conn.roundtrip(&request) {
            Ok(value) => Ok(value),
            Err(ConnFailure::Io(_)) => Err(ClusterError::WorkerLost { worker: w }),
            Err(ConnFailure::Fault { code, message }) => Err(ClusterError::Worker {
                worker: w,
                code,
                message,
            }),
        }
    }

    /// Brings the merged book up to date with every worker: pipeline
    /// conditional exports, confirm clean shards by digest, import only
    /// the dirty ones. A gathered worker's slot resets (digest :=
    /// confirmed value, suffix := empty) — the merged book *is* the
    /// respawn baseline, so the two advance together here and nowhere
    /// else. A digest hit is sound because the digest covers the
    /// canonical shard JSON: equal digest ⇒ equal canonical bytes ⇒ the
    /// merged book's copy is the worker's exact state, suffix included.
    fn gather(&mut self) -> Result<(), ClusterError> {
        let workers = self.slots.len();
        self.merged.reserve_ids(self.next_id);
        // Scatter the export requests first so workers refresh their
        // caches (and hash their shards) in parallel; replies are drained
        // in shard order.
        let mut pending: Vec<Option<u64>> = Vec::with_capacity(workers);
        for slot in &mut self.slots {
            let request = WorkerRequest::Export {
                if_digest: slot.digest,
            };
            pending.push(slot.conn.send(&request).ok());
        }
        let (mut dirty, mut cached, mut dirty_bytes) = (0u64, 0u64, 0u64);
        for (w, request) in pending.into_iter().enumerate() {
            let first = match request {
                Some(id) => self.slots[w].conn.read_reply(id),
                None => Err(ConnFailure::Io("export request write failed".to_owned())),
            };
            let value = match first {
                Ok(value) => value,
                Err(ConnFailure::Io(_)) => self.regather_one(w)?,
                Err(ConnFailure::Fault { code, message }) => {
                    return Err(ClusterError::Worker {
                        worker: w,
                        code,
                        message,
                    })
                }
            };
            let fault = |message: String| ClusterError::Worker {
                worker: w,
                code: "bad_export".to_owned(),
                message,
            };
            match parse_export_payload(&value).map_err(fault)? {
                ExportPayload::NotModified { digest } => {
                    if self.slots[w].digest != Some(digest) {
                        return Err(ClusterError::Worker {
                            worker: w,
                            code: "bad_export".to_owned(),
                            message: format!(
                                "not_modified confirmed digest {digest}, supervisor expected {:?}",
                                self.slots[w].digest
                            ),
                        });
                    }
                    cached += 1;
                }
                ExportPayload::Full { digest, book } => {
                    dirty_bytes += self.slots[w].conn.last_reply_len() as u64;
                    let shard = own_shard(w, workers, book)?;
                    // A legacy worker ships no digest; hash the shard
                    // ourselves so the *next* gather is still conditional
                    // — any full export is a digest refresh.
                    let digest = digest.unwrap_or_else(|| shard_digest(&shard));
                    self.merged
                        .import_shard(w, shard)
                        .map_err(ClusterError::Import)?;
                    self.slots[w].digest = Some(digest);
                    dirty += 1;
                }
            }
            self.slots[w].suffix.clear();
        }
        self.stats.gathers += 1;
        self.stats.dirty_shards += dirty;
        self.stats.cached_shards += cached;
        self.stats.dirty_bytes += dirty_bytes;
        eprintln!("cluster gather: {dirty} dirty / {cached} cached");
        Ok(())
    }

    /// Gathers and merges the cluster's current state into one
    /// [`BookExport`] — what a snapshot of the cluster persists. Shards
    /// arrive warm (workers refresh before exporting), so the export is
    /// as query-ready as an in-process book's.
    pub fn export(&mut self) -> Result<BookExport, ClusterError> {
        self.gather()?;
        Ok(self.merged.export())
    }

    /// Raises the id counter to at least `next_id` — the journal-replay
    /// seeding path, where ids past the last live offer (removed tail
    /// ids) must not be reassigned.
    pub fn reserve_ids(&mut self, next_id: u64) {
        self.next_id = self.next_id.max(next_id);
    }

    /// Answers one query: delta-gather, then answer off the merged book —
    /// the very same [`LiveBook`] code the in-process tier runs, so the
    /// byte-identity contract is enforced rather than re-implemented.
    pub fn answer(&mut self, kind: QueryKind) -> Result<String, ClusterError> {
        self.gather()?;
        Ok(self.merged.answer(kind))
    }

    /// Answers one query over unconditional full exports from every
    /// worker, rebuilding a fresh book from scratch — the pre-delta
    /// gather path, kept as the byte-identity oracle the delta path is
    /// tested (and benchmarked) against. Deliberately touches no slot
    /// digest, no suffix, and not the merged book, so interleaving oracle
    /// queries never helps the delta path.
    pub fn answer_full(&mut self, kind: QueryKind) -> Result<String, ClusterError> {
        let workers = self.slots.len();
        let mut pending: Vec<Option<u64>> = Vec::with_capacity(workers);
        for slot in &mut self.slots {
            let request = WorkerRequest::Export { if_digest: None };
            pending.push(slot.conn.send(&request).ok());
        }
        let mut shards = Vec::with_capacity(workers);
        for (w, request) in pending.into_iter().enumerate() {
            let first = match request {
                Some(id) => self.slots[w].conn.read_reply(id),
                None => Err(ConnFailure::Io("export request write failed".to_owned())),
            };
            let value = match first {
                Ok(value) => value,
                Err(ConnFailure::Io(_)) => self.regather_one(w)?,
                Err(ConnFailure::Fault { code, message }) => {
                    return Err(ClusterError::Worker {
                        worker: w,
                        code,
                        message,
                    })
                }
            };
            let fault = |message: String| ClusterError::Worker {
                worker: w,
                code: "bad_export".to_owned(),
                message,
            };
            let book = match parse_export_payload(&value).map_err(fault)? {
                ExportPayload::Full { book, .. } => book,
                ExportPayload::NotModified { .. } => {
                    return Err(fault(
                        "worker answered not_modified to an unconditional export".to_owned(),
                    ))
                }
            };
            shards.push(own_shard(w, workers, book)?);
        }
        let merged = BookExport {
            next_id: self.next_id,
            shards,
        };
        let mut book = LiveBook::from_export(
            self.merged.config().clone(),
            Engine::new(self.budget),
            merged,
        )
        .map_err(ClusterError::Import)?;
        Ok(book.answer(kind))
    }

    /// Applies one event — the cluster-side mirror of
    /// [`LiveBook::apply`]: mutations answer `Ok(None)`, queries
    /// `Ok(Some(answer_line))`.
    pub fn apply(&mut self, event: Event) -> Result<Option<String>, ClusterError> {
        match event {
            Event::Add(offer) => {
                self.add(offer)?;
                Ok(None)
            }
            Event::Update { id, offer } => {
                self.update(id, offer)?;
                Ok(None)
            }
            Event::Remove { id } => {
                self.remove(id)?;
                Ok(None)
            }
            Event::Query(kind) => Ok(Some(self.answer(kind)?)),
        }
    }

    /// Shuts every worker down gracefully (best effort — a worker that is
    /// already dead is simply reaped by the connection's drop).
    pub fn shutdown(&mut self) {
        for slot in &mut self.slots {
            if slot.conn.roundtrip(&WorkerRequest::Shutdown).is_ok() {
                let _ = slot.conn.child.wait();
            }
        }
    }
}

impl EventSink for ClusterBook {
    type Error = ClusterError;

    fn apply(&mut self, event: Event) -> Result<Option<String>, ClusterError> {
        ClusterBook::apply(self, event)
    }

    fn finish(&mut self) -> Result<(), ClusterError> {
        self.shutdown();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;

    fn offer() -> FlexOffer {
        FlexOffer::new(0, 4, vec![Slice::new(0, 2).unwrap()]).unwrap()
    }

    fn shard_with(ids: Vec<u64>) -> ShardExport {
        let offers = ids.iter().map(|_| offer()).collect();
        ShardExport {
            ids,
            offers,
            key_digest: 0,
            cache: None,
        }
    }

    #[test]
    fn own_shard_rejects_misshapen_and_misrouted_exports() {
        let good = BookExport {
            next_id: 9,
            shards: vec![shard_with(vec![]), shard_with(vec![1, 3])],
        };
        let shard = own_shard(1, 2, good).expect("well-shaped export");
        assert_eq!(shard.ids, vec![1, 3]);

        let short = BookExport {
            next_id: 9,
            shards: vec![shard_with(vec![])],
        };
        assert!(matches!(
            own_shard(1, 2, short),
            Err(ClusterError::Worker { worker: 1, .. })
        ));

        let foreign = BookExport {
            next_id: 9,
            shards: vec![shard_with(vec![0]), shard_with(vec![1])],
        };
        assert!(matches!(
            own_shard(1, 2, foreign),
            Err(ClusterError::Worker { worker: 1, .. })
        ));
    }

    #[test]
    fn routed_ops_render_their_wire_requests() {
        let add = RoutedOp::Add {
            id: 7,
            offer: offer(),
        };
        assert_eq!(add.id(), 7);
        assert!(matches!(
            add.request(),
            WorkerRequest::Add { offer_id: 7, .. }
        ));
        assert!(matches!(
            RoutedOp::Remove { id: 3 }.request(),
            WorkerRequest::Remove { offer_id: 3 }
        ));
    }

    #[test]
    fn cluster_errors_display_their_structure() {
        let e = ClusterError::Worker {
            worker: 2,
            code: "bad_event".to_owned(),
            message: "nope".to_owned(),
        };
        assert_eq!(e.to_string(), "cluster worker 2 failed [bad_event]: nope");
        assert!(ClusterError::WorkerLost { worker: 1 }
            .to_string()
            .contains("respawn attempts exhausted"));
        assert!(ClusterError::Import(ImportError::ZeroShards)
            .source()
            .is_some());
    }
}
