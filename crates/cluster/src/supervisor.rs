//! The cluster supervisor: scatter mutations, gather shard exports,
//! merge through the flat engine.
//!
//! A [`ClusterBook`] owns one OS process per shard. Each worker holds a
//! full K-shard [`LiveBook`] in which only its own shard is populated, so
//! the supervisor's routing — the same
//! [`stable_shard`](flexoffers_engine::stable_shard) placement the
//! in-process book uses — keeps worker `w`'s shard `w` byte-equal to
//! shard `w` of an in-process K-shard book fed the same serialized
//! mutation stream. Queries gather every worker's export, splice the
//! populated shards into one [`BookExport`], and push it through
//! [`LiveBook::from_export`] + [`LiveBook::answer`] — the merge and the
//! answer bytes come from the *same code* as the in-process tier, which
//! is what makes cross-process answers byte-identical at any
//! workers × threads × kernel budget. `from_export`'s structural
//! validation (placement, duplicate ids, digests, cache shapes) doubles
//! as wire-integrity checking on everything a worker ships back.
//!
//! # Failure handling
//!
//! Worker death is detected on the pipe (a failed write or an EOF read)
//! and repaired in place: the supervisor respawns the process, rehydrates
//! it from the worker's last gathered shard export plus a replay of the
//! mutation suffix routed to it since, and retries the in-flight
//! operation. The suffix is recorded *before* the pipe round-trip, so an
//! op that killed the pipe mid-flight is replayed into the fresh process
//! exactly once — the dead process took its copy of the book with it, so
//! there is nothing to double-apply against. Respawn attempts are
//! bounded; exhaustion surfaces as the structured
//! [`ClusterError::WorkerLost`], never a panic or a hang.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

use flexoffers_engine::{stable_shard, Budget, Engine};
use flexoffers_model::FlexOffer;
use flexoffers_serving::{
    BookExport, Event, EventSink, ImportError, LiveBook, QueryKind, ServeConfig, ShardExport,
};
use flexoffers_storage::value_to_export;
use serde::Value;

use crate::wire::{parse_reply, request_line, WorkerReply, WorkerRequest};

/// How many consecutive boot attempts a single respawn may make before
/// the worker is declared lost.
pub const RESPAWN_ATTEMPTS: usize = 3;

/// What a cluster operation can fail with. Every variant is a named,
/// structured condition — worker death mid-operation is repaired
/// internally and only surfaces here once repair itself is exhausted.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// A worker count of zero was requested; the cluster always needs at
    /// least one shard process.
    ZeroWorkers,
    /// A worker process could not be started at all (bad program path,
    /// exec failure).
    Spawn {
        /// The worker index.
        worker: usize,
        /// The spawn failure detail.
        message: String,
    },
    /// A worker died and every respawn attempt failed — the cluster can
    /// no longer answer for its shard.
    WorkerLost {
        /// The lost worker's index (== its shard).
        worker: usize,
    },
    /// A worker answered with a coded protocol error. These are
    /// deterministic (a replay would hit them again), so they are fatal
    /// rather than respawn-and-retried.
    Worker {
        /// The worker index.
        worker: usize,
        /// The machine-readable error code.
        code: String,
        /// The human-readable detail.
        message: String,
    },
    /// The merged shard exports failed [`LiveBook::from_export`]
    /// validation — a worker shipped a structurally corrupt shard.
    Import(ImportError),
    /// An update or remove referenced an id that is not live.
    UnknownId {
        /// The dead id.
        id: u64,
    },
    /// A seeded add named an id that is already live.
    IdTaken {
        /// The live id.
        id: u64,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::ZeroWorkers => f.write_str("worker count must be at least 1"),
            ClusterError::Spawn { worker, message } => {
                write!(f, "failed to start cluster worker {worker}: {message}")
            }
            ClusterError::WorkerLost { worker } => {
                write!(
                    f,
                    "cluster worker {worker} lost — {RESPAWN_ATTEMPTS} respawn attempts exhausted"
                )
            }
            ClusterError::Worker {
                worker,
                code,
                message,
            } => write!(f, "cluster worker {worker} failed [{code}]: {message}"),
            ClusterError::Import(e) => write!(f, "merged shard export rejected: {e}"),
            ClusterError::UnknownId { id } => write!(f, "unknown offer id {id} — not live"),
            ClusterError::IdTaken { id } => {
                write!(
                    f,
                    "offer id {id} is already live — seeded ids must be fresh"
                )
            }
        }
    }
}

impl Error for ClusterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClusterError::Import(e) => Some(e),
            _ => None,
        }
    }
}

/// How to start one worker process. The supervisor spawns `program` with
/// `args`, a piped stdin/stdout, and an inherited stderr (worker logs
/// land in the supervisor's stderr stream).
#[derive(Clone, Debug)]
pub struct WorkerSpec {
    /// The program to execute — `flexctl` (whose hidden `shard-worker`
    /// subcommand runs the loop) or the standalone `flex_shard_worker`.
    pub program: PathBuf,
    /// Arguments to pass before the worker takes over stdio.
    pub args: Vec<String>,
}

impl WorkerSpec {
    /// A spec running `program` with no arguments.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        Self {
            program: program.into(),
            args: Vec::new(),
        }
    }

    /// Appends one argument.
    pub fn arg(mut self, arg: impl Into<String>) -> Self {
        self.args.push(arg.into());
        self
    }
}

/// Why one pipe round-trip failed — drives the repair decision.
enum ConnFailure {
    /// The pipe broke (EPIPE, EOF, or an unreadable reply stream): the
    /// process is dead or poisoned. Repairable by respawn.
    Io(String),
    /// The worker answered with a coded error: deterministic, fatal.
    Fault {
        /// The machine-readable code.
        code: String,
        /// The human-readable detail.
        message: String,
    },
}

/// One live worker process and its pipes.
struct WorkerConn {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
    next_request: u64,
}

impl WorkerConn {
    fn spawn(spec: &WorkerSpec) -> io::Result<Self> {
        let mut child = Command::new(&spec.program)
            .args(&spec.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        Ok(Self {
            child,
            stdin,
            stdout,
            next_request: 0,
        })
    }

    fn pid(&self) -> u32 {
        self.child.id()
    }

    /// Writes one request line; returns its id for the matching read.
    fn send(&mut self, request: &WorkerRequest) -> io::Result<u64> {
        let id = self.next_request;
        self.next_request += 1;
        writeln!(self.stdin, "{}", request_line(id, request))?;
        self.stdin.flush()?;
        Ok(id)
    }

    /// Reads one reply line and checks it echoes `expect`. Anything that
    /// breaks the strict request/reply cadence — EOF, garbage, a stray
    /// id — means the stream can no longer be trusted and reads as a
    /// repairable [`ConnFailure::Io`].
    fn read_reply(&mut self, expect: u64) -> Result<Value, ConnFailure> {
        let mut line = String::new();
        let n = self
            .stdout
            .read_line(&mut line)
            .map_err(|e| ConnFailure::Io(e.to_string()))?;
        if n == 0 {
            return Err(ConnFailure::Io("worker closed its pipe".to_owned()));
        }
        let (id, reply) = parse_reply(line.trim_end()).map_err(ConnFailure::Io)?;
        if id != Some(expect) {
            return Err(ConnFailure::Io(format!(
                "reply id {id:?} does not echo request {expect}"
            )));
        }
        match reply {
            WorkerReply::Ok(payload) => Ok(payload),
            WorkerReply::Err { code, message } => Err(ConnFailure::Fault { code, message }),
        }
    }

    fn roundtrip(&mut self, request: &WorkerRequest) -> Result<Value, ConnFailure> {
        let id = self
            .send(request)
            .map_err(|e| ConnFailure::Io(e.to_string()))?;
        self.read_reply(id)
    }
}

impl Drop for WorkerConn {
    fn drop(&mut self) {
        // Best effort: a replaced or abandoned connection must not leak
        // its process or leave a zombie.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One mutation as routed to a worker — the replay unit for respawn.
#[derive(Clone, Debug)]
enum RoutedOp {
    Add { id: u64, offer: FlexOffer },
    Update { id: u64, offer: FlexOffer },
    Remove { id: u64 },
}

impl RoutedOp {
    fn id(&self) -> u64 {
        match self {
            RoutedOp::Add { id, .. } | RoutedOp::Update { id, .. } | RoutedOp::Remove { id } => *id,
        }
    }

    fn request(&self) -> WorkerRequest {
        match self {
            RoutedOp::Add { id, offer } => WorkerRequest::Add {
                offer_id: *id,
                offer: offer.clone(),
            },
            RoutedOp::Update { id, offer } => WorkerRequest::Update {
                offer_id: *id,
                offer: offer.clone(),
            },
            RoutedOp::Remove { id } => WorkerRequest::Remove { offer_id: *id },
        }
    }
}

fn empty_shard() -> ShardExport {
    ShardExport {
        ids: Vec::new(),
        offers: Vec::new(),
        key_digest: 0,
        cache: None,
    }
}

/// One worker slot: the live connection plus everything needed to rebuild
/// the process from scratch — its shard as of the last gather, and the
/// mutation suffix routed to it since.
struct Slot {
    conn: WorkerConn,
    snapshot: ShardExport,
    suffix: Vec<RoutedOp>,
}

/// Boots one worker process to operational state: spawn, `init`, `load`
/// the shard image, replay the suffix. Free function so `respawn` can
/// call it while borrowing slot state immutably.
fn try_boot(
    spec: &WorkerSpec,
    workers: usize,
    budget: Budget,
    w: usize,
    snapshot: &ShardExport,
    suffix: &[RoutedOp],
    next_id: u64,
) -> Result<WorkerConn, ConnFailure> {
    let mut conn = WorkerConn::spawn(spec).map_err(|e| ConnFailure::Io(e.to_string()))?;
    conn.roundtrip(&WorkerRequest::Init {
        shards: workers,
        threads: budget.threads(),
        kernel: budget.kernel(),
    })?;
    let shards = (0..workers)
        .map(|s| {
            if s == w {
                snapshot.clone()
            } else {
                empty_shard()
            }
        })
        .collect();
    conn.roundtrip(&WorkerRequest::Load {
        book: BookExport { next_id, shards },
    })?;
    for op in suffix {
        conn.roundtrip(&op.request())?;
    }
    Ok(conn)
}

/// Splits a worker's gathered export into its populated shard, rejecting
/// exports whose shape or placement is off. (Value-level corruption —
/// digests, duplicate ids, cache shapes — is caught later by the merged
/// [`LiveBook::from_export`].)
fn own_shard(w: usize, workers: usize, export: BookExport) -> Result<ShardExport, ClusterError> {
    let fault = |message: String| ClusterError::Worker {
        worker: w,
        code: "bad_export".to_owned(),
        message,
    };
    if export.shards.len() != workers {
        return Err(fault(format!(
            "export has {} shards, cluster has {workers}",
            export.shards.len()
        )));
    }
    for (s, shard) in export.shards.iter().enumerate() {
        if s != w && !shard.ids.is_empty() {
            return Err(fault(format!(
                "worker for shard {w} shipped {} offers in foreign shard {s}",
                shard.ids.len()
            )));
        }
    }
    let mut shards = export.shards;
    Ok(shards.swap_remove(w))
}

/// The supervisor: a live book whose shards are worker processes.
///
/// Mutations scatter to the owning worker synchronously (one pipe
/// round-trip); queries gather every worker's warmed shard export and
/// merge them through the in-process engine. The public surface mirrors
/// [`LiveBook`] — [`apply`](ClusterBook::apply) speaks the same
/// [`Event`] stream, and [`EventSink`] lets
/// [`LiveServer::spawn_sink`](flexoffers_serving::LiveServer::spawn_sink)
/// and the TCP tier drive a cluster exactly like a local book.
pub struct ClusterBook {
    config: ServeConfig,
    budget: Budget,
    spec: WorkerSpec,
    slots: Vec<Slot>,
    live: BTreeSet<u64>,
    next_id: u64,
    respawns: u64,
}

impl ClusterBook {
    /// Spawns `workers` shard processes and initializes each with the
    /// full cluster shard count and the given evaluation budget.
    pub fn spawn(
        config: ServeConfig,
        budget: Budget,
        workers: usize,
        spec: WorkerSpec,
    ) -> Result<Self, ClusterError> {
        if workers == 0 {
            return Err(ClusterError::ZeroWorkers);
        }
        let mut slots = Vec::with_capacity(workers);
        for w in 0..workers {
            let snapshot = empty_shard();
            let conn =
                try_boot(&spec, workers, budget, w, &snapshot, &[], 0).map_err(|e| match e {
                    ConnFailure::Io(message) => ClusterError::Spawn { worker: w, message },
                    ConnFailure::Fault { code, message } => ClusterError::Worker {
                        worker: w,
                        code,
                        message,
                    },
                })?;
            eprintln!("cluster worker {w} started (pid {})", conn.pid());
            slots.push(Slot {
                conn,
                snapshot,
                suffix: Vec::new(),
            });
        }
        Ok(Self {
            config,
            budget,
            spec,
            slots,
            live: BTreeSet::new(),
            next_id: 0,
            respawns: 0,
        })
    }

    /// The number of worker processes (== the cluster shard count).
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// The number of live offers.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no offers are live.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Every live id, ascending.
    pub fn live_ids(&self) -> Vec<u64> {
        self.live.iter().copied().collect()
    }

    /// The next id [`add`](ClusterBook::add) will assign.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// How many worker respawns the supervisor has performed.
    pub fn respawns(&self) -> u64 {
        self.respawns
    }

    /// The current worker process ids, by shard.
    pub fn worker_pids(&self) -> Vec<u32> {
        self.slots.iter().map(|s| s.conn.pid()).collect()
    }

    /// Kills worker `w`'s process outright (SIGKILL) without telling the
    /// supervisor — a failure-injection hook for tests and the CI smoke
    /// script. The next operation touching the shard detects the broken
    /// pipe and respawns.
    pub fn kill_worker(&mut self, w: usize) {
        let _ = self.slots[w].conn.child.kill();
        let _ = self.slots[w].conn.child.wait();
    }

    /// Rebuilds worker `w` from its slot's snapshot + suffix. Bounded
    /// attempts; exhaustion is [`ClusterError::WorkerLost`].
    fn respawn(&mut self, w: usize) -> Result<(), ClusterError> {
        for _ in 0..RESPAWN_ATTEMPTS {
            let boot = try_boot(
                &self.spec,
                self.slots.len(),
                self.budget,
                w,
                &self.slots[w].snapshot,
                &self.slots[w].suffix,
                self.next_id,
            );
            match boot {
                Ok(conn) => {
                    eprintln!("cluster worker {w} respawned (pid {})", conn.pid());
                    self.slots[w].conn = conn;
                    self.respawns += 1;
                    return Ok(());
                }
                // A fresh process failing with an I/O error may be bad
                // luck (it died again); try the next attempt.
                Err(ConnFailure::Io(_)) => continue,
                // A coded error replaying known-good state is a bug a
                // retry cannot fix.
                Err(ConnFailure::Fault { code, message }) => {
                    return Err(ClusterError::Worker {
                        worker: w,
                        code,
                        message,
                    })
                }
            }
        }
        Err(ClusterError::WorkerLost { worker: w })
    }

    /// Routes one mutation to its owning worker. The suffix entry is
    /// recorded *before* the round-trip so a pipe failure respawns into a
    /// state that already includes this op.
    fn route(&mut self, op: RoutedOp) -> Result<(), ClusterError> {
        let w = stable_shard(op.id(), self.slots.len());
        let request = op.request();
        self.slots[w].suffix.push(op);
        match self.slots[w].conn.roundtrip(&request) {
            Ok(_) => Ok(()),
            Err(ConnFailure::Io(_)) => self.respawn(w),
            Err(ConnFailure::Fault { code, message }) => Err(ClusterError::Worker {
                worker: w,
                code,
                message,
            }),
        }
    }

    /// Inserts an offer under a caller-assigned id (the journal-replay
    /// seeding path); the id must be fresh.
    pub fn add_at(&mut self, id: u64, offer: FlexOffer) -> Result<(), ClusterError> {
        if self.live.contains(&id) {
            return Err(ClusterError::IdTaken { id });
        }
        self.route(RoutedOp::Add { id, offer })?;
        self.live.insert(id);
        self.next_id = self.next_id.max(id.saturating_add(1));
        Ok(())
    }

    /// Inserts an offer and returns its assigned id.
    pub fn add(&mut self, offer: FlexOffer) -> Result<u64, ClusterError> {
        let id = self.next_id;
        self.add_at(id, offer)?;
        Ok(id)
    }

    /// Replaces the offer with the given id.
    pub fn update(&mut self, id: u64, offer: FlexOffer) -> Result<(), ClusterError> {
        if !self.live.contains(&id) {
            return Err(ClusterError::UnknownId { id });
        }
        self.route(RoutedOp::Update { id, offer })
    }

    /// Removes the offer with the given id.
    pub fn remove(&mut self, id: u64) -> Result<(), ClusterError> {
        if !self.live.contains(&id) {
            return Err(ClusterError::UnknownId { id });
        }
        self.route(RoutedOp::Remove { id })?;
        self.live.remove(&id);
        Ok(())
    }

    /// Collects worker `w`'s export on a connection that just failed:
    /// respawn, then one retry on the fresh process.
    fn regather_one(&mut self, w: usize) -> Result<Value, ClusterError> {
        self.respawn(w)?;
        match self.slots[w].conn.roundtrip(&WorkerRequest::Export) {
            Ok(value) => Ok(value),
            Err(ConnFailure::Io(_)) => Err(ClusterError::WorkerLost { worker: w }),
            Err(ConnFailure::Fault { code, message }) => Err(ClusterError::Worker {
                worker: w,
                code,
                message,
            }),
        }
    }

    /// Gathers every worker's warmed shard and splices them into one
    /// merged export under the supervisor's id counter. A successful
    /// gather also advances each slot's respawn baseline (snapshot :=
    /// gathered shard, suffix := empty), keeping replay suffixes bounded
    /// by the inter-query mutation rate.
    fn gather(&mut self) -> Result<BookExport, ClusterError> {
        let workers = self.slots.len();
        // Scatter the export requests first so workers refresh their
        // caches in parallel; replies are drained in shard order.
        let mut pending: Vec<Option<u64>> = Vec::with_capacity(workers);
        for slot in &mut self.slots {
            pending.push(slot.conn.send(&WorkerRequest::Export).ok());
        }
        let mut shards = Vec::with_capacity(workers);
        for (w, request) in pending.into_iter().enumerate() {
            let first = match request {
                Some(id) => self.slots[w].conn.read_reply(id),
                None => Err(ConnFailure::Io("export request write failed".to_owned())),
            };
            let value = match first {
                Ok(value) => value,
                Err(ConnFailure::Io(_)) => self.regather_one(w)?,
                Err(ConnFailure::Fault { code, message }) => {
                    return Err(ClusterError::Worker {
                        worker: w,
                        code,
                        message,
                    })
                }
            };
            let export = value_to_export(&value).map_err(|message| ClusterError::Worker {
                worker: w,
                code: "bad_export".to_owned(),
                message,
            })?;
            let shard = own_shard(w, workers, export)?;
            self.slots[w].snapshot = shard.clone();
            self.slots[w].suffix.clear();
            shards.push(shard);
        }
        Ok(BookExport {
            next_id: self.next_id,
            shards,
        })
    }

    /// Gathers and merges the cluster's current state into one
    /// [`BookExport`] — what a snapshot of the cluster persists. Shards
    /// arrive warm (workers refresh before exporting), so the export is
    /// as query-ready as an in-process book's.
    pub fn export(&mut self) -> Result<BookExport, ClusterError> {
        self.gather()
    }

    /// Raises the id counter to at least `next_id` — the journal-replay
    /// seeding path, where ids past the last live offer (removed tail
    /// ids) must not be reassigned.
    pub fn reserve_ids(&mut self, next_id: u64) {
        self.next_id = self.next_id.max(next_id);
    }

    /// Answers one query: gather, merge, and answer through the very same
    /// [`LiveBook`] code the in-process tier runs — this is where the
    /// byte-identity contract is enforced rather than re-implemented.
    pub fn answer(&mut self, kind: QueryKind) -> Result<String, ClusterError> {
        let merged = self.gather()?;
        let mut book = LiveBook::from_export(self.config.clone(), Engine::new(self.budget), merged)
            .map_err(ClusterError::Import)?;
        Ok(book.answer(kind))
    }

    /// Applies one event — the cluster-side mirror of
    /// [`LiveBook::apply`]: mutations answer `Ok(None)`, queries
    /// `Ok(Some(answer_line))`.
    pub fn apply(&mut self, event: Event) -> Result<Option<String>, ClusterError> {
        match event {
            Event::Add(offer) => {
                self.add(offer)?;
                Ok(None)
            }
            Event::Update { id, offer } => {
                self.update(id, offer)?;
                Ok(None)
            }
            Event::Remove { id } => {
                self.remove(id)?;
                Ok(None)
            }
            Event::Query(kind) => Ok(Some(self.answer(kind)?)),
        }
    }

    /// Shuts every worker down gracefully (best effort — a worker that is
    /// already dead is simply reaped by the connection's drop).
    pub fn shutdown(&mut self) {
        for slot in &mut self.slots {
            if slot.conn.roundtrip(&WorkerRequest::Shutdown).is_ok() {
                let _ = slot.conn.child.wait();
            }
        }
    }
}

impl EventSink for ClusterBook {
    type Error = ClusterError;

    fn apply(&mut self, event: Event) -> Result<Option<String>, ClusterError> {
        ClusterBook::apply(self, event)
    }

    fn finish(&mut self) -> Result<(), ClusterError> {
        self.shutdown();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;

    fn offer() -> FlexOffer {
        FlexOffer::new(0, 4, vec![Slice::new(0, 2).unwrap()]).unwrap()
    }

    fn shard_with(ids: Vec<u64>) -> ShardExport {
        let offers = ids.iter().map(|_| offer()).collect();
        ShardExport {
            ids,
            offers,
            key_digest: 0,
            cache: None,
        }
    }

    #[test]
    fn own_shard_rejects_misshapen_and_misrouted_exports() {
        let good = BookExport {
            next_id: 9,
            shards: vec![shard_with(vec![]), shard_with(vec![1, 3])],
        };
        let shard = own_shard(1, 2, good).expect("well-shaped export");
        assert_eq!(shard.ids, vec![1, 3]);

        let short = BookExport {
            next_id: 9,
            shards: vec![shard_with(vec![])],
        };
        assert!(matches!(
            own_shard(1, 2, short),
            Err(ClusterError::Worker { worker: 1, .. })
        ));

        let foreign = BookExport {
            next_id: 9,
            shards: vec![shard_with(vec![0]), shard_with(vec![1])],
        };
        assert!(matches!(
            own_shard(1, 2, foreign),
            Err(ClusterError::Worker { worker: 1, .. })
        ));
    }

    #[test]
    fn routed_ops_render_their_wire_requests() {
        let add = RoutedOp::Add {
            id: 7,
            offer: offer(),
        };
        assert_eq!(add.id(), 7);
        assert!(matches!(
            add.request(),
            WorkerRequest::Add { offer_id: 7, .. }
        ));
        assert!(matches!(
            RoutedOp::Remove { id: 3 }.request(),
            WorkerRequest::Remove { offer_id: 3 }
        ));
    }

    #[test]
    fn cluster_errors_display_their_structure() {
        let e = ClusterError::Worker {
            worker: 2,
            code: "bad_event".to_owned(),
            message: "nope".to_owned(),
        };
        assert_eq!(e.to_string(), "cluster worker 2 failed [bad_event]: nope");
        assert!(ClusterError::WorkerLost { worker: 1 }
            .to_string()
            .contains("respawn attempts exhausted"));
        assert!(ClusterError::Import(ImportError::ZeroShards)
            .source()
            .is_some());
    }
}
