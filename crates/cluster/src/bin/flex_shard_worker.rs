//! `flex_shard_worker` — a standalone shard-worker process.
//!
//! Speaks the `flexoffers-worker/1` protocol over stdin/stdout and exits
//! when its supervisor shuts it down or closes the pipe. Normally spawned
//! by a [`ClusterBook`](flexoffers_cluster::ClusterBook) (production uses
//! `flexctl shard-worker` via the current executable; tests and benches
//! use this binary directly) — there is nothing useful to do with it
//! interactively.

use std::process::ExitCode;

fn main() -> ExitCode {
    match flexoffers_cluster::run_stdio_worker() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: shard worker io: {e}");
            ExitCode::FAILURE
        }
    }
}
