//! The supervisor ↔ worker wire protocol.
//!
//! One request per line over the worker's stdin, one reply per line over
//! its stdout — the same envelope conventions as the TCP tier's
//! `flexoffers-jsonl/1` framing (`docs/PROTOCOL.md`): requests carry a
//! strictly increasing integer `id` that every reply echoes, success is
//! `{"id":N,"ok":…}`, failure is
//! `{"id":N,"error":{"code":…,"message":…}}`. The payloads reuse the
//! stack's existing codecs — offers serialize exactly as they do in serve
//! scripts and the journal, and a shipped book image is byte-for-byte the
//! snapshot body ([`flexoffers_storage::export_to_value`]), so the wire
//! format cannot drift from the persistence format.
//!
//! The request set is deliberately tiny — the supervisor owns all policy
//! (id assignment, routing, validation, retry) and a worker is a dumb
//! shard executor:
//!
//! ```text
//! {"id":N,"op":"init","shards":K,"threads":T,"kernel":"auto"}
//! {"id":N,"op":"add","offer_id":I,"offer":{…}}
//! {"id":N,"op":"update","offer_id":I,"offer":{…}}
//! {"id":N,"op":"remove","offer_id":I}
//! {"id":N,"op":"export"}
//! {"id":N,"op":"load","book":{…}}
//! {"id":N,"op":"shutdown"}
//! ```

use flexoffers_engine::Kernel;
use flexoffers_model::FlexOffer;
use flexoffers_serving::BookExport;
use flexoffers_storage::{export_to_value, value_to_export};
use serde::{Deserialize, Serialize, Value};

/// The worker wire-format version (reported in errors and docs; the
/// framing itself carries no version field — supervisor and workers are
/// always the same build, spawned from the same binary).
pub const WORKER_PROTOCOL: &str = "flexoffers-worker/1";

/// One supervisor → worker request.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkerRequest {
    /// Create the worker's book: `shards` is the *total* cluster shard
    /// count (the worker populates only its own), `threads`/`kernel` its
    /// evaluation budget.
    Init {
        /// Total shard count across the cluster.
        shards: usize,
        /// Worker-local thread budget.
        threads: usize,
        /// Worker-local kernel selector.
        kernel: Kernel,
    },
    /// Insert an offer under a supervisor-assigned global id.
    Add {
        /// The global logical id.
        offer_id: u64,
        /// The offer.
        offer: FlexOffer,
    },
    /// Replace the offer with global id `offer_id` in place.
    Update {
        /// The global logical id.
        offer_id: u64,
        /// The replacement offer.
        offer: FlexOffer,
    },
    /// Remove the offer with global id `offer_id`.
    Remove {
        /// The global logical id.
        offer_id: u64,
    },
    /// Refresh caches and reply with the worker's full book export.
    Export,
    /// Replace the worker's book with this image (respawn rehydration).
    Load {
        /// The book image; every shard except the worker's own is empty.
        book: BookExport,
    },
    /// Acknowledge and exit the worker loop.
    Shutdown,
}

/// One worker → supervisor reply (without its echoed request id).
#[derive(Clone, Debug, PartialEq)]
pub enum WorkerReply {
    /// Success; `export` replies carry the book value, everything else
    /// `true`.
    Ok(Value),
    /// Failure, with a machine-readable code — any error is a supervisor
    /// bug or a poisoned worker, and the supervisor treats it as fatal for
    /// that worker.
    Err {
        /// Machine-readable code (`bad_frame`, `bad_request`, `no_book`,
        /// `bad_event`, `bad_book`).
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Renders one request line (no trailing newline).
pub fn request_line(id: u64, request: &WorkerRequest) -> String {
    let mut fields = vec![("id", Value::U64(id))];
    let op = |name: &str| Value::Str(name.to_owned());
    match request {
        WorkerRequest::Init {
            shards,
            threads,
            kernel,
        } => {
            fields.push(("op", op("init")));
            fields.push(("shards", Value::U64(*shards as u64)));
            fields.push(("threads", Value::U64(*threads as u64)));
            fields.push(("kernel", Value::Str(kernel.label().to_owned())));
        }
        WorkerRequest::Add { offer_id, offer } => {
            fields.push(("op", op("add")));
            fields.push(("offer_id", Value::U64(*offer_id)));
            fields.push(("offer", offer.to_value()));
        }
        WorkerRequest::Update { offer_id, offer } => {
            fields.push(("op", op("update")));
            fields.push(("offer_id", Value::U64(*offer_id)));
            fields.push(("offer", offer.to_value()));
        }
        WorkerRequest::Remove { offer_id } => {
            fields.push(("op", op("remove")));
            fields.push(("offer_id", Value::U64(*offer_id)));
        }
        WorkerRequest::Export => fields.push(("op", op("export"))),
        WorkerRequest::Load { book } => {
            fields.push(("op", op("load")));
            fields.push(("book", export_to_value(book)));
        }
        WorkerRequest::Shutdown => fields.push(("op", op("shutdown"))),
    }
    serde_json::to_string(&obj(fields)).expect("request values serialize")
}

fn get_u64(v: &Value, name: &str) -> Result<u64, String> {
    let field = v.get(name).ok_or_else(|| format!("missing `{name}`"))?;
    u64::from_value(field).map_err(|e| format!("`{name}`: {e}"))
}

fn get_usize(v: &Value, name: &str) -> Result<usize, String> {
    usize::try_from(get_u64(v, name)?).map_err(|_| format!("`{name}` out of range"))
}

fn get_offer(v: &Value) -> Result<FlexOffer, String> {
    let field = v.get("offer").ok_or("missing `offer`")?;
    FlexOffer::from_value(field).map_err(|e| format!("`offer`: {e}"))
}

/// Parses one request line into its id and request. A missing/invalid id
/// still fails with a message — the worker answers `{"id":null,…}` then.
pub fn parse_request(line: &str) -> Result<(u64, WorkerRequest), String> {
    let value: Value =
        serde_json::from_str(line).map_err(|e| format!("malformed request JSON: {e}"))?;
    let id = get_u64(&value, "id")?;
    let op = value
        .get("op")
        .and_then(Value::as_str)
        .ok_or("missing or non-string `op`")?;
    let request = match op {
        "init" => {
            let kernel_label = value
                .get("kernel")
                .and_then(Value::as_str)
                .ok_or("missing or non-string `kernel`")?;
            WorkerRequest::Init {
                shards: get_usize(&value, "shards")?,
                threads: get_usize(&value, "threads")?,
                kernel: Kernel::parse(kernel_label)
                    .ok_or_else(|| format!("unknown kernel `{kernel_label}`"))?,
            }
        }
        "add" => WorkerRequest::Add {
            offer_id: get_u64(&value, "offer_id")?,
            offer: get_offer(&value)?,
        },
        "update" => WorkerRequest::Update {
            offer_id: get_u64(&value, "offer_id")?,
            offer: get_offer(&value)?,
        },
        "remove" => WorkerRequest::Remove {
            offer_id: get_u64(&value, "offer_id")?,
        },
        "export" => WorkerRequest::Export,
        "load" => {
            let book = value.get("book").ok_or("missing `book`")?;
            WorkerRequest::Load {
                book: value_to_export(book).map_err(|e| format!("`book`: {e}"))?,
            }
        }
        "shutdown" => WorkerRequest::Shutdown,
        other => return Err(format!("unknown op `{other}`")),
    };
    Ok((id, request))
}

/// Renders a success reply line.
pub fn ok_line(id: u64, payload: Value) -> String {
    serde_json::to_string(&obj(vec![("id", Value::U64(id)), ("ok", payload)]))
        .expect("reply values serialize")
}

/// Renders an error reply line; `id` is `None` when the request line was
/// unreadable.
pub fn error_line(id: Option<u64>, code: &str, message: &str) -> String {
    let id = id.map_or(Value::Null, Value::U64);
    let error = obj(vec![
        ("code", Value::Str(code.to_owned())),
        ("message", Value::Str(message.to_owned())),
    ]);
    serde_json::to_string(&obj(vec![("id", id), ("error", error)])).expect("reply values serialize")
}

/// Parses one reply line into its echoed id (None for `null`) and payload.
pub fn parse_reply(line: &str) -> Result<(Option<u64>, WorkerReply), String> {
    let value: Value =
        serde_json::from_str(line).map_err(|e| format!("malformed reply JSON: {e}"))?;
    let id = match value.get("id").ok_or("missing `id`")? {
        Value::Null => None,
        other => Some(u64::from_value(other).map_err(|e| format!("`id`: {e}"))?),
    };
    if let Some(payload) = value.get("ok") {
        return Ok((id, WorkerReply::Ok(payload.clone())));
    }
    let error = value.get("error").ok_or("neither `ok` nor `error`")?;
    let text = |name: &str| -> Result<String, String> {
        Ok(error
            .get(name)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("`error.{name}`: expected string"))?
            .to_owned())
    };
    Ok((
        id,
        WorkerReply::Err {
            code: text("code")?,
            message: text("message")?,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;

    fn offer() -> FlexOffer {
        FlexOffer::new(1, 4, vec![Slice::new(-1, 2).unwrap()]).unwrap()
    }

    #[test]
    fn requests_round_trip_through_their_lines() {
        let book = BookExport {
            next_id: 3,
            shards: vec![flexoffers_serving::ShardExport {
                ids: vec![0, 2],
                offers: vec![offer(), offer()],
                key_digest: 7,
                cache: None,
            }],
        };
        for (id, request) in [
            (
                0,
                WorkerRequest::Init {
                    shards: 4,
                    threads: 2,
                    kernel: Kernel::Columnar,
                },
            ),
            (
                1,
                WorkerRequest::Add {
                    offer_id: 9,
                    offer: offer(),
                },
            ),
            (
                2,
                WorkerRequest::Update {
                    offer_id: 9,
                    offer: offer(),
                },
            ),
            (3, WorkerRequest::Remove { offer_id: 9 }),
            (4, WorkerRequest::Export),
            (5, WorkerRequest::Load { book }),
            (6, WorkerRequest::Shutdown),
        ] {
            let line = request_line(id, &request);
            let (back_id, back) = parse_request(&line).expect(&line);
            assert_eq!(back_id, id, "{line}");
            assert_eq!(back, request, "{line}");
        }
    }

    #[test]
    fn replies_round_trip_and_malformed_lines_are_messages() {
        let (id, reply) = parse_reply(&ok_line(7, Value::Bool(true))).unwrap();
        assert_eq!(id, Some(7));
        assert_eq!(reply, WorkerReply::Ok(Value::Bool(true)));

        let (id, reply) = parse_reply(&error_line(None, "bad_frame", "nope")).unwrap();
        assert_eq!(id, None);
        assert_eq!(
            reply,
            WorkerReply::Err {
                code: "bad_frame".to_owned(),
                message: "nope".to_owned()
            }
        );

        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"id\":1,\"op\":\"sing\"}").is_err());
        assert!(parse_request("{\"op\":\"export\"}").is_err(), "id required");
        assert!(parse_reply("{\"id\":1}").is_err());
    }
}
