//! The supervisor ↔ worker wire protocol.
//!
//! One request per line over the worker's stdin, one reply per line over
//! its stdout — the same envelope conventions as the TCP tier's
//! `flexoffers-jsonl/1` framing (`docs/PROTOCOL.md`): requests carry a
//! strictly increasing integer `id` that every reply echoes, success is
//! `{"id":N,"ok":…}`, failure is
//! `{"id":N,"error":{"code":…,"message":…}}`. The payloads reuse the
//! stack's existing codecs — offers serialize exactly as they do in serve
//! scripts and the journal, and a shipped book image is byte-for-byte the
//! snapshot body ([`flexoffers_storage::export_to_value`]), so the wire
//! format cannot drift from the persistence format.
//!
//! The request set is deliberately tiny — the supervisor owns all policy
//! (id assignment, routing, validation, retry) and a worker is a dumb
//! shard executor:
//!
//! ```text
//! {"id":N,"op":"init","shard":W,"shards":K,"threads":T,"kernel":"auto"}
//! {"id":N,"op":"add","offer_id":I,"offer":{…}}
//! {"id":N,"op":"update","offer_id":I,"offer":{…}}
//! {"id":N,"op":"remove","offer_id":I}
//! {"id":N,"op":"export"}                 — unconditional full export
//! {"id":N,"op":"export","if_digest":D}   — conditional (delta gather)
//! {"id":N,"op":"load","book":{…}}
//! {"id":N,"op":"shutdown"}
//! ```
//!
//! A conditional export is answered `{"not_modified":true,"digest":D}`
//! when the worker's shard **state digest** — FNV-1a 64 over the
//! canonical single-line JSON of its own [`ShardExport`] body
//! ([`flexoffers_storage::shard_digest`]), which embeds the commutative
//! `key_digest` — still equals `D`; otherwise the worker ships
//! `{"digest":D',"book":{…}}`. Compatibility is free in both directions:
//! a worker that predates `if_digest` ignores the unknown field and
//! always ships a full export, and a supervisor that receives a bare
//! `{…"next_id":…}` book (no `digest` wrapper) treats it as a digest
//! refresh it computes itself.

use flexoffers_engine::Kernel;
use flexoffers_model::FlexOffer;
use flexoffers_serving::BookExport;
use flexoffers_storage::{export_to_value, value_to_export};
use serde::{Deserialize, Serialize, Value};

/// The worker wire-format version (reported in errors and docs; the
/// framing itself carries no version field — supervisor and workers are
/// always the same build, spawned from the same binary).
pub const WORKER_PROTOCOL: &str = "flexoffers-worker/1";

/// One supervisor → worker request.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkerRequest {
    /// Create the worker's book: `shard` is the worker's own index (the
    /// one shard of its book it populates and digests), `shards` the
    /// *total* cluster shard count, `threads`/`kernel` its evaluation
    /// budget.
    Init {
        /// This worker's own shard index (`< shards`).
        shard: usize,
        /// Total shard count across the cluster.
        shards: usize,
        /// Worker-local thread budget.
        threads: usize,
        /// Worker-local kernel selector.
        kernel: Kernel,
    },
    /// Insert an offer under a supervisor-assigned global id.
    Add {
        /// The global logical id.
        offer_id: u64,
        /// The offer.
        offer: FlexOffer,
    },
    /// Replace the offer with global id `offer_id` in place.
    Update {
        /// The global logical id.
        offer_id: u64,
        /// The replacement offer.
        offer: FlexOffer,
    },
    /// Remove the offer with global id `offer_id`.
    Remove {
        /// The global logical id.
        offer_id: u64,
    },
    /// Refresh caches and reply with the worker's book export — unless
    /// `if_digest` matches the worker's current shard state digest, in
    /// which case the reply is the tiny `not_modified` frame. `None`
    /// always ships the full export (respawn re-baselining, snapshots,
    /// and the full-gather oracle use this).
    Export {
        /// The supervisor's last-seen state digest for this shard.
        if_digest: Option<u64>,
    },
    /// Replace the worker's book with this image (respawn rehydration).
    Load {
        /// The book image; every shard except the worker's own is empty.
        book: BookExport,
    },
    /// Acknowledge and exit the worker loop.
    Shutdown,
}

/// One worker → supervisor reply (without its echoed request id).
#[derive(Clone, Debug, PartialEq)]
pub enum WorkerReply {
    /// Success; `export` replies carry the book value, everything else
    /// `true`.
    Ok(Value),
    /// Failure, with a machine-readable code — any error is a supervisor
    /// bug or a poisoned worker, and the supervisor treats it as fatal for
    /// that worker.
    Err {
        /// Machine-readable code (`bad_frame`, `bad_request`, `no_book`,
        /// `bad_event`, `bad_book`).
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Renders one request line (no trailing newline).
pub fn request_line(id: u64, request: &WorkerRequest) -> String {
    let mut line = String::new();
    write_request_line(&mut line, id, request);
    line
}

/// Renders one request line (no trailing newline) into `buf`, clearing it
/// first — the supervisor keeps one buffer per worker connection so the
/// per-event scatter reuses its allocation across roundtrips.
pub fn write_request_line(buf: &mut String, id: u64, request: &WorkerRequest) {
    buf.clear();
    let mut fields = vec![("id", Value::U64(id))];
    let op = |name: &str| Value::Str(name.to_owned());
    match request {
        WorkerRequest::Init {
            shard,
            shards,
            threads,
            kernel,
        } => {
            fields.push(("op", op("init")));
            fields.push(("shard", Value::U64(*shard as u64)));
            fields.push(("shards", Value::U64(*shards as u64)));
            fields.push(("threads", Value::U64(*threads as u64)));
            fields.push(("kernel", Value::Str(kernel.label().to_owned())));
        }
        WorkerRequest::Add { offer_id, offer } => {
            fields.push(("op", op("add")));
            fields.push(("offer_id", Value::U64(*offer_id)));
            fields.push(("offer", offer.to_value()));
        }
        WorkerRequest::Update { offer_id, offer } => {
            fields.push(("op", op("update")));
            fields.push(("offer_id", Value::U64(*offer_id)));
            fields.push(("offer", offer.to_value()));
        }
        WorkerRequest::Remove { offer_id } => {
            fields.push(("op", op("remove")));
            fields.push(("offer_id", Value::U64(*offer_id)));
        }
        WorkerRequest::Export { if_digest } => {
            fields.push(("op", op("export")));
            // `None` serializes as an absent field, so an unconditional
            // export is byte-identical to the pre-delta wire — and an old
            // worker parsing a conditional one simply never sees the key.
            if let Some(digest) = if_digest {
                fields.push(("if_digest", Value::U64(*digest)));
            }
        }
        WorkerRequest::Load { book } => {
            fields.push(("op", op("load")));
            fields.push(("book", export_to_value(book)));
        }
        WorkerRequest::Shutdown => fields.push(("op", op("shutdown"))),
    }
    serde_json::to_string_into(&obj(fields), buf).expect("request values serialize");
}

fn get_u64(v: &Value, name: &str) -> Result<u64, String> {
    let field = v.get(name).ok_or_else(|| format!("missing `{name}`"))?;
    u64::from_value(field).map_err(|e| format!("`{name}`: {e}"))
}

fn get_usize(v: &Value, name: &str) -> Result<usize, String> {
    usize::try_from(get_u64(v, name)?).map_err(|_| format!("`{name}` out of range"))
}

fn get_offer(v: &Value) -> Result<FlexOffer, String> {
    let field = v.get("offer").ok_or("missing `offer`")?;
    FlexOffer::from_value(field).map_err(|e| format!("`offer`: {e}"))
}

/// Parses one request line into its id and request. A missing/invalid id
/// still fails with a message — the worker answers `{"id":null,…}` then.
pub fn parse_request(line: &str) -> Result<(u64, WorkerRequest), String> {
    let value: Value =
        serde_json::from_str(line).map_err(|e| format!("malformed request JSON: {e}"))?;
    let id = get_u64(&value, "id")?;
    let op = value
        .get("op")
        .and_then(Value::as_str)
        .ok_or("missing or non-string `op`")?;
    let request = match op {
        "init" => {
            let kernel_label = value
                .get("kernel")
                .and_then(Value::as_str)
                .ok_or("missing or non-string `kernel`")?;
            WorkerRequest::Init {
                shard: get_usize(&value, "shard")?,
                shards: get_usize(&value, "shards")?,
                threads: get_usize(&value, "threads")?,
                kernel: Kernel::parse(kernel_label)
                    .ok_or_else(|| format!("unknown kernel `{kernel_label}`"))?,
            }
        }
        "add" => WorkerRequest::Add {
            offer_id: get_u64(&value, "offer_id")?,
            offer: get_offer(&value)?,
        },
        "update" => WorkerRequest::Update {
            offer_id: get_u64(&value, "offer_id")?,
            offer: get_offer(&value)?,
        },
        "remove" => WorkerRequest::Remove {
            offer_id: get_u64(&value, "offer_id")?,
        },
        "export" => WorkerRequest::Export {
            if_digest: match value.get("if_digest") {
                None => None,
                Some(field) => {
                    Some(u64::from_value(field).map_err(|e| format!("`if_digest`: {e}"))?)
                }
            },
        },
        "load" => {
            let book = value.get("book").ok_or("missing `book`")?;
            WorkerRequest::Load {
                book: value_to_export(book).map_err(|e| format!("`book`: {e}"))?,
            }
        }
        "shutdown" => WorkerRequest::Shutdown,
        other => return Err(format!("unknown op `{other}`")),
    };
    Ok((id, request))
}

/// Renders a success reply line.
pub fn ok_line(id: u64, payload: Value) -> String {
    serde_json::to_string(&obj(vec![("id", Value::U64(id)), ("ok", payload)]))
        .expect("reply values serialize")
}

/// Renders a success reply line around an already-serialized payload —
/// the worker's export path splices its cached shard JSON straight into
/// the frame instead of re-serializing a value tree.
pub fn ok_line_raw(id: u64, payload_json: &str) -> String {
    let mut line = String::with_capacity(payload_json.len() + 24);
    line.push_str("{\"id\":");
    line.push_str(&id.to_string());
    line.push_str(",\"ok\":");
    line.push_str(payload_json);
    line.push('}');
    line
}

/// The payload of a conditional export hit: `if_digest` still matches.
pub fn not_modified_payload(digest: u64) -> String {
    format!("{{\"not_modified\":true,\"digest\":{digest}}}")
}

/// The payload of a conditional export miss: the digest of the worker's
/// own shard plus its full book, with the worker's own shard spliced in
/// from `own_shard_json` (the exact bytes the digest was computed over —
/// serialized once, hashed and shipped) and every other shard the
/// canonical empty image.
pub fn full_export_payload(
    digest: u64,
    next_id: u64,
    shards: usize,
    own: usize,
    own_shard_json: &str,
) -> String {
    const EMPTY_SHARD: &str = "{\"ids\":[],\"offers\":[],\"key_digest\":0,\"cache\":null}";
    let mut payload = String::with_capacity(own_shard_json.len() + 64 + shards * EMPTY_SHARD.len());
    payload.push_str("{\"digest\":");
    payload.push_str(&digest.to_string());
    payload.push_str(",\"book\":{\"next_id\":");
    payload.push_str(&next_id.to_string());
    payload.push_str(",\"shards\":[");
    for s in 0..shards {
        if s > 0 {
            payload.push(',');
        }
        payload.push_str(if s == own {
            own_shard_json
        } else {
            EMPTY_SHARD
        });
    }
    payload.push_str("]}}");
    payload
}

/// A parsed conditional-export reply payload.
#[derive(Clone, Debug, PartialEq)]
pub enum ExportPayload {
    /// The worker's shard still matches the supervisor's digest; nothing
    /// was shipped.
    NotModified {
        /// The digest the worker confirmed.
        digest: u64,
    },
    /// A full export. `digest` is the worker's own-shard state digest;
    /// `None` marks the legacy bare-book shape (a worker that predates
    /// conditional exports), which the supervisor digests itself.
    Full {
        /// The shipped shard's state digest, when the worker computed it.
        digest: Option<u64>,
        /// The worker's book image.
        book: BookExport,
    },
}

/// Parses an export reply's `ok` payload: the `not_modified` frame, the
/// digest-wrapped book, or a legacy bare book (`next_id` at top level).
pub fn parse_export_payload(payload: &Value) -> Result<ExportPayload, String> {
    if payload
        .get("not_modified")
        .is_some_and(|flag| flag == &Value::Bool(true))
    {
        return Ok(ExportPayload::NotModified {
            digest: get_u64(payload, "digest")?,
        });
    }
    if let Some(book) = payload.get("book") {
        return Ok(ExportPayload::Full {
            digest: Some(get_u64(payload, "digest")?),
            book: value_to_export(book).map_err(|e| format!("`book`: {e}"))?,
        });
    }
    if payload.get("next_id").is_some() {
        return Ok(ExportPayload::Full {
            digest: None,
            book: value_to_export(payload).map_err(|e| format!("legacy book: {e}"))?,
        });
    }
    Err("export payload is neither `not_modified`, a wrapped `book`, nor a bare book".to_owned())
}

/// Renders an error reply line; `id` is `None` when the request line was
/// unreadable.
pub fn error_line(id: Option<u64>, code: &str, message: &str) -> String {
    let id = id.map_or(Value::Null, Value::U64);
    let error = obj(vec![
        ("code", Value::Str(code.to_owned())),
        ("message", Value::Str(message.to_owned())),
    ]);
    serde_json::to_string(&obj(vec![("id", id), ("error", error)])).expect("reply values serialize")
}

/// Parses one reply line into its echoed id (None for `null`) and payload.
pub fn parse_reply(line: &str) -> Result<(Option<u64>, WorkerReply), String> {
    let value: Value =
        serde_json::from_str(line).map_err(|e| format!("malformed reply JSON: {e}"))?;
    let id = match value.get("id").ok_or("missing `id`")? {
        Value::Null => None,
        other => Some(u64::from_value(other).map_err(|e| format!("`id`: {e}"))?),
    };
    if let Some(payload) = value.get("ok") {
        return Ok((id, WorkerReply::Ok(payload.clone())));
    }
    let error = value.get("error").ok_or("neither `ok` nor `error`")?;
    let text = |name: &str| -> Result<String, String> {
        Ok(error
            .get(name)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("`error.{name}`: expected string"))?
            .to_owned())
    };
    Ok((
        id,
        WorkerReply::Err {
            code: text("code")?,
            message: text("message")?,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;

    fn offer() -> FlexOffer {
        FlexOffer::new(1, 4, vec![Slice::new(-1, 2).unwrap()]).unwrap()
    }

    #[test]
    fn requests_round_trip_through_their_lines() {
        let book = BookExport {
            next_id: 3,
            shards: vec![flexoffers_serving::ShardExport {
                ids: vec![0, 2],
                offers: vec![offer(), offer()],
                key_digest: 7,
                cache: None,
            }],
        };
        for (id, request) in [
            (
                0,
                WorkerRequest::Init {
                    shard: 1,
                    shards: 4,
                    threads: 2,
                    kernel: Kernel::Columnar,
                },
            ),
            (
                1,
                WorkerRequest::Add {
                    offer_id: 9,
                    offer: offer(),
                },
            ),
            (
                2,
                WorkerRequest::Update {
                    offer_id: 9,
                    offer: offer(),
                },
            ),
            (3, WorkerRequest::Remove { offer_id: 9 }),
            (4, WorkerRequest::Export { if_digest: None }),
            (
                5,
                WorkerRequest::Export {
                    if_digest: Some(0xdead_beef),
                },
            ),
            (6, WorkerRequest::Load { book }),
            (7, WorkerRequest::Shutdown),
        ] {
            let line = request_line(id, &request);
            let (back_id, back) = parse_request(&line).expect(&line);
            assert_eq!(back_id, id, "{line}");
            assert_eq!(back, request, "{line}");
        }
    }

    #[test]
    fn unconditional_exports_keep_the_pre_delta_line_bytes() {
        // The compatibility rule's supervisor half: `None` must serialize
        // with no `if_digest` key at all, so an old worker sees exactly
        // the frame it always has.
        assert_eq!(
            request_line(4, &WorkerRequest::Export { if_digest: None }),
            "{\"id\":4,\"op\":\"export\"}"
        );
        assert!(
            request_line(4, &WorkerRequest::Export { if_digest: Some(1) })
                .contains("\"if_digest\":1")
        );
    }

    #[test]
    fn write_request_line_reuses_its_buffer() {
        let mut buf = String::from("stale contents");
        write_request_line(&mut buf, 3, &WorkerRequest::Remove { offer_id: 9 });
        assert_eq!(buf, request_line(3, &WorkerRequest::Remove { offer_id: 9 }));
    }

    #[test]
    fn raw_ok_lines_match_the_value_path() {
        assert_eq!(ok_line_raw(7, "true"), ok_line(7, Value::Bool(true)));
        let payload = obj(vec![("digest", Value::U64(12))]);
        assert_eq!(
            ok_line_raw(7, &serde_json::to_string(&payload).unwrap()),
            ok_line(7, payload)
        );
    }

    #[test]
    fn export_payloads_parse_in_all_three_shapes() {
        let shard = flexoffers_serving::ShardExport {
            ids: vec![0, 2],
            offers: vec![offer(), offer()],
            key_digest: 7,
            cache: None,
        };
        let own_json = serde_json::to_string(&flexoffers_storage::shard_to_value(&shard)).unwrap();
        let digest = flexoffers_storage::shard_digest(&shard);

        // Hit.
        let hit: Value = serde_json::from_str(&not_modified_payload(digest)).unwrap();
        assert_eq!(
            parse_export_payload(&hit).unwrap(),
            ExportPayload::NotModified { digest }
        );

        // Miss: the spliced frame parses to the digest plus a book whose
        // only populated shard is the worker's own at index 1 of 3.
        let miss: Value =
            serde_json::from_str(&full_export_payload(digest, 5, 3, 1, &own_json)).unwrap();
        let ExportPayload::Full { digest: got, book } = parse_export_payload(&miss).unwrap() else {
            panic!("full payload expected")
        };
        assert_eq!(got, Some(digest));
        assert_eq!(book.next_id, 5);
        assert_eq!(book.shards.len(), 3);
        assert_eq!(book.shards[1], shard);
        assert!(book.shards[0].ids.is_empty() && book.shards[2].ids.is_empty());

        // Legacy: a bare book refreshes with no worker-computed digest.
        let bare = export_to_value(&book);
        assert_eq!(
            parse_export_payload(&bare).unwrap(),
            ExportPayload::Full { digest: None, book }
        );

        // Garbage is a message.
        assert!(parse_export_payload(&Value::Bool(true)).is_err());
        assert!(parse_export_payload(&obj(vec![("not_modified", Value::Bool(true))])).is_err());
    }

    #[test]
    fn replies_round_trip_and_malformed_lines_are_messages() {
        let (id, reply) = parse_reply(&ok_line(7, Value::Bool(true))).unwrap();
        assert_eq!(id, Some(7));
        assert_eq!(reply, WorkerReply::Ok(Value::Bool(true)));

        let (id, reply) = parse_reply(&error_line(None, "bad_frame", "nope")).unwrap();
        assert_eq!(id, None);
        assert_eq!(
            reply,
            WorkerReply::Err {
                code: "bad_frame".to_owned(),
                message: "nope".to_owned()
            }
        );

        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"id\":1,\"op\":\"sing\"}").is_err());
        assert!(parse_request("{\"op\":\"export\"}").is_err(), "id required");
        assert!(parse_reply("{\"id\":1}").is_err());
    }
}
