//! The shard-worker loop: a dumb shard executor driven over stdio.
//!
//! A worker holds a full K-shard [`LiveBook`] in which only its own shard
//! (named at `init`) ever receives offers — the supervisor routes each
//! mutation to the worker that owns `stable_shard(id, K)`, so the ids land
//! in their stable shard *by construction* and the worker's populated
//! shard stays byte-equal to the corresponding shard of an in-process
//! K-shard book fed the same serialized mutation stream. The worker never
//! answers queries itself: `export` refreshes its caches and ships the
//! book image, and the supervisor merges the gathered shards into its
//! persistent book so answer bytes come from the same code path as the
//! in-process tier.
//!
//! # The state digest
//!
//! Each worker maintains its shard **state digest** incrementally across
//! events: any mutation (or `load`) invalidates it, and the next `export`
//! recomputes it lazily — FNV-1a 64 over the canonical single-line JSON
//! of the worker's own [`ShardExport`](flexoffers_serving::ShardExport)
//! body ([`flexoffers_storage::shard_digest`]), which embeds the
//! commutative `key_digest`. While the worker is clean, a conditional
//! `export {if_digest}` whose digest matches answers with the tiny
//! `not_modified` frame and serializes nothing; on a miss the cached
//! canonical JSON (the exact bytes the digest covers) is spliced straight
//! into the reply, so the shard body is serialized once per state, not
//! once per gather.
//!
//! The loop is strictly sequential request/reply (the supervisor pipelines
//! at most one outstanding request per worker per operation), flushes
//! after every reply, and exits cleanly on `shutdown` or stdin EOF — a
//! supervisor crash tears the pipe and reaps the whole tree.

use std::io::{self, BufRead, Write};

use flexoffers_engine::{Budget, Engine};
use flexoffers_serving::{LiveBook, ServeConfig};
use flexoffers_storage::{fnv1a64, shard_to_value};

use crate::wire::{
    error_line, full_export_payload, not_modified_payload, ok_line_raw, parse_request,
    WorkerRequest,
};

/// The worker's post-`init` state: its book, which shard of it is its own,
/// and the lazily (re)computed state digest with the canonical shard JSON
/// it was computed over.
struct WorkerState {
    budget: Budget,
    shard: usize,
    book: LiveBook,
    /// `Some((digest, canonical_shard_json))` while no mutation has
    /// touched the book since the digest was computed.
    digest: Option<(u64, String)>,
}

/// Runs the worker loop over arbitrary reader/writer pairs (the stdio
/// binary passes locked stdin/stdout; tests pass in-memory pipes).
///
/// Returns when the input reaches EOF or a `shutdown` request is
/// acknowledged. I/O errors on the reply channel propagate — with a dead
/// supervisor there is nobody left to serve.
pub fn run_worker<R: BufRead, W: Write>(input: R, mut output: W) -> io::Result<()> {
    // The book only exists after `init`; the config is irrelevant to a
    // worker (it shapes query *answers*, and answers happen at the
    // supervisor merge), so the default serves. The budget rides along so
    // `load` can rebuild a book under the same engine settings.
    let mut state: Option<WorkerState> = None;
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (id, request) = match parse_request(&line) {
            Ok(parsed) => parsed,
            Err(message) => {
                writeln!(output, "{}", error_line(None, "bad_frame", &message))?;
                output.flush()?;
                continue;
            }
        };
        let reply = match handle(&mut state, request) {
            Ok(Some(payload)) => ok_line_raw(id, &payload),
            Ok(None) => {
                writeln!(output, "{}", ok_line_raw(id, "true"))?;
                output.flush()?;
                return Ok(());
            }
            Err((code, message)) => error_line(Some(id), code, &message),
        };
        writeln!(output, "{reply}")?;
        output.flush()?;
    }
    Ok(())
}

/// Handles one request against the worker's book, answering with the raw
/// JSON of the reply's `ok` payload. `Ok(None)` means `shutdown` —
/// acknowledge and exit.
fn handle(
    state: &mut Option<WorkerState>,
    request: WorkerRequest,
) -> Result<Option<String>, (&'static str, String)> {
    let ok = || Ok(Some("true".to_owned()));
    fn live(state: &mut Option<WorkerState>) -> Result<&mut WorkerState, (&'static str, String)> {
        state.as_mut().ok_or_else(no_book)
    }
    match request {
        WorkerRequest::Init {
            shard,
            shards,
            threads,
            kernel,
        } => {
            if shard >= shards {
                return Err((
                    "bad_request",
                    format!("shard index {shard} out of range for {shards} shard(s)"),
                ));
            }
            let budget = Budget::with_threads(threads)
                .map_err(|e| ("bad_request", e.to_string()))?
                .with_kernel(kernel);
            let fresh = LiveBook::new(ServeConfig::default(), shards, Engine::new(budget))
                .map_err(|e| ("bad_request", e.to_string()))?;
            *state = Some(WorkerState {
                budget,
                shard,
                book: fresh,
                digest: None,
            });
            ok()
        }
        WorkerRequest::Add { offer_id, offer } => {
            let st = live(state)?;
            st.book
                .add_at(offer_id, offer)
                .map_err(|e| ("bad_event", e.to_string()))?;
            st.digest = None;
            ok()
        }
        WorkerRequest::Update { offer_id, offer } => {
            let st = live(state)?;
            st.book
                .update(offer_id, offer)
                .map_err(|e| ("bad_event", e.to_string()))?;
            st.digest = None;
            ok()
        }
        WorkerRequest::Remove { offer_id } => {
            let st = live(state)?;
            st.book
                .remove(offer_id)
                .map_err(|e| ("bad_event", e.to_string()))?;
            st.digest = None;
            ok()
        }
        WorkerRequest::Export { if_digest } => {
            let st = live(state)?;
            // Warm the caches first so the supervisor's merged book
            // re-evaluates nothing — the evaluation work happens here, in
            // parallel across workers.
            st.book.refresh();
            if st.digest.is_none() {
                let own = st.book.export_shard(st.shard);
                let body =
                    serde_json::to_string(&shard_to_value(&own)).expect("shard values serialize");
                st.digest = Some((fnv1a64(body.as_bytes()), body));
            }
            let (digest, body) = st.digest.as_ref().expect("computed above");
            if if_digest == Some(*digest) {
                Ok(Some(not_modified_payload(*digest)))
            } else {
                Ok(Some(full_export_payload(
                    *digest,
                    st.book.next_id(),
                    st.book.shard_count(),
                    st.shard,
                    body,
                )))
            }
        }
        WorkerRequest::Load { book: image } => {
            let st = live(state)?;
            let loaded =
                LiveBook::from_export(ServeConfig::default(), Engine::new(st.budget), image)
                    .map_err(|e| ("bad_book", e.to_string()))?;
            st.book = loaded;
            st.digest = None;
            ok()
        }
        WorkerRequest::Shutdown => Ok(None),
    }
}

fn no_book() -> (&'static str, String) {
    (
        "no_book",
        "no book — the first request must be `init`".to_owned(),
    )
}

/// Runs the worker loop over this process's stdin/stdout — the body of the
/// `flex_shard_worker` binary and of `flexctl shard-worker`.
pub fn run_stdio_worker() -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    run_worker(stdin.lock(), stdout.lock())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{
        parse_export_payload, parse_reply, request_line, ExportPayload, WorkerReply,
    };
    use flexoffers_engine::Kernel;
    use flexoffers_model::{FlexOffer, Slice};
    use flexoffers_serving::BookExport;

    fn offer(tes: i64) -> FlexOffer {
        FlexOffer::new(tes, tes + 4, vec![Slice::new(0, 3).unwrap()]).unwrap()
    }

    fn init(shard: usize, shards: usize) -> WorkerRequest {
        WorkerRequest::Init {
            shard,
            shards,
            threads: 1,
            kernel: Kernel::Auto,
        }
    }

    /// Drives a scripted request sequence through an in-memory worker and
    /// returns the parsed replies.
    fn drive(requests: &[WorkerRequest]) -> Vec<WorkerReply> {
        let script: String = requests
            .iter()
            .enumerate()
            .map(|(id, r)| request_line(id as u64, &r.clone()) + "\n")
            .collect();
        let mut out = Vec::new();
        run_worker(script.as_bytes(), &mut out).expect("in-memory worker io");
        let text = String::from_utf8(out).expect("replies are utf-8");
        text.lines()
            .map(|line| {
                let (_, reply) = parse_reply(line).expect(line);
                reply
            })
            .collect()
    }

    fn full_book(reply: &WorkerReply) -> (u64, BookExport) {
        let WorkerReply::Ok(payload) = reply else {
            panic!("export failed: {reply:?}");
        };
        match parse_export_payload(payload).expect("export payload parses") {
            ExportPayload::Full {
                digest: Some(digest),
                book,
            } => (digest, book),
            other => panic!("expected a digest-wrapped full export, got {other:?}"),
        }
    }

    #[test]
    fn a_worker_populates_only_its_routed_shard_and_exports_it_warm() {
        // Two ids the supervisor would route to the same worker: the
        // placement is a hash, so find a collision with the real function.
        let first = 1u64;
        let home = flexoffers_engine::stable_shard(first, 4);
        let second = (2..)
            .find(|&id| flexoffers_engine::stable_shard(id, 4) == home)
            .unwrap();
        let replies = drive(&[
            init(home, 4),
            WorkerRequest::Add {
                offer_id: first,
                offer: offer(0),
            },
            WorkerRequest::Add {
                offer_id: second,
                offer: offer(8),
            },
            WorkerRequest::Update {
                offer_id: second,
                offer: offer(9),
            },
            WorkerRequest::Export { if_digest: None },
            WorkerRequest::Remove { offer_id: first },
            WorkerRequest::Export { if_digest: None },
        ]);
        assert_eq!(replies.len(), 7);
        let (digest, book) = full_book(&replies[4]);
        assert_eq!(book.shards.len(), 4);
        let populated: Vec<usize> = (0..4).filter(|&s| !book.shards[s].ids.is_empty()).collect();
        assert_eq!(populated, vec![home], "exactly the routed shard");
        assert_eq!(book.shards[home].ids, vec![first, second]);
        assert!(
            book.shards[home].cache.is_some(),
            "export refreshes before shipping, so the shard arrives warm"
        );
        // The shipped digest is the canonical one the supervisor could
        // recompute from the shard body.
        assert_eq!(digest, flexoffers_storage::shard_digest(&book.shards[home]));
        let (after_digest, book) = full_book(&replies[6]);
        assert_eq!(book.shards[home].ids, vec![second]);
        assert_ne!(digest, after_digest, "the remove changed the state");
    }

    #[test]
    fn conditional_exports_gate_on_state_not_on_mutation_count() {
        let home = flexoffers_engine::stable_shard(1, 2);
        let replies = drive(&[
            init(home, 2),
            WorkerRequest::Add {
                offer_id: 1,
                offer: offer(0),
            },
            WorkerRequest::Export { if_digest: None },
            // A stale digest misses…
            WorkerRequest::Export {
                if_digest: Some(0xbad),
            },
            // …an update that *replaces the offer with identical content*
            // still digests equal — the digest gates on state, so the next
            // conditional export is a hit…
            WorkerRequest::Update {
                offer_id: 1,
                offer: offer(0),
            },
            WorkerRequest::Export { if_digest: None },
            // …and a content-changing update misses again.
            WorkerRequest::Update {
                offer_id: 1,
                offer: offer(7),
            },
            WorkerRequest::Export { if_digest: None },
        ]);
        let (digest, _) = full_book(&replies[2]);
        let (missed, _) = full_book(&replies[3]);
        assert_eq!(digest, missed, "a miss reships the same state");
        let (after_noop_update, _) = full_book(&replies[5]);
        assert_eq!(after_noop_update, digest);
        let (changed, _) = full_book(&replies[7]);
        assert_ne!(changed, digest);

        // Now drive the actual hit: export, then conditional export with
        // the digest just received, with no mutation between.
        let replies = drive(&[
            init(home, 2),
            WorkerRequest::Add {
                offer_id: 1,
                offer: offer(0),
            },
            WorkerRequest::Export { if_digest: None },
            WorkerRequest::Export {
                if_digest: Some(digest),
            },
        ]);
        let (again, _) = full_book(&replies[2]);
        assert_eq!(again, digest, "same history, same digest");
        let WorkerReply::Ok(payload) = &replies[3] else {
            panic!("conditional export failed: {:?}", replies[3]);
        };
        assert_eq!(
            parse_export_payload(payload).unwrap(),
            ExportPayload::NotModified { digest },
            "matching digest ships nothing"
        );
    }

    #[test]
    fn protocol_errors_are_replies_not_exits() {
        // Mutating before init, a bad shard index, a dead id, and a taken
        // id all answer with coded errors and leave the loop alive for the
        // next request.
        let mut out = Vec::new();
        let script = [
            request_line(0, &WorkerRequest::Remove { offer_id: 3 }),
            "this is not json".to_owned(),
            request_line(1, &init(2, 2)),
            request_line(2, &init(0, 2)),
            request_line(
                3,
                &WorkerRequest::Add {
                    offer_id: 4,
                    offer: offer(0),
                },
            ),
            request_line(
                4,
                &WorkerRequest::Add {
                    offer_id: 4,
                    offer: offer(0),
                },
            ),
            request_line(5, &WorkerRequest::Remove { offer_id: 9 }),
            request_line(6, &WorkerRequest::Export { if_digest: None }),
        ]
        .join("\n");
        run_worker(script.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let replies: Vec<(Option<u64>, WorkerReply)> =
            text.lines().map(|l| parse_reply(l).expect(l)).collect();
        let code = |i: usize| match &replies[i].1 {
            WorkerReply::Err { code, .. } => code.as_str(),
            ok => panic!("expected error at {i}, got {ok:?}"),
        };
        assert_eq!(code(0), "no_book");
        assert_eq!(replies[1].0, None, "unreadable line answers id:null");
        assert_eq!(code(1), "bad_frame");
        assert_eq!(code(2), "bad_request", "shard index out of range");
        assert!(matches!(replies[3].1, WorkerReply::Ok(_)), "init");
        assert!(matches!(replies[4].1, WorkerReply::Ok(_)), "add");
        assert_eq!(code(5), "bad_event");
        assert_eq!(code(6), "bad_event");
        assert!(
            matches!(replies[7].1, WorkerReply::Ok(_)),
            "the loop survives every error"
        );
    }

    #[test]
    fn shutdown_acknowledges_then_exits_ignoring_later_lines() {
        let script = [
            request_line(0, &init(0, 1)),
            request_line(1, &WorkerRequest::Shutdown),
            request_line(2, &WorkerRequest::Export { if_digest: None }),
        ]
        .join("\n");
        let mut out = Vec::new();
        run_worker(script.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 2, "nothing after the shutdown ack");
    }
}
