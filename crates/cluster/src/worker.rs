//! The shard-worker loop: a dumb shard executor driven over stdio.
//!
//! A worker holds a full K-shard [`LiveBook`] in which only its own shard
//! ever receives offers — the supervisor routes each mutation to the
//! worker that owns `stable_shard(id, K)`, so the ids land in their stable
//! shard *by construction* and the worker's populated shard stays
//! byte-equal to the corresponding shard of an in-process K-shard book fed
//! the same serialized mutation stream. The worker never answers queries
//! itself: `export` refreshes its caches and ships the book image, and the
//! supervisor merges the gathered shards through
//! [`LiveBook::from_export`] so answer bytes come from the same code path
//! as the in-process tier.
//!
//! The loop is strictly sequential request/reply (the supervisor pipelines
//! at most one outstanding request per worker per operation), flushes
//! after every reply, and exits cleanly on `shutdown` or stdin EOF — a
//! supervisor crash tears the pipe and reaps the whole tree.

use std::io::{self, BufRead, Write};

use flexoffers_engine::{Budget, Engine};
use flexoffers_serving::{LiveBook, ServeConfig};
use flexoffers_storage::export_to_value;
use serde::Value;

use crate::wire::{error_line, ok_line, parse_request, WorkerRequest};

/// Runs the worker loop over arbitrary reader/writer pairs (the stdio
/// binary passes locked stdin/stdout; tests pass in-memory pipes).
///
/// Returns when the input reaches EOF or a `shutdown` request is
/// acknowledged. I/O errors on the reply channel propagate — with a dead
/// supervisor there is nobody left to serve.
pub fn run_worker<R: BufRead, W: Write>(input: R, mut output: W) -> io::Result<()> {
    // The book only exists after `init`; the config is irrelevant to a
    // worker (it shapes query *answers*, and answers happen at the
    // supervisor merge), so the default serves. The budget rides along so
    // `load` can rebuild a book under the same engine settings.
    let mut book: Option<(Budget, LiveBook)> = None;
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (id, request) = match parse_request(&line) {
            Ok(parsed) => parsed,
            Err(message) => {
                writeln!(output, "{}", error_line(None, "bad_frame", &message))?;
                output.flush()?;
                continue;
            }
        };
        let reply = match handle(&mut book, request) {
            Ok(Some(payload)) => ok_line(id, payload),
            Ok(None) => {
                writeln!(output, "{}", ok_line(id, Value::Bool(true)))?;
                output.flush()?;
                return Ok(());
            }
            Err((code, message)) => error_line(Some(id), code, &message),
        };
        writeln!(output, "{reply}")?;
        output.flush()?;
    }
    Ok(())
}

/// Handles one request against the worker's book. `Ok(None)` means
/// `shutdown` — acknowledge and exit.
fn handle(
    state: &mut Option<(Budget, LiveBook)>,
    request: WorkerRequest,
) -> Result<Option<Value>, (&'static str, String)> {
    let ok = || Ok(Some(Value::Bool(true)));
    match request {
        WorkerRequest::Init {
            shards,
            threads,
            kernel,
        } => {
            let budget = Budget::with_threads(threads)
                .map_err(|e| ("bad_request", e.to_string()))?
                .with_kernel(kernel);
            let fresh = LiveBook::new(ServeConfig::default(), shards, Engine::new(budget))
                .map_err(|e| ("bad_request", e.to_string()))?;
            *state = Some((budget, fresh));
            ok()
        }
        WorkerRequest::Add { offer_id, offer } => {
            let (_, book) = state.as_mut().ok_or_else(no_book)?;
            book.add_at(offer_id, offer)
                .map_err(|e| ("bad_event", e.to_string()))?;
            ok()
        }
        WorkerRequest::Update { offer_id, offer } => {
            let (_, book) = state.as_mut().ok_or_else(no_book)?;
            book.update(offer_id, offer)
                .map_err(|e| ("bad_event", e.to_string()))?;
            ok()
        }
        WorkerRequest::Remove { offer_id } => {
            let (_, book) = state.as_mut().ok_or_else(no_book)?;
            book.remove(offer_id)
                .map_err(|e| ("bad_event", e.to_string()))?;
            ok()
        }
        WorkerRequest::Export => {
            let (_, book) = state.as_mut().ok_or_else(no_book)?;
            // Warm the caches first so the supervisor's merged book
            // re-evaluates nothing — the evaluation work happens here, in
            // parallel across workers.
            book.refresh();
            Ok(Some(export_to_value(&book.export())))
        }
        WorkerRequest::Load { book: image } => {
            let (budget, book) = state.as_mut().ok_or_else(no_book)?;
            let loaded = LiveBook::from_export(ServeConfig::default(), Engine::new(*budget), image)
                .map_err(|e| ("bad_book", e.to_string()))?;
            *book = loaded;
            ok()
        }
        WorkerRequest::Shutdown => Ok(None),
    }
}

fn no_book() -> (&'static str, String) {
    (
        "no_book",
        "no book — the first request must be `init`".to_owned(),
    )
}

/// Runs the worker loop over this process's stdin/stdout — the body of the
/// `flex_shard_worker` binary and of `flexctl shard-worker`.
pub fn run_stdio_worker() -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    run_worker(stdin.lock(), stdout.lock())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{parse_reply, request_line, WorkerReply};
    use flexoffers_engine::Kernel;
    use flexoffers_model::{FlexOffer, Slice};

    fn offer(tes: i64) -> FlexOffer {
        FlexOffer::new(tes, tes + 4, vec![Slice::new(0, 3).unwrap()]).unwrap()
    }

    /// Drives a scripted request sequence through an in-memory worker and
    /// returns the parsed replies.
    fn drive(requests: &[WorkerRequest]) -> Vec<WorkerReply> {
        let script: String = requests
            .iter()
            .enumerate()
            .map(|(id, r)| request_line(id as u64, &r.clone()) + "\n")
            .collect();
        let mut out = Vec::new();
        run_worker(script.as_bytes(), &mut out).expect("in-memory worker io");
        let text = String::from_utf8(out).expect("replies are utf-8");
        text.lines()
            .map(|line| {
                let (_, reply) = parse_reply(line).expect(line);
                reply
            })
            .collect()
    }

    #[test]
    fn a_worker_populates_only_its_routed_shard_and_exports_it_warm() {
        // Two ids the supervisor would route to the same worker: the
        // placement is a hash, so find a collision with the real function.
        let first = 1u64;
        let home = flexoffers_engine::stable_shard(first, 4);
        let second = (2..)
            .find(|&id| flexoffers_engine::stable_shard(id, 4) == home)
            .unwrap();
        let replies = drive(&[
            WorkerRequest::Init {
                shards: 4,
                threads: 1,
                kernel: Kernel::Auto,
            },
            WorkerRequest::Add {
                offer_id: first,
                offer: offer(0),
            },
            WorkerRequest::Add {
                offer_id: second,
                offer: offer(8),
            },
            WorkerRequest::Update {
                offer_id: second,
                offer: offer(9),
            },
            WorkerRequest::Export,
            WorkerRequest::Remove { offer_id: first },
            WorkerRequest::Export,
        ]);
        assert_eq!(replies.len(), 7);
        let WorkerReply::Ok(export) = &replies[4] else {
            panic!("export failed: {:?}", replies[4]);
        };
        let book = flexoffers_storage::value_to_export(export).expect("export parses");
        assert_eq!(book.shards.len(), 4);
        let populated: Vec<usize> = (0..4).filter(|&s| !book.shards[s].ids.is_empty()).collect();
        assert_eq!(populated, vec![home], "exactly the routed shard");
        assert_eq!(book.shards[home].ids, vec![first, second]);
        assert!(
            book.shards[home].cache.is_some(),
            "export refreshes before shipping, so the shard arrives warm"
        );
        let WorkerReply::Ok(after_remove) = &replies[6] else {
            panic!("second export failed: {:?}", replies[6]);
        };
        let book = flexoffers_storage::value_to_export(after_remove).expect("export parses");
        assert_eq!(book.shards[home].ids, vec![second]);
    }

    #[test]
    fn protocol_errors_are_replies_not_exits() {
        // Mutating before init, a dead id, and a taken id all answer with
        // coded errors and leave the loop alive for the next request.
        let mut out = Vec::new();
        let script = [
            request_line(0, &WorkerRequest::Remove { offer_id: 3 }),
            "this is not json".to_owned(),
            request_line(
                1,
                &WorkerRequest::Init {
                    shards: 2,
                    threads: 1,
                    kernel: Kernel::Scalar,
                },
            ),
            request_line(
                2,
                &WorkerRequest::Add {
                    offer_id: 4,
                    offer: offer(0),
                },
            ),
            request_line(
                3,
                &WorkerRequest::Add {
                    offer_id: 4,
                    offer: offer(0),
                },
            ),
            request_line(4, &WorkerRequest::Remove { offer_id: 9 }),
            request_line(5, &WorkerRequest::Export),
        ]
        .join("\n");
        run_worker(script.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let replies: Vec<(Option<u64>, WorkerReply)> =
            text.lines().map(|l| parse_reply(l).expect(l)).collect();
        let code = |i: usize| match &replies[i].1 {
            WorkerReply::Err { code, .. } => code.as_str(),
            ok => panic!("expected error at {i}, got {ok:?}"),
        };
        assert_eq!(code(0), "no_book");
        assert_eq!(replies[1].0, None, "unreadable line answers id:null");
        assert_eq!(code(1), "bad_frame");
        assert!(matches!(replies[2].1, WorkerReply::Ok(_)), "init");
        assert!(matches!(replies[3].1, WorkerReply::Ok(_)), "add");
        assert_eq!(code(4), "bad_event");
        assert_eq!(code(5), "bad_event");
        assert!(
            matches!(replies[6].1, WorkerReply::Ok(_)),
            "the loop survives every error"
        );
    }

    #[test]
    fn shutdown_acknowledges_then_exits_ignoring_later_lines() {
        let script = [
            request_line(
                0,
                &WorkerRequest::Init {
                    shards: 1,
                    threads: 1,
                    kernel: Kernel::Auto,
                },
            ),
            request_line(1, &WorkerRequest::Shutdown),
            request_line(2, &WorkerRequest::Export),
        ]
        .join("\n");
        let mut out = Vec::new();
        run_worker(script.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 2, "nothing after the shutdown ack");
    }
}
