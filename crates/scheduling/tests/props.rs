//! Property tests: every scheduler is feasible; quality ordering holds.

use flexoffers_model::{FlexOffer, Slice};
use flexoffers_scheduling::{
    EarliestStartScheduler, ExhaustiveScheduler, GreedyScheduler, HillClimbScheduler, Scheduler,
    SchedulingProblem,
};
use flexoffers_timeseries::Series;
use proptest::prelude::*;

fn arb_problem() -> impl Strategy<Value = SchedulingProblem> {
    (
        prop::collection::vec(
            (
                0i64..3,
                0i64..3,
                prop::collection::vec((-2i64..3, 0i64..3), 1..3),
            ),
            1..4,
        ),
        prop::collection::vec(-4i64..8, 1..8),
        0i64..3,
    )
        .prop_map(|(raw_offers, target_values, target_start)| {
            let offers: Vec<FlexOffer> = raw_offers
                .into_iter()
                .map(|(tes, w, slices)| {
                    FlexOffer::new(
                        tes,
                        tes + w,
                        slices
                            .into_iter()
                            .map(|(min, sw)| Slice::new(min, min + sw).unwrap())
                            .collect(),
                    )
                    .unwrap()
                })
                .collect();
            SchedulingProblem::new(offers, Series::new(target_start, target_values))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_schedulers_produce_feasible_schedules(p in arb_problem()) {
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(EarliestStartScheduler),
            Box::new(GreedyScheduler::new()),
            Box::new(HillClimbScheduler::new(11, 64)),
        ];
        for s in schedulers {
            let schedule = s.schedule(&p).unwrap();
            prop_assert!(p.is_feasible(&schedule), "{} infeasible", s.name());
        }
    }

    #[test]
    fn quality_ordering_optimum_le_hillclimb_le_greedy(p in arb_problem()) {
        let target = p.target();
        let greedy = GreedyScheduler::new().schedule(&p).unwrap().imbalance(target).l2;
        let climbed = HillClimbScheduler::new(5, 128).schedule(&p).unwrap().imbalance(target).l2;
        prop_assert!(climbed <= greedy + 1e-9, "hill-climb regressed: {climbed} > {greedy}");
        if let Ok(opt) = ExhaustiveScheduler::new(20_000).schedule(&p) {
            let opt_cost = opt.imbalance(target).l2;
            prop_assert!(opt_cost <= climbed + 1e-9);
            prop_assert!(opt_cost <= greedy + 1e-9);
        }
    }

    #[test]
    fn greedy_improves_on_baseline(p in arb_problem()) {
        let target = p.target();
        let base = EarliestStartScheduler.schedule(&p).unwrap().imbalance(target).l2;
        let greedy = GreedyScheduler::new().schedule(&p).unwrap().imbalance(target).l2;
        // Greedy optimises each offer individually against the residual; it
        // can only beat or match a scheduler that ignores the target...
        // except when fit order interacts badly. Allow equality plus a
        // small tolerance on pathological cases but require it is never
        // *much* worse.
        prop_assert!(greedy <= base * 1.5 + 1e-9, "greedy {greedy} vs baseline {base}");
    }

    #[test]
    fn schedule_load_is_sum_of_assignments(p in arb_problem()) {
        let s = GreedyScheduler::new().schedule(&p).unwrap();
        let mut expected = Series::empty();
        for a in s.assignments() {
            expected = &expected + &a.as_series();
        }
        prop_assert_eq!(s.load(), expected);
    }
}
