//! Simulated annealing — the escape hatch the pure hill-climber lacks.
//!
//! The hill-climber's per-offer re-fit is monotone and stalls in local
//! optima where improving any *single* offer is impossible but jointly
//! moving two would pay off. Annealing adds a classic Metropolis rule over
//! a *perturbation* move (force one offer to a random different start, then
//! re-fit amounts) so the search can walk through moderately worse states
//! early on, cooling toward pure improvement.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use flexoffers_model::Assignment;

use crate::error::SchedulingError;
use crate::greedy::{best_fit_assignment, GreedyScheduler};
use crate::imbalance::Schedule;
use crate::problem::{Scheduler, SchedulingProblem};

/// Simulated-annealing scheduler (deterministic under a fixed seed).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnnealingScheduler {
    /// RNG seed.
    pub seed: u64,
    /// Number of proposal steps.
    pub iterations: usize,
    /// Initial temperature, in squared-error units. Zero degenerates to
    /// hill-climbing on the perturbation move.
    pub initial_temperature: f64,
    /// Multiplicative cooling per step, in `(0, 1]`.
    pub cooling: f64,
}

impl AnnealingScheduler {
    /// An annealer with sensible defaults for district-scale problems.
    pub fn new(seed: u64, iterations: usize) -> Self {
        Self {
            seed,
            iterations,
            initial_temperature: 64.0,
            cooling: 0.995,
        }
    }
}

impl Scheduler for AnnealingScheduler {
    fn name(&self) -> &'static str {
        "simulated annealing"
    }

    fn schedule(&self, problem: &SchedulingProblem) -> Result<Schedule, SchedulingError> {
        let offers = problem.offers();
        let initial = GreedyScheduler::new().schedule(problem)?;
        if offers.is_empty() {
            return Ok(initial);
        }
        let mut assignments = initial.assignments().to_vec();
        let mut residual = problem.target().clone();
        for a in &assignments {
            residual = &residual - &a.as_series();
        }
        // Track the running and best costs via the residual's square sum.
        let cost_of = |r: &flexoffers_timeseries::Series<i64>| -> f64 {
            r.iter().map(|(_, v)| (v * v) as f64).sum()
        };
        let mut cost = cost_of(&residual);
        let mut best = (cost, assignments.clone());
        let mut temperature = self.initial_temperature;
        let mut rng = StdRng::seed_from_u64(self.seed);

        for _ in 0..self.iterations {
            let i = rng.gen_range(0..offers.len());
            let fo = &offers[i];
            let without = &residual + &assignments[i].as_series();

            // Proposal: pin a random start, water-fill the amounts there.
            let start = rng.gen_range(fo.earliest_start()..=fo.latest_start());
            let pinned = flexoffers_model::FlexOffer::with_totals(
                start,
                start,
                fo.slices().to_vec(),
                fo.total_min(),
                fo.total_max(),
            )
            .expect("pinning a start inside the window preserves invariants");
            let (proposal, _) = best_fit_assignment(&pinned, &without);
            let proposal = Assignment::new(start, proposal.values().to_vec());

            let next_residual = &without - &proposal.as_series();
            let next_cost = cost_of(&next_residual);
            let accept = next_cost <= cost
                || rng.gen::<f64>() < ((cost - next_cost) / temperature.max(1e-9)).exp();
            if accept {
                assignments[i] = proposal;
                residual = next_residual;
                cost = next_cost;
                if cost < best.0 {
                    best = (cost, assignments.clone());
                }
            }
            temperature *= self.cooling;
        }
        Ok(Schedule::new(best.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::{FlexOffer, Slice};
    use flexoffers_timeseries::Series;

    fn problem() -> SchedulingProblem {
        let offers = vec![
            FlexOffer::new(
                0,
                5,
                vec![Slice::new(0, 3).unwrap(), Slice::new(0, 3).unwrap()],
            )
            .unwrap(),
            FlexOffer::new(0, 5, vec![Slice::new(1, 2).unwrap()]).unwrap(),
            FlexOffer::new(2, 6, vec![Slice::new(0, 4).unwrap()]).unwrap(),
            FlexOffer::with_totals(1, 4, vec![Slice::new(0, 3).unwrap(); 2], 2, 5).unwrap(),
        ];
        SchedulingProblem::new(offers, Series::new(2, vec![7, 6, 2, 1]))
    }

    #[test]
    fn produces_feasible_schedules() {
        let p = problem();
        let s = AnnealingScheduler::new(3, 400).schedule(&p).unwrap();
        assert!(p.is_feasible(&s));
    }

    #[test]
    fn deterministic_under_seed() {
        let p = problem();
        let a = AnnealingScheduler::new(5, 300).schedule(&p).unwrap();
        let b = AnnealingScheduler::new(5, 300).schedule(&p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn never_worse_than_greedy_thanks_to_best_tracking() {
        let p = problem();
        let greedy = GreedyScheduler::new()
            .schedule(&p)
            .unwrap()
            .imbalance(p.target())
            .l2;
        let annealed = AnnealingScheduler::new(11, 600)
            .schedule(&p)
            .unwrap()
            .imbalance(p.target())
            .l2;
        assert!(annealed <= greedy + 1e-9);
    }

    #[test]
    fn zero_iterations_returns_greedy() {
        let p = problem();
        let greedy = GreedyScheduler::new().schedule(&p).unwrap();
        let annealed = AnnealingScheduler::new(1, 0).schedule(&p).unwrap();
        assert_eq!(greedy, annealed);
    }

    #[test]
    fn empty_problem_is_fine() {
        let p = SchedulingProblem::new(vec![], Series::new(0, vec![3]));
        let s = AnnealingScheduler::new(1, 100).schedule(&p).unwrap();
        assert!(s.assignments().is_empty());
    }
}
