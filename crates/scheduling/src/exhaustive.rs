//! Provably optimal scheduling by exhaustive search over the joint
//! assignment space — the paper calls the problem "highly complex" \[12\], and
//! this module is why: the space is the *product* of the members' `L(f)`.
//! Guarded by a size limit; used as the yardstick for the heuristics.

use flexoffers_model::Assignment;
use flexoffers_timeseries::{Norm, Series};

use crate::error::SchedulingError;
use crate::imbalance::Schedule;
use crate::problem::{Scheduler, SchedulingProblem};

/// Exhaustive optimal scheduler (squared-error objective).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExhaustiveScheduler {
    /// Maximum joint assignment count it will attempt.
    pub limit: u128,
}

impl ExhaustiveScheduler {
    /// An exhaustive scheduler with the given search-space limit.
    pub fn new(limit: u128) -> Self {
        Self { limit }
    }
}

impl Default for ExhaustiveScheduler {
    fn default() -> Self {
        Self { limit: 100_000 }
    }
}

impl Scheduler for ExhaustiveScheduler {
    fn name(&self) -> &'static str {
        "exhaustive optimal"
    }

    fn schedule(&self, problem: &SchedulingProblem) -> Result<Schedule, SchedulingError> {
        // Refuse oversized spaces before touching them.
        let mut space: u128 = 1;
        for fo in problem.offers() {
            let count = fo
                .constrained_assignment_count()
                .ok_or(SchedulingError::SearchSpaceTooLarge { limit: self.limit })?;
            space = space
                .checked_mul(count)
                .ok_or(SchedulingError::SearchSpaceTooLarge { limit: self.limit })?;
            if space > self.limit {
                return Err(SchedulingError::SearchSpaceTooLarge { limit: self.limit });
            }
        }

        let mut best: Option<(f64, Vec<Assignment>)> = None;
        let mut current: Vec<Assignment> = Vec::with_capacity(problem.offers().len());
        // Residual starts as the target; leaves evaluate its L2 norm.
        let residual = problem.target().clone();
        search(problem, 0, residual, &mut current, &mut best);
        let (_, assignments) = best.expect("space is non-empty: every offer has assignments");
        Ok(Schedule::new(assignments))
    }
}

fn search(
    problem: &SchedulingProblem,
    depth: usize,
    residual: Series<i64>,
    current: &mut Vec<Assignment>,
    best: &mut Option<(f64, Vec<Assignment>)>,
) {
    if depth == problem.offers().len() {
        let cost = Norm::L2.of(&residual);
        if best.as_ref().is_none_or(|(b, _)| cost < *b) {
            *best = Some((cost, current.clone()));
        }
        return;
    }
    for a in problem.offers()[depth].assignments() {
        let next = &residual - &a.as_series();
        current.push(a);
        search(problem, depth + 1, next, current, best);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyScheduler;
    use crate::hillclimb::HillClimbScheduler;
    use flexoffers_model::{FlexOffer, Slice};

    fn small_problem() -> SchedulingProblem {
        let offers = vec![
            FlexOffer::new(0, 2, vec![Slice::new(0, 2).unwrap()]).unwrap(),
            FlexOffer::new(0, 1, vec![Slice::new(1, 3).unwrap()]).unwrap(),
        ];
        SchedulingProblem::new(offers, Series::new(1, vec![4, 1]))
    }

    #[test]
    fn finds_the_optimum() {
        let p = small_problem();
        let s = ExhaustiveScheduler::default().schedule(&p).unwrap();
        assert!(p.is_feasible(&s));
        // Target <4,1> at slots 1,2. The single-slice offers can jointly
        // cover at most 3+2 = 5 units but never split 4+1 exactly: the best
        // layouts (e.g. 3@1 + 1@2) leave exactly one unit of deviation.
        assert_eq!(s.imbalance(p.target()).l2, 1.0);
        assert_eq!(s.imbalance(p.target()).l1, 1.0);
    }

    #[test]
    fn heuristics_never_beat_the_optimum() {
        let p = small_problem();
        let opt = ExhaustiveScheduler::default()
            .schedule(&p)
            .unwrap()
            .imbalance(p.target())
            .l2;
        for s in [
            GreedyScheduler::new().schedule(&p).unwrap(),
            HillClimbScheduler::default().schedule(&p).unwrap(),
        ] {
            assert!(s.imbalance(p.target()).l2 + 1e-9 >= opt);
        }
    }

    #[test]
    fn limit_enforced() {
        let offers = vec![
            FlexOffer::new(
                0,
                50,
                vec![Slice::new(0, 50).unwrap(), Slice::new(0, 50).unwrap()]
            )
            .unwrap();
            3
        ];
        let p = SchedulingProblem::new(offers, Series::empty());
        assert!(matches!(
            ExhaustiveScheduler::new(1000).schedule(&p),
            Err(SchedulingError::SearchSpaceTooLarge { limit: 1000 })
        ));
    }

    #[test]
    fn empty_problem_is_trivially_optimal() {
        let p = SchedulingProblem::new(vec![], Series::new(0, vec![1]));
        let s = ExhaustiveScheduler::default().schedule(&p).unwrap();
        assert!(s.assignments().is_empty());
    }
}
