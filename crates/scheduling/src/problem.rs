//! The scheduling problem type and the [`Scheduler`] interface.

use serde::{Deserialize, Serialize};

use flexoffers_model::{FlexOffer, Portfolio};
use flexoffers_timeseries::Series;

use crate::error::SchedulingError;
use crate::imbalance::Schedule;

/// A flex-offer scheduling problem: choose one valid assignment per offer so
/// the summed load tracks `target` (e.g. forecast renewable production, or a
/// flat profile for peak shaving).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SchedulingProblem {
    offers: Vec<FlexOffer>,
    target: Series<i64>,
}

impl SchedulingProblem {
    /// Creates a problem over the given offers and target profile.
    pub fn new(offers: Vec<FlexOffer>, target: Series<i64>) -> Self {
        Self { offers, target }
    }

    /// Creates a problem from a portfolio.
    pub fn from_portfolio(portfolio: &Portfolio, target: Series<i64>) -> Self {
        Self::new(portfolio.as_slice().to_vec(), target)
    }

    /// The flex-offers to schedule.
    pub fn offers(&self) -> &[FlexOffer] {
        &self.offers
    }

    /// The target load profile.
    pub fn target(&self) -> &Series<i64> {
        &self.target
    }

    /// `true` if `schedule` pairs every offer with a valid assignment.
    pub fn is_feasible(&self, schedule: &Schedule) -> bool {
        schedule.assignments().len() == self.offers.len()
            && self
                .offers
                .iter()
                .zip(schedule.assignments())
                .all(|(fo, a)| fo.is_valid_assignment(a))
    }
}

/// A scheduling algorithm.
pub trait Scheduler {
    /// Human-readable scheduler name, used in experiment tables.
    fn name(&self) -> &'static str;

    /// Produces a feasible schedule for `problem`.
    fn schedule(&self, problem: &SchedulingProblem) -> Result<Schedule, SchedulingError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::{Assignment, Slice};

    fn problem() -> SchedulingProblem {
        SchedulingProblem::new(
            vec![FlexOffer::new(0, 2, vec![Slice::new(0, 2).unwrap()]).unwrap()],
            Series::new(0, vec![1, 1, 1]),
        )
    }

    #[test]
    fn feasibility_checks_validity_and_arity() {
        let p = problem();
        let good = Schedule::new(vec![Assignment::new(1, vec![2])]);
        assert!(p.is_feasible(&good));
        let invalid = Schedule::new(vec![Assignment::new(5, vec![2])]);
        assert!(!p.is_feasible(&invalid));
        let wrong_arity = Schedule::new(vec![]);
        assert!(!p.is_feasible(&wrong_arity));
    }

    #[test]
    fn from_portfolio_copies_offers() {
        let portfolio =
            Portfolio::from_offers(vec![FlexOffer::new(0, 1, vec![Slice::fixed(1)]).unwrap()]);
        let p = SchedulingProblem::from_portfolio(&portfolio, Series::empty());
        assert_eq!(p.offers().len(), 1);
    }
}
