//! Greedy residual-tracking scheduler.

use flexoffers_model::{Assignment, Energy, FlexOffer};
use flexoffers_timeseries::Series;

use crate::error::SchedulingError;
use crate::imbalance::Schedule;
use crate::problem::{Scheduler, SchedulingProblem};

/// The order flex-offers are fitted in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OrderHeuristic {
    /// As given in the problem.
    InputOrder,
    /// Least time-flexible first — rigid offers get first pick of the
    /// residual, flexible ones fill what remains (the classic dispatch
    /// heuristic).
    #[default]
    LeastFlexibleFirst,
    /// Largest expected |energy| first.
    LargestEnergyFirst,
}

/// One-pass greedy scheduler: offers are fitted one at a time against the
/// *residual* target (target minus load committed so far); each offer gets
/// the start time and water-filled amounts minimising the squared-error
/// delta it causes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GreedyScheduler {
    /// Fit order.
    pub order: OrderHeuristic,
}

impl GreedyScheduler {
    /// Greedy with the default least-flexible-first order.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The best valid assignment of `fo` against a residual target, plus the
/// squared-error delta it causes. Exposed for reuse by the hill-climber.
pub fn best_fit_assignment(fo: &FlexOffer, residual: &Series<i64>) -> (Assignment, f64) {
    let mut best: Option<(Assignment, f64)> = None;
    for t in fo.earliest_start()..=fo.latest_start() {
        let desired: Vec<Energy> = (0..fo.slice_count())
            .map(|j| residual.at(t + j as i64))
            .collect();
        let values = water_fill(fo, &desired);
        // Delta of global squared error caused by placing these amounts:
        // sum((r - v)^2 - r^2) over the offer's columns. Comparable across
        // start times because untouched columns contribute zero.
        let delta: f64 = desired
            .iter()
            .zip(&values)
            .map(|(&r, &v)| {
                let after = (r - v) as f64;
                let before = r as f64;
                after * after - before * before
            })
            .sum();
        if best.as_ref().is_none_or(|(_, d)| delta < *d) {
            best = Some((Assignment::new(t, values), delta));
        }
    }
    best.expect("start window is never empty")
}

/// Per-slice clamp toward `desired`, then total-constraint repair choosing
/// the cheapest unit adjustments (the marginal cost of moving a slice away
/// from its desired amount grows with the distance already moved, so the
/// repair always shifts the slice currently *closest* to its desired value
/// in the helpful direction — exact for the convex squared-error objective).
fn water_fill(fo: &FlexOffer, desired: &[Energy]) -> Vec<Energy> {
    let mut values: Vec<Energy> = fo
        .slices()
        .iter()
        .zip(desired)
        .map(|(s, &d)| s.clamp(d))
        .collect();
    let mut total: Energy = values.iter().sum();
    while total > fo.total_max() {
        // Decrement the slice whose value exceeds its desired amount the
        // most (marginal gain 2(v-d)-1 is the largest); fall back to any
        // decrementable slice.
        let j = (0..values.len())
            .filter(|&j| values[j] > fo.slices()[j].min())
            .max_by_key(|&j| values[j] - desired[j])
            .expect("cmin <= sum(amin) guarantees repair can proceed");
        values[j] -= 1;
        total -= 1;
    }
    while total < fo.total_min() {
        let j = (0..values.len())
            .filter(|&j| values[j] < fo.slices()[j].max())
            .max_by_key(|&j| desired[j] - values[j])
            .expect("cmax >= sum(amax) guarantees repair can proceed");
        values[j] += 1;
        total += 1;
    }
    values
}

impl GreedyScheduler {
    fn ordered_indices(&self, offers: &[FlexOffer]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..offers.len()).collect();
        match self.order {
            OrderHeuristic::InputOrder => {}
            OrderHeuristic::LeastFlexibleFirst => {
                idx.sort_by_key(|&i| {
                    (offers[i].time_flexibility(), offers[i].energy_flexibility())
                });
            }
            OrderHeuristic::LargestEnergyFirst => {
                idx.sort_by_key(|&i| -(offers[i].total_min().abs() + offers[i].total_max().abs()));
            }
        }
        idx
    }
}

impl Scheduler for GreedyScheduler {
    fn name(&self) -> &'static str {
        "greedy residual tracking"
    }

    fn schedule(&self, problem: &SchedulingProblem) -> Result<Schedule, SchedulingError> {
        let offers = problem.offers();
        let mut residual = problem.target().clone();
        let mut assignments: Vec<Option<Assignment>> = vec![None; offers.len()];
        for i in self.ordered_indices(offers) {
            let (assignment, _) = best_fit_assignment(&offers[i], &residual);
            residual = &residual - &assignment.as_series();
            assignments[i] = Some(assignment);
        }
        Ok(Schedule::new(
            assignments
                .into_iter()
                .map(|a| a.expect("every offer fitted"))
                .collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;
    use flexoffers_timeseries::Series;

    #[test]
    fn tracks_a_trackable_target_exactly() {
        // One offer can match the target perfectly by shifting to slot 2.
        let fo = FlexOffer::new(
            0,
            3,
            vec![Slice::new(0, 5).unwrap(), Slice::new(0, 5).unwrap()],
        )
        .unwrap();
        let target = Series::new(2, vec![3, 4]);
        let p = SchedulingProblem::new(vec![fo], target.clone());
        let s = GreedyScheduler::new().schedule(&p).unwrap();
        assert!(p.is_feasible(&s));
        assert_eq!(s.imbalance(&target).l1, 0.0);
        assert_eq!(s.assignments()[0].start(), 2);
    }

    #[test]
    fn beats_or_matches_baseline() {
        use crate::baseline::EarliestStartScheduler;
        let offers = vec![
            FlexOffer::new(0, 4, vec![Slice::new(0, 3).unwrap()]).unwrap(),
            FlexOffer::new(
                0,
                4,
                vec![Slice::new(1, 4).unwrap(), Slice::new(0, 2).unwrap()],
            )
            .unwrap(),
            FlexOffer::new(2, 6, vec![Slice::new(0, 2).unwrap()]).unwrap(),
        ];
        let target = Series::new(3, vec![4, 4, 2]);
        let p = SchedulingProblem::new(offers, target.clone());
        let greedy = GreedyScheduler::new().schedule(&p).unwrap();
        let base = EarliestStartScheduler.schedule(&p).unwrap();
        assert!(p.is_feasible(&greedy));
        assert!(greedy.imbalance(&target).l2 <= base.imbalance(&target).l2);
    }

    #[test]
    fn water_fill_respects_totals_and_tracks_desired() {
        let fo = FlexOffer::with_totals(
            0,
            0,
            vec![Slice::new(0, 5).unwrap(), Slice::new(0, 5).unwrap()],
            4,
            6,
        )
        .unwrap();
        // Desired total 10 must shrink to 6, taken from the most
        // over-desired slices evenly.
        let v = water_fill(&fo, &[5, 5]);
        assert_eq!(v.iter().sum::<i64>(), 6);
        assert!(fo.is_valid_assignment(&Assignment::new(0, v)));
        // Desired total 0 must rise to 4.
        let v = water_fill(&fo, &[0, 0]);
        assert_eq!(v.iter().sum::<i64>(), 4);
    }

    #[test]
    fn production_offers_track_negative_targets() {
        let fo = FlexOffer::new(0, 2, vec![Slice::new(-4, 0).unwrap()]).unwrap();
        let target = Series::new(1, vec![-3]);
        let p = SchedulingProblem::new(vec![fo], target.clone());
        let s = GreedyScheduler::new().schedule(&p).unwrap();
        assert!(p.is_feasible(&s));
        assert_eq!(s.imbalance(&target).l1, 0.0);
    }

    #[test]
    fn order_heuristics_cover_all_offers() {
        let offers = vec![
            FlexOffer::new(0, 9, vec![Slice::new(0, 1).unwrap()]).unwrap(),
            FlexOffer::new(0, 0, vec![Slice::new(5, 9).unwrap()]).unwrap(),
        ];
        for order in [
            OrderHeuristic::InputOrder,
            OrderHeuristic::LeastFlexibleFirst,
            OrderHeuristic::LargestEnergyFirst,
        ] {
            let p = SchedulingProblem::new(offers.clone(), Series::new(0, vec![5]));
            let s = GreedyScheduler { order }.schedule(&p).unwrap();
            assert!(p.is_feasible(&s));
        }
    }

    #[test]
    fn best_fit_prefers_aligned_start() {
        let fo = FlexOffer::new(0, 5, vec![Slice::new(2, 2).unwrap()]).unwrap();
        let residual = Series::new(4, vec![2]);
        let (a, delta) = best_fit_assignment(&fo, &residual);
        assert_eq!(a.start(), 4);
        assert!(delta < 0.0);
    }
}
