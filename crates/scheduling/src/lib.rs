//! Flex-offer scheduling toward a target supply profile.
//!
//! Scenario 1's endgame: flex-offers "must be scheduled at some point in
//! time to be able to satisfy the prosumers' energy needs" — ideally so that
//! demand follows renewable production. The *flex-offer scheduling problem*
//! (Tušar et al., 2012, the paper's reference \[13\]) assigns each flex-offer
//! a start time and energy values so that the summed load tracks a target
//! profile.
//!
//! This crate provides the problem type, imbalance metrics, and four
//! schedulers spanning the quality/cost spectrum:
//!
//! * [`baseline::EarliestStartScheduler`] — no use of flexibility at all:
//!   earliest start, midpoint amounts. The "inflexible world" baseline every
//!   experiment compares against.
//! * [`greedy::GreedyScheduler`] — one pass, each flex-offer locally fitted
//!   (best start, water-filled amounts) against the residual target.
//! * [`hillclimb::HillClimbScheduler`] — seeded stochastic improvement over
//!   greedy via per-offer ruin-and-recreate.
//! * [`exhaustive::ExhaustiveScheduler`] — provably optimal on small
//!   instances (guarded), the yardstick for the heuristics in tests.
//!
//! The experiments built on top (EXPERIMENTS.md, E2) schedule portfolios of
//! varying retained flexibility and correlate the paper's eight measures
//! with realized imbalance reduction.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod annealing;
pub mod baseline;
pub mod error;
pub mod exhaustive;
pub mod greedy;
pub mod hillclimb;
pub mod imbalance;
pub mod pipeline;
pub mod problem;

pub use annealing::AnnealingScheduler;
pub use baseline::{earliest_start_assignment, EarliestStartScheduler};
pub use error::SchedulingError;
pub use exhaustive::ExhaustiveScheduler;
pub use greedy::GreedyScheduler;
pub use hillclimb::HillClimbScheduler;
pub use imbalance::{Imbalance, Schedule};
pub use pipeline::{
    assemble_member_schedule, realize_aggregate, schedule_via_aggregation, PipelineOutcome,
};
pub use problem::{Scheduler, SchedulingProblem};
