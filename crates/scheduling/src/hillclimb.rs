//! Seeded stochastic hill-climbing on top of the greedy schedule.
//!
//! The authors' own scheduling work (\[13\], evolutionary) is approximated
//! here by a simpler local search: start from greedy, then repeatedly pick a
//! flex-offer, lift its assignment out of the load, and re-fit it against
//! the refreshed residual (ruin-and-recreate). Re-fitting never worsens the
//! squared error, so the climb is monotone; randomising the victim order
//! lets offers unwind each other's early greedy commitments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::SchedulingError;
use crate::greedy::{best_fit_assignment, GreedyScheduler};
use crate::imbalance::Schedule;
use crate::problem::{Scheduler, SchedulingProblem};

/// Stochastic hill-climbing scheduler (deterministic under a fixed seed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HillClimbScheduler {
    /// RNG seed; equal seeds give identical schedules.
    pub seed: u64,
    /// Number of ruin-and-recreate steps.
    pub iterations: usize,
}

impl HillClimbScheduler {
    /// A climber with the given seed and step budget.
    pub fn new(seed: u64, iterations: usize) -> Self {
        Self { seed, iterations }
    }
}

impl Default for HillClimbScheduler {
    fn default() -> Self {
        Self {
            seed: 42,
            iterations: 512,
        }
    }
}

impl Scheduler for HillClimbScheduler {
    fn name(&self) -> &'static str {
        "stochastic hill-climbing"
    }

    fn schedule(&self, problem: &SchedulingProblem) -> Result<Schedule, SchedulingError> {
        let offers = problem.offers();
        let initial = GreedyScheduler::new().schedule(problem)?;
        if offers.is_empty() {
            return Ok(initial);
        }
        let mut assignments = initial.assignments().to_vec();
        let mut residual = problem.target().clone();
        for a in &assignments {
            residual = &residual - &a.as_series();
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        for _ in 0..self.iterations {
            let i = rng.gen_range(0..offers.len());
            // Lift offer i out, re-fit against the refreshed residual.
            let without = &residual + &assignments[i].as_series();
            let (refit, _) = best_fit_assignment(&offers[i], &without);
            residual = &without - &refit.as_series();
            assignments[i] = refit;
        }
        Ok(Schedule::new(assignments))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::{FlexOffer, Slice};
    use flexoffers_timeseries::Series;

    fn hard_problem() -> SchedulingProblem {
        // Several overlapping offers competing for a peaked target; greedy
        // order matters, so local search has room to improve.
        let offers = vec![
            FlexOffer::new(
                0,
                4,
                vec![Slice::new(0, 3).unwrap(), Slice::new(0, 3).unwrap()],
            )
            .unwrap(),
            FlexOffer::new(0, 4, vec![Slice::new(1, 2).unwrap()]).unwrap(),
            FlexOffer::new(1, 5, vec![Slice::new(0, 4).unwrap()]).unwrap(),
            FlexOffer::new(
                2,
                3,
                vec![Slice::new(2, 3).unwrap(), Slice::new(0, 1).unwrap()],
            )
            .unwrap(),
        ];
        SchedulingProblem::new(offers, Series::new(2, vec![6, 5, 2]))
    }

    #[test]
    fn never_worse_than_greedy() {
        let p = hard_problem();
        let greedy = GreedyScheduler::new().schedule(&p).unwrap();
        let climbed = HillClimbScheduler::default().schedule(&p).unwrap();
        assert!(p.is_feasible(&climbed));
        assert!(climbed.imbalance(p.target()).l2 <= greedy.imbalance(p.target()).l2 + 1e-9);
    }

    #[test]
    fn deterministic_under_seed() {
        let p = hard_problem();
        let a = HillClimbScheduler::new(7, 128).schedule(&p).unwrap();
        let b = HillClimbScheduler::new(7, 128).schedule(&p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_iterations_equals_greedy() {
        let p = hard_problem();
        let greedy = GreedyScheduler::new().schedule(&p).unwrap();
        let climbed = HillClimbScheduler::new(1, 0).schedule(&p).unwrap();
        assert_eq!(greedy, climbed);
    }

    #[test]
    fn empty_problem() {
        let p = SchedulingProblem::new(vec![], Series::new(0, vec![1]));
        let s = HillClimbScheduler::default().schedule(&p).unwrap();
        assert!(s.assignments().is_empty());
    }

    #[test]
    fn monotone_improvement_across_budgets() {
        let p = hard_problem();
        let short = HillClimbScheduler::new(3, 8).schedule(&p).unwrap();
        let long = HillClimbScheduler::new(3, 512).schedule(&p).unwrap();
        assert!(
            long.imbalance(p.target()).l2 <= short.imbalance(p.target()).l2 + 1e-9,
            "longer climbs never regress under the same seed"
        );
    }
}
