//! Error types for scheduling.

use std::error::Error;
use std::fmt;

/// Errors raised by schedulers.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedulingError {
    /// Exhaustive search refused: the joint assignment space exceeds the
    /// configured limit.
    SearchSpaceTooLarge {
        /// The configured limit on joint assignments.
        limit: u128,
    },
}

impl fmt::Display for SchedulingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulingError::SearchSpaceTooLarge { limit } => {
                write!(f, "joint assignment space exceeds the limit of {limit}")
            }
        }
    }
}

impl Error for SchedulingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(SchedulingError::SearchSpaceTooLarge { limit: 10 }
            .to_string()
            .contains("10"));
    }
}
