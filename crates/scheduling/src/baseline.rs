//! The no-flexibility baseline scheduler.

use flexoffers_model::{Assignment, Energy, FlexOffer};

use crate::error::SchedulingError;
use crate::imbalance::Schedule;
use crate::problem::{Scheduler, SchedulingProblem};

/// Schedules every flex-offer at its earliest start with midpoint amounts —
/// the behaviour of a grid that ignores flexibility entirely. Experiments
/// use it as the "inflexible world" reference: the value of flexibility is
/// whatever a real scheduler saves relative to this.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EarliestStartScheduler;

/// Clamps `values` into the flex-offer's total energy window by walking
/// amounts toward slice bounds, spreading the adjustment across slices.
/// Values must already respect the per-slice ranges.
pub(crate) fn fit_totals(fo: &FlexOffer, mut values: Vec<Energy>) -> Vec<Energy> {
    let mut total: Energy = values.iter().sum();
    while total > fo.total_max() {
        let mut need = total - fo.total_max();
        for (v, s) in values.iter_mut().zip(fo.slices()) {
            let drop = (*v - s.min()).min(need);
            *v -= drop;
            need -= drop;
            if need == 0 {
                break;
            }
        }
        total = fo.total_max();
    }
    while total < fo.total_min() {
        let mut need = fo.total_min() - total;
        for (v, s) in values.iter_mut().zip(fo.slices()) {
            let add = (s.max() - *v).min(need);
            *v += add;
            need -= add;
            if need == 0 {
                break;
            }
        }
        total = fo.total_min();
    }
    values
}

/// The baseline assignment for one flex-offer: earliest start, midpoint
/// amounts clamped into the total-energy window. A pure per-offer function
/// — [`EarliestStartScheduler`] maps it over the problem, and partitioned
/// evaluators (the engine's sharded book) map it per shard and scatter,
/// producing the exact same schedule.
pub fn earliest_start_assignment(fo: &FlexOffer) -> Assignment {
    let midpoints: Vec<Energy> = fo.slices().iter().map(|s| s.midpoint()).collect();
    Assignment::new(fo.earliest_start(), fit_totals(fo, midpoints))
}

impl Scheduler for EarliestStartScheduler {
    fn name(&self) -> &'static str {
        "earliest-start baseline"
    }

    fn schedule(&self, problem: &SchedulingProblem) -> Result<Schedule, SchedulingError> {
        Ok(Schedule::new(
            problem
                .offers()
                .iter()
                .map(earliest_start_assignment)
                .collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;
    use flexoffers_timeseries::Series;

    #[test]
    fn baseline_is_always_feasible() {
        let problem = SchedulingProblem::new(
            vec![
                FlexOffer::new(0, 5, vec![Slice::new(0, 4).unwrap()]).unwrap(),
                FlexOffer::with_totals(
                    1,
                    3,
                    vec![Slice::new(0, 5).unwrap(), Slice::new(0, 5).unwrap()],
                    8,
                    9,
                )
                .unwrap(),
            ],
            Series::new(0, vec![2, 2, 2]),
        );
        let s = EarliestStartScheduler.schedule(&problem).unwrap();
        assert!(problem.is_feasible(&s));
        // Starts pinned at earliest.
        assert_eq!(s.assignments()[0].start(), 0);
        assert_eq!(s.assignments()[1].start(), 1);
    }

    #[test]
    fn midpoints_raised_to_meet_total_min() {
        // Midpoints are 2+2 = 4 < cmin 8: fit_totals must raise them.
        let fo = FlexOffer::with_totals(
            0,
            0,
            vec![Slice::new(0, 5).unwrap(), Slice::new(0, 5).unwrap()],
            8,
            10,
        )
        .unwrap();
        let p = SchedulingProblem::new(vec![fo.clone()], Series::empty());
        let s = EarliestStartScheduler.schedule(&p).unwrap();
        assert!(fo.is_valid_assignment(&s.assignments()[0]));
        assert_eq!(s.assignments()[0].total(), 8);
    }

    #[test]
    fn midpoints_lowered_to_meet_total_max() {
        let fo = FlexOffer::with_totals(
            0,
            0,
            vec![Slice::new(0, 6).unwrap(), Slice::new(0, 6).unwrap()],
            0,
            2,
        )
        .unwrap();
        let p = SchedulingProblem::new(vec![fo.clone()], Series::empty());
        let s = EarliestStartScheduler.schedule(&p).unwrap();
        assert!(fo.is_valid_assignment(&s.assignments()[0]));
        assert_eq!(s.assignments()[0].total(), 2);
    }

    #[test]
    fn production_midpoints_work_too() {
        let fo = FlexOffer::new(0, 2, vec![Slice::new(-5, -1).unwrap()]).unwrap();
        let p = SchedulingProblem::new(vec![fo.clone()], Series::empty());
        let s = EarliestStartScheduler.schedule(&p).unwrap();
        assert!(fo.is_valid_assignment(&s.assignments()[0]));
    }

    #[test]
    fn empty_problem_gives_empty_schedule() {
        let p = SchedulingProblem::new(vec![], Series::empty());
        let s = EarliestStartScheduler.schedule(&p).unwrap();
        assert!(s.assignments().is_empty());
    }
}
