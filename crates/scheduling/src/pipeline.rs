//! The full Scenario 1 pipeline: aggregate → schedule → disaggregate.
//!
//! "To reduce the complexity of scheduling, flex-offer aggregation plays a
//! crucial role" (paper, Scenario 1). This module wires the three stages
//! together: a portfolio is grouped and aggregated, the (much smaller)
//! aggregate problem is scheduled, and each aggregate's assignment is
//! disaggregated back to its members. Aggregates whose scheduled assignment
//! proves *unrealizable* (the overestimation effect) are transparently
//! re-scheduled at member level, so the pipeline always returns a feasible
//! member-level schedule.

use flexoffers_aggregation::{aggregate_indices, group_indices, Aggregate, GroupingParams};
use flexoffers_model::Assignment;
use flexoffers_timeseries::Series;

use crate::error::SchedulingError;
use crate::imbalance::Schedule;
use crate::problem::{Scheduler, SchedulingProblem};

/// Outcome of the aggregate-then-schedule pipeline.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineOutcome {
    /// Member-level schedule, offer-ordered to match the input problem.
    pub schedule: Schedule,
    /// Number of aggregates the reduced problem contained.
    pub aggregates: usize,
    /// Aggregates whose scheduled assignment had to be re-planned at member
    /// level because no member combination realized it.
    pub unrealizable_plans: usize,
}

/// Schedules `problem` through aggregation: group with `params`, schedule
/// the aggregates with `scheduler`, disaggregate. The returned schedule is
/// always feasible for the *original* member-level problem.
pub fn schedule_via_aggregation(
    problem: &SchedulingProblem,
    params: &GroupingParams,
    scheduler: &dyn Scheduler,
) -> Result<PipelineOutcome, SchedulingError> {
    let offers = problem.offers();
    let groups = group_indices(offers, params);
    let aggregates: Vec<Aggregate> = groups
        .iter()
        .map(|g| aggregate_indices(offers, g).expect("grouping never yields empty groups"))
        .collect();
    let reduced = SchedulingProblem::new(
        aggregates.iter().map(|a| a.flexoffer().clone()).collect(),
        problem.target().clone(),
    );
    let aggregate_schedule = scheduler.schedule(&reduced)?;

    // Realize each aggregate's plan at member level and scatter the parts
    // back to the input positions the group owns.
    let realized: Vec<(Vec<Assignment>, bool)> = aggregates
        .iter()
        .zip(aggregate_schedule.assignments())
        .map(|(agg, assignment)| realize_aggregate(agg, assignment))
        .collect();
    let outcome = assemble_member_schedule(offers.len(), &groups, realized);
    debug_assert!(problem.is_feasible(&outcome.schedule));
    Ok(outcome)
}

/// Scatters per-aggregate realized parts back to the input positions each
/// group owns and counts the fallbacks — the deterministic merge step both
/// [`schedule_via_aggregation`] and the batch engine's parallel pipeline
/// end on, kept in one place so the two stay bitwise interchangeable.
/// `realized` pairs positionally with `groups` (one
/// [`realize_aggregate`] result per group).
///
/// # Panics
///
/// Panics if `groups` does not partition `0..offers_len` or a part list
/// does not match its group's length.
pub fn assemble_member_schedule(
    offers_len: usize,
    groups: &[Vec<usize>],
    realized: Vec<(Vec<Assignment>, bool)>,
) -> PipelineOutcome {
    let mut member_assignments: Vec<Option<Assignment>> = vec![None; offers_len];
    let mut unrealizable = 0;
    for (indices, (parts, fell_back)) in groups.iter().zip(realized) {
        if fell_back {
            unrealizable += 1;
        }
        assert_eq!(indices.len(), parts.len(), "one part per group member");
        for (idx, part) in indices.iter().zip(parts) {
            member_assignments[*idx] = Some(part);
        }
    }
    PipelineOutcome {
        schedule: Schedule::new(
            member_assignments
                .into_iter()
                .map(|a| a.expect("groups partition the input"))
                .collect(),
        ),
        aggregates: groups.len(),
        unrealizable_plans: unrealizable,
    }
}

/// Realizes one aggregate's scheduled assignment at member level: exact
/// disaggregation when the plan is realizable, otherwise (the
/// overestimation effect) a member-by-member greedy fit against the load
/// the aggregate was scheduled to produce — each aggregate's plan *is* its
/// partition of the residual target. Returns the member assignments (in
/// member order) and whether the fallback fired.
///
/// Each aggregate is realized independently of every other, so a batch
/// engine can fan this out across worker threads and merge in group order;
/// `schedule_via_aggregation` is the sequential fold of exactly this
/// function.
pub fn realize_aggregate(agg: &Aggregate, assignment: &Assignment) -> (Vec<Assignment>, bool) {
    match agg.disaggregate(assignment) {
        Ok(parts) => (parts, false),
        Err(_) => {
            let mut residual: Series<i64> = assignment.as_series();
            let parts = agg
                .members()
                .iter()
                .map(|member| {
                    let (fit, _) = crate::greedy::best_fit_assignment(member, &residual);
                    residual = &residual - &fit.as_series();
                    fit
                })
                .collect();
            (parts, true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyScheduler;
    use flexoffers_model::{FlexOffer, Slice};

    fn offers() -> Vec<FlexOffer> {
        vec![
            FlexOffer::new(0, 2, vec![Slice::new(0, 3).unwrap()]).unwrap(),
            FlexOffer::new(0, 2, vec![Slice::new(1, 4).unwrap()]).unwrap(),
            FlexOffer::new(
                3,
                6,
                vec![Slice::new(0, 2).unwrap(), Slice::new(0, 2).unwrap()],
            )
            .unwrap(),
            FlexOffer::with_totals(3, 6, vec![Slice::new(0, 5).unwrap(); 2], 4, 8).unwrap(),
        ]
    }

    #[test]
    fn pipeline_returns_feasible_member_schedules() {
        let problem = SchedulingProblem::new(offers(), Series::new(1, vec![5, 4, 3, 2, 2]));
        let outcome = schedule_via_aggregation(
            &problem,
            &GroupingParams::with_tolerances(2, 2),
            &GreedyScheduler::new(),
        )
        .unwrap();
        assert!(problem.is_feasible(&outcome.schedule));
        assert!(outcome.aggregates <= problem.offers().len());
    }

    #[test]
    fn single_group_still_feasible_and_smaller() {
        let problem = SchedulingProblem::new(offers(), Series::new(0, vec![6, 6, 6, 6]));
        let outcome = schedule_via_aggregation(
            &problem,
            &GroupingParams::single_group(),
            &GreedyScheduler::new(),
        )
        .unwrap();
        assert_eq!(outcome.aggregates, 1);
        assert!(problem.is_feasible(&outcome.schedule));
    }

    #[test]
    fn strict_grouping_equals_direct_scheduling_quality() {
        // Singleton aggregates: the pipeline degenerates to scheduling the
        // members directly (identical spaces), so quality matches greedy.
        let problem = SchedulingProblem::new(offers(), Series::new(1, vec![4, 4, 4]));
        let direct = GreedyScheduler::new().schedule(&problem).unwrap();
        let outcome =
            schedule_via_aggregation(&problem, &GroupingParams::strict(), &GreedyScheduler::new())
                .unwrap();
        assert!(problem.is_feasible(&outcome.schedule));
        // Strict grouping may still merge identical offers; only compare
        // when it stayed singleton.
        if outcome.aggregates == problem.offers().len() {
            assert_eq!(
                outcome.schedule.imbalance(problem.target()).l2,
                direct.imbalance(problem.target()).l2
            );
        }
    }

    #[test]
    fn duplicate_offers_map_to_distinct_indices() {
        // index_map must not assign the same input index twice when the
        // portfolio contains equal flex-offers.
        let twin = FlexOffer::new(0, 1, vec![Slice::new(0, 2).unwrap()]).unwrap();
        let problem = SchedulingProblem::new(vec![twin.clone(), twin], Series::new(0, vec![3, 3]));
        let outcome = schedule_via_aggregation(
            &problem,
            &GroupingParams::single_group(),
            &GreedyScheduler::new(),
        )
        .unwrap();
        assert_eq!(outcome.schedule.assignments().len(), 2);
        assert!(problem.is_feasible(&outcome.schedule));
    }

    #[test]
    fn unrealizable_plans_are_counted_and_recovered() {
        // Members with incompatible totals (the overestimation fixture).
        let m1 = FlexOffer::with_totals(0, 0, vec![Slice::new(0, 1).unwrap(); 2], 2, 2).unwrap();
        let m2 = FlexOffer::with_totals(0, 0, vec![Slice::new(0, 1).unwrap(); 2], 0, 0).unwrap();
        let problem = SchedulingProblem::new(
            vec![m1, m2],
            // Target <2,0> makes the aggregate's best plan exactly the
            // unrealizable <2,0>.
            Series::new(0, vec![2, 0]),
        );
        let outcome = schedule_via_aggregation(
            &problem,
            &GroupingParams::single_group(),
            &GreedyScheduler::new(),
        )
        .unwrap();
        assert!(problem.is_feasible(&outcome.schedule));
        assert_eq!(outcome.unrealizable_plans, 1);
    }
}
