//! Schedules and imbalance metrics.

use serde::{Deserialize, Serialize};

use flexoffers_model::Assignment;
use flexoffers_timeseries::ops::{pointwise_min, sum_series};
use flexoffers_timeseries::{Norm, Series};

/// One assignment per flex-offer of a
/// [`SchedulingProblem`](crate::SchedulingProblem), positionally paired.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    assignments: Vec<Assignment>,
}

impl Schedule {
    /// Creates a schedule from per-offer assignments.
    pub fn new(assignments: Vec<Assignment>) -> Self {
        Self { assignments }
    }

    /// The per-offer assignments.
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// The summed load series of all assignments.
    pub fn load(&self) -> Series<i64> {
        let series: Vec<Series<i64>> = self.assignments.iter().map(Assignment::as_series).collect();
        sum_series(series.iter())
    }

    /// Imbalance of this schedule's load against `target`.
    pub fn imbalance(&self, target: &Series<i64>) -> Imbalance {
        Imbalance::between(&self.load(), target)
    }
}

/// Deviation metrics between a realized load and a target profile.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Imbalance {
    /// Total absolute deviation (the energy volume settled at penalty
    /// prices in Scenario 2).
    pub l1: f64,
    /// Euclidean deviation (the usual scheduling objective).
    pub l2: f64,
    /// Worst single-slot deviation (what a congested feeder cares about).
    pub peak: f64,
}

impl Imbalance {
    /// Computes all metrics between `load` and `target`.
    pub fn between(load: &Series<i64>, target: &Series<i64>) -> Self {
        let diff = load - target;
        Imbalance {
            l1: Norm::L1.of(&diff),
            l2: Norm::L2.of(&diff),
            peak: Norm::LInf.of(&diff),
        }
    }
}

/// Fraction of a (non-negative) target actually covered by the load:
/// `sum(min(load, target)) / sum(target)`, clamped to `[0, 1]`. In the RES
/// experiments the target is forecast renewable production and coverage is
/// "how much green energy the flexible demand absorbed"; 1.0 when the
/// target is empty.
pub fn coverage(load: &Series<i64>, target: &Series<i64>) -> f64 {
    let total: i64 = target.iter().map(|(_, v)| v.max(0)).sum();
    if total == 0 {
        return 1.0;
    }
    let covered: i64 = pointwise_min(load, target)
        .iter()
        .map(|(_, v)| v.max(0))
        .sum();
    (covered as f64 / total as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_sums_assignments() {
        let s = Schedule::new(vec![
            Assignment::new(0, vec![1, 2]),
            Assignment::new(1, vec![3]),
        ]);
        assert_eq!(s.load(), Series::new(0, vec![1, 5]));
    }

    #[test]
    fn empty_schedule_has_empty_load() {
        let s = Schedule::new(vec![]);
        assert!(s.load().is_empty());
    }

    #[test]
    fn imbalance_metrics() {
        let load = Series::new(0, vec![3, 0]);
        let target = Series::new(0, vec![0, 4]);
        let im = Imbalance::between(&load, &target);
        assert_eq!(im.l1, 7.0);
        assert_eq!(im.l2, 5.0);
        assert_eq!(im.peak, 4.0);
    }

    #[test]
    fn perfect_tracking_is_zero_imbalance() {
        let load = Series::new(2, vec![1, 2, 3]);
        let im = Imbalance::between(&load, &load.clone());
        assert_eq!((im.l1, im.l2, im.peak), (0.0, 0.0, 0.0));
    }

    #[test]
    fn coverage_full_partial_none() {
        let target = Series::new(0, vec![2, 2]);
        assert_eq!(coverage(&Series::new(0, vec![2, 2]), &target), 1.0);
        assert_eq!(coverage(&Series::new(0, vec![2, 0]), &target), 0.5);
        assert_eq!(coverage(&Series::empty(), &target), 0.0);
        // Overshoot does not count extra.
        assert_eq!(coverage(&Series::new(0, vec![9, 9]), &target), 1.0);
    }

    #[test]
    fn coverage_of_empty_target_is_one() {
        assert_eq!(coverage(&Series::new(0, vec![5]), &Series::empty()), 1.0);
    }

    #[test]
    fn schedule_imbalance_convenience() {
        let s = Schedule::new(vec![Assignment::new(0, vec![1])]);
        let target = Series::new(0, vec![1]);
        assert_eq!(s.imbalance(&target).l1, 0.0);
    }
}
