//! The aggregator: Scenario 2's protagonist.

use flexoffers_aggregation::{aggregate_portfolio, Aggregate, GroupingParams};
use flexoffers_model::{Assignment, FlexOffer, Portfolio};
use flexoffers_timeseries::ops::sum_series;
use flexoffers_timeseries::{Norm, Series};

use crate::planner::cheapest_assignment;
use crate::settle::{MarketOutcome, Order};
use crate::spot::SpotMarket;

/// An aggregator that bundles a portfolio, trades the bundles that clear the
/// market's minimum lot size, and answers for the imbalance its planning
/// causes.
#[derive(Clone, Debug, PartialEq)]
pub struct Aggregator {
    /// Grouping tolerances used to form aggregates.
    pub grouping: GroupingParams,
    /// Minimum tradeable lot: an aggregate is admitted only if the larger of
    /// `|cmin|`, `|cmax|` reaches this volume. Individual household offers
    /// fail this — the paper's point about why aggregation must happen
    /// before the market.
    pub min_lot: i64,
    /// Plan on the aggregate's *apparent* flexibility without checking that
    /// members can realize the plan. The aggregate's slice sums and total
    /// sums drop cross-member coupling, so naive plans routinely demand
    /// deliveries no member combination can produce, and the difference
    /// settles as imbalance — the market face of the aggregation
    /// overestimation documented in `flexoffers-aggregation`. Off by
    /// default: a competent aggregator re-plans member-by-member when the
    /// aggregate plan fails the realizability check.
    pub naive_planning: bool,
}

impl Aggregator {
    /// An aggregator with the given grouping tolerances and lot rule, using
    /// safe (realizability-checked) planning.
    pub fn new(grouping: GroupingParams, min_lot: i64) -> Self {
        Self {
            grouping,
            min_lot,
            naive_planning: false,
        }
    }

    /// An aggregator that trusts the aggregate's apparent flexibility and
    /// pays the resulting imbalance — used by the overestimation experiment.
    pub fn naive(grouping: GroupingParams, min_lot: i64) -> Self {
        Self {
            grouping,
            min_lot,
            naive_planning: true,
        }
    }

    /// `true` if the aggregate clears the minimum-lot rule.
    pub fn admits(&self, fo: &FlexOffer) -> bool {
        fo.total_min().abs().max(fo.total_max().abs()) >= self.min_lot
    }

    /// Runs the full pipeline: group, aggregate, admit, plan, settle.
    pub fn run(&self, portfolio: &Portfolio, market: &SpotMarket) -> MarketOutcome {
        let aggregates = aggregate_portfolio(portfolio.as_slice(), &self.grouping);
        let decisions = aggregates.iter().map(|agg| self.evaluate(agg, market));
        Aggregator::settle(
            decisions,
            market.cost_of(&baseline_load(portfolio.as_slice())),
            market,
        )
    }

    /// Evaluates one aggregate against the market: an admitted lot is
    /// planned into an [`Order`], a lot that fails the minimum-lot rule
    /// buys its baseline load at the penalty rate (no spot access).
    ///
    /// Aggregates are evaluated independently of each other, so a batch
    /// engine can fan this out across worker threads;
    /// [`Aggregator::run`] is [`Aggregator::settle`] folded over exactly
    /// these decisions in aggregate order.
    pub fn evaluate(&self, agg: &Aggregate, market: &SpotMarket) -> LotDecision {
        if self.admits(agg.flexoffer()) {
            LotDecision::Admitted(self.plan_order(agg, market))
        } else {
            let load = baseline_load(agg.members());
            let volume: f64 = load.iter().map(|(_, v)| v.abs() as f64).sum();
            LotDecision::Rejected {
                cost: market.imbalance_cost(volume),
            }
        }
    }

    /// Folds per-aggregate decisions into a [`MarketOutcome`]. The fold
    /// accumulates costs in decision order, so callers that preserve
    /// aggregate order reproduce [`Aggregator::run`] bit for bit no matter
    /// how the decisions themselves were computed.
    pub fn settle(
        decisions: impl IntoIterator<Item = LotDecision>,
        baseline_cost: f64,
        market: &SpotMarket,
    ) -> MarketOutcome {
        let mut orders = Vec::new();
        let mut rejected_lots = 0;
        let mut procurement_cost = 0.0;
        let mut imbalance_cost = 0.0;
        let mut rejected_cost = 0.0;
        for decision in decisions {
            match decision {
                LotDecision::Admitted(order) => {
                    procurement_cost += order.cost;
                    imbalance_cost += market.imbalance_cost(order.imbalance);
                    orders.push(order);
                }
                LotDecision::Rejected { cost } => {
                    rejected_lots += 1;
                    rejected_cost += cost;
                }
            }
        }
        MarketOutcome {
            orders,
            rejected_lots,
            procurement_cost,
            imbalance_cost,
            rejected_cost,
            baseline_cost,
        }
    }

    /// Plans one aggregate's order: cheapest valid assignment of the
    /// aggregate, then a realizability check.
    ///
    /// * Realizable plan: traded as is, no imbalance.
    /// * Unrealizable plan, safe mode: the aggregator re-plans each member's
    ///   own cheapest dispatch and trades the (realizable) sum.
    /// * Unrealizable plan, naive mode: the plan is still what was bought;
    ///   the members deliver their closest joint alternative (their own
    ///   cheapest dispatch) and the difference settles as imbalance.
    fn plan_order(&self, agg: &Aggregate, market: &SpotMarket) -> Order {
        let plan = cheapest_assignment(agg.flexoffer(), market);
        if agg.disaggregate(&plan).is_ok() {
            return Order {
                cost: market.cost_of(&plan.as_series()),
                load: plan.as_series(),
                members: agg.len(),
                imbalance: 0.0,
            };
        }
        let realized: Vec<Series<i64>> = agg
            .members()
            .iter()
            .map(|m| cheapest_assignment(m, market).as_series())
            .collect();
        let realized_load = sum_series(realized.iter());
        if self.naive_planning {
            Order {
                cost: market.cost_of(&plan.as_series()),
                imbalance: Norm::L1.of(&(&realized_load - &plan.as_series())),
                load: plan.as_series(),
                members: agg.len(),
            }
        } else {
            Order {
                cost: market.cost_of(&realized_load),
                load: realized_load,
                members: agg.len(),
                imbalance: 0.0,
            }
        }
    }
}

/// One aggregate's fate at the market: traded, or refused by the
/// minimum-lot rule and settled at penalty rates.
#[derive(Clone, Debug, PartialEq)]
pub enum LotDecision {
    /// The lot cleared the admission rule and was planned into an order.
    Admitted(Order),
    /// The lot was too small to trade; its members buy their baseline load
    /// at the penalty rate.
    Rejected {
        /// Penalty-rate cost of the rejected members' baseline energy.
        cost: f64,
    },
}

/// The no-flexibility delivery of a set of offers: earliest start, midpoint
/// amounts fitted to totals (mirrors the scheduling crate's
/// `EarliestStartScheduler`). Integer series sum, so any chunked
/// computation that concatenates partial sums reproduces it exactly.
pub fn baseline_load(offers: &[FlexOffer]) -> Series<i64> {
    let series: Vec<Series<i64>> = offers
        .iter()
        .map(|fo| {
            let mids: Vec<i64> = fo.slices().iter().map(|s| s.midpoint()).collect();
            let assignment = Assignment::new(fo.earliest_start(), fit(fo, mids));
            assignment.as_series()
        })
        .collect();
    sum_series(series.iter())
}

/// Minimal total-constraint repair (mirrors the scheduling baseline).
fn fit(fo: &FlexOffer, mut values: Vec<i64>) -> Vec<i64> {
    let mut total: i64 = values.iter().sum();
    for (v, s) in values.iter_mut().zip(fo.slices()) {
        if total <= fo.total_max() {
            break;
        }
        let drop = (*v - s.min()).min(total - fo.total_max());
        *v -= drop;
        total -= drop;
    }
    for (v, s) in values.iter_mut().zip(fo.slices()) {
        if total >= fo.total_min() {
            break;
        }
        let add = (s.max() - *v).min(fo.total_min() - total);
        *v += add;
        total += add;
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;
    use flexoffers_workloads::price::{price_trace, PriceTraceConfig};
    use flexoffers_workloads::PopulationBuilder;

    fn market() -> SpotMarket {
        let prices = price_trace(&PriceTraceConfig {
            days: 2,
            ..PriceTraceConfig::default()
        });
        SpotMarket::new(prices, 2.0).unwrap()
    }

    #[test]
    fn small_offers_fail_the_lot_rule_until_aggregated() {
        let fo = FlexOffer::new(0, 3, vec![Slice::new(0, 2).unwrap()]).unwrap();
        let aggregator = Aggregator::new(GroupingParams::single_group(), 10);
        assert!(!aggregator.admits(&fo));
        // Ten of them aggregated clear the lot.
        let agg = flexoffers_aggregation::aggregate(&vec![fo; 10]).unwrap();
        assert!(aggregator.admits(agg.flexoffer()));
    }

    #[test]
    fn flexible_portfolio_saves_money() {
        let portfolio = PopulationBuilder::new(11)
            .electric_vehicles(12)
            .dishwashers(15)
            .heat_pumps(8)
            .build();
        let aggregator = Aggregator::new(GroupingParams::with_tolerances(2, 2), 10);
        let outcome = aggregator.run(&portfolio, &market());
        assert!(
            outcome.savings() > 0.0,
            "shifting into cheap hours must beat the baseline: {outcome:?}"
        );
        assert!(!outcome.orders.is_empty());
    }

    #[test]
    fn coarse_aggregation_can_strand_lots() {
        // With a strict grouping and a large lot size, isolated offers are
        // rejected and pay penalty rates.
        let portfolio = PopulationBuilder::new(3).refrigerators(5).build();
        let aggregator = Aggregator::new(GroupingParams::strict(), 1_000);
        let outcome = aggregator.run(&portfolio, &market());
        assert!(outcome.rejected_lots > 0);
        assert!(outcome.rejected_cost > 0.0);
        assert!(outcome.orders.is_empty());
    }

    #[test]
    fn realizable_plans_settle_without_imbalance() {
        // Default-totals members: every aggregate assignment disaggregates.
        let offers = vec![
            FlexOffer::new(0, 2, vec![Slice::new(0, 5).unwrap()]).unwrap(),
            FlexOffer::new(0, 2, vec![Slice::new(2, 6).unwrap()]).unwrap(),
        ];
        let portfolio = Portfolio::from_offers(offers);
        let aggregator = Aggregator::new(GroupingParams::single_group(), 1);
        let outcome = aggregator.run(&portfolio, &market());
        assert_eq!(outcome.imbalance_cost, 0.0);
        assert!(outcome.orders.iter().all(|o| o.imbalance == 0.0));
    }

    #[test]
    fn naive_planning_pays_for_overestimated_flexibility() {
        // EVs and heat pumps have binding total constraints, so the
        // aggregate's cheapest plan is typically unrealizable: the naive
        // aggregator books imbalance, the safe one does not, and safe never
        // costs more in total.
        let portfolio = PopulationBuilder::new(11)
            .electric_vehicles(12)
            .heat_pumps(8)
            .build();
        let m = market();
        let grouping = GroupingParams::with_tolerances(2, 2);
        let safe = Aggregator::new(grouping, 10).run(&portfolio, &m);
        let naive = Aggregator::naive(grouping, 10).run(&portfolio, &m);
        assert_eq!(safe.imbalance_cost, 0.0);
        assert!(naive.imbalance_cost > 0.0);
        assert!(safe.total_cost() <= naive.total_cost());
    }

    #[test]
    fn baseline_load_respects_totals() {
        let fo = FlexOffer::with_totals(
            0,
            0,
            vec![Slice::new(0, 6).unwrap(), Slice::new(0, 6).unwrap()],
            10,
            12,
        )
        .unwrap();
        let load = baseline_load(std::slice::from_ref(&fo));
        assert!(load.sum() >= 10 && load.sum() <= 12);
    }
}
