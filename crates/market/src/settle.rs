//! Settlement accounting types.

use flexoffers_timeseries::Series;

/// One admitted trade: an aggregate's planned load on the spot market.
#[derive(Clone, Debug, PartialEq)]
pub struct Order {
    /// The planned (purchased/sold) load series.
    pub load: Series<i64>,
    /// Spot procurement cost of the plan (negative = revenue).
    pub cost: f64,
    /// Number of member flex-offers behind the order.
    pub members: usize,
    /// Imbalance volume settled at the penalty rate because the plan turned
    /// out unrealizable by the members (0 for realizable plans).
    pub imbalance: f64,
}

/// The aggregator's end-to-end result for one portfolio and market.
#[derive(Clone, Debug, PartialEq)]
pub struct MarketOutcome {
    /// Admitted orders, one per sufficiently large aggregate.
    pub orders: Vec<Order>,
    /// Number of aggregates refused by the minimum-lot rule.
    pub rejected_lots: usize,
    /// Spot cost of all admitted plans.
    pub procurement_cost: f64,
    /// Penalty paid on unrealizable-plan imbalances.
    pub imbalance_cost: f64,
    /// Penalty-rate cost of the energy of rejected (untradeable) lots.
    pub rejected_cost: f64,
    /// Cost of the whole portfolio under the no-flexibility baseline
    /// (earliest start, midpoint amounts, spot prices).
    pub baseline_cost: f64,
}

impl MarketOutcome {
    /// Everything the flexible pipeline pays.
    pub fn total_cost(&self) -> f64 {
        self.procurement_cost + self.imbalance_cost + self.rejected_cost
    }

    /// The value the flexibility created: baseline minus flexible total.
    pub fn savings(&self) -> f64 {
        self.baseline_cost - self.total_cost()
    }

    /// Savings as a fraction of the baseline (0 when the baseline is 0).
    pub fn relative_savings(&self) -> f64 {
        if self.baseline_cost == 0.0 {
            0.0
        } else {
            self.savings() / self.baseline_cost
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_accounting() {
        let outcome = MarketOutcome {
            orders: vec![],
            rejected_lots: 1,
            procurement_cost: 100.0,
            imbalance_cost: 10.0,
            rejected_cost: 15.0,
            baseline_cost: 150.0,
        };
        assert_eq!(outcome.total_cost(), 125.0);
        assert_eq!(outcome.savings(), 25.0);
        assert!((outcome.relative_savings() - 25.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_relative_savings() {
        let outcome = MarketOutcome {
            orders: vec![],
            rejected_lots: 0,
            procurement_cost: 0.0,
            imbalance_cost: 0.0,
            rejected_cost: 0.0,
            baseline_cost: 0.0,
        };
        assert_eq!(outcome.relative_savings(), 0.0);
    }
}
