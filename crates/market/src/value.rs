//! Valuing flexibility: which of the paper's measures predicts market
//! savings?
//!
//! Scenario 2 wants aggregated flex-offers "to retain as much flexibility as
//! possible in order to obtain a better value in the energy market". The E3
//! experiment quantifies that: across many portfolios, correlate each
//! measure's set-level value with the realized market savings. A measure
//! worth pricing on should correlate strongly.

use flexoffers_measures::all_measures;
use flexoffers_model::Portfolio;

/// Pearson correlation of two equally long samples; `None` when either side
/// is degenerate (fewer than two points or zero variance).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx * vy).sqrt())
}

/// One measure's correlation with market savings across portfolios.
#[derive(Clone, Debug, PartialEq)]
pub struct MeasureCorrelation {
    /// The measure's Table 1 column name.
    pub measure: String,
    /// Pearson correlation with savings; `None` if the measure failed on
    /// some portfolio (e.g. area measures on mixed offers) or the sample is
    /// degenerate.
    pub correlation: Option<f64>,
    /// Portfolios the measure evaluated successfully on.
    pub evaluated: usize,
}

/// Correlates each measure's portfolio-level value with realized savings,
/// one sample per portfolio. `savings` pairs positionally with
/// `portfolios`; compute it however the scenario demands — the sequential
/// [`Aggregator::run`](crate::Aggregator::run) or a batch engine's
/// parallel trading pipeline — and hand only the numbers here.
///
/// # Panics
///
/// Panics if `portfolios` and `savings` have different lengths.
pub fn measure_savings_correlation(
    portfolios: &[Portfolio],
    savings: &[f64],
) -> Vec<MeasureCorrelation> {
    assert_eq!(
        portfolios.len(),
        savings.len(),
        "one savings sample per portfolio"
    );
    all_measures()
        .iter()
        .map(|m| {
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for (portfolio, s) in portfolios.iter().zip(savings) {
                if let Ok(v) = m.of_set(portfolio.as_slice()) {
                    xs.push(v);
                    ys.push(*s);
                }
            }
            MeasureCorrelation {
                measure: m.short_name().to_owned(),
                correlation: pearson(&xs, &ys),
                evaluated: xs.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::Aggregator;
    use crate::spot::SpotMarket;
    use flexoffers_aggregation::GroupingParams;
    use flexoffers_timeseries::Series;
    use flexoffers_workloads::price::{price_trace, PriceTraceConfig};
    use flexoffers_workloads::PopulationBuilder;

    #[test]
    fn pearson_of_perfect_line() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[3.0]), None);
    }

    #[test]
    fn correlation_report_covers_all_measures() {
        let market = SpotMarket::new(
            price_trace(&PriceTraceConfig {
                days: 2,
                ..PriceTraceConfig::default()
            }),
            2.0,
        )
        .unwrap();
        let portfolios: Vec<Portfolio> = (0..4)
            .map(|seed| {
                PopulationBuilder::new(seed)
                    .electric_vehicles(3 + seed as usize)
                    .dishwashers(4)
                    .build()
            })
            .collect();
        let aggregator = Aggregator::new(GroupingParams::with_tolerances(2, 2), 5);
        let savings: Vec<f64> = portfolios
            .iter()
            .map(|p| aggregator.run(p, &market).savings())
            .collect();
        let report = measure_savings_correlation(&portfolios, &savings);
        assert_eq!(savings.len(), 4);
        assert_eq!(report.len(), 8);
        for entry in &report {
            assert_eq!(entry.evaluated, 4, "{} skipped portfolios", entry.measure);
        }
    }

    #[test]
    fn more_flexibility_more_savings_for_matched_portfolios() {
        // Two portfolios identical except for time flexibility: the more
        // flexible one saves at least as much.
        use flexoffers_model::{FlexOffer, Slice};
        let rigid: Portfolio = (0..6)
            .map(|_| {
                FlexOffer::with_totals(8, 8, vec![Slice::new(0, 6).unwrap(); 2], 6, 12).unwrap()
            })
            .collect();
        let flexible: Portfolio = (0..6)
            .map(|_| {
                FlexOffer::with_totals(8, 20, vec![Slice::new(0, 6).unwrap(); 2], 6, 12).unwrap()
            })
            .collect();
        let market = SpotMarket::new(
            price_trace(&PriceTraceConfig {
                days: 2,
                noise: 0.0,
                ..PriceTraceConfig::default()
            }),
            2.0,
        )
        .unwrap();
        let aggregator = Aggregator::new(GroupingParams::single_group(), 1);
        let rigid_out = aggregator.run(&rigid, &market);
        let flexible_out = aggregator.run(&flexible, &market);
        assert!(flexible_out.savings() >= rigid_out.savings());
        let _ = Series::<i64>::empty(); // keep import used in cfg(test)
    }
}
