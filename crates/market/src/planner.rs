//! Cost-minimal dispatch of a flex-offer against spot prices — the
//! mechanism that turns flexibility into market value.

use flexoffers_model::{Assignment, Energy, FlexOffer};

use crate::spot::SpotMarket;

/// The valid assignment of `fo` with minimal procurement cost.
///
/// For each candidate start, amounts begin at every slice minimum (buying
/// less is always cheaper at positive prices; for production, producing more
/// earns more) and the mandatory energy up to `cmin` is bought at the
/// cheapest hours first — exact for linear prices because each marginal unit
/// costs exactly the slot price.
pub fn cheapest_assignment(fo: &FlexOffer, market: &SpotMarket) -> Assignment {
    let mut best: Option<(Assignment, f64)> = None;
    for t in fo.earliest_start()..=fo.latest_start() {
        let mut values: Vec<Energy> = fo.slices().iter().map(|s| s.min()).collect();
        let mut total: Energy = values.iter().sum();

        // Mandatory units to reach cmin, cheapest slots first.
        let mut slot_order: Vec<usize> = (0..fo.slice_count()).collect();
        slot_order.sort_by(|&a, &b| {
            market
                .price_at(t + a as i64)
                .partial_cmp(&market.price_at(t + b as i64))
                .expect("prices are finite")
        });
        for &j in &slot_order {
            if total >= fo.total_min() {
                break;
            }
            let headroom = fo.slices()[j].max() - values[j];
            let add = headroom.min(fo.total_min() - total);
            values[j] += add;
            total += add;
        }
        debug_assert!(total >= fo.total_min(), "cmax >= cmin makes this reachable");

        let cost: f64 = values
            .iter()
            .enumerate()
            .map(|(j, &v)| v as f64 * market.price_at(t + j as i64))
            .sum();
        if best.as_ref().is_none_or(|(_, c)| cost < *c) {
            best = Some((Assignment::new(t, values), cost));
        }
    }
    let (assignment, _) = best.expect("start window is never empty");
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;
    use flexoffers_timeseries::Series;

    fn market(prices: Vec<f64>) -> SpotMarket {
        SpotMarket::new(Series::new(0, prices), 2.0).unwrap()
    }

    #[test]
    fn shifts_into_the_cheap_hours() {
        // Price valley at slots 2-3.
        let m = market(vec![9.0, 9.0, 1.0, 1.0, 9.0, 9.0]);
        let fo = FlexOffer::with_totals(
            0,
            4,
            vec![Slice::new(0, 5).unwrap(), Slice::new(0, 5).unwrap()],
            6,
            10,
        )
        .unwrap();
        let a = cheapest_assignment(&fo, &m);
        assert!(fo.is_valid_assignment(&a));
        assert_eq!(a.start(), 2);
        // Buys exactly the mandatory minimum, all at the cheap slots.
        assert_eq!(a.total(), 6);
        assert_eq!(m.cost_of(&a.as_series()), 6.0);
    }

    #[test]
    fn buys_no_more_than_cmin_at_positive_prices() {
        let m = market(vec![5.0; 6]);
        let fo = FlexOffer::with_totals(0, 2, vec![Slice::new(0, 9).unwrap()], 3, 9).unwrap();
        let a = cheapest_assignment(&fo, &m);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn mandatory_energy_lands_on_cheapest_slices() {
        let m = market(vec![1.0, 10.0, 2.0]);
        let fo = FlexOffer::with_totals(
            0,
            0,
            vec![
                Slice::new(0, 4).unwrap(),
                Slice::new(0, 4).unwrap(),
                Slice::new(0, 4).unwrap(),
            ],
            6,
            12,
        )
        .unwrap();
        let a = cheapest_assignment(&fo, &m);
        assert_eq!(a.values(), &[4, 0, 2]);
    }

    #[test]
    fn production_sells_at_maximum() {
        // Default totals: cmin = sum(amin); the planner keeps amounts at
        // their minima, i.e. full production revenue.
        let m = market(vec![3.0, 7.0]);
        let fo = FlexOffer::new(0, 1, vec![Slice::new(-5, 0).unwrap()]).unwrap();
        let a = cheapest_assignment(&fo, &m);
        // Sell 5 units at the *expensive* hour: cost -35 beats -15.
        assert_eq!(a.start(), 1);
        assert_eq!(m.cost_of(&a.as_series()), -35.0);
    }

    #[test]
    fn respects_totals_even_when_expensive() {
        let m = market(vec![100.0]);
        let fo = FlexOffer::with_totals(0, 0, vec![Slice::new(0, 5).unwrap()], 5, 5).unwrap();
        let a = cheapest_assignment(&fo, &m);
        assert_eq!(a.total(), 5);
        assert!(fo.is_valid_assignment(&a));
    }

    #[test]
    fn off_horizon_starts_are_priced_conservatively() {
        // Only slot 0 is quoted; later starts pay the maximum price, so the
        // planner keeps the load on the quoted slot.
        let m = market(vec![2.0]);
        let fo = FlexOffer::with_totals(0, 5, vec![Slice::new(0, 3).unwrap()], 2, 3).unwrap();
        let a = cheapest_assignment(&fo, &m);
        assert_eq!(a.start(), 0);
    }

    #[test]
    fn cheapest_is_never_beaten_by_enumeration() {
        // Exhaustive check on a small space: the greedy construction is
        // exact for linear prices.
        let m = market(vec![3.0, 1.0, 2.0, 5.0]);
        let fo = FlexOffer::with_totals(
            0,
            2,
            vec![Slice::new(0, 2).unwrap(), Slice::new(0, 2).unwrap()],
            2,
            4,
        )
        .unwrap();
        let planned = cheapest_assignment(&fo, &m);
        let planned_cost = m.cost_of(&planned.as_series());
        for a in fo.assignments() {
            assert!(
                planned_cost <= m.cost_of(&a.as_series()) + 1e-9,
                "{a} beats the plan"
            );
        }
    }

    #[test]
    fn mixed_offer_dispatch_is_valid_and_exploits_both_directions() {
        // A V2G-style offer: discharge at the peak, charge in the valley.
        let m = market(vec![1.0, 10.0]);
        let fo = FlexOffer::with_totals(
            0,
            0,
            vec![Slice::new(-4, 4).unwrap(), Slice::new(-4, 4).unwrap()],
            0,
            4,
        )
        .unwrap();
        let a = cheapest_assignment(&fo, &m);
        assert!(fo.is_valid_assignment(&a));
        // Sell (negative) at the expensive slot, buy back at the cheap one.
        assert!(a.values()[1] < 0, "should discharge at the peak: {a}");
        let cost = m.cost_of(&a.as_series());
        assert!(cost < 0.0, "the spread should earn revenue: {cost}");
    }
}
