//! Error types for the market simulation.

use std::error::Error;
use std::fmt;

/// Errors raised by market construction.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum MarketError {
    /// The imbalance multiplier must be at least 1 (imbalance can never be
    /// cheaper than the spot price, or arbitrage breaks the settlement).
    InvalidImbalanceMultiplier {
        /// The offending multiplier.
        multiplier: f64,
    },
    /// Spot prices must be strictly positive.
    NonPositivePrice {
        /// Slot of the offending price.
        slot: i64,
        /// The offending price.
        price: f64,
    },
}

impl fmt::Display for MarketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarketError::InvalidImbalanceMultiplier { multiplier } => {
                write!(f, "imbalance multiplier must be >= 1, got {multiplier}")
            }
            MarketError::NonPositivePrice { slot, price } => {
                write!(f, "spot price at slot {slot} must be positive, got {price}")
            }
        }
    }
}

impl Error for MarketError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(MarketError::InvalidImbalanceMultiplier { multiplier: 0.5 }
            .to_string()
            .contains("0.5"));
        assert!(MarketError::NonPositivePrice {
            slot: 3,
            price: 0.0
        }
        .to_string()
        .contains("slot 3"));
    }
}
