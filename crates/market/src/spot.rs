//! The spot market: hourly prices and imbalance settlement rates.

use flexoffers_timeseries::Series;

use crate::error::MarketError;

/// A day-ahead spot market with an imbalance penalty regime.
#[derive(Clone, Debug, PartialEq)]
pub struct SpotMarket {
    prices: Series<f64>,
    imbalance_multiplier: f64,
}

impl SpotMarket {
    /// Creates a market from strictly positive prices and an imbalance
    /// multiplier `>= 1` (deviations settle at `multiplier *` the highest
    /// spot price).
    pub fn new(prices: Series<f64>, imbalance_multiplier: f64) -> Result<Self, MarketError> {
        // NaN must be rejected too, hence the negated comparison.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(imbalance_multiplier >= 1.0) {
            return Err(MarketError::InvalidImbalanceMultiplier {
                multiplier: imbalance_multiplier,
            });
        }
        if let Some((slot, price)) = prices.iter().find(|(_, p)| *p <= 0.0) {
            return Err(MarketError::NonPositivePrice { slot, price });
        }
        Ok(Self {
            prices,
            imbalance_multiplier,
        })
    }

    /// The hourly price series.
    pub fn prices(&self) -> &Series<f64> {
        &self.prices
    }

    /// Price at `slot`; slots outside the quoted horizon cost the maximum
    /// quoted price (conservative: no free energy off-horizon).
    pub fn price_at(&self, slot: i64) -> f64 {
        self.prices.get(slot).unwrap_or_else(|| self.max_price())
    }

    /// The highest quoted price.
    pub fn max_price(&self) -> f64 {
        self.prices.iter().map(|(_, p)| p).fold(0.0f64, f64::max)
    }

    /// The penalty rate applied to imbalance volume.
    pub fn penalty_price(&self) -> f64 {
        self.max_price() * self.imbalance_multiplier
    }

    /// Procurement cost of a load series: `sum(load(t) * price(t))`.
    /// Production (negative load) earns revenue (negative cost).
    pub fn cost_of(&self, load: &Series<i64>) -> f64 {
        load.iter().map(|(t, v)| v as f64 * self.price_at(t)).sum()
    }

    /// Settlement cost of an imbalance volume (always non-negative).
    pub fn imbalance_cost(&self, volume: f64) -> f64 {
        volume.abs() * self.penalty_price()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn market() -> SpotMarket {
        SpotMarket::new(Series::new(0, vec![2.0, 5.0, 3.0]), 2.0).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(SpotMarket::new(Series::new(0, vec![1.0]), 0.9).is_err());
        assert!(SpotMarket::new(Series::new(0, vec![0.0]), 2.0).is_err());
        assert!(SpotMarket::new(Series::new(0, vec![1.0]), 1.0).is_ok());
    }

    #[test]
    fn cost_of_load() {
        let m = market();
        let load = Series::new(0, vec![1, 2, 0]);
        assert_eq!(m.cost_of(&load), 2.0 + 10.0);
    }

    #[test]
    fn production_earns_revenue() {
        let m = market();
        let load = Series::new(1, vec![-2]);
        assert_eq!(m.cost_of(&load), -10.0);
    }

    #[test]
    fn off_horizon_slots_cost_the_max() {
        let m = market();
        assert_eq!(m.price_at(99), 5.0);
        let load = Series::new(99, vec![1]);
        assert_eq!(m.cost_of(&load), 5.0);
    }

    #[test]
    fn penalty_regime() {
        let m = market();
        assert_eq!(m.penalty_price(), 10.0);
        assert_eq!(m.imbalance_cost(3.0), 30.0);
        assert_eq!(m.imbalance_cost(-3.0), 30.0);
    }
}
