//! The Scenario 2 balancing market of Valsomatzis et al. (EDBT 2015).
//!
//! "Consider an energy market where flex-offers are traded. It is infeasible
//! to trade flex-offers from individual prosumers directly in the market due
//! to their small energy amounts" — so an aggregator bundles them, trades
//! the aggregates on a spot market, and a Balance Responsible Party settles
//! deviations at penalty prices.
//!
//! The simulation here implements exactly that pipeline:
//!
//! * [`spot::SpotMarket`] — hourly prices plus an imbalance penalty rate;
//! * [`planner::cheapest_assignment`] — cost-minimal dispatch of a
//!   flex-offer against prices (flexibility turned into money);
//! * [`aggregator::Aggregator`] — grouping, the minimum-lot admission rule,
//!   planning, and settlement, including the imbalance that arises when an
//!   aggregate's planned assignment turns out to be *unrealizable* by its
//!   members (see the aggregation crate's overestimation finding);
//! * [`value`] — the value-of-flexibility accounting and the per-measure
//!   correlation analysis used by experiment E3.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregator;
pub mod error;
pub mod planner;
pub mod settle;
pub mod spot;
pub mod value;

pub use aggregator::{baseline_load, Aggregator, LotDecision};
pub use error::MarketError;
pub use planner::cheapest_assignment;
pub use settle::{MarketOutcome, Order};
pub use spot::SpotMarket;
pub use value::{measure_savings_correlation, pearson, MeasureCorrelation};
