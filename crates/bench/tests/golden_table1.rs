//! Golden-file snapshot of `repro_table1`: the paper's Table 1, both the
//! transcription and the probe-derived reproduction, byte for byte.
//!
//! If a change legitimately alters this output (a new measure column, a
//! reworded deviation note), regenerate the snapshot and review the diff:
//!
//! ```text
//! cargo run --release -p flexoffers_bench --bin repro_table1 \
//!     > crates/bench/tests/golden/repro_table1.txt
//! ```

use std::process::Command;

const GOLDEN: &str = include_str!("golden/repro_table1.txt");

#[test]
fn repro_table1_output_matches_golden_snapshot() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro_table1"))
        .output()
        .expect("repro_table1 runs");
    assert!(
        out.status.success(),
        "repro_table1 exited non-zero: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("repro_table1 output is UTF-8");
    if stdout != GOLDEN {
        let first_diff = stdout
            .lines()
            .zip(GOLDEN.lines())
            .position(|(got, want)| got != want)
            .map_or_else(
                || "line counts differ".to_owned(),
                |i| {
                    format!(
                        "first differing line {}:\n  got:  {}\n  want: {}",
                        i + 1,
                        stdout.lines().nth(i).unwrap_or(""),
                        GOLDEN.lines().nth(i).unwrap_or("")
                    )
                },
            );
        panic!(
            "repro_table1 output deviates from the golden snapshot \
             (crates/bench/tests/golden/repro_table1.txt).\n{first_diff}\n\
             If the change is intentional, regenerate the snapshot (see \
             this test's module docs) and commit the diff."
        );
    }
}
