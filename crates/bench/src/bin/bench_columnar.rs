//! Persists the columnar-kernel baseline: `BENCH_columnar.json`.
//!
//! Sweeps the same seeded `city` portfolio as `bench_report`, but the
//! comparison here is scalar kernel vs columnar kernel rather than
//! sequential loop vs engine: the `sequential` section times the engine
//! at 1 thread with [`Kernel::Scalar`] (the flat per-offer
//! `PreparedOffer` path), and the `engine` section times
//! [`Kernel::Columnar`] at 1/4/8 threads. The headline
//! `columnar_speedup_1_thread_largest` is the single-core win the
//! columnar layout buys on its own, with no parallelism in either
//! numerator or denominator.
//!
//! Before any timing, the two kernels are run over the full largest
//! slice and every per-offer value (and the earliest-start baseline
//! series) is asserted bit-identical — a throughput number for a kernel
//! that diverges would be meaningless.
//!
//! ```text
//! cargo run --release -p flexoffers_bench --bin bench_columnar            # full sweep
//! cargo run --release -p flexoffers_bench --bin bench_columnar -- --quick # 1k only (CI smoke)
//! cargo run ... -- --out path/to.json                                      # custom output
//! ```
//!
//! The emitted JSON reuses the `flexoffers-engine-bench/1` schema so the
//! one `bench_check` binary gates this baseline too (per-core throughput
//! of the `engine` runs, i.e. the columnar kernel).

use flexoffers_bench::timing::time_best;
use flexoffers_engine::{Budget, Engine, Kernel};
use flexoffers_measures::all_measures;
use flexoffers_model::FlexOffer;
use flexoffers_workloads::{city, city_households_for};
use serde::Serialize;

const SEED: u64 = 7;
const THREADS: [usize; 3] = [1, 4, 8];

#[derive(Serialize)]
struct Run {
    offers: usize,
    threads: usize,
    secs: f64,
    offers_per_sec: f64,
}

#[derive(Serialize)]
struct SequentialRun {
    offers: usize,
    secs: f64,
    offers_per_sec: f64,
}

#[derive(Serialize)]
struct BenchReport {
    schema: &'static str,
    workload: String,
    measures: usize,
    host_cpus: usize,
    /// Scalar kernel, engine at 1 thread — the comparator.
    sequential: Vec<SequentialRun>,
    /// Columnar kernel at each thread count.
    engine: Vec<Run>,
    /// Columnar at 8 threads over the largest size, vs scalar at 1.
    speedup_8_threads_largest: f64,
    /// The layout win alone: columnar at 1 thread vs scalar at 1 thread,
    /// largest size.
    columnar_speedup_1_thread_largest: f64,
}

/// Panics unless the scalar and columnar kernels agree bit-for-bit on
/// every per-offer measure value and on the earliest-start baseline.
fn assert_kernels_identical(scalar: &Engine, columnar: &Engine, offers: &[FlexOffer]) {
    let measures = all_measures();
    let scalar_rows = scalar.per_offer_rows(offers, &measures);
    let columnar_rows = columnar.per_offer_rows(offers, &measures);
    assert_eq!(scalar_rows.len(), columnar_rows.len());
    for (i, (s_row, c_row)) in scalar_rows.iter().zip(&columnar_rows).enumerate() {
        assert_eq!(s_row.len(), c_row.len());
        for (m, (s, c)) in s_row.iter().zip(c_row).enumerate() {
            let same = match (s, c) {
                (Ok(a), Ok(b)) => a.to_bits() == b.to_bits(),
                (Err(a), Err(b)) => a == b,
                _ => false,
            };
            assert!(
                same,
                "offer {i}, measure {m}: scalar {s:?} != columnar {c:?}"
            );
        }
    }
    assert_eq!(
        scalar.baseline_load_parallel(offers),
        columnar.baseline_load_parallel(offers),
        "earliest-start baseline diverged between kernels"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path = String::from("BENCH_columnar.json");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match iter.next() {
                Some(path) if !path.starts_with("--") => out_path = path.clone(),
                _ => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "error: unknown argument {other}\nusage: bench_columnar [--quick] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let out_path = out_path.as_str();
    let sizes: &[usize] = if quick {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };

    let largest = *sizes.last().expect("at least one size");
    let mut portfolio = city(SEED, city_households_for(largest));
    portfolio.truncate(largest);
    let offers: &[FlexOffer] = portfolio.as_slice();
    let measures = all_measures();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "bench_columnar: city(seed {SEED}) · {} offers · {} measures · {host_cpus} host cpu(s)",
        offers.len(),
        measures.len()
    );

    let scalar_1 = Engine::new(Budget::sequential().with_kernel(Kernel::Scalar));
    let columnar_1 = Engine::new(Budget::sequential().with_kernel(Kernel::Columnar));
    assert_kernels_identical(&scalar_1, &columnar_1, offers);
    println!("  kernels agree bit-for-bit over {} offers", offers.len());

    let mut sequential = Vec::new();
    let mut engine_runs = Vec::new();
    for &size in sizes {
        let slice = &offers[..size];

        let secs = time_best(|| {
            std::hint::black_box(scalar_1.measure_portfolio_all(std::hint::black_box(slice)));
        });
        println!(
            "  scalar kernel (1 thread)   {size:>7} offers  {secs:>9.4}s  {:>10.0} offers/s",
            size as f64 / secs
        );
        sequential.push(SequentialRun {
            offers: size,
            secs,
            offers_per_sec: size as f64 / secs,
        });

        for &threads in &THREADS {
            let budget = Budget::with_threads(threads)
                .expect("non-zero")
                .with_kernel(Kernel::Columnar);
            let engine = Engine::new(budget);
            let secs = time_best(|| {
                std::hint::black_box(engine.measure_portfolio_all(std::hint::black_box(slice)));
            });
            println!("  columnar ({threads} thread{})       {size:>7} offers  {secs:>9.4}s  {:>10.0} offers/s", if threads == 1 { "" } else { "s" }, size as f64 / secs);
            engine_runs.push(Run {
                offers: size,
                threads,
                secs,
                offers_per_sec: size as f64 / secs,
            });
        }
    }

    let scalar_secs = sequential.last().expect("ran at least one size").secs;
    let columnar_at = |threads: usize| {
        engine_runs
            .iter()
            .filter(|r| r.offers == largest && r.threads == threads)
            .map(|r| r.secs)
            .next()
            .unwrap_or_else(|| panic!("{threads}-thread run present"))
    };
    let speedup_1 = scalar_secs / columnar_at(1);
    let speedup_8 = scalar_secs / columnar_at(8);
    println!(
        "columnar speedup at {largest} offers: {speedup_1:.2}x at 1 thread, \
         {speedup_8:.2}x at 8 threads (host offered {host_cpus} cpu(s))"
    );

    let report = BenchReport {
        schema: "flexoffers-engine-bench/1",
        workload: format!("workloads::city(seed {SEED}), truncated per size"),
        measures: measures.len(),
        host_cpus,
        sequential,
        engine: engine_runs,
        speedup_8_threads_largest: speedup_8,
        columnar_speedup_1_thread_largest: speedup_1,
    };
    std::fs::write(
        out_path,
        serde_json::to_string_pretty(&report).expect("report serializes") + "\n",
    )
    .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
