//! Regenerates Table 1 of Valsomatzis et al. (EDBT 2015) twice — once
//! transcribed from the paper, once derived *empirically* from behavioural
//! probes — and diffs them. Exits non-zero if the diff contains anything
//! beyond the documented deviation (the time-series measure's size leak).
//!
//! Run with `cargo run -p flexoffers_bench --bin repro_table1`.

use flexoffers_measures::all_measures;
use flexoffers_measures::characteristics::{paper_table1, render_table, Characteristics};
use flexoffers_measures::probe::{empirical_characteristics, known_deviations, verify_measure};

fn main() {
    println!("Table 1 as printed in the paper:");
    println!("{}", render_table(&paper_table1()));

    let measures = all_measures();
    let empirical: Vec<(&str, Characteristics)> = measures
        .iter()
        .map(|m| (m.short_name(), empirical_characteristics(m.as_ref())))
        .collect();
    println!("Table 1 derived empirically from behavioural probes:");
    println!("{}", render_table(&empirical));

    let mut found = Vec::new();
    for m in &measures {
        found.extend(verify_measure(m.as_ref()));
    }
    let known = known_deviations();

    if found.is_empty() {
        println!("no deviations: every declared characteristic is probe-confirmed");
    } else {
        println!("deviations between the paper's claims and probed behaviour:");
        for d in &found {
            let expected = if known.contains(d) {
                "(documented: EXPERIMENTS.md, finding 1)"
            } else {
                "(UNEXPECTED)"
            };
            println!("  {d} {expected}");
        }
    }

    let unexpected: Vec<_> = found.iter().filter(|d| !known.contains(d)).collect();
    let missing: Vec<_> = known.iter().filter(|d| !found.contains(d)).collect();
    if !unexpected.is_empty() || !missing.is_empty() {
        eprintln!(
            "reproduction failure: {} unexpected deviation(s), {} documented deviation(s) no longer reproduce",
            unexpected.len(),
            missing.len()
        );
        std::process::exit(1);
    }
    println!(
        "\n{} measures verified; the single deviation above is the documented\n\
         finding that Definitions 5-6 leak amount magnitudes into the\n\
         time-series measure once tf > 0 (paper declares 'captures size: No').",
        measures.len()
    );
}
