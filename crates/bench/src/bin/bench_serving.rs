//! Persists the live serving tier's throughput baseline:
//! `BENCH_serving.json`.
//!
//! Replays [`flexoffers_workloads::event_stream`] scripts (adds + churn)
//! through a [`LiveBook`] at 10k/100k offers, churn 1 %/10 %, shards
//! {1, 4, 8}, recording event-application throughput and the *warm
//! incremental query latency* (one single-offer update followed by a
//! measure query — the one-dirty-shard hot path the tier exists for). The
//! flat from-scratch batch query ([`flexoffers_serving::batch::answer`])
//! is the `sequential` reference — the batch-restart cost a query would
//! pay without the incremental state.
//!
//! The emitted JSON uses the `flexoffers-engine-bench/1` schema, so the
//! existing `bench_check` regression gate consumes it unchanged (each run
//! carries extra `shards`/`churn`/`events`/`update_query_secs` fields the
//! gate ignores; `offers_per_sec` is events applied per second). The
//! recorded `speedup_8_threads_largest` headline is the batch-query /
//! incremental-query latency ratio at the largest size.
//!
//! ```text
//! cargo run --release -p flexoffers_bench --bin bench_serving            # full sweep
//! cargo run --release -p flexoffers_bench --bin bench_serving -- --quick # 10k only (CI)
//! cargo run ... -- --out path/to.json                                    # custom output
//! ```

use flexoffers_bench::timing::time_best;
use flexoffers_engine::{Budget, Engine};
use flexoffers_measures::all_measures;
use flexoffers_serving::{batch, LiveBook, QueryKind, ServeConfig};
use flexoffers_workloads::{city_households_for, event_stream, OfferEvent};
use serde::Serialize;

const SEED: u64 = 7;

#[derive(Serialize)]
struct Run {
    offers: usize,
    threads: usize,
    shards: usize,
    churn: f64,
    events: usize,
    secs: f64,
    /// Events applied per second (the field the per-core gate normalises).
    offers_per_sec: f64,
    /// Warm incremental latency: one single-offer update + measure query.
    update_query_secs: f64,
}

#[derive(Serialize)]
struct SequentialRun {
    offers: usize,
    secs: f64,
    offers_per_sec: f64,
}

#[derive(Serialize)]
struct ServingBenchReport {
    schema: &'static str,
    workload: String,
    measures: usize,
    host_cpus: usize,
    /// From-scratch flat batch measure queries over the replayed book —
    /// the restart cost the serving tier avoids.
    sequential: Vec<SequentialRun>,
    engine: Vec<Run>,
    /// Batch-query secs over warm incremental-query secs at the largest
    /// size (8 shards for the full sweep).
    speedup_8_threads_largest: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path = String::from("BENCH_serving.json");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match iter.next() {
                Some(path) if !path.starts_with("--") => out_path = path.clone(),
                _ => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "error: unknown argument {other}\nusage: bench_serving [--quick] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let sizes: &[usize] = if quick { &[10_000] } else { &[10_000, 100_000] };
    let churns: &[f64] = if quick { &[0.01] } else { &[0.01, 0.10] };
    let shard_counts: &[usize] = if quick { &[1, 4] } else { &[1, 4, 8] };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "bench_serving: event_stream(seed {SEED}) replayed through LiveBook · sizes {sizes:?} · \
         churn {churns:?} · shards {shard_counts:?} · {host_cpus} host cpu(s)"
    );

    let config = ServeConfig::default();
    let mut sequential = Vec::new();
    let mut engine_runs = Vec::new();
    let mut headline = 1.0f64;
    for &size in sizes {
        let households = city_households_for(size);
        for &churn in churns {
            let events: Vec<OfferEvent> = event_stream(SEED, households, churn).collect();
            for &shards in shard_counts {
                let engine = Engine::new(Budget::with_threads(shards).expect("non-zero"));
                let build = || {
                    let mut book = LiveBook::new(config.clone(), shards, engine)
                        .expect("non-zero shard count");
                    for event in &events {
                        book.apply_offer_event(event.clone()).expect("valid stream");
                    }
                    book
                };
                let replay_secs = time_best(|| {
                    std::hint::black_box(build());
                });
                let events_per_sec = events.len() as f64 / replay_secs;

                // Warm the caches, then measure the incremental hot path:
                // one single-offer update + one measure query.
                let mut book = build();
                book.answer(QueryKind::Measure);
                let victim = book.live_ids()[0];
                let replacement = book.to_portfolio().as_slice()[0].clone();
                let update_query_secs = time_best(|| {
                    book.update(victim, replacement.clone()).expect("live id");
                    std::hint::black_box(book.answer(QueryKind::Measure));
                });
                println!(
                    "  {shards} shard(s) · churn {churn:>4} · {size:>7} offers  \
                     {replay_secs:>9.4}s replay ({events_per_sec:>9.0} events/s)  \
                     {:.2}ms warm query",
                    update_query_secs * 1e3
                );
                engine_runs.push(Run {
                    offers: size,
                    threads: shards,
                    shards,
                    churn,
                    events: events.len(),
                    secs: replay_secs,
                    offers_per_sec: events_per_sec,
                    update_query_secs,
                });

                // The batch-restart reference and the headline, recorded
                // once per size (largest shard count, smallest churn).
                if shards == *shard_counts.last().expect("non-empty") && churn == churns[0] {
                    let logical = book.to_portfolio();
                    let flat = Engine::sequential();
                    let batch_secs = time_best(|| {
                        std::hint::black_box(batch::answer(
                            &flat,
                            &config,
                            logical.as_slice(),
                            QueryKind::Measure,
                        ));
                    });
                    println!(
                        "  batch rebuild reference    {size:>7} offers  {batch_secs:>9.4}s \
                         ({:.1}x the warm incremental query)",
                        batch_secs / update_query_secs
                    );
                    sequential.push(SequentialRun {
                        offers: logical.len(),
                        secs: batch_secs,
                        offers_per_sec: logical.len() as f64 / batch_secs,
                    });
                    if size == *sizes.last().expect("non-empty") {
                        headline = batch_secs / update_query_secs;
                    }
                }
            }
        }
    }

    let report = ServingBenchReport {
        schema: "flexoffers-engine-bench/1",
        workload: format!(
            "workloads::event_stream(seed {SEED}) replayed through LiveBook (adds+churn; \
             offers_per_sec = events/s; sequential = flat batch measure query; speedup = \
             batch query / warm incremental query at the largest size)"
        ),
        measures: all_measures().len(),
        host_cpus,
        sequential,
        engine: engine_runs,
        speedup_8_threads_largest: headline,
    };
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&report).expect("report serializes") + "\n",
    )
    .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
