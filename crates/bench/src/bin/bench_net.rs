//! Persists the network tier's throughput/latency baseline:
//! `BENCH_net.json`.
//!
//! Runs an in-process [`flexoffers_net::NetServer`] on a loopback port and
//! drives it with 1/4/8 concurrent [`flexoffers_net::NetClient`]
//! connections, each sending a seeded adds-plus-measure-queries mix (a
//! query every 16th request, so ids never cross connections and every
//! request is valid regardless of interleaving). Each engine run records
//! sustained requests/s across all connections plus the p50/p99/p999
//! round-trip latency of the query requests. The `sequential` section
//! applies the same event count to an in-process
//! [`flexoffers_serving::LiveBook`] — the no-network ceiling the wire
//! runs are compared against.
//!
//! The emitted JSON uses the `flexoffers-engine-bench/1` schema, so the
//! existing `bench_check` regression gate consumes it unchanged (each run
//! carries extra `conns`/`queries`/`query_p*_ms` fields the gate ignores;
//! `threads` records the connection count, `offers_per_sec` is requests
//! acknowledged per second). The headline is the requests/s scaling from
//! 1 connection to the largest connection count.
//!
//! ```text
//! cargo run --release -p flexoffers_bench --bin bench_net            # full sweep
//! cargo run --release -p flexoffers_bench --bin bench_net -- --quick # smaller (CI)
//! cargo run ... -- --out path/to.json                                # custom output
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use flexoffers_bench::timing::time_best;
use flexoffers_engine::Engine;
use flexoffers_measures::all_measures;
use flexoffers_model::FlexOffer;
use flexoffers_net::{percentile, NetClient, NetConfig, NetServer};
use flexoffers_serving::{Event, LiveBook, LiveServer, QueryKind, ServeConfig};
use flexoffers_workloads::city_stream;
use serde::Serialize;

const SEED: u64 = 7;
/// Every 16th request on a connection is a measure query.
const QUERY_STRIDE: u64 = 16;

#[derive(Serialize)]
struct Run {
    offers: usize,
    /// Mirrors the gate's `threads` field: concurrent connections.
    threads: usize,
    conns: usize,
    queries: usize,
    query_p50_ms: f64,
    query_p99_ms: f64,
    query_p999_ms: f64,
    secs: f64,
    /// Requests acknowledged per second across all connections — the
    /// field the per-core gate normalises.
    offers_per_sec: f64,
}

#[derive(Serialize)]
struct SequentialRun {
    offers: usize,
    secs: f64,
    offers_per_sec: f64,
}

#[derive(Serialize)]
struct NetBenchReport {
    schema: &'static str,
    workload: String,
    measures: usize,
    host_cpus: usize,
    /// The no-network ceiling: the same events applied in process.
    sequential: Vec<SequentialRun>,
    /// Wire runs at increasing connection counts.
    engine: Vec<Run>,
    /// Requests/s at the largest connection count over 1 connection.
    speedup_8_threads_largest: f64,
}

/// The per-connection request script: adds from a per-connection seeded
/// city, a measure query every [`QUERY_STRIDE`]th request.
fn connection_events(conn: u64, requests: u64) -> Vec<Event> {
    let offers: Vec<FlexOffer> = city_stream(SEED.wrapping_add(conn), 8).collect();
    (0..requests)
        .map(|i| {
            if i % QUERY_STRIDE == QUERY_STRIDE - 1 {
                Event::Query(QueryKind::Measure)
            } else {
                Event::Add(offers[i as usize % offers.len()].clone())
            }
        })
        .collect()
}

/// What one timed pass over the wire observed.
struct WireObservation {
    secs: f64,
    requests: usize,
    query_latencies_ms: Vec<f64>,
}

/// One fresh server + `conns` concurrent clients, each sending
/// `requests_per_conn` requests; wall time covers the client phase only.
fn wire_pass(conns: usize, requests_per_conn: u64) -> WireObservation {
    let handle = LiveServer::spawn(ServeConfig::default(), 1, Engine::sequential())
        .expect("one-shard serving loop spawns");
    let config = NetConfig {
        max_conns: conns,
        deadline: None,
        record: None,
    };
    let server =
        NetServer::bind("127.0.0.1:0", config, handle, Vec::new(), 0).expect("loopback binds");
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let server_thread = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || server.run(&stop, std::io::sink()))
    };

    let started = Instant::now();
    let per_conn: Vec<(usize, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                scope.spawn(move || {
                    let mut client =
                        NetClient::connect(addr).expect("bench client connects to loopback");
                    let mut latencies = Vec::new();
                    let mut acknowledged = 0usize;
                    for event in connection_events(c as u64, requests_per_conn) {
                        let is_query = matches!(event, Event::Query(_));
                        let sent = Instant::now();
                        let reply = client.send_event(&event).expect("server stays up");
                        let elapsed_ms = sent.elapsed().as_secs_f64() * 1e3;
                        assert!(reply.is_ok(), "bench scripts only send valid requests");
                        acknowledged += 1;
                        if is_query {
                            latencies.push(elapsed_ms);
                        }
                    }
                    (acknowledged, latencies)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench connection thread"))
            .collect()
    });
    let secs = started.elapsed().as_secs_f64();

    stop.store(true, Ordering::SeqCst);
    let summary = server_thread
        .join()
        .expect("server thread")
        .expect("server shuts down cleanly");
    assert_eq!(summary.errors, 0, "bench run must be error-free");

    let mut requests = 0usize;
    let mut query_latencies_ms = Vec::new();
    for (acknowledged, latencies) in per_conn {
        requests += acknowledged;
        query_latencies_ms.extend(latencies);
    }
    WireObservation {
        secs,
        requests,
        query_latencies_ms,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path = String::from("BENCH_net.json");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match iter.next() {
                Some(path) if !path.starts_with("--") => out_path = path.clone(),
                _ => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "error: unknown argument {other}\nusage: bench_net [--quick] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let total_requests: u64 = if quick { 1_024 } else { 4_096 };
    let conn_counts: &[usize] = &[1, 4, 8];
    let passes = if quick { 1 } else { 2 };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "bench_net: {total_requests} requests over loopback NetServer · conns {conn_counts:?} \
         · {host_cpus} host cpu(s)"
    );

    // The no-network ceiling: the same request count applied in process.
    let events: Vec<Event> = connection_events(0, total_requests);
    let seq_secs = time_best(|| {
        let mut book =
            LiveBook::new(ServeConfig::default(), 1, Engine::sequential()).expect("one shard");
        for event in &events {
            book.apply(event.clone()).expect("valid stream");
        }
        std::hint::black_box(&book);
    });
    let seq_rate = events.len() as f64 / seq_secs;
    println!(
        "  in-process               {total_requests:>7} events  {seq_secs:>9.4}s \
         ({seq_rate:>9.0} events/s)"
    );
    let sequential = vec![SequentialRun {
        offers: total_requests as usize,
        secs: seq_secs,
        offers_per_sec: seq_rate,
    }];

    let mut engine_runs = Vec::new();
    let mut rate_at_1 = 0.0f64;
    let mut rate_at_max = 0.0f64;
    for &conns in conn_counts {
        let requests_per_conn = (total_requests / conns as u64).max(1);
        let mut best: Option<WireObservation> = None;
        for _ in 0..passes {
            let pass = wire_pass(conns, requests_per_conn);
            if best.as_ref().is_none_or(|b| pass.secs < b.secs) {
                best = Some(pass);
            }
        }
        let best = best.expect("at least one pass");
        let rate = best.requests as f64 / best.secs;
        let p50 = percentile(&best.query_latencies_ms, 50.0).unwrap_or(0.0);
        let p99 = percentile(&best.query_latencies_ms, 99.0).unwrap_or(0.0);
        let p999 = percentile(&best.query_latencies_ms, 99.9).unwrap_or(0.0);
        println!(
            "  {conns} conn(s)                {:>7} reqs    {:>9.4}s ({rate:>9.0} req/s, \
             query p50 {p50:.3} ms, p99 {p99:.3} ms, p999 {p999:.3} ms)",
            best.requests, best.secs
        );
        if conns == 1 {
            rate_at_1 = rate;
        }
        rate_at_max = rate;
        engine_runs.push(Run {
            offers: best.requests,
            threads: conns,
            conns,
            queries: best.query_latencies_ms.len(),
            query_p50_ms: p50,
            query_p99_ms: p99,
            query_p999_ms: p999,
            secs: best.secs,
            offers_per_sec: rate,
        });
    }
    let headline = if rate_at_1 > 0.0 {
        rate_at_max / rate_at_1
    } else {
        1.0
    };

    let report = NetBenchReport {
        schema: "flexoffers-engine-bench/1",
        workload: format!(
            "loopback NetServer (1-shard LiveBook, sequential engine) under concurrent \
             NetClient connections; per connection: city_stream adds with a measure query \
             every {QUERY_STRIDE}th request; offers_per_sec = requests acknowledged/s across \
             all connections; threads = connection count; sequential = the same events \
             applied in process (no network); query_p*_ms = query round-trip percentiles; \
             speedup = requests/s at the largest connection count over 1 connection"
        ),
        measures: all_measures().len(),
        host_cpus,
        sequential,
        engine: engine_runs,
        speedup_8_threads_largest: headline,
    };
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&report).expect("report serializes") + "\n",
    )
    .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
