//! Reproduces every worked example (Examples 1–15) of Valsomatzis et al.
//! (EDBT 2015), printing paper-vs-computed and exiting non-zero on any
//! deviation that is not a documented erratum.
//!
//! Run with `cargo run -p flexoffers_bench --bin repro_examples`.

use flexoffers_area::{assignment_area, union_area};
use flexoffers_bench::fixtures;
use flexoffers_bench::report::Report;
use flexoffers_measures::{
    AbsoluteAreaFlexibility, AssignmentFlexibility, EnergyFlexibility, Measure, Norm,
    ProductFlexibility, RelativeAreaFlexibility, TimeFlexibility, TimeSeriesFlexibility,
    VectorFlexibility,
};
use flexoffers_model::{FlexOffer, Slice};

fn fo(tes: i64, tls: i64, slices: &[(i64, i64)]) -> FlexOffer {
    FlexOffer::new(
        tes,
        tls,
        slices
            .iter()
            .map(|&(a, b)| Slice::new(a, b).expect("ordered"))
            .collect(),
    )
    .expect("well-formed")
}

fn main() {
    let mut report = Report::new();
    let f = fixtures::figure1();

    // Examples 1-3: the primitive flexibilities and their product.
    report.exact(
        "Example 1: tf(f) = tls - tes",
        5.0,
        TimeFlexibility.of(&f).expect("total"),
        "Figure 1's f",
    );
    report.exact(
        "Example 2: ef(f) = cmax - cmin",
        12.0,
        EnergyFlexibility.of(&f).expect("total"),
        "cmax = 15, cmin = 3",
    );
    report.exact(
        "Example 3: product_flexibility(f)",
        60.0,
        ProductFlexibility.of(&f).expect("total"),
        "5 * 12",
    );

    // Example 4: the paper prints <5, 10> although its own Example 2 puts
    // ef(f) = 12; Definitions 3-4 give <5, 12>.
    report.erratum(
        "Example 4: vector_flexibility(f), L1",
        "15 (from <5,10>)",
        17.0,
        VectorFlexibility::new(Norm::L1).of(&f).expect("total"),
        "paper's <5,10> contradicts its Example 2 (ef = 12); definitions give <5,12>",
    );
    report.erratum(
        "Example 4: vector_flexibility(f), L2",
        "11.180",
        13.0,
        VectorFlexibility::new(Norm::L2).of(&f).expect("total"),
        "sqrt(25 + 144) = 13 with ef = 12",
    );
    // The paper's own arithmetic on its printed components is reproduced
    // exactly by the norm implementation.
    report.exact(
        "Example 4 arithmetic: ||<5,10>||_1",
        15.0,
        Norm::L1.of_vec2(5.0, 10.0),
        "",
    );
    report.exact(
        "Example 4 arithmetic: ||<5,10>||_2",
        11.180339887498949,
        Norm::L2.of_vec2(5.0, 10.0),
        "",
    );

    // Example 5: time-series flexibility of f1.
    let f1 = fixtures::f1();
    report.exact(
        "Example 5: |L(f1)|",
        4.0,
        f1.assignments().count() as f64,
        "f1 has 4 assignments",
    );
    report.exact(
        "Example 5: series_flexibility(f1), L1",
        1.0,
        TimeSeriesFlexibility::new(Norm::L1).of(&f1).expect("total"),
        "difference <0,1>",
    );
    report.exact(
        "Example 5: series_flexibility(f1), L2",
        1.0,
        TimeSeriesFlexibility::new(Norm::L2).of(&f1).expect("total"),
        "",
    );

    // Example 6: assignment count of f2.
    report.exact(
        "Example 6: assignment_flexibility(f2)",
        9.0,
        AssignmentFlexibility::new()
            .of(&fixtures::f2())
            .expect("total"),
        "3 starts x 3 values",
    );

    // Example 7: the area of assignment <2,1,3>.
    let area = assignment_area(&fixtures::f3_assignment());
    report.exact(
        "Example 7: |area(f3a)|",
        6.0,
        area.len() as f64,
        "{(1,0),(1,1),(2,0),(3,0),(3,1),(3,2)}",
    );
    let expected_cells = [(1, 0), (1, 1), (2, 0), (3, 0), (3, 1), (3, 2)];
    let cells_match = area
        .iter()
        .map(|c| (c.t, c.e))
        .eq(expected_cells.iter().copied());
    report.exact(
        "Example 7: exact cell set",
        1.0,
        cells_match as i64 as f64,
        "1 = sets equal",
    );

    // Examples 8-9: absolute area flexibility.
    let f4 = fixtures::f4();
    let f5 = fixtures::f5();
    report.exact(
        "Example 8: absolute_area_flexibility(f4)",
        8.0,
        AbsoluteAreaFlexibility::new().of(&f4).expect("consumption"),
        "union 10 - cmin 2",
    );
    report.exact(
        "Example 8: |union area(f4)|",
        10.0,
        union_area(&f4).size() as f64,
        "",
    );
    report.erratum(
        "Example 9: absolute_area_flexibility(f5)",
        "\"10-2\" = 8",
        8.0,
        AbsoluteAreaFlexibility::new().of(&f5).expect("consumption"),
        "prose says 10-2; Definition 10 gives union 11 - cmin 3 = same final 8",
    );
    report.exact(
        "Example 9: |union area(f5)|",
        11.0,
        union_area(&f5).size() as f64,
        "1 + 2*5 cells (the paper's figure)",
    );

    // Example 10: relative area flexibility.
    report.exact(
        "Example 10: relative_area_flexibility(f4)",
        4.0,
        RelativeAreaFlexibility::new().of(&f4).expect("consumption"),
        "2*8 / (2+2)",
    );
    report.exact(
        "Example 10: relative_area_flexibility(f5)",
        16.0 / 6.0,
        RelativeAreaFlexibility::new().of(&f5).expect("consumption"),
        "2*8 / (3+3)",
    );

    // Example 11: the product measure pathologies.
    report.exact(
        "Example 11: product_flexibility(fx), ef = 0",
        0.0,
        ProductFlexibility
            .of(&fixtures::example11_fx())
            .expect("total"),
        "6 * 0",
    );
    report.exact(
        "Example 11: product_flexibility([1,5] offer)",
        8.0,
        ProductFlexibility.of(&fixtures::small_fx()).expect("total"),
        "",
    );
    report.exact(
        "Example 11: product_flexibility([101,105] offer)",
        8.0,
        ProductFlexibility.of(&fixtures::large_fy()).expect("total"),
        "size blindness: equal to the small offer",
    );

    // Example 12: vector flexibility is size-blind too.
    report.exact(
        "Example 12: ||vector(fx)||_1 = ||vector(fy)||_1",
        6.0,
        VectorFlexibility::new(Norm::L1)
            .of(&fixtures::small_fx())
            .expect("total"),
        "",
    );
    report.exact(
        "Example 12: ||vector(fy)||_2",
        4.47213595499958,
        VectorFlexibility::new(Norm::L2)
            .of(&fixtures::large_fy())
            .expect("total"),
        "sqrt(4 + 16)",
    );

    // Example 13: the time-series measure cannot see the larger window.
    report.exact(
        "Example 13: series_flexibility(f1'), L1",
        1.0,
        TimeSeriesFlexibility::new(Norm::L1)
            .of(&fixtures::f1_prime())
            .expect("total"),
        "ten-fold time flexibility, same value",
    );
    report.exact(
        "Example 13: series_flexibility(f1'), L2",
        1.0,
        TimeSeriesFlexibility::new(Norm::L2)
            .of(&fixtures::f1_prime())
            .expect("total"),
        "",
    );

    // Example 14: assignment counts of f2 and f6 variants.
    let f6 = fixtures::f6();
    report.exact(
        "Example 14: assignments(f2) with tf = 0",
        3.0,
        AssignmentFlexibility::new()
            .of(&fo(0, 0, &[(0, 2)]))
            .expect("total"),
        "",
    );
    report.exact(
        "Example 14: assignments(f2) with ef = 0",
        3.0,
        AssignmentFlexibility::new()
            .of(&fo(0, 2, &[(1, 1)]))
            .expect("total"),
        "",
    );
    report.exact(
        "Example 14: assignments(f6)",
        240.0,
        AssignmentFlexibility::new().of(&f6).expect("total"),
        "3 * 4 * 4 * 5",
    );
    report.exact(
        "Example 14: assignments(f6) with tf = 0",
        80.0,
        AssignmentFlexibility::new()
            .of(&fo(0, 0, &[(-1, 2), (-4, -1), (-3, 1)]))
            .expect("total"),
        "",
    );
    report.exact(
        "Example 14: assignments(f6) with ef = 0",
        3.0,
        AssignmentFlexibility::new()
            .of(&fo(0, 2, &[(-1, -1), (-4, -4), (-3, -3)]))
            .expect("total"),
        "",
    );

    // Example 15: the mixed flex-offer under the area measures.
    report.exact(
        "Example 15: |union area(f6)|",
        24.0,
        union_area(&f6).size() as f64,
        "paper labels f6 as \"f4\"; slice 2 printed as [-1,-4], must be [-4,-1]",
    );
    report.exact(
        "Example 15: absolute_area_flexibility(f6)",
        32.0,
        AbsoluteAreaFlexibility::new()
            .of(&f6)
            .expect("literal policy"),
        "24 - (-8), Definition 10 applied literally",
    );
    report.exact(
        "Example 15: relative_area_flexibility(f6)",
        6.4,
        RelativeAreaFlexibility::new()
            .of(&f6)
            .expect("literal policy"),
        "2*32 / (8+2)",
    );

    print!("{}", report.render());
    if report.mismatches() > 0 {
        std::process::exit(1);
    }
}
