//! Experiment E3 — the market value of flexibility (Scenario 2).
//!
//! Sixteen portfolios of varying composition and flexibility trade through
//! an aggregator on a synthetic spot market — each run through the
//! engine's parallel [`Engine::trade_portfolio`] pipeline (bitwise
//! identical to the sequential `Aggregator::run`). Reported per portfolio:
//! realized savings against the inflexible baseline; reported per measure:
//! the correlation between the measure's portfolio value and those savings
//! ("a better value in the energy market" — Scenario 2). A second sweep
//! prices aggregation's flexibility *overestimation* by comparing the safe
//! aggregator against the naive one across grouping coarseness.
//!
//! Run with `cargo run --release -p flexoffers_bench --bin exp_market_value`.

use flexoffers_aggregation::GroupingParams;
use flexoffers_engine::Engine;
use flexoffers_market::{measure_savings_correlation, Aggregator, MarketOutcome, SpotMarket};
use flexoffers_model::Portfolio;
use flexoffers_workloads::price::{price_trace, PriceTraceConfig};
use flexoffers_workloads::PopulationBuilder;

fn portfolios() -> Vec<Portfolio> {
    (0..16u64)
        .map(|seed| {
            let scale = 1 + (seed % 4) as usize;
            PopulationBuilder::new(seed)
                .electric_vehicles(8 * scale)
                .dishwashers(10 * scale)
                .heat_pumps(5 * scale)
                .refrigerators(12 * scale)
                .build()
        })
        .collect()
}

fn main() {
    let market = SpotMarket::new(
        price_trace(&PriceTraceConfig {
            days: 2,
            ..PriceTraceConfig::default()
        }),
        2.0,
    )
    .expect("valid market");
    let portfolios = portfolios();
    println!(
        "E3: market value of flexibility — {} portfolios, penalty price {:.2}",
        portfolios.len(),
        market.penalty_price()
    );

    let engine = Engine::detected();
    let aggregator = Aggregator::new(GroupingParams::with_tolerances(3, 3), 25);
    let outcomes: Vec<MarketOutcome> = portfolios
        .iter()
        .map(|p| engine.trade_portfolio(p, &aggregator, &market).outcome)
        .collect();
    let savings: Vec<f64> = outcomes.iter().map(MarketOutcome::savings).collect();
    let correlations = measure_savings_correlation(&portfolios, &savings);

    println!(
        "\n{:>4} {:>7} {:>8} {:>10} {:>10} {:>10} {:>8}",
        "#", "offers", "orders", "baseline", "total", "savings", "rel"
    );
    for (i, (p, o)) in portfolios.iter().zip(&outcomes).enumerate() {
        println!(
            "{:>4} {:>7} {:>8} {:>10.0} {:>10.0} {:>10.0} {:>7.1}%",
            i,
            p.len(),
            o.orders.len(),
            o.baseline_cost,
            o.total_cost(),
            o.savings(),
            o.relative_savings() * 100.0
        );
    }

    println!("\ncorrelation of each measure's portfolio value with realized savings:");
    println!("{:<14} {:>12} {:>12}", "measure", "pearson r", "evaluated");
    for c in &correlations {
        match c.correlation {
            Some(r) => println!("{:<14} {:>12.3} {:>12}", c.measure, r, c.evaluated),
            None => println!("{:<14} {:>12} {:>12}", c.measure, "n/a", c.evaluated),
        }
    }

    // Part 2: the price of trusting the aggregate's apparent flexibility.
    println!("\npricing the aggregation overestimation (naive vs safe planning):");
    println!(
        "{:>16} {:>12} {:>14} {:>14}",
        "grouping", "aggregates", "naive imbal.", "extra cost"
    );
    let probe = &portfolios[0];
    for (label, params) in [
        ("strict", GroupingParams::strict()),
        ("est/tft <= 2", GroupingParams::with_tolerances(2, 2)),
        ("est/tft <= 6", GroupingParams::with_tolerances(6, 6)),
        ("single group", GroupingParams::single_group()),
    ] {
        let safe = engine
            .trade_portfolio(probe, &Aggregator::new(params, 25), &market)
            .outcome;
        let naive = engine
            .trade_portfolio(probe, &Aggregator::naive(params, 25), &market)
            .outcome;
        let aggregates = safe.orders.len() + safe.rejected_lots;
        println!(
            "{:>16} {:>12} {:>14.0} {:>14.0}",
            label,
            aggregates,
            naive.imbalance_cost,
            naive.total_cost() - safe.total_cost()
        );
    }
    println!(
        "\nCoarser grouping widens the gap between an aggregate's apparent\n\
         and realizable flexibility; the naive planner pays for the\n\
         difference at penalty prices. This is Scenario 1's flexibility-loss\n\
         story told in money."
    );
}
