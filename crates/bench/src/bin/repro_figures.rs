//! Regenerates Figures 1–7 of Valsomatzis et al. (EDBT 2015) as ASCII
//! renderings, each annotated with the quantities the paper derives from it.
//!
//! Run with `cargo run -p flexoffers_bench --bin repro_figures`.

use flexoffers_area::{render_assignment, render_flexoffer, render_union, union_area};
use flexoffers_bench::fixtures;
use flexoffers_measures::{
    AbsoluteAreaFlexibility, AssignmentFlexibility, Measure, Norm, RelativeAreaFlexibility,
    TimeSeriesFlexibility,
};

fn heading(title: &str) {
    println!("==========================================================");
    println!("{title}");
    println!("==========================================================");
}

fn main() {
    heading("Figure 1: flex-offer f with four slices, start window [1, 6]");
    let f = fixtures::figure1();
    print!("{}", render_flexoffer(&f));
    let fa1 = fixtures::figure1_assignment();
    println!(
        "assignment fa1 = {fa1} is {} (the figure's bold lines)\n",
        if f.is_valid_assignment(&fa1) {
            "valid"
        } else {
            "INVALID"
        }
    );

    heading("Figure 2: f1 = ([0,1], <[0,1]>) and its extreme assignments");
    let f1 = fixtures::f1();
    print!("{}", render_flexoffer(&f1));
    let d = TimeSeriesFlexibility::difference(&f1);
    println!(
        "f_min = {}, f_max = {}, difference = {}",
        f1.min_assignment(),
        f1.max_assignment(),
        d
    );
    println!(
        "series flexibility: L1 = {}, L2 = {} (Example 5)\n",
        Norm::L1.of(&d),
        Norm::L2.of(&d)
    );

    heading("Figure 3: f2 = ([0,2], <[0,2]>) and its 9 assignments");
    let f2 = fixtures::f2();
    print!("{}", render_flexoffer(&f2));
    println!("the 9 assignments of Example 6:");
    for a in f2.assignments() {
        println!("  {a}");
    }
    println!();

    heading("Figure 4: the area of assignment <2,1,3> at t = 1 (Example 7)");
    print!("{}", render_assignment(&fixtures::f3_assignment()));
    println!();

    heading("Figure 5: f4 = ([0,4], <[2,2]>), cmin = cmax = 2");
    let f4 = fixtures::f4();
    print!("{}", render_union(&f4));
    println!(
        "absolute = {} (union {} - cmin {}), relative = {} (Examples 8, 10)\n",
        AbsoluteAreaFlexibility::new().of(&f4).expect("consumption"),
        union_area(&f4).size(),
        f4.total_min(),
        RelativeAreaFlexibility::new().of(&f4).expect("consumption"),
    );

    heading("Figure 6: f5 = ([0,4], <[1,1],[2,2]>), cmin = cmax = 3");
    let f5 = fixtures::f5();
    print!("{}", render_union(&f5));
    println!(
        "absolute = {} (union {} - cmin {}), relative = {:.3} (Examples 9, 10)\n",
        AbsoluteAreaFlexibility::new().of(&f5).expect("consumption"),
        union_area(&f5).size(),
        f5.total_min(),
        RelativeAreaFlexibility::new().of(&f5).expect("consumption"),
    );

    heading("Figure 7: mixed f6 = ([0,2], <[-1,2],[-4,-1],[-3,1]>)");
    let f6 = fixtures::f6();
    print!("{}", render_flexoffer(&f6));
    print!("{}", render_union(&f6));
    println!(
        "assignments = {} (Example 14), union = {} cells,",
        AssignmentFlexibility::new().of(&f6).expect("count"),
        union_area(&f6).size(),
    );
    println!(
        "absolute = {} and relative = {} under the definition-literal mixed\n\
         policy (Example 15) — the values Section 4 argues are not meaningful\n\
         for mixed flex-offers.",
        AbsoluteAreaFlexibility::new().of(&f6).expect("literal"),
        RelativeAreaFlexibility::new().of(&f6).expect("literal"),
    );
}
