//! Experiment E1 — flexibility loss under aggregation (Scenario 1 and the
//! paper's future work: "evaluation of flex-offer aggregation techniques").
//!
//! A district portfolio is grouped with a sweep of earliest-start and
//! time-flexibility tolerances, aggregated, and every measure is evaluated
//! before and after. Grouping-tolerance points fan out through the engine's
//! shared [`parallel_map`] helper (deterministic output order). Pass
//! `--json` for machine-readable rows, `--quick` for the small CI-smoke
//! variant (fewer households, a coarser sweep).
//!
//! Run with `cargo run --release -p flexoffers_bench --bin exp_aggregation_loss`.

use flexoffers_aggregation::{aggregate_portfolio, loss_table, GroupingParams, LossReport};
use flexoffers_engine::{parallel_map, Budget, Engine};
use flexoffers_measures::MeasureError;
use flexoffers_workloads::district;
use serde::Serialize;

#[derive(Serialize)]
struct JsonRow {
    est_tolerance: i64,
    tf_tolerance: i64,
    aggregates: usize,
    measure: String,
    before: f64,
    after: f64,
    relative_loss: f64,
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let quick = std::env::args().any(|a| a == "--quick");
    let households = if quick { 50 } else { 250 };
    let portfolio = district(42, households);
    let offers = portfolio.as_slice();
    println!(
        "E1: flexibility loss under aggregation — {} flex-offers (seed 42, {households} households)",
        offers.len()
    );

    // Baseline: the un-aggregated portfolio through the batch engine (the
    // same set-level values every sweep point's "before" column uses).
    println!(
        "\n{}",
        Engine::detected().measure_portfolio_all(offers).render()
    );

    let est_points: &[i64] = if quick { &[0, 2, 8] } else { &[0, 1, 2, 4, 8] };
    let tft_points: &[i64] = if quick { &[0, 8] } else { &[0, 2, 8] };
    let sweep: Vec<(i64, i64)> = est_points
        .iter()
        .flat_map(|&est| tft_points.iter().map(move |&tft| (est, tft)))
        .collect();

    // Each sweep point is independent; fan out through the engine's shared
    // chunking helper (thread logic lives in one place, output stays in
    // sweep order).
    type SweepPoint = (i64, i64, usize, Vec<Result<LossReport, MeasureError>>);
    let results: Vec<SweepPoint> =
        parallel_map(&sweep, Budget::detected().threads(), |&(est, tft)| {
            let params = GroupingParams::with_tolerances(est, tft);
            let aggregates = aggregate_portfolio(offers, &params);
            let table = loss_table(offers, &aggregates);
            (est, tft, aggregates.len(), table)
        });

    let mut json_rows = Vec::new();
    for (est, tft, n_aggregates, table) in &results {
        println!(
            "\nest_tolerance = {est}, tf_tolerance = {tft}: {} offers -> {} aggregates",
            offers.len(),
            n_aggregates
        );
        println!(
            "  {:<12} {:>16} {:>16} {:>10}",
            "measure", "before", "after", "loss"
        );
        for entry in table {
            match entry {
                Ok(r) => {
                    println!(
                        "  {:<12} {:>16.4e} {:>16.4e} {:>9.1}%",
                        r.measure,
                        r.before,
                        r.after,
                        r.relative_loss() * 100.0
                    );
                    json_rows.push(JsonRow {
                        est_tolerance: *est,
                        tf_tolerance: *tft,
                        aggregates: *n_aggregates,
                        measure: r.measure.clone(),
                        before: r.before,
                        after: r.after,
                        relative_loss: r.relative_loss(),
                    });
                }
                Err(e) => println!("  (unavailable: {e})"),
            }
        }
    }

    println!(
        "\nReading guide: time-derived measures (Time, Product, Vector) lose\n\
         monotonically as tolerances coarsen — the min-rule destroys start\n\
         windows. Energy flexibility is preserved exactly (totals sum). The\n\
         Assignments measure *explodes* after aggregation (its exponential\n\
         energy skew, Section 4), and Abs. Area can report *negative* loss:\n\
         aggregation overestimates joint flexibility, the effect the\n\
         disaggregation flow check quantifies."
    );

    // Part 2: measure-aware aggregation (the paper's future work) against
    // fixed tolerances, compared at the compression each achieves.
    println!("\nmeasure-aware aggregation (vector-flexibility loss budget per merge):");
    println!(
        "{:>8} {:>12} {:>16} {:>16} {:>10}",
        "budget", "aggregates", "vector before", "vector after", "loss"
    );
    let vector = flexoffers_measures::VectorFlexibility::default();
    let budgets: &[f64] = if quick {
        &[0.0, 0.2]
    } else {
        &[0.0, 0.05, 0.1, 0.2, 0.4]
    };
    for &budget in budgets {
        let grouper = flexoffers_aggregation::MeasureAwareGrouping::new(&vector, budget);
        let aggregates = grouper
            .aggregate_portfolio(offers)
            .expect("consumption+production portfolios measure everywhere");
        let report = flexoffers_aggregation::flexibility_loss(&vector, offers, &aggregates)
            .expect("vector measure total");
        println!(
            "{:>8.2} {:>12} {:>16.1} {:>16.1} {:>9.1}%",
            budget,
            aggregates.len(),
            report.before,
            report.after,
            report.relative_loss() * 100.0
        );
    }
    println!(
        "Fixed tolerances must be tuned per portfolio; the measure-aware\n\
         grouper trades compression against measured loss directly, giving a\n\
         principled dial (paper, Section 6 future work)."
    );

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&json_rows).expect("serializable")
        );
    }
}
