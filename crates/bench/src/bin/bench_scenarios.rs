//! Persists the scenario-pipeline throughput baseline:
//! `BENCH_scenarios.json`.
//!
//! Sweeps the two end-to-end scenario pipelines —
//! [`Engine::schedule_portfolio`] (Scenario 1: group → aggregate →
//! schedule → realize) and [`Engine::trade_portfolio`] (Scenario 2:
//! group → plan → settle) — over seeded city portfolios at 1k/10k offers
//! and 1/4/8 worker threads, plus the sequential library paths
//! (`schedule_via_aggregation`, `Aggregator::run`) as the reference the
//! speedup is quoted against. Workload knobs come from the same
//! [`Scenario`] defaults `flexctl simulate` uses, so the recorded hot
//! paths are exactly the served ones.
//!
//! ```text
//! cargo run --release -p flexoffers_bench --bin bench_scenarios            # full sweep
//! cargo run --release -p flexoffers_bench --bin bench_scenarios -- --quick # 1k only (CI smoke)
//! cargo run ... -- --out path/to.json                                      # custom output
//! ```

use flexoffers_bench::timing::time_best;
use flexoffers_engine::{Budget, Engine, Scenario, ScenarioKind};
use flexoffers_model::FlexOffer;
use flexoffers_scheduling::{schedule_via_aggregation, GreedyScheduler, SchedulingProblem};
use flexoffers_workloads::city_households_for;
use serde::Serialize;

const THREADS: [usize; 3] = [1, 4, 8];

#[derive(Serialize)]
struct Run {
    scenario: &'static str,
    offers: usize,
    /// 0 marks the sequential library path; otherwise engine threads.
    threads: usize,
    secs: f64,
    offers_per_sec: f64,
}

#[derive(Serialize)]
struct ScenarioBenchReport {
    schema: &'static str,
    workload: String,
    host_cpus: usize,
    runs: Vec<Run>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path = String::from("BENCH_scenarios.json");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match iter.next() {
                Some(path) if !path.starts_with("--") => out_path = path.clone(),
                _ => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "error: unknown argument {other}\nusage: bench_scenarios [--quick] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let sizes: &[usize] = if quick { &[1_000] } else { &[1_000, 10_000] };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("bench_scenarios: city portfolios · sizes {sizes:?} · {host_cpus} host cpu(s)");

    let mut runs = Vec::new();
    for &size in sizes {
        let scenario = Scenario::city_portfolio(ScenarioKind::Schedule, city_households_for(size));
        let mut portfolio = scenario.portfolio();
        portfolio.truncate(size);
        let offers: &[FlexOffer] = portfolio.as_slice();
        let problem = SchedulingProblem::new(offers.to_vec(), scenario.target_for(offers.len()));
        let scheduler = GreedyScheduler::new();
        let market = scenario.spot_market();
        let aggregator = scenario.aggregator();

        let mut record = |scenario: &'static str, threads: usize, secs: f64| {
            println!(
                "  {scenario:<9} {:>10} {size:>7} offers  {secs:>9.4}s  {:>10.0} offers/s",
                if threads == 0 {
                    "sequential".to_owned()
                } else {
                    format!("{threads} thread(s)")
                },
                size as f64 / secs
            );
            runs.push(Run {
                scenario,
                offers: size,
                threads,
                secs,
                offers_per_sec: size as f64 / secs,
            });
        };

        let secs = time_best(|| {
            let outcome =
                schedule_via_aggregation(&problem, &scenario.grouping, &scheduler).unwrap();
            std::hint::black_box(outcome);
        });
        record("schedule", 0, secs);
        for &threads in &THREADS {
            let engine = Engine::new(Budget::with_threads(threads).expect("non-zero"));
            let secs = time_best(|| {
                let outcome = engine
                    .schedule_portfolio(&problem, &scenario.grouping, &scheduler)
                    .unwrap();
                std::hint::black_box(outcome);
            });
            record("schedule", threads, secs);
        }

        let secs = time_best(|| {
            std::hint::black_box(aggregator.run(&portfolio, &market));
        });
        record("market", 0, secs);
        for &threads in &THREADS {
            let engine = Engine::new(Budget::with_threads(threads).expect("non-zero"));
            let secs = time_best(|| {
                std::hint::black_box(engine.trade_portfolio(&portfolio, &aggregator, &market));
            });
            record("market", threads, secs);
        }
    }

    let report = ScenarioBenchReport {
        schema: "flexoffers-scenario-bench/1",
        workload: "workloads::city(seed 7), truncated per size, Scenario defaults".to_owned(),
        host_cpus,
        runs,
    };
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&report).expect("report serializes") + "\n",
    )
    .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
