//! CI bench-regression gate: compare a freshly measured engine bench
//! report against the committed baseline, normalised to per-core
//! throughput (see `flexoffers_bench::regression`).
//!
//! ```text
//! bench_check [--baseline BENCH_engine.json] [--candidate BENCH_engine_ci.json]
//!             [--min-ratio 0.5]
//! ```
//!
//! Exit codes: 0 pass, 1 regression detected, 2 usage or unreadable
//! reports.

use flexoffers_bench::regression::{check_regression, EngineBenchReport, DEFAULT_MIN_RATIO};

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

fn load(side: &str, path: &str) -> EngineBenchReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("reading {side} report {path}: {e}")));
    serde_json::from_str(&text)
        .unwrap_or_else(|e| die(&format!("parsing {side} report {path}: {e}")))
}

fn main() {
    let mut baseline_path = String::from("BENCH_engine.json");
    let mut candidate_path = String::from("BENCH_engine_ci.json");
    let mut min_ratio = DEFAULT_MIN_RATIO;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_for = |flag: &str| {
            iter.next()
                .cloned()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--baseline" => baseline_path = value_for("--baseline"),
            "--candidate" => candidate_path = value_for("--candidate"),
            "--min-ratio" => {
                let raw = value_for("--min-ratio");
                match raw.parse::<f64>() {
                    Ok(r) if r > 0.0 && r.is_finite() => min_ratio = r,
                    _ => die(&format!("--min-ratio takes a positive number, got {raw}")),
                }
            }
            other => die(&format!(
                "unknown argument {other}\nusage: bench_check [--baseline PATH] [--candidate PATH] [--min-ratio R]"
            )),
        }
    }

    let baseline = load("baseline", &baseline_path);
    let candidate = load("candidate", &candidate_path);
    println!(
        "bench_check: {candidate_path} (host_cpus {}) vs {baseline_path} (host_cpus {})",
        candidate.host_cpus, baseline.host_cpus
    );
    match check_regression(&baseline, &candidate, min_ratio) {
        Ok(verdict) => {
            println!("{}", verdict.render());
            if !verdict.passed() {
                std::process::exit(1);
            }
        }
        Err(e) => die(&e.to_string()),
    }
}
