//! Experiment E2 — which measure predicts scheduling value? (The paper's
//! future work: "experimentally evaluate the flexibility measures and their
//! effect on the scheduling process".)
//!
//! Portfolios with a *flexibility dial* (their start windows and energy
//! bands scaled from 0 % to 100 %) are scheduled against the same renewable
//! production trace — through the engine's parallel
//! [`Engine::schedule_portfolio`] Scenario 1 pipeline with strict
//! grouping. Note that strict grouping still merges offers sharing an
//! identical `(earliest start, time flexibility)` profile, so cohorts of
//! equal appliances are scheduled jointly and then disaggregated; the
//! absolute imbalance numbers therefore differ slightly from scheduling
//! each member directly, while the correlation story the experiment is
//! after is unchanged. For each dial setting we record every measure's
//! portfolio value and the imbalance improvement over the inflexible
//! baseline, then report the Pearson correlation per measure: a good
//! measure's value should track realized scheduling benefit.
//!
//! Run with `cargo run --release -p flexoffers_bench --bin exp_scheduling_value`.

use flexoffers_aggregation::GroupingParams;
use flexoffers_engine::Engine;
use flexoffers_market::pearson;
use flexoffers_measures::{all_measures, Measure};
use flexoffers_model::{FlexOffer, Portfolio};
use flexoffers_scheduling::{
    imbalance::coverage, EarliestStartScheduler, GreedyScheduler, HillClimbScheduler, Scheduler,
    SchedulingProblem,
};
use flexoffers_workloads::res::{res_production_trace, ResTraceConfig};
use flexoffers_workloads::PopulationBuilder;

/// Shrinks a flex-offer's flexibility to `dial` (0.0 = rigid, 1.0 = as
/// generated): the start window scales by `dial`, and the total-energy band
/// narrows symmetrically toward its midpoint.
fn scale_flexibility(fo: &FlexOffer, dial: f64) -> FlexOffer {
    let tf = (fo.time_flexibility() as f64 * dial).round() as i64;
    let ef = fo.energy_flexibility();
    let kept = (ef as f64 * dial).round() as i64;
    let mid_low = fo.total_min() + (ef - kept) / 2;
    FlexOffer::with_totals(
        fo.earliest_start(),
        fo.earliest_start() + tf,
        fo.slices().to_vec(),
        mid_low,
        mid_low + kept,
    )
    .expect("scaling preserves invariants")
}

fn main() {
    let base = PopulationBuilder::new(7)
        .electric_vehicles(40)
        .dishwashers(50)
        .heat_pumps(25)
        .refrigerators(60)
        .build();
    let res = res_production_trace(&ResTraceConfig {
        days: 2,
        solar_capacity: 70,
        wind_capacity: 100,
        ..ResTraceConfig::default()
    });
    println!(
        "E2: measures vs scheduling value — {} flex-offers, {}-slot RES trace",
        base.len(),
        res.len()
    );

    let dials: Vec<f64> = (0..=8).map(|k| k as f64 / 8.0).collect();
    let mut measure_values: Vec<Vec<f64>> = vec![Vec::new(); 8];
    let mut improvements: Vec<f64> = Vec::new();

    println!(
        "\n{:>6} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "dial", "baseline L1", "greedy L1", "climb L1", "improve", "coverage"
    );
    let engine = Engine::detected();
    let strict = GroupingParams::strict();
    for &dial in &dials {
        let portfolio: Portfolio = base.iter().map(|fo| scale_flexibility(fo, dial)).collect();
        let problem = SchedulingProblem::new(portfolio.as_slice().to_vec(), res.clone());

        let baseline = EarliestStartScheduler
            .schedule(&problem)
            .expect("baseline always feasible");
        let greedy = engine
            .schedule_portfolio(&problem, &strict, &GreedyScheduler::new())
            .expect("greedy always feasible")
            .schedule;
        let climbed = engine
            .schedule_portfolio(&problem, &strict, &HillClimbScheduler::new(42, 1_500))
            .expect("hill-climb always feasible")
            .schedule;
        assert!(problem.is_feasible(&climbed));

        let b = baseline.imbalance(problem.target()).l1;
        let g = greedy.imbalance(problem.target()).l1;
        let c = climbed.imbalance(problem.target()).l1;
        let improvement = b - c;
        let cov = coverage(&climbed.load(), problem.target());
        println!(
            "{:>6.2} {:>12.0} {:>12.0} {:>12.0} {:>10.0} {:>9.1}%",
            dial,
            b,
            g,
            c,
            improvement,
            cov * 100.0
        );

        improvements.push(improvement);
        for (i, m) in all_measures().iter().enumerate() {
            // Use log2 for the assignments measure's astronomic counts.
            let v = if m.short_name() == "Assignments" {
                flexoffers_measures::AssignmentFlexibility::log_scaled()
                    .of_set(portfolio.as_slice())
            } else {
                m.of_set(portfolio.as_slice())
            };
            measure_values[i].push(v.unwrap_or(f64::NAN));
        }
    }

    println!("\ncorrelation of each measure's portfolio value with imbalance improvement:");
    println!("{:<14} {:>12}", "measure", "pearson r");
    for (i, m) in all_measures().iter().enumerate() {
        let xs: Vec<f64> = measure_values[i]
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        let ys: Vec<f64> = improvements
            .iter()
            .zip(&measure_values[i])
            .filter(|(_, v)| v.is_finite())
            .map(|(y, _)| *y)
            .collect();
        match pearson(&xs, &ys) {
            Some(r) => println!("{:<14} {:>12.3}", m.short_name(), r),
            None => println!("{:<14} {:>12}", m.short_name(), "n/a"),
        }
    }
    println!(
        "\nExpected shape: every measure that captures time flexibility\n\
         correlates strongly — shifting load is what tracks the RES trace —\n\
         while the Energy and Time-series measures (time-blind per Table 1)\n\
         correlate, if at all, only through the energy band's contribution."
    );
}
