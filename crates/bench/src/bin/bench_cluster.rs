//! Persists the cross-process cluster tier's throughput baseline:
//! `BENCH_cluster.json`.
//!
//! Drives a [`flexoffers_cluster::ClusterBook`] — one shard-worker OS
//! process per shard behind the scatter/gather supervisor — with a seeded
//! adds-plus-measure-queries mix at 1/2/4 workers. Every mutation is one
//! pipe round trip to the owning worker; every query is a full gather
//! (each worker refreshes and ships its warmed shard export) plus the
//! in-process merge, so the numbers price the cluster's serialization and
//! process-hop overhead against the `sequential` section, which applies
//! the same events to an in-process one-shard
//! [`flexoffers_serving::LiveBook`].
//!
//! The workers are this binary re-invoked with the internal `--worker`
//! flag, so the bench is self-contained — no other binary needs building.
//!
//! The emitted JSON uses the `flexoffers-engine-bench/1` schema, so the
//! existing `bench_check` regression gate consumes it unchanged (`threads`
//! records the worker count; `offers_per_sec` is events acknowledged per
//! second; the extra `workers`/`queries` fields are ignored by the gate).
//! The headline is the events/s scaling from 1 worker to the largest
//! worker count — expect it below 1.0: queries gather the whole book, so
//! more workers means more pipe traffic per query, and the point of the
//! committed baseline is pinning that overhead, not advertising speedup.
//!
//! ```text
//! cargo run --release -p flexoffers_bench --bin bench_cluster            # full sweep
//! cargo run --release -p flexoffers_bench --bin bench_cluster -- --quick # smaller (CI)
//! cargo run ... -- --out path/to.json                                    # custom output
//! ```

use std::time::Instant;

use flexoffers_bench::timing::time_best;
use flexoffers_cluster::{ClusterBook, WorkerSpec};
use flexoffers_engine::{Budget, Engine};
use flexoffers_measures::all_measures;
use flexoffers_model::FlexOffer;
use flexoffers_serving::{Event, LiveBook, QueryKind, ServeConfig};
use flexoffers_workloads::city_stream;
use serde::Serialize;

const SEED: u64 = 7;
/// Every 32nd event is a measure query (a full gather + merge).
const QUERY_STRIDE: u64 = 32;

#[derive(Serialize)]
struct Run {
    offers: usize,
    /// Mirrors the gate's `threads` field: worker process count.
    threads: usize,
    workers: usize,
    queries: usize,
    secs: f64,
    /// Events acknowledged per second — the field the per-core gate
    /// normalises.
    offers_per_sec: f64,
}

#[derive(Serialize)]
struct SequentialRun {
    offers: usize,
    secs: f64,
    offers_per_sec: f64,
}

#[derive(Serialize)]
struct ClusterBenchReport {
    schema: &'static str,
    workload: String,
    measures: usize,
    host_cpus: usize,
    /// The no-pipe ceiling: the same events applied in process.
    sequential: Vec<SequentialRun>,
    /// Cluster runs at increasing worker counts.
    engine: Vec<Run>,
    /// Events/s at the largest worker count over 1 worker.
    speedup_8_threads_largest: f64,
}

/// The event script: seeded city adds, a measure query every
/// [`QUERY_STRIDE`]th event.
fn events(total: u64) -> Vec<Event> {
    let offers: Vec<FlexOffer> = city_stream(SEED, 8).collect();
    (0..total)
        .map(|i| {
            if i % QUERY_STRIDE == QUERY_STRIDE - 1 {
                Event::Query(QueryKind::Measure)
            } else {
                Event::Add(offers[i as usize % offers.len()].clone())
            }
        })
        .collect()
}

/// One fresh cluster fed the whole script; wall time covers the event
/// phase only, not spawn or shutdown.
fn cluster_pass(workers: usize, script: &[Event]) -> (f64, usize) {
    let exe = std::env::current_exe().expect("bench binary path");
    let spec = WorkerSpec::new(exe).arg("--worker");
    let mut cluster =
        ClusterBook::spawn(ServeConfig::default(), Budget::sequential(), workers, spec)
            .expect("cluster spawns");
    let mut queries = 0usize;
    let started = Instant::now();
    for event in script {
        let answer = cluster.apply(event.clone()).expect("valid stream");
        if answer.is_some() {
            queries += 1;
        }
    }
    let secs = started.elapsed().as_secs_f64();
    assert_eq!(cluster.respawns(), 0, "no worker died during the bench");
    cluster.shutdown();
    (secs, queries)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Internal: `bench_cluster --worker` IS the shard-worker process.
    if args.first().map(String::as_str) == Some("--worker") {
        if let Err(e) = flexoffers_cluster::run_stdio_worker() {
            eprintln!("error: shard worker io: {e}");
            std::process::exit(1);
        }
        return;
    }
    let mut quick = false;
    let mut out_path = String::from("BENCH_cluster.json");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match iter.next() {
                Some(path) if !path.starts_with("--") => out_path = path.clone(),
                _ => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "error: unknown argument {other}\nusage: bench_cluster [--quick] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let total_events: u64 = if quick { 512 } else { 2_048 };
    let worker_counts: &[usize] = &[1, 2, 4];
    let passes = if quick { 1 } else { 2 };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "bench_cluster: {total_events} events through cross-process shard workers · workers \
         {worker_counts:?} · {host_cpus} host cpu(s)"
    );

    let script = events(total_events);

    // The no-pipe ceiling: the same events applied in process.
    let seq_secs = time_best(|| {
        let mut book =
            LiveBook::new(ServeConfig::default(), 1, Engine::sequential()).expect("one shard");
        for event in &script {
            book.apply(event.clone()).expect("valid stream");
        }
        std::hint::black_box(&book);
    });
    let seq_rate = script.len() as f64 / seq_secs;
    println!(
        "  in-process               {total_events:>7} events  {seq_secs:>9.4}s \
         ({seq_rate:>9.0} events/s)"
    );
    let sequential = vec![SequentialRun {
        offers: total_events as usize,
        secs: seq_secs,
        offers_per_sec: seq_rate,
    }];

    let mut engine_runs = Vec::new();
    let mut rate_at_1 = 0.0f64;
    let mut rate_at_max = 0.0f64;
    for &workers in worker_counts {
        let mut best: Option<(f64, usize)> = None;
        for _ in 0..passes {
            let pass = cluster_pass(workers, &script);
            if best.is_none_or(|b| pass.0 < b.0) {
                best = Some(pass);
            }
        }
        let (secs, queries) = best.expect("at least one pass");
        let rate = script.len() as f64 / secs;
        println!(
            "  {workers} worker(s)              {total_events:>7} events  {secs:>9.4}s \
             ({rate:>9.0} events/s, {queries} gathers)"
        );
        if workers == 1 {
            rate_at_1 = rate;
        }
        rate_at_max = rate;
        engine_runs.push(Run {
            offers: script.len(),
            threads: workers,
            workers,
            queries,
            secs,
            offers_per_sec: rate,
        });
    }
    let headline = if rate_at_1 > 0.0 {
        rate_at_max / rate_at_1
    } else {
        1.0
    };

    let report = ClusterBenchReport {
        schema: "flexoffers-engine-bench/1",
        workload: format!(
            "cross-process ClusterBook (one shard-worker OS process per shard over stdio \
             pipes, sequential engine per worker); city_stream adds with a measure query \
             every {QUERY_STRIDE}th event; every query gathers all warmed shard exports and \
             merges in process; offers_per_sec = events acknowledged/s; threads = worker \
             count; sequential = the same events on an in-process one-shard LiveBook (no \
             pipes); speedup = events/s at the largest worker count over 1 worker (expected \
             below 1.0 — it prices the gather overhead)"
        ),
        measures: all_measures().len(),
        host_cpus,
        sequential,
        engine: engine_runs,
        speedup_8_threads_largest: headline,
    };
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&report).expect("report serializes") + "\n",
    )
    .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
