//! Persists the cross-process cluster tier's throughput baseline:
//! `BENCH_cluster.json`.
//!
//! Drives a [`flexoffers_cluster::ClusterBook`] — one shard-worker OS
//! process per shard behind the scatter/gather supervisor — with a seeded
//! adds-plus-measure-queries mix at 1/2/4 workers. Every mutation is one
//! pipe round trip to the owning worker; every query is a delta gather
//! (conditional exports confirm clean shards by digest, only dirty shards
//! ship and splice into the supervisor's persistent merged book), so the
//! numbers price the cluster's serialization and process-hop overhead
//! against the `sequential` section, which applies the same events to an
//! in-process one-shard [`flexoffers_serving::LiveBook`].
//!
//! The `warm` section is the delta path's headline: a preloaded book at 4
//! workers where each round dirties exactly **one** shard (a
//! key-preserving update to a fixed victim id) and then answers a burst
//! of measure queries — the steady state the digest gate is built for. It
//! records delta queries/s against the full-gather oracle
//! ([`ClusterBook::answer_full`], the pre-delta path) timed on the same
//! book, plus the gather hit rate and the dirty-shard bytes shipped.
//!
//! The workers are this binary re-invoked with the internal `--worker`
//! flag, so the bench is self-contained — no other binary needs building.
//!
//! The emitted JSON uses the `flexoffers-engine-bench/1` schema, so the
//! existing `bench_check` regression gate consumes it unchanged (`threads`
//! records the worker count; `offers_per_sec` is events acknowledged per
//! second; the extra `workers`/`queries` fields are ignored by the gate).
//! The headline is the events/s scaling from 1 worker to the largest
//! worker count — expect it below 1.0: queries gather the whole book, so
//! more workers means more pipe traffic per query, and the point of the
//! committed baseline is pinning that overhead, not advertising speedup.
//!
//! ```text
//! cargo run --release -p flexoffers_bench --bin bench_cluster            # full sweep
//! cargo run --release -p flexoffers_bench --bin bench_cluster -- --quick # smaller (CI)
//! cargo run ... -- --out path/to.json                                    # custom output
//! ```

use std::time::Instant;

use flexoffers_bench::timing::time_best;
use flexoffers_cluster::{ClusterBook, WorkerSpec};
use flexoffers_engine::{Budget, Engine};
use flexoffers_measures::all_measures;
use flexoffers_model::{FlexOffer, Slice};
use flexoffers_serving::{Event, LiveBook, QueryKind, ServeConfig};
use flexoffers_workloads::city_stream;
use serde::Serialize;

const SEED: u64 = 7;
/// Every 32nd event is a measure query (a gather + merge).
const QUERY_STRIDE: u64 = 32;
/// Worker count of the warm-query sweep (1 dirty shard of this many).
const WARM_WORKERS: usize = 4;
/// Measure queries answered after each warm-sweep update.
const WARM_QUERIES_PER_ROUND: usize = 8;

#[derive(Serialize)]
struct Run {
    offers: usize,
    /// Mirrors the gate's `threads` field: worker process count.
    threads: usize,
    workers: usize,
    queries: usize,
    secs: f64,
    /// Events acknowledged per second — the field the per-core gate
    /// normalises.
    offers_per_sec: f64,
}

#[derive(Serialize)]
struct SequentialRun {
    offers: usize,
    secs: f64,
    offers_per_sec: f64,
}

#[derive(Serialize)]
struct WarmRun {
    workers: usize,
    offers: usize,
    rounds: usize,
    /// Measure queries timed per mode (rounds × queries-per-round).
    queries: usize,
    delta_secs: f64,
    delta_queries_per_sec: f64,
    full_secs: f64,
    full_queries_per_sec: f64,
    /// Delta queries/s over full-gather queries/s on the same book —
    /// the acceptance headline, pinned by the regression tests.
    speedup_vs_full_gather: f64,
    /// Cached shard confirmations over all shard exports in the delta
    /// phase (expected (K-1 + (Q-1)·K)/(Q·K) for 1 dirty shard of K).
    gather_hit_rate: f64,
    dirty_shards: u64,
    cached_shards: u64,
    /// Reply-line bytes of the full exports the delta phase shipped.
    dirty_bytes: u64,
}

#[derive(Serialize)]
struct ClusterBenchReport {
    schema: &'static str,
    workload: String,
    measures: usize,
    host_cpus: usize,
    /// The no-pipe ceiling: the same events applied in process.
    sequential: Vec<SequentialRun>,
    /// Cluster runs at increasing worker counts.
    engine: Vec<Run>,
    /// Events/s at the largest worker count over 1 worker.
    speedup_8_threads_largest: f64,
    /// The warm-query sweep: delta gather vs the full-gather oracle on a
    /// mostly-clean book (1 dirty shard of [`WARM_WORKERS`] per round).
    warm: WarmRun,
}

/// The event script: seeded city adds, a measure query every
/// [`QUERY_STRIDE`]th event.
fn events(total: u64) -> Vec<Event> {
    let offers: Vec<FlexOffer> = city_stream(SEED, 8).collect();
    (0..total)
        .map(|i| {
            if i % QUERY_STRIDE == QUERY_STRIDE - 1 {
                Event::Query(QueryKind::Measure)
            } else {
                Event::Add(offers[i as usize % offers.len()].clone())
            }
        })
        .collect()
}

/// One fresh cluster fed the whole script; wall time covers the event
/// phase only, not spawn or shutdown.
fn cluster_pass(workers: usize, script: &[Event]) -> (f64, usize) {
    let exe = std::env::current_exe().expect("bench binary path");
    let spec = WorkerSpec::new(exe).arg("--worker");
    let mut cluster =
        ClusterBook::spawn(ServeConfig::default(), Budget::sequential(), workers, spec)
            .expect("cluster spawns");
    let mut queries = 0usize;
    let started = Instant::now();
    for event in script {
        let answer = cluster.apply(event.clone()).expect("valid stream");
        if answer.is_some() {
            queries += 1;
        }
    }
    let secs = started.elapsed().as_secs_f64();
    assert_eq!(cluster.respawns(), 0, "no worker died during the bench");
    cluster.shutdown();
    (secs, queries)
}

/// The warm-query sweep: preload a book at [`WARM_WORKERS`] workers, then
/// time rounds of one key-preserving update to a fixed victim id (exactly
/// one dirty shard) followed by [`WARM_QUERIES_PER_ROUND`] measure
/// queries — once through the delta gather, once through the full-gather
/// oracle on the same book. A byte-identity preflight over every query
/// kind guards the comparison before anything is timed.
fn warm_sweep(quick: bool) -> WarmRun {
    let offers_n = if quick { 256 } else { 1024 };
    let rounds = if quick { 8 } else { 32 };
    let exe = std::env::current_exe().expect("bench binary path");
    let spec = WorkerSpec::new(exe).arg("--worker");
    let mut cluster = ClusterBook::spawn(
        ServeConfig::default(),
        Budget::sequential(),
        WARM_WORKERS,
        spec,
    )
    .expect("cluster spawns");
    let offers: Vec<FlexOffer> = city_stream(SEED, 8).collect();
    for i in 0..offers_n {
        cluster
            .add(offers[i % offers.len()].clone())
            .expect("preload add");
    }
    // Two victim variants with identical time bounds (the grouping key),
    // so each round's update dirties the victim's shard without touching
    // the merged book's grouping index.
    let victim = 0u64;
    let variant_a = FlexOffer::new(0, 6, vec![Slice::new(0, 2).unwrap()]).unwrap();
    let variant_b = FlexOffer::new(0, 6, vec![Slice::new(1, 3).unwrap()]).unwrap();
    cluster
        .update(victim, variant_a.clone())
        .expect("victim is live");

    // Byte-identity preflight: the delta path and the full-gather oracle
    // must agree on every query kind before their speeds are compared.
    for kind in QueryKind::all() {
        assert_eq!(
            cluster.answer(kind).expect("delta answers"),
            cluster.answer_full(kind).expect("oracle answers"),
            "delta gather diverged from the full-gather oracle on {kind}"
        );
    }

    let queries = rounds * WARM_QUERIES_PER_ROUND;
    // The full-gather oracle first: it leaves the delta path's digests
    // and merged book untouched, so the delta phase still starts from the
    // same mostly-clean steady state.
    let started = Instant::now();
    for r in 0..rounds {
        let variant = if r % 2 == 0 { &variant_b } else { &variant_a };
        cluster
            .update(victim, variant.clone())
            .expect("victim update");
        for _ in 0..WARM_QUERIES_PER_ROUND {
            std::hint::black_box(cluster.answer_full(QueryKind::Measure).expect("oracle"));
        }
    }
    let full_secs = started.elapsed().as_secs_f64();

    // Same variant order as the oracle phase: that phase ended on
    // `variant_a` (rounds is even), so starting from `variant_b` keeps
    // every round's update a genuine content change — exactly one dirty
    // shard per round, never zero.
    let stats_before = cluster.gather_stats();
    let started = Instant::now();
    for r in 0..rounds {
        let variant = if r % 2 == 0 { &variant_b } else { &variant_a };
        cluster
            .update(victim, variant.clone())
            .expect("victim update");
        for _ in 0..WARM_QUERIES_PER_ROUND {
            std::hint::black_box(cluster.answer(QueryKind::Measure).expect("delta"));
        }
    }
    let delta_secs = started.elapsed().as_secs_f64();
    let stats_after = cluster.gather_stats();
    assert_eq!(cluster.respawns(), 0, "no worker died during the sweep");
    cluster.shutdown();

    let dirty = stats_after.dirty_shards - stats_before.dirty_shards;
    let cached = stats_after.cached_shards - stats_before.cached_shards;
    let dirty_bytes = stats_after.dirty_bytes - stats_before.dirty_bytes;
    let delta_qps = queries as f64 / delta_secs;
    let full_qps = queries as f64 / full_secs;
    WarmRun {
        workers: WARM_WORKERS,
        offers: offers_n,
        rounds,
        queries,
        delta_secs,
        delta_queries_per_sec: delta_qps,
        full_secs,
        full_queries_per_sec: full_qps,
        speedup_vs_full_gather: delta_qps / full_qps,
        gather_hit_rate: cached as f64 / (cached + dirty).max(1) as f64,
        dirty_shards: dirty,
        cached_shards: cached,
        dirty_bytes,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Internal: `bench_cluster --worker` IS the shard-worker process.
    if args.first().map(String::as_str) == Some("--worker") {
        if let Err(e) = flexoffers_cluster::run_stdio_worker() {
            eprintln!("error: shard worker io: {e}");
            std::process::exit(1);
        }
        return;
    }
    let mut quick = false;
    let mut out_path = String::from("BENCH_cluster.json");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match iter.next() {
                Some(path) if !path.starts_with("--") => out_path = path.clone(),
                _ => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "error: unknown argument {other}\nusage: bench_cluster [--quick] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let total_events: u64 = if quick { 512 } else { 2_048 };
    let worker_counts: &[usize] = &[1, 2, 4];
    let passes = if quick { 1 } else { 2 };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "bench_cluster: {total_events} events through cross-process shard workers · workers \
         {worker_counts:?} · {host_cpus} host cpu(s)"
    );

    let script = events(total_events);

    // The no-pipe ceiling: the same events applied in process.
    let seq_secs = time_best(|| {
        let mut book =
            LiveBook::new(ServeConfig::default(), 1, Engine::sequential()).expect("one shard");
        for event in &script {
            book.apply(event.clone()).expect("valid stream");
        }
        std::hint::black_box(&book);
    });
    let seq_rate = script.len() as f64 / seq_secs;
    println!(
        "  in-process               {total_events:>7} events  {seq_secs:>9.4}s \
         ({seq_rate:>9.0} events/s)"
    );
    let sequential = vec![SequentialRun {
        offers: total_events as usize,
        secs: seq_secs,
        offers_per_sec: seq_rate,
    }];

    let mut engine_runs = Vec::new();
    let mut rate_at_1 = 0.0f64;
    let mut rate_at_max = 0.0f64;
    for &workers in worker_counts {
        let mut best: Option<(f64, usize)> = None;
        for _ in 0..passes {
            let pass = cluster_pass(workers, &script);
            if best.is_none_or(|b| pass.0 < b.0) {
                best = Some(pass);
            }
        }
        let (secs, queries) = best.expect("at least one pass");
        let rate = script.len() as f64 / secs;
        println!(
            "  {workers} worker(s)              {total_events:>7} events  {secs:>9.4}s \
             ({rate:>9.0} events/s, {queries} gathers)"
        );
        if workers == 1 {
            rate_at_1 = rate;
        }
        rate_at_max = rate;
        engine_runs.push(Run {
            offers: script.len(),
            threads: workers,
            workers,
            queries,
            secs,
            offers_per_sec: rate,
        });
    }
    let headline = if rate_at_1 > 0.0 {
        rate_at_max / rate_at_1
    } else {
        1.0
    };

    let warm = warm_sweep(quick);
    println!(
        "  warm ({} workers, 1 dirty/round) {:>5} queries  delta {:>8.0} q/s · full-gather \
         {:>6.0} q/s · {:.1}x · hit rate {:.1}% · {} dirty bytes",
        warm.workers,
        warm.queries,
        warm.delta_queries_per_sec,
        warm.full_queries_per_sec,
        warm.speedup_vs_full_gather,
        warm.gather_hit_rate * 100.0,
        warm.dirty_bytes,
    );

    let report = ClusterBenchReport {
        schema: "flexoffers-engine-bench/1",
        workload: format!(
            "cross-process ClusterBook (one shard-worker OS process per shard over stdio \
             pipes, sequential engine per worker); city_stream adds with a measure query \
             every {QUERY_STRIDE}th event; every query delta-gathers (digest-gated \
             conditional exports, dirty shards spliced into a persistent merged book); \
             offers_per_sec = events acknowledged/s; threads = worker count; sequential = \
             the same events on an in-process one-shard LiveBook (no pipes); speedup = \
             events/s at the largest worker count over 1 worker; warm = rounds of one \
             key-preserving update (1 dirty shard of {WARM_WORKERS}) + \
             {WARM_QUERIES_PER_ROUND} measure queries, delta vs the full-gather oracle on \
             the same book"
        ),
        measures: all_measures().len(),
        host_cpus,
        sequential,
        engine: engine_runs,
        speedup_8_threads_largest: headline,
        warm,
    };
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&report).expect("report serializes") + "\n",
    )
    .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
