//! Persists the durability tier's throughput baseline:
//! `BENCH_journal.json`.
//!
//! Replays [`flexoffers_workloads::event_stream`] scripts through the
//! serving tier with journaling **off** (a plain
//! [`flexoffers_serving::LiveBook`] — the `sequential` section) and
//! **on** (a [`flexoffers_storage::DurableBook`] appending every mutation
//! to an fsync-batched journal, with and without periodic snapshots — the
//! `engine` section), then times **recovery**: rebuilding the book from
//! the journal alone (full replay) and from the shutdown snapshot plus an
//! empty suffix. The headline is the journaling-off / journaling-on
//! throughput ratio at the largest size — the write-amplification cost of
//! durability, which the `bench_check` per-core gate keeps honest.
//!
//! The emitted JSON uses the `flexoffers-engine-bench/1` schema, so the
//! existing `bench_check` regression gate consumes it unchanged (each run
//! carries extra `mode`/`events`/`sync_every` fields the gate ignores;
//! `offers_per_sec` is events applied — or replayed, for recovery modes —
//! per second).
//!
//! ```text
//! cargo run --release -p flexoffers_bench --bin bench_journal            # full sweep (100k events)
//! cargo run --release -p flexoffers_bench --bin bench_journal -- --quick # 10k events (CI)
//! cargo run ... -- --out path/to.json                                    # custom output
//! ```

use std::path::{Path, PathBuf};

use flexoffers_bench::timing::time_best;
use flexoffers_engine::Engine;
use flexoffers_measures::all_measures;
use flexoffers_serving::{DurabilityConfig, Event, EventSink, LiveBook, ServeConfig};
use flexoffers_storage::{recover, DurableBook};
use flexoffers_workloads::{city_households_for, event_stream};
use serde::Serialize;

const SEED: u64 = 7;
const CHURN: f64 = 0.01;
const SYNC_EVERY: u64 = 64;

#[derive(Serialize)]
struct Run {
    offers: usize,
    threads: usize,
    /// What this run measured: `journal`, `journal+snapshots`,
    /// `recover-replay` (journal only) or `recover-snapshot`.
    mode: String,
    events: usize,
    sync_every: u64,
    secs: f64,
    /// Events applied (or replayed) per second — the field the per-core
    /// gate normalises.
    offers_per_sec: f64,
}

#[derive(Serialize)]
struct SequentialRun {
    offers: usize,
    secs: f64,
    offers_per_sec: f64,
}

#[derive(Serialize)]
struct JournalBenchReport {
    schema: &'static str,
    workload: String,
    measures: usize,
    host_cpus: usize,
    /// Journaling-off replays (plain in-memory `LiveBook`).
    sequential: Vec<SequentialRun>,
    /// Journaling-on replays and recovery timings.
    engine: Vec<Run>,
    /// Journaling-off / journaling-on replay throughput at the largest
    /// size — durability's write-amplification factor.
    speedup_8_threads_largest: f64,
}

/// Scratch dir for journal/snapshot files, removed on drop.
struct ScratchDir(PathBuf);

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn durable_config(journal: &Path, snapshot_every: Option<u64>) -> ServeConfig {
    let mut durability = DurabilityConfig::new(journal);
    durability.snapshot_every = snapshot_every;
    durability.sync_every = SYNC_EVERY;
    ServeConfig {
        durability: Some(durability),
        ..ServeConfig::default()
    }
}

/// Replays `events` through a fresh `DurableBook` on a truncated journal.
fn durable_replay(config: &ServeConfig, events: &[Event]) -> DurableBook {
    let journal = &config.durability.as_ref().expect("durable config").journal;
    let _ = std::fs::remove_file(journal);
    let _ = std::fs::remove_file(config.durability.as_ref().unwrap().snapshot_path());
    let (mut book, _) =
        DurableBook::open(config.clone(), 1, Engine::sequential()).expect("fresh journal opens");
    for event in events {
        book.apply(event.clone()).expect("valid stream");
    }
    book
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path = String::from("BENCH_journal.json");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match iter.next() {
                Some(path) if !path.starts_with("--") => out_path = path.clone(),
                _ => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "error: unknown argument {other}\nusage: bench_journal [--quick] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let sizes: &[usize] = if quick { &[10_000] } else { &[10_000, 100_000] };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "bench_journal: event_stream(seed {SEED}, churn {CHURN}) through DurableBook \
         (sync_every {SYNC_EVERY}) · sizes {sizes:?} · {host_cpus} host cpu(s)"
    );

    let scratch = ScratchDir(
        std::env::temp_dir().join(format!("flexoffers_bench_journal_{}", std::process::id())),
    );
    std::fs::create_dir_all(&scratch.0).expect("create scratch dir");
    let journal_path = scratch.0.join("events.journal");

    let mut sequential = Vec::new();
    let mut engine_runs = Vec::new();
    let mut headline = 1.0f64;
    for &size in sizes {
        let households = city_households_for(size);
        let events: Vec<Event> = event_stream(SEED, households, CHURN)
            .map(Event::from)
            .collect();

        // Journaling off: the in-memory baseline the durable runs compare
        // against.
        let plain_config = ServeConfig::default();
        let off_secs = time_best(|| {
            let mut book =
                LiveBook::new(plain_config.clone(), 1, Engine::sequential()).expect("one shard");
            for event in &events {
                book.apply(event.clone()).expect("valid stream");
            }
            std::hint::black_box(&book);
        });
        let off_rate = events.len() as f64 / off_secs;
        println!(
            "  journaling off           {size:>7} offers  {off_secs:>9.4}s \
             ({off_rate:>9.0} events/s)"
        );
        sequential.push(SequentialRun {
            offers: size,
            secs: off_secs,
            offers_per_sec: off_rate,
        });

        // Journaling on, with and without periodic snapshots.
        let mut on_rate_plain = off_rate;
        for (mode, snapshot_every) in [
            ("journal", None),
            ("journal+snapshots", Some((events.len() as u64 / 8).max(1))),
        ] {
            let config = durable_config(&journal_path, snapshot_every);
            let secs = time_best(|| {
                std::hint::black_box(durable_replay(&config, &events));
            });
            let rate = events.len() as f64 / secs;
            if mode == "journal" {
                on_rate_plain = rate;
            }
            println!(
                "  {mode:<24} {size:>7} offers  {secs:>9.4}s ({rate:>9.0} events/s, \
                 {:.2}x off)",
                off_rate / rate
            );
            engine_runs.push(Run {
                offers: size,
                threads: 1,
                mode: mode.to_owned(),
                events: events.len(),
                sync_every: SYNC_EVERY,
                secs,
                offers_per_sec: rate,
            });
        }
        if size == *sizes.last().expect("non-empty") {
            headline = off_rate / on_rate_plain;
        }

        // Recovery: journal-only full replay, then snapshot + empty
        // suffix. One journaled run (synced, snapshotted at the end)
        // feeds both.
        let config = durable_config(&journal_path, None);
        let mut book = durable_replay(&config, &events);
        book.finish().expect("final sync + snapshot");
        drop(book);
        let snapshot_path = config.durability.as_ref().unwrap().snapshot_path();
        let snapshot_bytes = std::fs::metadata(&snapshot_path).map_or(0, |m| m.len());

        let with_snapshot_secs = time_best(|| {
            let (book, report) =
                recover(&config, 1, Engine::sequential()).expect("recovery succeeds");
            assert_eq!(report.replayed, 0, "shutdown snapshot satisfies recovery");
            std::hint::black_box(&book);
        });
        std::fs::remove_file(&snapshot_path).expect("drop snapshot for replay-only recovery");
        let replay_secs = time_best(|| {
            let (book, report) =
                recover(&config, 1, Engine::sequential()).expect("recovery succeeds");
            assert!(report.snapshot_seq.is_none(), "journal-only recovery");
            std::hint::black_box(&book);
        });
        for (mode, secs) in [
            ("recover-replay", replay_secs),
            ("recover-snapshot", with_snapshot_secs),
        ] {
            let rate = events.len() as f64 / secs;
            println!("  {mode:<24} {size:>7} offers  {secs:>9.4}s ({rate:>9.0} events/s)");
            engine_runs.push(Run {
                offers: size,
                threads: 1,
                mode: mode.to_owned(),
                events: events.len(),
                sync_every: SYNC_EVERY,
                secs,
                offers_per_sec: rate,
            });
        }
        println!(
            "  snapshot size            {size:>7} offers  {:>9.1} KiB",
            snapshot_bytes as f64 / 1024.0
        );
    }

    let report = JournalBenchReport {
        schema: "flexoffers-engine-bench/1",
        workload: format!(
            "workloads::event_stream(seed {SEED}, churn {CHURN}) through DurableBook \
             (sync_every {SYNC_EVERY}; offers_per_sec = events/s; sequential = journaling-off \
             LiveBook replay; engine modes: journal, journal+snapshots, recover-replay \
             [journal-only recovery], recover-snapshot [shutdown snapshot + empty suffix]; \
             speedup = journaling-off / journaling-on replay throughput at the largest size)"
        ),
        measures: all_measures().len(),
        host_cpus,
        sequential,
        engine: engine_runs,
        speedup_8_threads_largest: headline,
    };
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&report).expect("report serializes") + "\n",
    )
    .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
