//! Persists the sharded-book throughput baseline: `BENCH_sharded.json`.
//!
//! Sweeps [`Engine::measure_book_all`] over hash-partitioned city books at
//! 10k/100k offers, shards × threads ∈ {1, 4, 8}², with the flat
//! single-thread engine pass as the `sequential` reference. The emitted
//! JSON uses the `flexoffers-engine-bench/1` schema, so the existing
//! `bench_check` regression gate consumes it unchanged (each engine run
//! carries an extra `shards` field the gate ignores); CI regenerates a
//! `--quick` candidate and compares per-core throughput against this
//! committed baseline.
//!
//! ```text
//! cargo run --release -p flexoffers_bench --bin bench_sharded            # full sweep
//! cargo run --release -p flexoffers_bench --bin bench_sharded -- --quick # 10k only (CI)
//! cargo run ... -- --out path/to.json                                    # custom output
//! ```
//!
//! Books are built by streaming `city_stream` straight into the shard
//! buffers — the construction path `flexctl measure --portfolio --city`
//! uses — so the recorded hot path is exactly the served one.

use flexoffers_bench::timing::time_best;
use flexoffers_engine::{Budget, Engine, ShardedBook};
use flexoffers_measures::all_measures;
use flexoffers_workloads::{city_households_for, city_stream};
use serde::Serialize;

const SEED: u64 = 7;
const SHARDS: [usize; 3] = [1, 4, 8];
const THREADS: [usize; 3] = [1, 4, 8];

#[derive(Serialize)]
struct Run {
    offers: usize,
    threads: usize,
    shards: usize,
    secs: f64,
    offers_per_sec: f64,
}

#[derive(Serialize)]
struct SequentialRun {
    offers: usize,
    secs: f64,
    offers_per_sec: f64,
}

#[derive(Serialize)]
struct ShardedBenchReport {
    schema: &'static str,
    workload: String,
    measures: usize,
    host_cpus: usize,
    /// Flat single-thread engine passes — the reference the sharded
    /// speedup is quoted against.
    sequential: Vec<SequentialRun>,
    engine: Vec<Run>,
    /// 8 shards × 8 threads over the largest size, vs the flat reference.
    speedup_8_threads_largest: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path = String::from("BENCH_sharded.json");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match iter.next() {
                Some(path) if !path.starts_with("--") => out_path = path.clone(),
                _ => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "error: unknown argument {other}\nusage: bench_sharded [--quick] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let sizes: &[usize] = if quick { &[10_000] } else { &[10_000, 100_000] };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "bench_sharded: city(seed {SEED}) streamed into hash shards · sizes {sizes:?} · \
         {} measures · {host_cpus} host cpu(s)",
        all_measures().len()
    );

    let mut sequential = Vec::new();
    let mut engine_runs = Vec::new();
    for &size in sizes {
        let households = city_households_for(size);

        // Flat single-thread reference over the identical offer prefix.
        let flat: Vec<_> = city_stream(SEED, households).take(size).collect();
        let engine = Engine::sequential();
        let secs = time_best(|| {
            std::hint::black_box(engine.measure_portfolio_all(std::hint::black_box(&flat)));
        });
        println!(
            "  flat  1 thread           {size:>7} offers  {secs:>9.4}s  {:>10.0} offers/s",
            size as f64 / secs
        );
        sequential.push(SequentialRun {
            offers: size,
            secs,
            offers_per_sec: size as f64 / secs,
        });
        drop(flat);

        for &shards in &SHARDS {
            let book =
                ShardedBook::collect_hashed(city_stream(SEED, households).take(size), shards)
                    .expect("non-zero shard count");
            for &threads in &THREADS {
                let engine = Engine::new(Budget::with_threads(threads).expect("non-zero"));
                let secs = time_best(|| {
                    std::hint::black_box(engine.measure_book_all(std::hint::black_box(&book)));
                });
                println!(
                    "  {shards} shard(s) × {threads} thread(s)  {size:>7} offers  \
                     {secs:>9.4}s  {:>10.0} offers/s",
                    size as f64 / secs
                );
                engine_runs.push(Run {
                    offers: size,
                    threads,
                    shards,
                    secs,
                    offers_per_sec: size as f64 / secs,
                });
            }
        }
    }

    let largest = *sizes.last().expect("at least one size");
    let baseline = sequential.last().expect("ran at least one size").secs;
    let eight = engine_runs
        .iter()
        .filter(|r| r.offers == largest && r.threads == 8 && r.shards == 8)
        .map(|r| r.secs)
        .next()
        .expect("8x8 run present");
    let speedup = baseline / eight;
    println!(
        "speedup at {largest} offers, 8 shards × 8 threads vs flat single thread: \
         {speedup:.2}x (host offered {host_cpus} cpu(s))"
    );

    let report = ShardedBenchReport {
        schema: "flexoffers-engine-bench/1",
        workload: format!(
            "workloads::city_stream(seed {SEED}) hash-partitioned per size (sharded measure)"
        ),
        measures: all_measures().len(),
        host_cpus,
        sequential,
        engine: engine_runs,
        speedup_8_threads_largest: speedup,
    };
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&report).expect("report serializes") + "\n",
    )
    .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
