//! Persists the engine throughput baseline: `BENCH_engine.json`.
//!
//! Sweeps a seeded `city` portfolio at 1k/10k/100k offers, measuring all
//! eight measures through [`Engine::measure_portfolio_all`] at 1/4/8
//! worker threads, plus the naive sequential per-offer `of_set` loop as
//! the baseline the speedup is quoted against. The emitted JSON is the
//! seed point of the bench trajectory — future PRs regenerate it and
//! compare.
//!
//! ```text
//! cargo run --release -p flexoffers_bench --bin bench_report            # full sweep
//! cargo run --release -p flexoffers_bench --bin bench_report -- --quick # 1k only (CI smoke)
//! cargo run ... -- --out path/to.json                                   # custom output
//! ```
//!
//! Throughput is wall-clock and host-dependent; `host_cpus` records how
//! much parallelism the machine actually offered (on a single-core host
//! the threaded runs cannot beat the baseline by more than the
//! shared-preparation win).

use flexoffers_bench::timing::time_best;
use flexoffers_engine::{Budget, Engine};
use flexoffers_measures::all_measures;
use flexoffers_model::FlexOffer;
use flexoffers_workloads::{city, city_households_for};
use serde::Serialize;

const SEED: u64 = 7;
const THREADS: [usize; 3] = [1, 4, 8];

#[derive(Serialize)]
struct Run {
    offers: usize,
    threads: usize,
    secs: f64,
    offers_per_sec: f64,
}

#[derive(Serialize)]
struct SequentialRun {
    offers: usize,
    secs: f64,
    offers_per_sec: f64,
}

/// The genuinely parallel data point: the largest size at the biggest
/// swept thread count the host can actually run in parallel, quoted
/// against the same size at 1 thread. Only emitted when `host_cpus > 1`
/// — on a single-core runner every threaded run is time-sliced and the
/// ratio would measure scheduler overhead, not scaling.
#[derive(Serialize)]
struct MultiCoreRun {
    offers: usize,
    threads: usize,
    secs: f64,
    offers_per_sec: f64,
    speedup_vs_1_thread: f64,
}

#[derive(Serialize)]
struct BenchReport {
    schema: &'static str,
    workload: String,
    measures: usize,
    host_cpus: usize,
    sequential: Vec<SequentialRun>,
    engine: Vec<Run>,
    /// Engine at 8 threads over the largest size, vs the sequential loop.
    speedup_8_threads_largest: f64,
    /// Present only when recorded on a multi-core host; see README
    /// "Refreshing baselines on multi-core hardware". Dropped from the
    /// JSON (not serialized as null) by `write_report`.
    multi_core: Option<MultiCoreRun>,
}

/// Serializes `report`, omitting a `None` multi-core section entirely so
/// single-core baselines carry no `"multi_core": null` noise (the
/// vendored serde derive has no `skip_serializing_if`).
fn write_report(out_path: &str, report: &BenchReport) {
    let mut value = report.to_value();
    if let serde::Value::Object(fields) = &mut value {
        fields.retain(|(k, v)| !(k == "multi_core" && matches!(v, serde::Value::Null)));
    }
    std::fs::write(
        out_path,
        serde_json::to_string_pretty(&value).expect("report serializes") + "\n",
    )
    .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
}

/// Builds the multi-core section from the swept engine runs, or `None`
/// on a single-core host (or when the sweep lacks the needed runs).
fn multi_core_section(
    engine_runs: &[Run],
    largest: usize,
    host_cpus: usize,
) -> Option<MultiCoreRun> {
    if host_cpus <= 1 {
        return None;
    }
    let single = engine_runs
        .iter()
        .find(|r| r.offers == largest && r.threads == 1)?;
    let parallel = engine_runs
        .iter()
        .filter(|r| r.offers == largest && r.threads > 1 && r.threads <= host_cpus)
        .max_by_key(|r| r.threads)?;
    Some(MultiCoreRun {
        offers: parallel.offers,
        threads: parallel.threads,
        secs: parallel.secs,
        offers_per_sec: parallel.offers_per_sec,
        speedup_vs_1_thread: single.secs / parallel.secs,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path = String::from("BENCH_engine.json");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match iter.next() {
                Some(path) if !path.starts_with("--") => out_path = path.clone(),
                _ => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "error: unknown argument {other}\nusage: bench_report [--quick] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let out_path = out_path.as_str();
    let sizes: &[usize] = if quick {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };

    let largest = *sizes.last().expect("at least one size");
    let mut portfolio = city(SEED, city_households_for(largest));
    portfolio.truncate(largest);
    let offers: &[FlexOffer] = portfolio.as_slice();
    let measures = all_measures();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "bench_report: city(seed {SEED}) · {} offers · {} measures · {host_cpus} host cpu(s)",
        offers.len(),
        measures.len()
    );

    let mut sequential = Vec::new();
    let mut engine_runs = Vec::new();
    for &size in sizes {
        let slice = &offers[..size];

        let secs = time_best(|| {
            for m in &measures {
                let _ = std::hint::black_box(m.of_set(std::hint::black_box(slice)));
            }
        });
        println!(
            "  sequential of_set loop  {size:>7} offers  {secs:>9.4}s  {:>10.0} offers/s",
            size as f64 / secs
        );
        sequential.push(SequentialRun {
            offers: size,
            secs,
            offers_per_sec: size as f64 / secs,
        });

        for &threads in &THREADS {
            let engine = Engine::new(Budget::with_threads(threads).expect("non-zero"));
            let secs = time_best(|| {
                std::hint::black_box(engine.measure_portfolio_all(std::hint::black_box(slice)));
            });
            println!("  engine ({threads} thread{})    {size:>7} offers  {secs:>9.4}s  {:>10.0} offers/s", if threads == 1 { "" } else { "s" }, size as f64 / secs);
            engine_runs.push(Run {
                offers: size,
                threads,
                secs,
                offers_per_sec: size as f64 / secs,
            });
        }
    }

    let baseline = sequential.last().expect("ran at least one size").secs;
    let eight = engine_runs
        .iter()
        .filter(|r| r.offers == largest && r.threads == 8)
        .map(|r| r.secs)
        .next()
        .expect("8-thread run present");
    let speedup = baseline / eight;
    println!(
        "speedup at {largest} offers, 8 threads vs sequential loop: {speedup:.2}x \
         (host offered {host_cpus} cpu(s))"
    );

    let multi_core = multi_core_section(&engine_runs, largest, host_cpus);
    match &multi_core {
        Some(mc) => println!(
            "multi-core: {} offers at {} threads: {:.2}x vs 1 thread",
            mc.offers, mc.threads, mc.speedup_vs_1_thread
        ),
        None => println!("multi-core section skipped (host offered {host_cpus} cpu(s))"),
    }

    let report = BenchReport {
        schema: "flexoffers-engine-bench/1",
        workload: format!("workloads::city(seed {SEED}), truncated per size"),
        measures: measures.len(),
        host_cpus,
        sequential,
        engine: engine_runs,
        speedup_8_threads_largest: speedup,
        multi_core,
    };
    write_report(out_path, &report);
    println!("wrote {out_path}");
}
