//! Paper-vs-computed reporting for the reproduction binaries.
//!
//! Every repro binary prints one [`Row`] per reproduced quantity and exits
//! non-zero if any row deviates from the paper *without* being a documented
//! erratum — the binaries double as regression checks.

/// Outcome of one reproduced quantity.
#[derive(Clone, Debug, PartialEq)]
pub enum Status {
    /// Computed value equals the paper's.
    Match,
    /// Computed value differs, and EXPERIMENTS.md documents why the paper's
    /// printed value is inconsistent with its own definitions.
    DocumentedErratum,
    /// Computed value differs unexpectedly — a reproduction failure.
    Mismatch,
}

/// One reproduced quantity.
#[derive(Clone, Debug)]
pub struct Row {
    /// Paper artefact, e.g. `"Example 3: product_flexibility(f)"`.
    pub label: String,
    /// The value the paper prints.
    pub paper: String,
    /// The value this implementation computes.
    pub computed: String,
    /// Comparison outcome.
    pub status: Status,
    /// Optional note (erratum explanation, definition reference).
    pub note: String,
}

/// Collects rows and renders the final report.
#[derive(Debug, Default)]
pub struct Report {
    rows: Vec<Row>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an exact numeric reproduction.
    pub fn exact(&mut self, label: &str, paper: f64, computed: f64, note: &str) {
        let status = if (paper - computed).abs() < 1e-9 {
            Status::Match
        } else {
            Status::Mismatch
        };
        self.rows.push(Row {
            label: label.to_owned(),
            paper: trim_float(paper),
            computed: trim_float(computed),
            status,
            note: note.to_owned(),
        });
    }

    /// Records a quantity where the paper's printed value is a documented
    /// erratum; the reproduction must match `expected` (the value the
    /// paper's own definitions yield).
    pub fn erratum(&mut self, label: &str, paper: &str, expected: f64, computed: f64, note: &str) {
        let status = if (expected - computed).abs() < 1e-9 {
            Status::DocumentedErratum
        } else {
            Status::Mismatch
        };
        self.rows.push(Row {
            label: label.to_owned(),
            paper: paper.to_owned(),
            computed: trim_float(computed),
            status,
            note: note.to_owned(),
        });
    }

    /// The recorded rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of unexpected mismatches.
    pub fn mismatches(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.status == Status::Mismatch)
            .count()
    }

    /// Renders the report as an aligned table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<52} {:>12} {:>12}  {:<8} note\n",
            "quantity", "paper", "computed", "status"
        ));
        for row in &self.rows {
            let status = match row.status {
                Status::Match => "ok",
                Status::DocumentedErratum => "erratum",
                Status::Mismatch => "MISMATCH",
            };
            out.push_str(&format!(
                "{:<52} {:>12} {:>12}  {:<8} {}\n",
                row.label, row.paper, row.computed, status, row.note
            ));
        }
        let errata = self
            .rows
            .iter()
            .filter(|r| r.status == Status::DocumentedErratum)
            .count();
        out.push_str(&format!(
            "\n{} quantities reproduced, {} documented errata, {} mismatches\n",
            self.rows.len(),
            errata,
            self.mismatches()
        ));
        out
    }
}

fn trim_float(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 && v.abs() < 1e15 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_and_mismatch() {
        let mut r = Report::new();
        r.exact("a", 5.0, 5.0, "");
        r.exact("b", 5.0, 6.0, "");
        assert_eq!(r.rows()[0].status, Status::Match);
        assert_eq!(r.rows()[1].status, Status::Mismatch);
        assert_eq!(r.mismatches(), 1);
        assert!(r.render().contains("MISMATCH"));
    }

    #[test]
    fn erratum_counts_separately() {
        let mut r = Report::new();
        r.erratum("c", "<5, 10>", 12.0, 12.0, "Example 4 inconsistency");
        assert_eq!(r.mismatches(), 0);
        assert!(r.render().contains("erratum"));
        assert!(r.render().contains("1 documented errata"));
    }

    #[test]
    fn float_trimming() {
        assert_eq!(trim_float(4.0), "4");
        assert_eq!(trim_float(16.0 / 6.0), "2.667");
    }
}
