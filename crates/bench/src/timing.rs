//! Wall-clock timing policy shared by the baseline-writing bench binaries
//! (`bench_report`, `bench_scenarios`), so the two committed baselines
//! stay comparable: changing the policy here changes both.

use std::time::Instant;

/// Times `f`, re-running it until at least 0.2 s have elapsed (max 5
/// passes) and returning the fastest single pass — enough repetition to
/// de-noise small workloads without making large sweeps crawl.
pub fn time_best(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    let mut spent = 0.0;
    for _ in 0..5 {
        let start = Instant::now();
        f();
        let secs = start.elapsed().as_secs_f64();
        best = best.min(secs);
        spent += secs;
        if spent >= 0.2 {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_a_positive_duration_and_runs_at_least_once() {
        let mut runs = 0;
        let secs = time_best(|| runs += 1);
        assert!(secs >= 0.0 && secs.is_finite());
        assert!((1..=5).contains(&runs));
    }
}
