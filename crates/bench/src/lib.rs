//! Shared fixtures and reporting helpers for the benchmark suite and the
//! paper-reproduction binaries.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fixtures;
pub mod regression;
pub mod report;
pub mod timing;
