//! Bench-regression comparison: is a freshly measured engine baseline
//! still in the same league as the committed one?
//!
//! CI regenerates `BENCH_engine_ci.json` on whatever runner it lands on
//! and compares it against the committed `BENCH_engine.json` via the
//! `bench_check` binary. Absolute throughput is meaningless across hosts,
//! so both sides are normalised to *per-core* throughput — each engine
//! run's offers/sec divided by the parallelism it could actually use
//! (`min(threads, host_cpus)`) — and the gate only fails when the
//! candidate's best per-core figure drops below a generous fraction of
//! the baseline's (default 0.5×). That tolerates runner noise and CPU
//! generation gaps while still catching a hot path that got an order of
//! magnitude slower.

use std::fmt;

use serde::Deserialize;

/// The schema tag `bench_report` stamps into its JSON.
pub const ENGINE_BENCH_SCHEMA: &str = "flexoffers-engine-bench/1";

/// The default failure threshold: candidate per-core throughput below
/// half the baseline fails the gate.
pub const DEFAULT_MIN_RATIO: f64 = 0.5;

/// One sequential `of_set` loop timing (mirror of `bench_report`'s JSON).
#[derive(Clone, Debug, Deserialize)]
pub struct SequentialRun {
    /// Portfolio size.
    pub offers: usize,
    /// Wall-clock seconds of the fastest pass.
    pub secs: f64,
    /// Throughput.
    pub offers_per_sec: f64,
}

/// One engine timing (mirror of `bench_report`'s JSON).
#[derive(Clone, Debug, Deserialize)]
pub struct EngineRun {
    /// Portfolio size.
    pub offers: usize,
    /// Worker threads the run used.
    pub threads: usize,
    /// Wall-clock seconds of the fastest pass.
    pub secs: f64,
    /// Throughput.
    pub offers_per_sec: f64,
}

/// The genuinely parallel data point a report recorded on a multi-core
/// host (mirror of `bench_report`'s optional `multi_core` section).
#[derive(Clone, Debug, Deserialize)]
pub struct MultiCoreRun {
    /// Portfolio size.
    pub offers: usize,
    /// Worker threads the run used (capped at the host's cpus).
    pub threads: usize,
    /// Wall-clock seconds of the fastest pass.
    pub secs: f64,
    /// Throughput.
    pub offers_per_sec: f64,
    /// Same size at 1 thread divided by this run.
    pub speedup_vs_1_thread: f64,
}

/// Typed mirror of a `BENCH_engine.json` report.
#[derive(Clone, Debug)]
pub struct EngineBenchReport {
    /// Schema tag; must equal [`ENGINE_BENCH_SCHEMA`].
    pub schema: String,
    /// Workload description.
    pub workload: String,
    /// Number of measures evaluated per offer.
    pub measures: usize,
    /// CPUs the host offered when the report was recorded.
    pub host_cpus: usize,
    /// Sequential baseline timings.
    pub sequential: Vec<SequentialRun>,
    /// Engine timings.
    pub engine: Vec<EngineRun>,
    /// Recorded speedup headline.
    pub speedup_8_threads_largest: f64,
    /// Multi-core scaling section; absent in reports recorded on
    /// single-core hosts (and in reports predating the section).
    pub multi_core: Option<MultiCoreRun>,
}

// Hand-written rather than derived: the vendored serde derive has no
// `#[serde(default)]`, and `multi_core` must tolerate being absent (or
// null) so reports from single-core hosts and pre-section baselines keep
// parsing.
impl serde::Deserialize for EngineBenchReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let field = |name: &str| {
            v.get(name).ok_or_else(|| {
                serde::DeError::custom(format!("missing field `{name}` in EngineBenchReport"))
            })
        };
        Ok(Self {
            schema: Deserialize::from_value(field("schema")?)?,
            workload: Deserialize::from_value(field("workload")?)?,
            measures: Deserialize::from_value(field("measures")?)?,
            host_cpus: Deserialize::from_value(field("host_cpus")?)?,
            sequential: Deserialize::from_value(field("sequential")?)?,
            engine: Deserialize::from_value(field("engine")?)?,
            speedup_8_threads_largest: Deserialize::from_value(field(
                "speedup_8_threads_largest",
            )?)?,
            multi_core: match v.get("multi_core") {
                Some(section) => Deserialize::from_value(section)?,
                None => None,
            },
        })
    }
}

impl EngineBenchReport {
    /// The report's best per-core engine throughput: each run's
    /// offers/sec divided by the parallelism it could actually use,
    /// maximised over runs. `None` when the report has no engine runs.
    pub fn per_core_peak(&self) -> Option<f64> {
        self.engine
            .iter()
            .map(|r| r.offers_per_sec / r.threads.min(self.host_cpus).max(1) as f64)
            .fold(None, |best: Option<f64>, v| {
                Some(best.map_or(v, |b| b.max(v)))
            })
    }
}

/// Why a comparison could not be carried out (distinct from a failed
/// gate, which is a [`RegressionVerdict`] with `passed() == false`).
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum RegressionError {
    /// A report carried an unexpected schema tag.
    SchemaMismatch {
        /// Which side was malformed (`"baseline"` / `"candidate"`).
        side: &'static str,
        /// The tag found.
        found: String,
    },
    /// A report contained no engine runs to normalise.
    NoEngineRuns {
        /// Which side was empty.
        side: &'static str,
    },
}

impl fmt::Display for RegressionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegressionError::SchemaMismatch { side, found } => write!(
                f,
                "{side} report has schema {found:?}, expected {ENGINE_BENCH_SCHEMA:?}"
            ),
            RegressionError::NoEngineRuns { side } => {
                write!(f, "{side} report has no engine runs")
            }
        }
    }
}

impl std::error::Error for RegressionError {}

/// The outcome of comparing a candidate bench report against a baseline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RegressionVerdict {
    /// Baseline per-core throughput (offers/sec/core).
    pub baseline_per_core: f64,
    /// Candidate per-core throughput (offers/sec/core).
    pub candidate_per_core: f64,
    /// Candidate multi-core speedup over baseline multi-core speedup;
    /// `None` unless *both* reports carry a `multi_core` section (a
    /// single-core runner comparing against a multi-core baseline, or
    /// vice versa, cannot be judged on scaling).
    pub multi_core_ratio: Option<f64>,
    /// The failure threshold the gate was run with.
    pub min_ratio: f64,
}

impl RegressionVerdict {
    /// Candidate over baseline.
    pub fn ratio(&self) -> f64 {
        if self.baseline_per_core == 0.0 {
            // A zero baseline cannot regress; treat as trivially passing.
            f64::INFINITY
        } else {
            self.candidate_per_core / self.baseline_per_core
        }
    }

    /// `true` when the candidate clears the threshold — per-core always,
    /// and multi-core scaling too when both sides recorded it.
    pub fn passed(&self) -> bool {
        self.ratio() >= self.min_ratio && self.multi_core_ratio.is_none_or(|r| r >= self.min_ratio)
    }

    /// Human-readable one-paragraph summary.
    pub fn render(&self) -> String {
        let multi_core = match self.multi_core_ratio {
            Some(r) => format!("; multi-core speedup ratio {r:.2}x"),
            None => String::new(),
        };
        format!(
            "per-core throughput: baseline {:.0} offers/s/core, candidate {:.0} offers/s/core \
             — ratio {:.2}x{multi_core} (gate: >= {:.2}x) => {}",
            self.baseline_per_core,
            self.candidate_per_core,
            self.ratio(),
            self.min_ratio,
            if self.passed() { "PASS" } else { "FAIL" }
        )
    }
}

/// Compares `candidate` against `baseline` at `min_ratio`.
pub fn check_regression(
    baseline: &EngineBenchReport,
    candidate: &EngineBenchReport,
    min_ratio: f64,
) -> Result<RegressionVerdict, RegressionError> {
    for (side, report) in [("baseline", baseline), ("candidate", candidate)] {
        if report.schema != ENGINE_BENCH_SCHEMA {
            return Err(RegressionError::SchemaMismatch {
                side,
                found: report.schema.clone(),
            });
        }
    }
    let baseline_per_core = baseline
        .per_core_peak()
        .ok_or(RegressionError::NoEngineRuns { side: "baseline" })?;
    let candidate_per_core = candidate
        .per_core_peak()
        .ok_or(RegressionError::NoEngineRuns { side: "candidate" })?;
    let multi_core_ratio = match (&baseline.multi_core, &candidate.multi_core) {
        (Some(b), Some(c)) if b.speedup_vs_1_thread > 0.0 => {
            Some(c.speedup_vs_1_thread / b.speedup_vs_1_thread)
        }
        _ => None,
    };
    Ok(RegressionVerdict {
        baseline_per_core,
        candidate_per_core,
        multi_core_ratio,
        min_ratio,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(host_cpus: usize, runs: &[(usize, f64)]) -> EngineBenchReport {
        EngineBenchReport {
            schema: ENGINE_BENCH_SCHEMA.to_owned(),
            workload: "test".to_owned(),
            measures: 8,
            host_cpus,
            sequential: vec![],
            engine: runs
                .iter()
                .map(|&(threads, offers_per_sec)| EngineRun {
                    offers: 1000,
                    threads,
                    secs: 1000.0 / offers_per_sec,
                    offers_per_sec,
                })
                .collect(),
            speedup_8_threads_largest: 1.0,
            multi_core: None,
        }
    }

    fn with_multi_core(mut r: EngineBenchReport, speedup: f64) -> EngineBenchReport {
        r.multi_core = Some(MultiCoreRun {
            offers: 1000,
            threads: 4,
            secs: 0.25,
            offers_per_sec: 4000.0,
            speedup_vs_1_thread: speedup,
        });
        r
    }

    #[test]
    fn per_core_normalises_by_usable_parallelism() {
        // 8 threads on a 4-cpu host only count as 4-way parallelism.
        let r = report(4, &[(1, 100.0), (8, 400.0)]);
        assert_eq!(r.per_core_peak(), Some(100.0));
        // On a 1-cpu host every run is per-core as measured.
        let single = report(1, &[(8, 250.0)]);
        assert_eq!(single.per_core_peak(), Some(250.0));
    }

    #[test]
    fn equal_reports_pass_and_big_drops_fail() {
        let baseline = report(4, &[(4, 400.0)]);
        let same = check_regression(&baseline, &baseline.clone(), 0.5).unwrap();
        assert!(same.passed());
        assert!((same.ratio() - 1.0).abs() < 1e-12);

        let slow = report(4, &[(4, 100.0)]);
        let verdict = check_regression(&baseline, &slow, 0.5).unwrap();
        assert!(!verdict.passed(), "{}", verdict.render());
        assert!(verdict.render().contains("FAIL"));
    }

    #[test]
    fn cross_host_comparison_uses_per_core_figures() {
        // Baseline on 1 cpu, candidate on 8: raw throughput differs 6x but
        // per-core the candidate is fine.
        let baseline = report(1, &[(1, 1000.0)]);
        let candidate = report(8, &[(8, 6000.0)]);
        let verdict = check_regression(&baseline, &candidate, 0.5).unwrap();
        assert!((verdict.candidate_per_core - 750.0).abs() < 1e-9);
        assert!(verdict.passed());
    }

    #[test]
    fn schema_and_empty_reports_are_rejected() {
        let good = report(1, &[(1, 100.0)]);
        let mut bad_schema = good.clone();
        bad_schema.schema = "something-else/9".to_owned();
        assert!(matches!(
            check_regression(&good, &bad_schema, 0.5),
            Err(RegressionError::SchemaMismatch {
                side: "candidate",
                ..
            })
        ));
        let empty = report(1, &[]);
        let err = check_regression(&empty, &good, 0.5).unwrap_err();
        assert!(err.to_string().contains("no engine runs"));
    }

    #[test]
    fn multi_core_gate_only_engages_when_both_sides_recorded_it() {
        let flat = report(4, &[(4, 400.0)]);
        let scaled = with_multi_core(report(4, &[(4, 400.0)]), 3.6);

        // One-sided sections never produce a ratio: cross-host runs where
        // only the baseline (or only the candidate) is multi-core still
        // gate on per-core throughput alone.
        for (b, c) in [(&flat, &scaled), (&scaled, &flat), (&flat, &flat)] {
            let verdict = check_regression(b, c, 0.5).unwrap();
            assert_eq!(verdict.multi_core_ratio, None);
            assert!(verdict.passed());
            assert!(!verdict.render().contains("multi-core"));
        }

        // Both sides recorded: scaling holds → pass, with the ratio shown.
        let still_scaled = with_multi_core(report(4, &[(4, 400.0)]), 3.4);
        let verdict = check_regression(&scaled, &still_scaled, 0.5).unwrap();
        assert!(verdict.multi_core_ratio.is_some());
        assert!(verdict.passed());
        assert!(verdict.render().contains("multi-core speedup ratio"));

        // Scaling collapsed (3.6x -> 1.1x) while per-core throughput held:
        // the gate fails on the multi-core leg alone.
        let collapsed = with_multi_core(report(4, &[(4, 400.0)]), 1.1);
        let verdict = check_regression(&scaled, &collapsed, 0.5).unwrap();
        assert!((verdict.ratio() - 1.0).abs() < 1e-12);
        assert!(!verdict.passed(), "{}", verdict.render());
    }

    #[test]
    fn multi_core_section_parses_from_json() {
        let text = r#"{
            "schema": "flexoffers-engine-bench/1",
            "workload": "test",
            "measures": 8,
            "host_cpus": 8,
            "sequential": [],
            "engine": [{"offers": 1000, "threads": 4, "secs": 0.5, "offers_per_sec": 2000.0}],
            "speedup_8_threads_largest": 1.0,
            "multi_core": {
                "offers": 1000, "threads": 4, "secs": 0.25,
                "offers_per_sec": 4000.0, "speedup_vs_1_thread": 3.7
            }
        }"#;
        let parsed: EngineBenchReport = serde_json::from_str(text).expect("parses");
        let mc = parsed.multi_core.expect("section present");
        assert_eq!(mc.threads, 4);
        assert!((mc.speedup_vs_1_thread - 3.7).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_cannot_fail_the_gate() {
        let zero = report(1, &[(1, 0.0)]);
        let candidate = report(1, &[(1, 1.0)]);
        let verdict = check_regression(&zero, &candidate, 0.5).unwrap();
        assert!(verdict.passed());
    }

    #[test]
    fn committed_baseline_parses_and_checks_against_itself() {
        // The committed BENCH_engine.json must stay parseable by this
        // mirror, or the CI gate goes dark.
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_engine.json"
        ))
        .expect("committed baseline exists");
        let baseline: EngineBenchReport = serde_json::from_str(&text).expect("baseline parses");
        let verdict = check_regression(&baseline, &baseline, DEFAULT_MIN_RATIO).unwrap();
        assert!(verdict.passed());
    }

    #[test]
    fn committed_serving_baseline_feeds_the_same_gate() {
        // BENCH_serving.json reuses the engine-bench schema (runs carry
        // extra shards/churn/events/update_query_secs fields this mirror
        // ignores; offers_per_sec records events applied per second), so
        // the one bench_check binary gates the serving baseline too.
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_serving.json"
        ))
        .expect("committed serving baseline exists");
        let baseline: EngineBenchReport = serde_json::from_str(&text).expect("baseline parses");
        assert_eq!(baseline.schema, ENGINE_BENCH_SCHEMA);
        assert!(!baseline.engine.is_empty());
        assert!(!baseline.sequential.is_empty());
        let verdict = check_regression(&baseline, &baseline, DEFAULT_MIN_RATIO).unwrap();
        assert!(verdict.passed());
    }

    #[test]
    fn committed_columnar_baseline_feeds_the_same_gate() {
        // BENCH_columnar.json reuses the engine-bench schema (`sequential`
        // records the scalar kernel at 1 thread, `engine` the columnar
        // kernel per thread count, plus a columnar_speedup_1_thread_largest
        // headline this mirror ignores), so the one bench_check binary
        // gates the columnar baseline too.
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_columnar.json"
        ))
        .expect("committed columnar baseline exists");
        let baseline: EngineBenchReport = serde_json::from_str(&text).expect("baseline parses");
        assert_eq!(baseline.schema, ENGINE_BENCH_SCHEMA);
        assert!(!baseline.engine.is_empty());
        assert!(!baseline.sequential.is_empty());
        let verdict = check_regression(&baseline, &baseline, DEFAULT_MIN_RATIO).unwrap();
        assert!(verdict.passed());
    }

    #[test]
    fn committed_journal_baseline_feeds_the_same_gate() {
        // BENCH_journal.json reuses the engine-bench schema (`sequential`
        // records the journaling-off LiveBook replay, `engine` the
        // journaling-on and recovery modes with extra `mode`/`events`/
        // `sync_every` fields this mirror ignores; the headline is the
        // off/on throughput ratio), so the one bench_check binary gates
        // the durability baseline too.
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_journal.json"
        ))
        .expect("committed journal baseline exists");
        let baseline: EngineBenchReport = serde_json::from_str(&text).expect("baseline parses");
        assert_eq!(baseline.schema, ENGINE_BENCH_SCHEMA);
        assert!(!baseline.engine.is_empty());
        assert!(!baseline.sequential.is_empty());
        let verdict = check_regression(&baseline, &baseline, DEFAULT_MIN_RATIO).unwrap();
        assert!(verdict.passed());
    }

    #[test]
    fn committed_net_baseline_feeds_the_same_gate() {
        // BENCH_net.json reuses the engine-bench schema (`threads` records
        // the connection count; runs carry extra `conns`/`queries`/
        // `query_p*_ms` latency fields this mirror ignores; `sequential`
        // is the same events applied in process without the network), so
        // the one bench_check binary gates the network baseline too.
        let text =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json"))
                .expect("committed net baseline exists");
        let baseline: EngineBenchReport = serde_json::from_str(&text).expect("baseline parses");
        assert_eq!(baseline.schema, ENGINE_BENCH_SCHEMA);
        assert!(!baseline.engine.is_empty());
        assert!(!baseline.sequential.is_empty());
        assert!(
            baseline.engine.iter().any(|run| run.threads >= 4),
            "the committed net baseline must cover >= 4 concurrent connections"
        );
        let verdict = check_regression(&baseline, &baseline, DEFAULT_MIN_RATIO).unwrap();
        assert!(verdict.passed());
    }

    #[test]
    fn committed_cluster_baseline_feeds_the_same_gate_and_pins_delta_gather() {
        // BENCH_cluster.json reuses the engine-bench schema (`threads`
        // records the worker process count; runs carry extra
        // `workers`/`queries` fields this mirror ignores), so the one
        // bench_check binary gates the cluster baseline too. On top of
        // the gate, the `warm` section pins the delta-gather acceptance
        // headline: on a mostly-clean book (1 dirty shard of 4 workers),
        // digest-gated gathers must answer at >= 10x the full-gather
        // oracle's throughput, with a hit rate that shows the digest gate
        // actually engaging.
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_cluster.json"
        ))
        .expect("committed cluster baseline exists");
        let baseline: EngineBenchReport = serde_json::from_str(&text).expect("baseline parses");
        assert_eq!(baseline.schema, ENGINE_BENCH_SCHEMA);
        assert!(!baseline.engine.is_empty());
        assert!(!baseline.sequential.is_empty());
        let verdict = check_regression(&baseline, &baseline, DEFAULT_MIN_RATIO).unwrap();
        assert!(verdict.passed());

        let raw: serde::Value = serde_json::from_str(&text).expect("baseline is JSON");
        let warm = raw
            .get("warm")
            .expect("baseline records the warm-query sweep");
        let number = |name: &str| {
            warm.get(name)
                .and_then(serde::Value::as_f64)
                .unwrap_or_else(|| panic!("warm section records `{name}`"))
        };
        assert!(
            number("speedup_vs_full_gather") >= 10.0,
            "warm delta-gather throughput must stay >= 10x the full-gather oracle, got {:.1}x",
            number("speedup_vs_full_gather")
        );
        assert!(
            number("gather_hit_rate") > 0.9,
            "a 1-dirty-of-4 warm sweep must confirm most shards by digest, got {:.3}",
            number("gather_hit_rate")
        );
        assert!(number("dirty_bytes") > 0.0, "dirty shards still ship bytes");
    }

    #[test]
    fn committed_sharded_baseline_feeds_the_same_gate() {
        // BENCH_sharded.json reuses the engine-bench schema (each run
        // carries an extra `shards` field this mirror ignores), so the one
        // bench_check binary gates both baselines. This pins that the
        // committed sharded report keeps parsing and self-checking.
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_sharded.json"
        ))
        .expect("committed sharded baseline exists");
        let baseline: EngineBenchReport = serde_json::from_str(&text).expect("baseline parses");
        assert_eq!(baseline.schema, ENGINE_BENCH_SCHEMA);
        assert!(!baseline.engine.is_empty());
        assert!(!baseline.sequential.is_empty());
        let verdict = check_regression(&baseline, &baseline, DEFAULT_MIN_RATIO).unwrap();
        assert!(verdict.passed());
    }
}
