//! The paper's flex-offers, exactly as printed, plus parameterised
//! flex-offers for scaling benchmarks.

use flexoffers_model::{Assignment, FlexOffer, Slice};

fn fo(tes: i64, tls: i64, slices: &[(i64, i64)]) -> FlexOffer {
    FlexOffer::new(
        tes,
        tls,
        slices
            .iter()
            .map(|&(a, b)| Slice::new(a, b).expect("fixture ranges are ordered"))
            .collect(),
    )
    .expect("fixtures are well-formed")
}

/// Figure 1's running flex-offer
/// `f = ([1,6], <[1,3],[2,4],[0,5],[0,3]>)`.
pub fn figure1() -> FlexOffer {
    fo(1, 6, &[(1, 3), (2, 4), (0, 5), (0, 3)])
}

/// Figure 1's example assignment `fa1 = <2,3,1,2>` at `t = 2`.
pub fn figure1_assignment() -> Assignment {
    Assignment::new(2, vec![2, 3, 1, 2])
}

/// Figure 2 / Example 5's `f1 = ([0,1], <[0,1]>)`.
pub fn f1() -> FlexOffer {
    fo(0, 1, &[(0, 1)])
}

/// Example 13's `f1' = ([0,10], <[0,1]>)`.
pub fn f1_prime() -> FlexOffer {
    fo(0, 10, &[(0, 1)])
}

/// Figure 3 / Example 6's `f2 = ([0,2], <[0,2]>)`.
pub fn f2() -> FlexOffer {
    fo(0, 2, &[(0, 2)])
}

/// Example 7's assignment `f3a = <2,1,3>` at `t = 1`.
pub fn f3_assignment() -> Assignment {
    Assignment::new(1, vec![2, 1, 3])
}

/// Figure 5 / Examples 8 & 10's `f4 = ([0,4], <[2,2]>)`.
pub fn f4() -> FlexOffer {
    fo(0, 4, &[(2, 2)])
}

/// Figure 6 / Examples 9 & 10's `f5 = ([0,4], <[1,1],[2,2]>)`.
pub fn f5() -> FlexOffer {
    fo(0, 4, &[(1, 1), (2, 2)])
}

/// Figure 7 / Examples 14 & 15's mixed
/// `f6 = ([0,2], <[-1,2],[-4,-1],[-3,1]>)` (the paper prints slice 2 as
/// `[-1,-4]`; `amin <= amax` requires `[-4,-1]`, consistent with
/// `cmin = -8`, `cmax = 2`).
pub fn f6() -> FlexOffer {
    fo(0, 2, &[(-1, 2), (-4, -1), (-3, 1)])
}

/// Example 11's `fx = ([2,8], <[5,5]>)` (zero energy flexibility).
pub fn example11_fx() -> FlexOffer {
    fo(2, 8, &[(5, 5)])
}

/// Examples 11–12's `fx = ([1,3], <[1,5]>)`.
pub fn small_fx() -> FlexOffer {
    fo(1, 3, &[(1, 5)])
}

/// Examples 11–12's `fy = ([1,3], <[101,105]>)`.
pub fn large_fy() -> FlexOffer {
    fo(1, 3, &[(101, 105)])
}

/// A parameterised consumption flex-offer for scaling benchmarks:
/// `slices` slices of range `[0, width]`, time flexibility `tf`.
pub fn scaling_flexoffer(slices: usize, width: i64, tf: i64) -> FlexOffer {
    FlexOffer::new(0, tf, vec![Slice::new(0, width).expect("ordered"); slices])
        .expect("scaling parameters are well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_match_paper_quantities() {
        assert_eq!(figure1().time_flexibility(), 5);
        assert_eq!(figure1().energy_flexibility(), 12);
        assert!(figure1().is_valid_assignment(&figure1_assignment()));
        assert_eq!(f2().unconstrained_assignment_count(), Some(9));
        assert_eq!(f6().unconstrained_assignment_count(), Some(240));
        assert_eq!(f6().total_min(), -8);
        assert_eq!(f6().total_max(), 2);
    }

    #[test]
    fn scaling_flexoffer_dimensions() {
        let f = scaling_flexoffer(16, 8, 4);
        assert_eq!(f.slice_count(), 16);
        assert_eq!(f.time_flexibility(), 4);
        assert_eq!(f.energy_flexibility(), 16 * 8);
    }
}
