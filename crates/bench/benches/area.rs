//! P2: union-area computation — sliding-window deque vs naive double loop
//! vs brute-force enumeration (the ablation DESIGN.md calls out).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use flexoffers_area::{union_area, union_area_brute, union_area_naive};
use flexoffers_bench::fixtures::{figure1, scaling_flexoffer};

fn bench_closed_forms(c: &mut Criterion) {
    let mut group = c.benchmark_group("union_area");
    for &(slices, tf) in &[(8usize, 8i64), (64, 64), (256, 512)] {
        let fo = scaling_flexoffer(slices, 8, tf);
        let id = format!("s{slices}_tf{tf}");
        group.bench_with_input(BenchmarkId::new("deque", &id), &fo, |b, fo| {
            b.iter(|| black_box(union_area(black_box(fo)).size()))
        });
        group.bench_with_input(BenchmarkId::new("naive", &id), &fo, |b, fo| {
            b.iter(|| black_box(union_area_naive(black_box(fo)).size()))
        });
    }
    group.finish();
}

fn bench_brute_force(c: &mut Criterion) {
    // Brute force only fits small spaces: Figure 1's flex-offer has a
    // 4-digit assignment count under its default totals.
    let mut group = c.benchmark_group("union_area_brute");
    let fo = figure1();
    group.bench_function("figure1", |b| {
        b.iter(|| black_box(union_area_brute(black_box(&fo), 1 << 20).expect("bounded")))
    });
    group.bench_function("figure1_closed_form", |b| {
        b.iter(|| black_box(union_area(black_box(&fo)).size()))
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_closed_forms, bench_brute_force
}
criterion_main!(benches);
