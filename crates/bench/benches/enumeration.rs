//! P3: assignment-space operations — enumeration, closed-form counting,
//! DP counting, and exact uniform sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

use flexoffers_bench::fixtures::scaling_flexoffer;
use flexoffers_model::FlexOffer;

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumeration");
    // Keep |L(f)| around a few thousand per case.
    for &(slices, width, tf) in &[(2usize, 7i64, 10i64), (4, 3, 10), (6, 2, 4)] {
        let fo = scaling_flexoffer(slices, width, tf);
        let count = fo.unconstrained_assignment_count().expect("small");
        group.bench_with_input(
            BenchmarkId::new("iterate_all", format!("s{slices}_w{width}_tf{tf}_n{count}")),
            &fo,
            |b, fo| b.iter(|| black_box(fo.assignments().count())),
        );
    }
    group.finish();
}

fn bench_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("counting");
    for &slices in &[8usize, 64, 256] {
        let fo = scaling_flexoffer(slices, 8, 16);
        let tight = FlexOffer::with_totals(
            0,
            16,
            fo.slices().to_vec(),
            fo.profile_max() / 3,
            fo.profile_max() / 2,
        )
        .expect("well-formed");
        group.bench_with_input(BenchmarkId::new("closed_form", slices), &fo, |b, fo| {
            b.iter(|| black_box(fo.unconstrained_assignment_count()))
        });
        group.bench_with_input(BenchmarkId::new("log2", slices), &fo, |b, fo| {
            b.iter(|| black_box(fo.log2_assignment_count()))
        });
        group.bench_with_input(
            BenchmarkId::new("dp_constrained", slices),
            &tight,
            |b, fo| b.iter(|| black_box(fo.constrained_assignment_count_f64())),
        );
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    for &slices in &[4usize, 16, 64] {
        let fo = FlexOffer::with_totals(
            0,
            16,
            scaling_flexoffer(slices, 8, 16).slices().to_vec(),
            slices as i64 * 2,
            slices as i64 * 6,
        )
        .expect("well-formed");
        group.bench_with_input(BenchmarkId::new("uniform_valid", slices), &fo, |b, fo| {
            let mut rng = StdRng::seed_from_u64(42);
            b.iter(|| black_box(fo.sample_assignment(&mut rng)))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_enumeration, bench_counting, bench_sampling
}
criterion_main!(benches);
