//! Engine throughput: all eight measures over a 1k-offer city portfolio,
//! at 1/4/8 worker threads, against the naive sequential `of_set` loop
//! (which re-prepares nothing and runs on one thread).
//!
//! `bench_report` is the heavyweight sibling that sweeps 1k/10k/100k and
//! persists `BENCH_engine.json`; this bench is the quick interactive view.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexoffers_engine::{Budget, Engine};
use flexoffers_measures::all_measures;
use flexoffers_workloads::{city, city_households_for};

fn engine_measure_portfolio(c: &mut Criterion) {
    const OFFERS: usize = 1_000;
    let mut portfolio = city(7, city_households_for(OFFERS));
    portfolio.truncate(OFFERS);
    let offers = portfolio.into_offers();

    let mut group = c.benchmark_group("engine_measure_1k");
    for threads in [1usize, 4, 8] {
        let engine = Engine::new(Budget::with_threads(threads).expect("non-zero"));
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &offers,
            |b, offers| {
                b.iter(|| engine.measure_portfolio_all(offers));
            },
        );
    }
    let measures = all_measures();
    group.bench_with_input("sequential_of_set", &offers, |b, offers| {
        b.iter(|| {
            measures
                .iter()
                .map(|m| m.of_set(offers))
                .filter(Result::is_ok)
                .count()
        });
    });
    group.finish();
}

fn engine_aggregate_portfolio(c: &mut Criterion) {
    const OFFERS: usize = 1_000;
    let mut portfolio = city(7, city_households_for(OFFERS));
    portfolio.truncate(OFFERS);
    let offers = portfolio.into_offers();
    let params = flexoffers_aggregation::GroupingParams::with_tolerances(2, 4);

    let mut group = c.benchmark_group("engine_aggregate_1k");
    for threads in [1usize, 8] {
        let engine = Engine::new(Budget::with_threads(threads).expect("non-zero"));
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &offers,
            |b, offers| {
                b.iter(|| engine.aggregate_portfolio(offers, &params));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    engine_measure_portfolio,
    engine_aggregate_portfolio
);
criterion_main!(benches);
