//! E1's machinery under the stopwatch: aggregation throughput across
//! district sizes, and the greedy-vs-flow disaggregation ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use flexoffers_aggregation::{aggregate, aggregate_portfolio, GroupingParams};
use flexoffers_model::{FlexOffer, Slice};
use flexoffers_workloads::district;

fn bench_aggregate_portfolio(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregate_portfolio");
    for &households in &[10usize, 50, 200] {
        let portfolio = district(42, households);
        let params = GroupingParams::with_tolerances(2, 2);
        group.bench_with_input(
            BenchmarkId::new("group_and_aggregate", portfolio.len()),
            &portfolio,
            |b, p| b.iter(|| black_box(aggregate_portfolio(p.as_slice(), &params).len())),
        );
    }
    group.finish();
}

/// A group whose members have binding total constraints, so greedy
/// disaggregation does real feasibility work.
fn constrained_group(n: usize) -> Vec<FlexOffer> {
    (0..n)
        .map(|i| {
            FlexOffer::with_totals(
                (i % 3) as i64,
                (i % 3) as i64 + 4,
                vec![Slice::new(0, 6).expect("ordered"); 4],
                8,
                16,
            )
            .expect("well-formed")
        })
        .collect()
}

fn bench_disaggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("disaggregation");
    for &members in &[4usize, 16, 64] {
        let agg = aggregate(&constrained_group(members)).expect("non-empty");
        // A realizable assignment: the baseline-style midpoint fit.
        let assignment = {
            let fo = agg.flexoffer();
            let mut values: Vec<i64> = fo.slices().iter().map(|s| s.midpoint()).collect();
            let mut total: i64 = values.iter().sum();
            let mut i = 0;
            while total < fo.total_min() {
                if values[i] < fo.slices()[i].max() {
                    values[i] += 1;
                    total += 1;
                }
                i = (i + 1) % values.len();
            }
            while total > fo.total_max() {
                if values[i] > fo.slices()[i].min() {
                    values[i] -= 1;
                    total -= 1;
                }
                i = (i + 1) % values.len();
            }
            flexoffers_model::Assignment::new(fo.earliest_start(), values)
        };
        assert!(agg.flexoffer().is_valid_assignment(&assignment));
        group.bench_with_input(
            BenchmarkId::new("greedy", members),
            &(&agg, &assignment),
            |b, (agg, a)| b.iter(|| black_box(agg.disaggregate_greedy(a).is_ok())),
        );
        group.bench_with_input(
            BenchmarkId::new("flow_exact", members),
            &(&agg, &assignment),
            |b, (agg, a)| b.iter(|| black_box(agg.disaggregate_flow(a).is_ok())),
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_aggregate_portfolio, bench_disaggregation
}
criterion_main!(benches);
