//! P1: computation cost of every measure as flex-offer dimensions scale.
//!
//! The paper's measures differ wildly in asymptotics: tf/ef/product/vector
//! are O(1) over the model, the time-series measure is O(s + tf), counting
//! is O(1) (closed form) or O(s * width^2) (constrained DP), and the area
//! measures are O(s + tf) via the sliding-window closed form.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use flexoffers_bench::fixtures::scaling_flexoffer;
use flexoffers_measures::all_measures;

fn bench_measures(c: &mut Criterion) {
    let mut group = c.benchmark_group("measures");
    for &slices in &[4usize, 32, 128] {
        let fo = scaling_flexoffer(slices, 8, 16);
        for measure in all_measures() {
            group.bench_with_input(
                BenchmarkId::new(measure.short_name().replace(' ', "_"), slices),
                &fo,
                |b, fo| b.iter(|| black_box(measure.of(black_box(fo)).expect("consumption"))),
            );
        }
    }
    group.finish();
}

fn bench_time_flex_scaling(c: &mut Criterion) {
    // Only the window-aware measures should care about tf.
    let mut group = c.benchmark_group("measures_tf_scaling");
    for &tf in &[4i64, 64, 1024] {
        let fo = scaling_flexoffer(16, 8, tf);
        for name in ["Vector", "Time-series", "Abs. Area"] {
            let measure = all_measures()
                .into_iter()
                .find(|m| m.short_name() == name)
                .expect("known measure");
            group.bench_with_input(
                BenchmarkId::new(name.replace(' ', "_").replace('.', ""), tf),
                &fo,
                |b, fo| b.iter(|| black_box(measure.of(black_box(fo)).expect("consumption"))),
            );
        }
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_measures, bench_time_flex_scaling
}
criterion_main!(benches);
