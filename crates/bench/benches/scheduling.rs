//! E2's machinery under the stopwatch: scheduler cost across portfolio
//! sizes, and the aggregate-then-schedule pipeline that motivates
//! Scenario 1 (scheduling aggregates is much cheaper than scheduling
//! members).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use flexoffers_aggregation::{aggregate_portfolio, GroupingParams};
use flexoffers_scheduling::{
    EarliestStartScheduler, GreedyScheduler, HillClimbScheduler, Scheduler, SchedulingProblem,
};
use flexoffers_workloads::res::{res_production_trace, ResTraceConfig};
use flexoffers_workloads::PopulationBuilder;

fn problem(households: usize) -> SchedulingProblem {
    let portfolio = PopulationBuilder::new(7)
        .electric_vehicles(households / 2)
        .dishwashers(households)
        .heat_pumps(households / 3)
        .build();
    let res = res_production_trace(&ResTraceConfig {
        days: 2,
        ..ResTraceConfig::default()
    });
    SchedulingProblem::new(portfolio.into_offers(), res)
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedulers");
    for &households in &[10usize, 40] {
        let p = problem(households);
        let n = p.offers().len();
        group.bench_with_input(BenchmarkId::new("baseline", n), &p, |b, p| {
            b.iter(|| black_box(EarliestStartScheduler.schedule(p).expect("feasible")))
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &p, |b, p| {
            b.iter(|| black_box(GreedyScheduler::new().schedule(p).expect("feasible")))
        });
        group.bench_with_input(BenchmarkId::new("hillclimb_256", n), &p, |b, p| {
            b.iter(|| {
                black_box(
                    HillClimbScheduler::new(42, 256)
                        .schedule(p)
                        .expect("feasible"),
                )
            })
        });
    }
    group.finish();
}

fn bench_aggregate_then_schedule(c: &mut Criterion) {
    // Scenario 1's complexity claim: scheduling the aggregates is cheaper
    // than scheduling the members.
    let mut group = c.benchmark_group("aggregate_then_schedule");
    let p = problem(40);
    group.bench_function("schedule_members_greedy", |b| {
        b.iter(|| black_box(GreedyScheduler::new().schedule(&p).expect("feasible")))
    });
    group.bench_function("aggregate_and_schedule_greedy", |b| {
        b.iter(|| {
            let aggregates =
                aggregate_portfolio(p.offers(), &GroupingParams::with_tolerances(2, 2));
            let reduced = SchedulingProblem::new(
                aggregates.iter().map(|a| a.flexoffer().clone()).collect(),
                p.target().clone(),
            );
            black_box(GreedyScheduler::new().schedule(&reduced).expect("feasible"))
        })
    });
    group.bench_function("full_pipeline_with_disaggregation", |b| {
        b.iter(|| {
            black_box(
                flexoffers_scheduling::schedule_via_aggregation(
                    &p,
                    &GroupingParams::with_tolerances(2, 2),
                    &GreedyScheduler::new(),
                )
                .expect("pipeline feasible"),
            )
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_schedulers, bench_aggregate_then_schedule
}
criterion_main!(benches);
