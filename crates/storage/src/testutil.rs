//! Test-only scratch directories (no tempfile crate in the tree).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A per-test directory under the system temp dir, removed on drop.
pub struct ScratchDir(PathBuf);

impl ScratchDir {
    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Creates a unique scratch directory tagged for the calling test.
pub fn scratch_dir(tag: &str) -> ScratchDir {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "flexoffers_storage_{tag}_{}_{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    ScratchDir(dir)
}
