//! Crash recovery: latest valid snapshot + journal suffix replay.
//!
//! The recovery invariant is byte-identity: the recovered book answers
//! every query with exactly the bytes an uninterrupted run would have
//! produced at the same point in the event stream — at any shards ×
//! threads × kernel budget, because snapshots round-trip the cached state
//! exactly and the replayed suffix goes through the book's ordinary
//! mutation path.
//!
//! Fallbacks are deliberate and silent where a crash can produce them:
//! a missing snapshot, or a snapshot *ahead* of the journal (possible only
//! when the journal was truncated by hand — the writer syncs the journal
//! before every snapshot), both degrade to a full replay from the empty
//! book, since the journal holds the complete mutation history. Corrupt
//! *files* — a terminated-but-unparseable journal line, a snapshot with a
//! bad checksum — are named errors, never panics.

use flexoffers_engine::Engine;
use flexoffers_serving::{LiveBook, ServeConfig};

use crate::error::StorageError;
use crate::journal::read_journal;
use crate::snapshot::load_snapshot;

/// What recovery found and did — printed by `flexctl recover` and used by
/// [`DurableBook::open`](crate::DurableBook::open) to resume the journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed events in the journal (torn tail excluded).
    pub journal_events: u64,
    /// Byte length of the journal's committed prefix.
    pub committed_bytes: u64,
    /// Whether an unterminated final line was discarded.
    pub dropped_torn_tail: bool,
    /// The sequence of the snapshot recovery started from (`None` = full
    /// replay from the empty book).
    pub snapshot_seq: Option<u64>,
    /// Events replayed on top of the starting state.
    pub replayed: u64,
}

/// Recovers a [`LiveBook`] from `config.durability`'s journal + snapshot.
/// Read-only: the journal file is not truncated (resuming appends is
/// [`DurableBook::open`](crate::DurableBook::open)'s business).
///
/// `shards` is used only when recovery starts from the empty book; a
/// snapshot carries its own shard count (answers are shard-invariant, so
/// the difference is a load-spreading detail, not a semantic one).
pub fn recover(
    config: &ServeConfig,
    shards: usize,
    engine: Engine,
) -> Result<(LiveBook, RecoveryReport), StorageError> {
    let durability = config
        .durability
        .as_ref()
        .ok_or(StorageError::MissingDurability)?;
    let contents = read_journal(&durability.journal)?;
    let snapshot = load_snapshot(&durability.snapshot_path())?;

    // The guard compares in `u64`: casting `snapshot.seq` to `usize` first
    // would truncate a huge/corrupt seq on 32-bit targets and could let it
    // slip past the `<=` check. Once the guard holds, `seq` fits in
    // `usize` (it is bounded by `events.len()`), so the cast below is safe.
    let (mut book, start, snapshot_seq) = match snapshot {
        Some(snapshot) if snapshot.seq <= contents.events.len() as u64 => {
            let book = LiveBook::from_export(config.clone(), engine, snapshot.export)?;
            (book, snapshot.seq as usize, Some(snapshot.seq))
        }
        // No snapshot, or one past the journal's end: full replay.
        _ => {
            let book = LiveBook::new(config.clone(), shards, engine)?;
            (book, 0, None)
        }
    };
    for (i, event) in contents.events[start..].iter().enumerate() {
        // Journaled queries (hand-written scripts) replay for their side
        // effect of nothing; their answers go nowhere.
        book.apply(event.clone()).map_err(|e| StorageError::Apply {
            seq: (start + i + 1) as u64,
            source: e,
        })?;
    }
    let report = RecoveryReport {
        journal_events: contents.events.len() as u64,
        committed_bytes: contents.committed_bytes,
        dropped_torn_tail: contents.dropped_torn_tail,
        snapshot_seq,
        replayed: (contents.events.len() - start) as u64,
    };
    Ok((book, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;
    use crate::snapshot::{save_snapshot, Snapshot};
    use crate::testutil::scratch_dir;
    use flexoffers_model::{FlexOffer, Slice};
    use flexoffers_serving::{DurabilityConfig, Event, QueryKind};

    fn offer(tes: i64) -> FlexOffer {
        FlexOffer::new(tes, tes + 3, vec![Slice::new(-1, 2).unwrap()]).unwrap()
    }

    fn config_for(journal: &std::path::Path) -> ServeConfig {
        ServeConfig {
            durability: Some(DurabilityConfig::new(journal)),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn missing_everything_recovers_to_an_empty_book() {
        let dir = scratch_dir("recover_empty");
        let config = config_for(&dir.path().join("events.jsonl"));
        let (book, report) = recover(&config, 2, Engine::sequential()).unwrap();
        assert!(book.is_empty());
        assert_eq!(
            report,
            RecoveryReport {
                journal_events: 0,
                committed_bytes: 0,
                dropped_torn_tail: false,
                snapshot_seq: None,
                replayed: 0,
            }
        );
    }

    #[test]
    fn no_durability_section_is_the_named_error() {
        let err = recover(&ServeConfig::default(), 2, Engine::sequential()).unwrap_err();
        assert!(matches!(err, StorageError::MissingDurability), "{err}");
    }

    #[test]
    fn snapshot_plus_suffix_equals_full_replay() {
        let dir = scratch_dir("recover_suffix");
        let journal_path = dir.path().join("events.jsonl");
        let config = config_for(&journal_path);
        let durability = config.durability.clone().unwrap();

        let events: Vec<Event> = (0..10)
            .map(|i| Event::Add(offer(i)))
            .chain([
                Event::Remove { id: 3 },
                Event::Update {
                    id: 4,
                    offer: offer(40),
                },
            ])
            .collect();

        // Write the journal; snapshot a warm book mid-stream (after 6).
        let mut journal = Journal::create(&journal_path, 1).unwrap();
        let mut mid = LiveBook::new(config.clone(), 3, Engine::sequential()).unwrap();
        for (i, event) in events.iter().enumerate() {
            journal.append(event).unwrap();
            mid.apply(event.clone()).unwrap();
            if i + 1 == 6 {
                mid.answer(QueryKind::Measure); // warm caches into the snapshot
                save_snapshot(
                    &durability.snapshot_path(),
                    &Snapshot {
                        seq: 6,
                        export: mid.export(),
                    },
                )
                .unwrap();
            }
        }
        drop(journal);

        let (mut recovered, report) = recover(&config, 3, Engine::sequential()).unwrap();
        assert_eq!(report.snapshot_seq, Some(6));
        assert_eq!(report.replayed, events.len() as u64 - 6);

        let mut full = LiveBook::new(config.clone(), 3, Engine::sequential()).unwrap();
        for event in &events {
            full.apply(event.clone()).unwrap();
        }
        for kind in QueryKind::all() {
            assert_eq!(recovered.answer(kind), full.answer(kind), "{kind}");
        }
    }

    #[test]
    fn a_snapshot_ahead_of_the_journal_falls_back_to_full_replay() {
        let dir = scratch_dir("recover_ahead");
        let journal_path = dir.path().join("events.jsonl");
        let config = config_for(&journal_path);
        let durability = config.durability.clone().unwrap();

        let mut journal = Journal::create(&journal_path, 1).unwrap();
        let mut book = LiveBook::new(config.clone(), 2, Engine::sequential()).unwrap();
        for i in 0..8 {
            let event = Event::Add(offer(i));
            journal.append(&event).unwrap();
            book.apply(event).unwrap();
        }
        save_snapshot(
            &durability.snapshot_path(),
            &Snapshot {
                seq: 8,
                export: book.export(),
            },
        )
        .unwrap();
        drop(journal);

        // Truncate the journal below the snapshot: only 3 complete lines.
        let text = std::fs::read_to_string(&journal_path).unwrap();
        let prefix: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
        std::fs::write(&journal_path, prefix).unwrap();

        let (mut recovered, report) = recover(&config, 2, Engine::sequential()).unwrap();
        assert_eq!(report.snapshot_seq, None, "snapshot ignored");
        assert_eq!(report.replayed, 3);
        assert_eq!(recovered.len(), 3);

        let mut expected = LiveBook::new(config.clone(), 2, Engine::sequential()).unwrap();
        for i in 0..3 {
            expected.apply(Event::Add(offer(i))).unwrap();
        }
        assert_eq!(
            recovered.answer(QueryKind::Measure),
            expected.answer(QueryKind::Measure)
        );
    }

    #[test]
    fn a_corrupt_huge_seq_falls_back_instead_of_truncating() {
        let dir = scratch_dir("recover_huge_seq");
        let journal_path = dir.path().join("events.jsonl");
        let config = config_for(&journal_path);
        let durability = config.durability.clone().unwrap();

        let mut journal = Journal::create(&journal_path, 1).unwrap();
        let mut book = LiveBook::new(config.clone(), 2, Engine::sequential()).unwrap();
        for i in 0..5 {
            let event = Event::Add(offer(i));
            journal.append(&event).unwrap();
            book.apply(event).unwrap();
        }
        drop(journal);
        // A corrupt seq whose low 32 bits are small: `seq as usize` would
        // truncate to 2 on a 32-bit target and wrongly pass the guard,
        // skipping most of the journal. The u64 comparison must instead
        // treat it as ahead-of-journal and fall back to a full replay.
        save_snapshot(
            &durability.snapshot_path(),
            &Snapshot {
                seq: (1u64 << 32) + 2,
                export: book.export(),
            },
        )
        .unwrap();

        let (mut recovered, report) = recover(&config, 2, Engine::sequential()).unwrap();
        assert_eq!(report.snapshot_seq, None, "corrupt snapshot ignored");
        assert_eq!(report.replayed, 5);
        assert_eq!(recovered.len(), 5);
        assert_eq!(
            recovered.answer(QueryKind::Measure),
            book.answer(QueryKind::Measure)
        );
    }

    #[test]
    fn corrupt_snapshots_surface_as_named_errors() {
        let dir = scratch_dir("recover_corrupt");
        let journal_path = dir.path().join("events.jsonl");
        let config = config_for(&journal_path);
        let durability = config.durability.clone().unwrap();

        let mut journal = Journal::create(&journal_path, 1).unwrap();
        journal.append(&Event::Add(offer(0))).unwrap();
        drop(journal);
        std::fs::write(durability.snapshot_path(), b"garbage\n{}\n").unwrap();

        let err = recover(&config, 2, Engine::sequential()).unwrap_err();
        assert!(matches!(err, StorageError::CorruptSnapshot { .. }), "{err}");
    }
}
