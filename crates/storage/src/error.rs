//! The storage tier's error type.

use std::error::Error;
use std::fmt;
use std::io;
use std::path::PathBuf;

use flexoffers_engine::EngineError;
use flexoffers_serving::{ImportError, LiveError};

/// Why a journal, snapshot, or recovery operation failed. Every failure
/// mode is a named variant — recovery never panics on bad bytes.
#[derive(Debug)]
#[non_exhaustive]
pub enum StorageError {
    /// An I/O operation on a journal or snapshot file failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A *terminated* journal line failed to parse or referenced a dead id
    /// (an unterminated final line is torn-tail truncation, silently
    /// dropped — this error means bytes before the tail are bad).
    CorruptJournal {
        /// The journal file.
        path: PathBuf,
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The snapshot file exists but is not a valid snapshot (bad magic,
    /// checksum mismatch, or undecodable body).
    CorruptSnapshot {
        /// The snapshot file.
        path: PathBuf,
        /// What was wrong with it.
        message: String,
    },
    /// The snapshot decoded but failed the live book's structural
    /// revalidation ([`flexoffers_serving::LiveBook::from_export`]).
    BadSnapshotState(ImportError),
    /// Applying a journaled mutation failed — the journal and snapshot
    /// disagree about which ids are live.
    Apply {
        /// 1-based journal sequence number of the failing mutation.
        seq: u64,
        /// The book's rejection.
        source: LiveError,
    },
    /// The engine rejected the requested topology (zero shards).
    Engine(EngineError),
    /// A durable book was requested from a [`ServeConfig`] whose
    /// `durability` field is `None`.
    ///
    /// [`ServeConfig`]: flexoffers_serving::ServeConfig
    MissingDurability,
}

impl StorageError {
    /// Convenience constructor tagging an [`io::Error`] with its path.
    pub fn io(path: impl Into<PathBuf>, source: io::Error) -> Self {
        StorageError::Io {
            path: path.into(),
            source,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            StorageError::CorruptJournal {
                path,
                line,
                message,
            } => {
                write!(
                    f,
                    "corrupt journal {} line {line}: {message}",
                    path.display()
                )
            }
            StorageError::CorruptSnapshot { path, message } => {
                write!(f, "corrupt snapshot {}: {message}", path.display())
            }
            StorageError::BadSnapshotState(e) => write!(f, "snapshot failed revalidation: {e}"),
            StorageError::Apply { seq, source } => {
                write!(f, "journal event {seq} failed to apply: {source}")
            }
            StorageError::Engine(e) => write!(f, "{e}"),
            StorageError::MissingDurability => {
                f.write_str("serve config has no durability section")
            }
        }
    }
}

impl Error for StorageError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            StorageError::BadSnapshotState(e) => Some(e),
            StorageError::Apply { source, .. } => Some(source),
            StorageError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ImportError> for StorageError {
    fn from(e: ImportError) -> Self {
        StorageError::BadSnapshotState(e)
    }
}

impl From<EngineError> for StorageError {
    fn from(e: EngineError) -> Self {
        StorageError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_their_subject() {
        let e = StorageError::CorruptJournal {
            path: PathBuf::from("j.log"),
            line: 7,
            message: "bad `id`".into(),
        };
        assert_eq!(e.to_string(), "corrupt journal j.log line 7: bad `id`");
        let e = StorageError::CorruptSnapshot {
            path: PathBuf::from("j.log.snap"),
            message: "checksum mismatch".into(),
        };
        assert!(e.to_string().contains("corrupt snapshot"), "{e}");
        assert!(StorageError::MissingDurability
            .to_string()
            .contains("durability"));
        let e = StorageError::Apply {
            seq: 3,
            source: LiveError::UnknownId { id: 9 },
        };
        assert!(e.to_string().contains("event 3"), "{e}");
        assert!(Error::source(&e).is_some());
    }
}
