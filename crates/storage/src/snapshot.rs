//! Per-shard snapshots of the live book's incremental state.
//!
//! A snapshot is the [`BookExport`] — per-shard ids, offers, key digests,
//! and cached measure rows / baseline partials — serialized at a recorded
//! journal sequence number. Measure values are stored as `f64::to_bits`
//! (exact, NaN-safe); everything else in the export is integers, so a
//! snapshot round-trips bit for bit, which is what lets recovery answer
//! queries byte-identically to a run that never crashed.
//!
//! The file layout is a magic+checksum header line over a single-line JSON
//! body:
//!
//! ```text
//! flexoffers-snapshot/1 <fnv1a64 of the body, 16 hex digits>
//! {"seq":...,"next_id":...,"shards":[...]}
//! ```
//!
//! Writes go through a temp file + fsync + atomic rename, so a crash
//! mid-snapshot leaves the previous snapshot intact; any header or
//! checksum mismatch on load is the named
//! [`StorageError::CorruptSnapshot`], never a panic.

use std::fs::File;
use std::io::Write;
use std::path::Path;

use serde::{Deserialize, Serialize, Value};

use flexoffers_measures::{all_measures, MeasureError};
use flexoffers_model::FlexOffer;
use flexoffers_serving::{BookExport, MeasureRow, ShardCacheExport, ShardExport};
use flexoffers_timeseries::Series;

use crate::error::StorageError;

/// The snapshot format tag (first token of the header line).
pub const SNAPSHOT_FORMAT: &str = "flexoffers-snapshot/1";

/// A book image pinned to the journal sequence it was taken at: replaying
/// the journal suffix past `seq` on top of `export` reproduces the book.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Number of journal events applied when the snapshot was taken.
    pub seq: u64,
    /// The book image.
    pub export: BookExport,
}

/// FNV-1a 64 over the body bytes — dependency-free and plenty to catch
/// torn or tampered snapshot files. Public because the cluster tier's
/// conditional gather uses the same hash over the same canonical bytes
/// for its shard state digests ([`shard_digest`]).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn cell_to_value(cell: &Result<f64, MeasureError>) -> Value {
    match cell {
        Ok(v) => obj(vec![("bits", Value::U64(v.to_bits()))]),
        Err(MeasureError::MixedNotSupported { measure }) => obj(vec![
            ("err", Value::Str("mixed".to_owned())),
            ("measure", Value::Str((*measure).to_owned())),
        ]),
        Err(MeasureError::UndefinedDenominator) => obj(vec![(
            "err",
            Value::Str("undefined_denominator".to_owned()),
        )]),
        Err(MeasureError::EmptySet { measure }) => obj(vec![
            ("err", Value::Str("empty_set".to_owned())),
            ("measure", Value::Str((*measure).to_owned())),
        ]),
        // `MeasureError` is non-exhaustive: a variant this build does not
        // know gets a code the loader rejects by name — a snapshot must
        // never silently drop error detail.
        Err(other) => obj(vec![
            ("err", Value::Str("other".to_owned())),
            ("message", Value::Str(other.to_string())),
        ]),
    }
}

/// Encodes a [`BookExport`] as the snapshot body's JSON value
/// (`{"next_id":…,"shards":[…]}`, measure cells as `f64::to_bits`) —
/// public because this *is* the shard wire format: a snapshot pins it to
/// a journal seq on disk, and a cluster shard worker ships the same value
/// over its pipe. One codec, so the two cannot drift.
pub fn export_to_value(export: &BookExport) -> Value {
    let shards: Vec<Value> = export.shards.iter().map(shard_to_value).collect();
    obj(vec![
        ("next_id", Value::U64(export.next_id)),
        ("shards", Value::Array(shards)),
    ])
}

/// Encodes one [`ShardExport`] exactly as it appears inside
/// [`export_to_value`]'s `shards` array. Public so a shard worker can
/// serialize just its own shard (the other entries of its book are empty)
/// and so [`shard_digest`] has a canonical body to hash.
pub fn shard_to_value(shard: &ShardExport) -> Value {
    let cache = match &shard.cache {
        None => Value::Null,
        Some(cache) => obj(vec![
            (
                "rows",
                Value::Array(
                    cache
                        .rows
                        .iter()
                        .map(|row| Value::Array(row.iter().map(cell_to_value).collect()))
                        .collect(),
                ),
            ),
            ("baseline", cache.baseline.to_value()),
        ]),
    };
    obj(vec![
        (
            "ids",
            Value::Array(shard.ids.iter().map(|&id| Value::U64(id)).collect()),
        ),
        (
            "offers",
            Value::Array(shard.offers.iter().map(Serialize::to_value).collect()),
        ),
        ("key_digest", Value::U64(shard.key_digest)),
        ("cache", cache),
    ])
}

/// The shard **state digest** the conditional gather protocol compares:
/// FNV-1a 64 over the canonical single-line JSON of [`shard_to_value`].
/// Because the body embeds the offers, the cached rows/baseline, *and*
/// the commutative `key_digest`, two shards with equal digests answer
/// every query identically (up to the 2⁻⁶⁴ collision odds any content
/// hash accepts). Both sides of the pipe can compute it: the worker from
/// its own shard, the supervisor from a cached or legacy full export.
pub fn shard_digest(shard: &ShardExport) -> u64 {
    let body = serde_json::to_string(&shard_to_value(shard)).expect("shard values serialize");
    fnv1a64(body.as_bytes())
}

fn snapshot_to_value(snapshot: &Snapshot) -> Value {
    // `seq` leads, then the export's own fields — the body stays exactly
    // the documented `{"seq":…,"next_id":…,"shards":[…]}` layout.
    let Value::Object(export_fields) = export_to_value(&snapshot.export) else {
        unreachable!("export_to_value builds an object")
    };
    let mut fields = vec![("seq".to_owned(), Value::U64(snapshot.seq))];
    fields.extend(export_fields);
    Value::Object(fields)
}

// ---- decoding (every failure a message, never a panic) ----

fn field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, String> {
    v.get(name).ok_or_else(|| format!("missing `{name}`"))
}

fn as_u64(v: &Value, name: &str) -> Result<u64, String> {
    match v {
        Value::U64(n) => Ok(*n),
        Value::I64(n) if *n >= 0 => Ok(*n as u64),
        other => Err(format!(
            "`{name}`: expected unsigned integer, found {}",
            other.kind()
        )),
    }
}

fn as_array<'v>(v: &'v Value, name: &str) -> Result<&'v [Value], String> {
    match v {
        Value::Array(items) => Ok(items),
        other => Err(format!("`{name}`: expected array, found {}", other.kind())),
    }
}

/// Maps a snapshot's stored measure name back to the engine's own
/// `&'static str` — the names form a closed set ([`all_measures`]).
fn static_measure_name(name: &str) -> Result<&'static str, String> {
    all_measures()
        .iter()
        .map(|m| m.short_name())
        .find(|&short| short == name)
        .ok_or_else(|| format!("unknown measure name `{name}`"))
}

fn value_to_cell(v: &Value) -> Result<Result<f64, MeasureError>, String> {
    if let Some(bits) = v.get("bits") {
        return Ok(Ok(f64::from_bits(as_u64(bits, "bits")?)));
    }
    let err = field(v, "err")?.as_str().ok_or("`err`: expected string")?;
    let measure = || -> Result<&'static str, String> {
        static_measure_name(
            field(v, "measure")?
                .as_str()
                .ok_or("`measure`: expected string")?,
        )
    };
    match err {
        "mixed" => Ok(Err(MeasureError::MixedNotSupported {
            measure: measure()?,
        })),
        "undefined_denominator" => Ok(Err(MeasureError::UndefinedDenominator)),
        "empty_set" => Ok(Err(MeasureError::EmptySet {
            measure: measure()?,
        })),
        other => Err(format!("unknown measure error code `{other}`")),
    }
}

/// Decodes a [`BookExport`] from its [`export_to_value`] encoding; every
/// failure is a message, never a panic — the input may be a tampered
/// snapshot body or a worker's wire frame. Structural invariants (shard
/// placement, digests, …) are *not* checked here: that is
/// [`LiveBook::from_export`](flexoffers_serving::LiveBook::from_export)'s
/// job, and the cluster tier relies on it.
pub fn value_to_export(v: &Value) -> Result<BookExport, String> {
    let next_id = as_u64(field(v, "next_id")?, "next_id")?;
    let mut shards = Vec::new();
    for (s, shard) in as_array(field(v, "shards")?, "shards")?.iter().enumerate() {
        let at = |m: String| format!("shard {s}: {m}");
        let ids = as_array(field(shard, "ids").map_err(at)?, "ids")
            .map_err(at)?
            .iter()
            .map(|id| as_u64(id, "ids[]"))
            .collect::<Result<Vec<u64>, String>>()
            .map_err(at)?;
        let offers = as_array(field(shard, "offers").map_err(at)?, "offers")
            .map_err(at)?
            .iter()
            .map(|o| FlexOffer::from_value(o).map_err(|e| format!("offer: {e}")))
            .collect::<Result<Vec<FlexOffer>, String>>()
            .map_err(at)?;
        let key_digest =
            as_u64(field(shard, "key_digest").map_err(at)?, "key_digest").map_err(at)?;
        let cache = match field(shard, "cache").map_err(at)? {
            Value::Null => None,
            cache => {
                let rows = as_array(field(cache, "rows").map_err(at)?, "rows")
                    .map_err(at)?
                    .iter()
                    .map(|row| {
                        as_array(row, "rows[]")?
                            .iter()
                            .map(value_to_cell)
                            .collect::<Result<MeasureRow, String>>()
                    })
                    .collect::<Result<Vec<MeasureRow>, String>>()
                    .map_err(at)?;
                let baseline = Series::<i64>::from_value(field(cache, "baseline").map_err(at)?)
                    .map_err(|e| at(format!("baseline: {e}")))?;
                Some(ShardCacheExport { rows, baseline })
            }
        };
        shards.push(ShardExport {
            ids,
            offers,
            key_digest,
            cache,
        });
    }
    Ok(BookExport { next_id, shards })
}

fn value_to_snapshot(v: &Value) -> Result<Snapshot, String> {
    let seq = as_u64(field(v, "seq")?, "seq")?;
    let export = value_to_export(v)?;
    Ok(Snapshot { seq, export })
}

/// Atomically writes `snapshot` to `path`: temp file, fsync, rename. A
/// crash at any point leaves either the old snapshot or the new one —
/// never a half-written file at `path`.
pub fn save_snapshot(path: &Path, snapshot: &Snapshot) -> Result<(), StorageError> {
    let body =
        serde_json::to_string(&snapshot_to_value(snapshot)).expect("snapshot values serialize");
    let mut text = format!("{SNAPSHOT_FORMAT} {:016x}\n", fnv1a64(body.as_bytes()));
    text.push_str(&body);
    text.push('\n');

    let mut tmp_name = path.file_name().unwrap_or_default().to_owned();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let mut file = File::create(&tmp).map_err(|e| StorageError::io(&tmp, e))?;
    file.write_all(text.as_bytes())
        .map_err(|e| StorageError::io(&tmp, e))?;
    file.sync_all().map_err(|e| StorageError::io(&tmp, e))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| StorageError::io(path, e))?;
    // Best-effort directory sync so the rename itself is durable; not all
    // platforms allow fsync on a directory handle.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(dir) = File::open(dir) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Loads a snapshot. A missing file is `Ok(None)` (recovery replays the
/// whole journal); a present-but-invalid file is the named
/// [`StorageError::CorruptSnapshot`].
pub fn load_snapshot(path: &Path) -> Result<Option<Snapshot>, StorageError> {
    let corrupt = |message: String| StorageError::CorruptSnapshot {
        path: path.to_owned(),
        message,
    };
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StorageError::io(path, e)),
    };
    let text = std::str::from_utf8(&bytes).map_err(|e| corrupt(format!("invalid UTF-8: {e}")))?;
    let (header, body) = text
        .split_once('\n')
        .ok_or_else(|| corrupt("missing header line".to_owned()))?;
    let (magic, checksum) = header
        .split_once(' ')
        .ok_or_else(|| corrupt("malformed header".to_owned()))?;
    if magic != SNAPSHOT_FORMAT {
        return Err(corrupt(format!("unknown format `{magic}`")));
    }
    let body = body.strip_suffix('\n').unwrap_or(body);
    let expect =
        u64::from_str_radix(checksum, 16).map_err(|e| corrupt(format!("bad checksum: {e}")))?;
    let actual = fnv1a64(body.as_bytes());
    if actual != expect {
        return Err(corrupt(format!(
            "checksum mismatch (header {expect:016x}, body {actual:016x})"
        )));
    }
    let value: Value =
        serde_json::from_str(body).map_err(|e| corrupt(format!("malformed body: {e}")))?;
    value_to_snapshot(&value).map(Some).map_err(corrupt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::scratch_dir;
    use flexoffers_engine::Engine;
    use flexoffers_model::Slice;
    use flexoffers_serving::{LiveBook, QueryKind, ServeConfig};

    fn warm_export() -> BookExport {
        let mut book = LiveBook::new(ServeConfig::default(), 3, Engine::sequential()).unwrap();
        for i in 0..12 {
            book.add(FlexOffer::new(i, i + 2, vec![Slice::new(-1, 2).unwrap()]).unwrap());
        }
        book.remove(5).unwrap();
        book.answer(QueryKind::Measure);
        book.export()
    }

    #[test]
    fn snapshots_round_trip_exactly() {
        let dir = scratch_dir("snapshot_roundtrip");
        let path = dir.path().join("book.snap");
        let snapshot = Snapshot {
            seq: 13,
            export: warm_export(),
        };
        save_snapshot(&path, &snapshot).unwrap();
        let loaded = load_snapshot(&path).unwrap().expect("present");
        assert_eq!(loaded, snapshot);

        // Overwrite is atomic and the second image wins.
        let newer = Snapshot {
            seq: 14,
            export: warm_export(),
        };
        save_snapshot(&path, &newer).unwrap();
        assert_eq!(load_snapshot(&path).unwrap().unwrap().seq, 14);
    }

    #[test]
    fn the_export_codec_round_trips_standalone() {
        let export = warm_export();
        let value = export_to_value(&export);
        assert_eq!(value_to_export(&value).unwrap(), export);
        // Through JSON text, exactly as a worker's pipe would carry it.
        let text = serde_json::to_string(&value).unwrap();
        let reparsed: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(value_to_export(&reparsed).unwrap(), export);
        // A snapshot is the same value with `seq` prepended.
        assert!(value_to_export(&snapshot_to_value(&Snapshot {
            seq: 9,
            export: export.clone(),
        }))
        .is_ok());
    }

    #[test]
    fn shard_values_are_exactly_the_export_entries_and_digests_track_content() {
        let export = warm_export();
        let Value::Array(entries) = field(&export_to_value(&export), "shards").unwrap().clone()
        else {
            panic!("shards is an array")
        };
        for (shard, entry) in export.shards.iter().zip(&entries) {
            assert_eq!(&shard_to_value(shard), entry, "one codec, two entry points");
        }
        // The digest is a pure function of the shard body: identical for
        // clones, different once any member changes.
        for shard in &export.shards {
            assert_eq!(shard_digest(shard), shard_digest(&shard.clone()));
        }
        let populated = export
            .shards
            .iter()
            .find(|s| !s.ids.is_empty())
            .expect("warm export has offers");
        let mut tweaked = populated.clone();
        tweaked.ids[0] += 1_000_000;
        assert_ne!(shard_digest(populated), shard_digest(&tweaked));
    }

    #[test]
    fn measure_cells_round_trip_bitwise_including_errors() {
        for cell in [
            Ok(0.1 + 0.2), // not representable exactly in decimal
            Ok(-0.0),
            Ok(f64::NAN),
            Ok(f64::INFINITY),
            Err(MeasureError::MixedNotSupported {
                measure: "Abs. Area",
            }),
            Err(MeasureError::UndefinedDenominator),
            Err(MeasureError::EmptySet {
                measure: "Rel. Area",
            }),
        ] {
            let back = value_to_cell(&cell_to_value(&cell)).unwrap();
            match (&cell, &back) {
                (Ok(a), Ok(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(cell, back),
            }
        }
    }

    #[test]
    fn missing_snapshots_are_none_and_tampering_is_named() {
        let dir = scratch_dir("snapshot_tamper");
        let path = dir.path().join("book.snap");
        assert_eq!(load_snapshot(&path).unwrap(), None);

        let snapshot = Snapshot {
            seq: 2,
            export: warm_export(),
        };
        save_snapshot(&path, &snapshot).unwrap();

        // Flip one body byte: checksum mismatch, named error.
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() / 2;
        bytes[at] = bytes[at].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();
        let err = load_snapshot(&path).unwrap_err();
        assert!(matches!(err, StorageError::CorruptSnapshot { .. }), "{err}");

        // Wrong magic.
        std::fs::write(&path, b"other-format/9 0000000000000000\n{}\n").unwrap();
        let err = load_snapshot(&path).unwrap_err();
        assert!(err.to_string().contains("unknown format"), "{err}");

        // Truncated to nothing.
        std::fs::write(&path, b"").unwrap();
        let err = load_snapshot(&path).unwrap_err();
        assert!(err.to_string().contains("missing header"), "{err}");

        // No stray temp file lingers from successful saves.
        let leftovers: Vec<_> = std::fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
    }

    #[test]
    fn unknown_measure_names_and_codes_are_rejected() {
        let cell = obj(vec![
            ("err", Value::Str("mixed".to_owned())),
            ("measure", Value::Str("No Such Measure".to_owned())),
        ]);
        assert!(value_to_cell(&cell)
            .unwrap_err()
            .contains("unknown measure name"));
        let cell = obj(vec![("err", Value::Str("out_of_cheese".to_owned()))]);
        assert!(value_to_cell(&cell)
            .unwrap_err()
            .contains("unknown measure error code"));
    }
}
