//! `flexoffers_storage` — durability for the serving tier.
//!
//! The serving tier's JSONL event wire format is a write-ahead log in
//! disguise, and its per-shard export boundary is a snapshot format. This
//! crate makes both literal:
//!
//! * [`Journal`] — an append-only event journal. Each applied mutation is
//!   the existing [`Event::to_json_line`](flexoffers_serving::Event) as
//!   one line, fsync-batched, sequence numbers implicit in line order —
//!   the journal file **is** a replayable
//!   [`parse_script`](flexoffers_serving::parse_script) script.
//! * [`Snapshot`] / [`save_snapshot`] / [`load_snapshot`] — the
//!   [`BookExport`](flexoffers_serving::BookExport) (per-shard ids,
//!   offers, key digests, cached measure rows as `f64::to_bits`, baseline
//!   partials) serialized at a recorded journal sequence, written
//!   atomically (temp file + fsync + rename) under a checksummed header.
//! * [`recover`] — latest valid snapshot + journal suffix replay, with
//!   torn-tail truncation: an unterminated final journal line is
//!   discarded, never an error. Corrupt files (a bad checksum, terminated
//!   garbage) are named [`StorageError`] variants, never panics.
//! * [`DurableBook`] — the journal-before-apply
//!   [`EventSink`](flexoffers_serving::EventSink):
//!   [`LiveServer::spawn_sink`](flexoffers_serving::LiveServer::spawn_sink)
//!   drives it through the unchanged serving loop, so durability changes
//!   where bytes live, never what bytes a query answers.
//!
//! # Byte identity
//!
//! Recovery inherits the serving tier's contract: recover-then-query is
//! bitwise equal to an uninterrupted run and to the batch oracle, at any
//! shards × threads × kernel budget and any crash point. Snapshots store
//! measure values as `f64::to_bits`, baselines and offers as integers —
//! nothing in the persistence path rounds.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod durable;
pub mod error;
pub mod journal;
pub mod recover;
pub mod snapshot;

#[cfg(test)]
mod testutil;

pub use durable::DurableBook;
pub use error::StorageError;
pub use journal::{read_journal, Journal, JournalContents};
pub use recover::{recover, RecoveryReport};
pub use snapshot::{
    export_to_value, fnv1a64, load_snapshot, save_snapshot, shard_digest, shard_to_value,
    value_to_export, Snapshot, SNAPSHOT_FORMAT,
};
