//! The durable book: a [`LiveBook`] behind a journal-before-apply
//! [`EventSink`].
//!
//! [`DurableBook::open`] recovers (or starts empty), resumes the journal
//! past any torn tail, and hands back a sink [`LiveServer::spawn_sink`]
//! drives exactly like a memory-only book — same loop, same ordering, same
//! answers. Each mutation is journaled *before* it touches the book, so a
//! crash at any instant loses at most un-fsynced suffix events, never
//! applied-but-unjournaled ones; queries are not journaled (they carry no
//! state). Snapshots are written every `snapshot_every` mutations (journal
//! synced first, so a snapshot never points past durable bytes) and at
//! clean shutdown.
//!
//! [`LiveServer::spawn_sink`]: flexoffers_serving::LiveServer::spawn_sink

use std::path::PathBuf;

use flexoffers_engine::Engine;
use flexoffers_serving::{Event, EventSink, LiveBook, ServeConfig};

use crate::error::StorageError;
use crate::journal::Journal;
use crate::recover::{recover, RecoveryReport};
use crate::snapshot::{save_snapshot, Snapshot};

/// A live book whose mutations are journaled before they apply.
#[derive(Debug)]
pub struct DurableBook {
    book: LiveBook,
    journal: Journal,
    snapshot_path: PathBuf,
    snapshot_every: Option<u64>,
    last_snapshot_seq: u64,
}

impl DurableBook {
    /// Recovers from `config.durability`'s journal + snapshot (empty files
    /// on first boot), truncates any torn journal tail, and opens the
    /// journal for appending. Returns the book alongside what recovery
    /// found.
    pub fn open(
        config: ServeConfig,
        shards: usize,
        engine: Engine,
    ) -> Result<(Self, RecoveryReport), StorageError> {
        let durability = config
            .durability
            .clone()
            .ok_or(StorageError::MissingDurability)?;
        let (book, report) = recover(&config, shards, engine)?;
        let journal = Journal::resume(
            &durability.journal,
            durability.sync_every,
            report.committed_bytes,
            report.journal_events,
        )?;
        Ok((
            Self {
                book,
                journal,
                snapshot_path: durability.snapshot_path(),
                snapshot_every: durability.snapshot_every,
                last_snapshot_seq: report.snapshot_seq.unwrap_or(0),
            },
            report,
        ))
    }

    /// The wrapped live book.
    pub fn book(&self) -> &LiveBook {
        &self.book
    }

    /// Mutable access to the wrapped book (answers queries off-loop).
    pub fn book_mut(&mut self) -> &mut LiveBook {
        &mut self.book
    }

    /// The journal sequence of the last journaled mutation.
    pub fn seq(&self) -> u64 {
        self.journal.seq()
    }

    /// Syncs the journal and writes a snapshot at the current sequence,
    /// returning that sequence. The journal sync comes first so the
    /// snapshot's `seq` never points past durable journal bytes.
    pub fn snapshot_now(&mut self) -> Result<u64, StorageError> {
        self.journal.sync()?;
        let snapshot = Snapshot {
            seq: self.journal.seq(),
            export: self.book.export(),
        };
        save_snapshot(&self.snapshot_path, &snapshot)?;
        self.last_snapshot_seq = snapshot.seq;
        Ok(snapshot.seq)
    }

    fn maybe_snapshot(&mut self) -> Result<(), StorageError> {
        if let Some(every) = self.snapshot_every {
            if self.journal.seq() - self.last_snapshot_seq >= every.max(1) {
                self.snapshot_now()?;
            }
        }
        Ok(())
    }
}

impl EventSink for DurableBook {
    type Error = StorageError;

    fn apply(&mut self, event: Event) -> Result<Option<String>, StorageError> {
        let mutation = !matches!(event, Event::Query(_));
        if mutation {
            self.journal.append(&event)?;
        }
        let answer = self.book.apply(event).map_err(|e| StorageError::Apply {
            seq: self.journal.seq(),
            source: e,
        })?;
        if mutation {
            self.maybe_snapshot()?;
        }
        Ok(answer)
    }

    fn finish(&mut self) -> Result<(), StorageError> {
        self.journal.sync()?;
        self.snapshot_now().map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::read_journal;
    use crate::snapshot::load_snapshot;
    use crate::testutil::scratch_dir;
    use flexoffers_model::{FlexOffer, Slice};
    use flexoffers_serving::{DurabilityConfig, LiveServer, QueryKind};

    fn offer(tes: i64) -> FlexOffer {
        FlexOffer::new(tes, tes + 3, vec![Slice::new(-1, 2).unwrap()]).unwrap()
    }

    fn config_for(journal: &std::path::Path, snapshot_every: Option<u64>) -> ServeConfig {
        ServeConfig {
            durability: Some(DurabilityConfig {
                snapshot_every,
                ..DurabilityConfig::new(journal)
            }),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn mutations_are_journaled_before_apply_and_queries_are_not() {
        let dir = scratch_dir("durable_journal");
        let config = config_for(&dir.path().join("events.jsonl"), None);
        let journal_path = config.durability.as_ref().unwrap().journal.clone();

        let (mut durable, report) = DurableBook::open(config, 2, Engine::sequential()).unwrap();
        assert_eq!(report.journal_events, 0);
        durable.apply(Event::Add(offer(0))).unwrap();
        durable.apply(Event::Add(offer(1))).unwrap();
        let answer = durable
            .apply(Event::Query(QueryKind::Measure))
            .unwrap()
            .expect("queries answer");
        assert!(answer.contains("\"offers\":2"), "{answer}");
        durable.apply(Event::Remove { id: 0 }).unwrap();
        durable.finish().unwrap();

        let contents = read_journal(&journal_path).unwrap();
        assert_eq!(contents.events.len(), 3, "queries are not journaled");
        assert_eq!(durable.seq(), 3);
    }

    #[test]
    fn periodic_snapshots_and_shutdown_snapshot_land_on_disk() {
        let dir = scratch_dir("durable_snapshots");
        let config = config_for(&dir.path().join("events.jsonl"), Some(4));
        let snapshot_path = config.durability.as_ref().unwrap().snapshot_path();

        let (mut durable, _) = DurableBook::open(config, 3, Engine::sequential()).unwrap();
        for i in 0..6 {
            durable.apply(Event::Add(offer(i))).unwrap();
        }
        // 6 mutations with snapshot_every=4: one periodic snapshot at 4.
        let periodic = load_snapshot(&snapshot_path).unwrap().expect("periodic");
        assert_eq!(periodic.seq, 4);
        durable.finish().unwrap();
        let final_snap = load_snapshot(&snapshot_path).unwrap().expect("final");
        assert_eq!(final_snap.seq, 6);
    }

    #[test]
    fn reopen_continues_the_same_history() {
        let dir = scratch_dir("durable_reopen");
        let config = config_for(&dir.path().join("events.jsonl"), Some(3));

        let (mut durable, _) = DurableBook::open(config.clone(), 2, Engine::sequential()).unwrap();
        for i in 0..5 {
            durable.apply(Event::Add(offer(i))).unwrap();
        }
        durable.finish().unwrap();
        let before = durable.book_mut().answer(QueryKind::Aggregate);
        drop(durable);

        let (mut reopened, report) = DurableBook::open(config, 2, Engine::sequential()).unwrap();
        assert_eq!(report.journal_events, 5);
        assert_eq!(report.snapshot_seq, Some(5), "shutdown snapshot used");
        assert_eq!(report.replayed, 0);
        assert_eq!(reopened.book_mut().answer(QueryKind::Aggregate), before);

        // New mutations continue the id sequence.
        reopened.apply(Event::Add(offer(9))).unwrap();
        assert_eq!(reopened.seq(), 6);
        assert_eq!(reopened.book().live_ids().last(), Some(&5));
    }

    #[test]
    fn the_serving_loop_drives_a_durable_book() {
        let dir = scratch_dir("durable_loop");
        let config = config_for(&dir.path().join("events.jsonl"), Some(8));
        let journal_path = config.durability.as_ref().unwrap().journal.clone();

        let (durable, _) = DurableBook::open(config.clone(), 2, Engine::sequential()).unwrap();
        let mut handle = LiveServer::spawn_sink(durable);
        handle.add(offer(0)).unwrap();
        handle.add(offer(1)).unwrap();
        let live_answer = handle.query(QueryKind::Measure).unwrap();
        handle.remove(0).unwrap();
        handle.shutdown().unwrap();

        // The loop's clean drain ran finish(): journal synced + snapshot.
        let contents = read_journal(&journal_path).unwrap();
        assert_eq!(contents.events.len(), 3);

        // Recover and re-ask: byte-identical to the live answer's shape
        // at the same point (re-run the query pre-remove via a fresh book).
        let (mut replayed, _) = DurableBook::open(config, 2, Engine::sequential()).unwrap();
        assert_eq!(replayed.book().len(), 1);
        let mut check = LiveBook::new(ServeConfig::default(), 2, Engine::sequential()).unwrap();
        check.add(offer(0));
        check.add(offer(1));
        assert_eq!(check.answer(QueryKind::Measure), live_answer);
        let _ = replayed.book_mut();
    }

    #[test]
    fn apply_errors_carry_their_sequence() {
        let dir = scratch_dir("durable_apply_err");
        let config = config_for(&dir.path().join("events.jsonl"), None);
        let (mut durable, _) = DurableBook::open(config, 2, Engine::sequential()).unwrap();
        durable.apply(Event::Add(offer(0))).unwrap();
        let err = durable.apply(Event::Remove { id: 42 }).unwrap_err();
        assert!(matches!(err, StorageError::Apply { seq: 2, .. }), "{err}");
    }
}
