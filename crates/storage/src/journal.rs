//! The append-only event journal.
//!
//! One [`Event::to_json_line`] per line — the journal *is* a replayable
//! [`parse_script`](flexoffers_serving::parse_script) script, byte for
//! byte. The sequence number of a mutation is implicit: line `k` (1-based,
//! counting committed lines) is sequence `k`, which is what snapshots
//! record. The writer always terminates a line before counting it
//! committed, so after any crash the final line is either whole or torn;
//! readers drop an unterminated tail silently ([`read_journal`]) and
//! [`Journal::resume`] truncates it before appending.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use flexoffers_serving::{parse_script, Event, ScriptError};

use crate::error::StorageError;

/// What a journal file held: the committed (fully terminated, validated)
/// events and where they end.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalContents {
    /// The committed events, in journal order.
    pub events: Vec<Event>,
    /// Byte length of the committed prefix (everything up to and including
    /// the last newline; the file's tail past this point is torn).
    pub committed_bytes: u64,
    /// Whether an unterminated tail was discarded.
    pub dropped_torn_tail: bool,
}

/// Reads a journal file, dropping a torn tail. A missing file is an empty
/// journal (first boot), never an error; a *terminated* line that fails
/// validation is [`StorageError::CorruptJournal`].
pub fn read_journal(path: &Path) -> Result<JournalContents, StorageError> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(JournalContents {
                events: Vec::new(),
                committed_bytes: 0,
                dropped_torn_tail: false,
            })
        }
        Err(e) => return Err(StorageError::io(path, e)),
    };
    let committed = bytes
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |last| last + 1);
    let dropped_torn_tail = committed < bytes.len();
    let text = std::str::from_utf8(&bytes[..committed]).map_err(|e| {
        let line = bytes[..e.valid_up_to()]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
            + 1;
        StorageError::CorruptJournal {
            path: path.to_owned(),
            line,
            message: format!("invalid UTF-8: {e}"),
        }
    })?;
    let events = match parse_script(text) {
        Ok(events) => events,
        // An empty journal (or only a torn first line) replays to nothing.
        Err(ScriptError::Empty) => Vec::new(),
        Err(ScriptError::Line { line, message }) => {
            return Err(StorageError::CorruptJournal {
                path: path.to_owned(),
                line,
                message,
            })
        }
    };
    Ok(JournalContents {
        events,
        committed_bytes: committed as u64,
        dropped_torn_tail,
    })
}

/// The journal's append side: buffered writes, a line always terminated
/// before it counts, fsync every `sync_every` appends (and on demand).
#[derive(Debug)]
pub struct Journal {
    file: BufWriter<File>,
    path: PathBuf,
    seq: u64,
    sync_every: u64,
    since_sync: u64,
}

impl Journal {
    /// Creates a fresh, empty journal (truncating any existing file).
    pub fn create(path: &Path, sync_every: u64) -> Result<Self, StorageError> {
        let file = File::create(path).map_err(|e| StorageError::io(path, e))?;
        Ok(Self::wrap(file, path, 0, sync_every))
    }

    /// Opens an existing journal (creating it if missing) for appending at
    /// sequence `seq`, truncating the file to `committed_bytes` first —
    /// this is what discards a torn tail before new events go in.
    pub fn resume(
        path: &Path,
        sync_every: u64,
        committed_bytes: u64,
        seq: u64,
    ) -> Result<Self, StorageError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| StorageError::io(path, e))?;
        file.set_len(committed_bytes)
            .map_err(|e| StorageError::io(path, e))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| StorageError::io(path, e))?;
        Ok(Self::wrap(file, path, seq, sync_every))
    }

    fn wrap(file: File, path: &Path, seq: u64, sync_every: u64) -> Self {
        Self {
            file: BufWriter::new(file),
            path: path.to_owned(),
            seq,
            sync_every: sync_every.max(1),
            since_sync: 0,
        }
    }

    /// Appends one event line and returns its sequence number. Runs the
    /// batched fsync when due.
    pub fn append(&mut self, event: &Event) -> Result<u64, StorageError> {
        let mut line = event.to_json_line();
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| StorageError::io(&self.path, e))?;
        self.seq += 1;
        self.since_sync += 1;
        if self.since_sync >= self.sync_every {
            self.sync()?;
        }
        Ok(self.seq)
    }

    /// Flushes the buffer and fsyncs the file — called on the batch
    /// cadence, before every snapshot, and at clean shutdown.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.file
            .flush()
            .map_err(|e| StorageError::io(&self.path, e))?;
        self.file
            .get_ref()
            .sync_data()
            .map_err(|e| StorageError::io(&self.path, e))?;
        self.since_sync = 0;
        Ok(())
    }

    /// The sequence number of the last appended event (0 when empty).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::scratch_dir;
    use flexoffers_model::{FlexOffer, Slice};
    use flexoffers_serving::QueryKind;

    fn offer(tes: i64) -> FlexOffer {
        FlexOffer::new(tes, tes + 2, vec![Slice::new(1, 3).unwrap()]).unwrap()
    }

    #[test]
    fn journal_round_trips_and_is_a_parse_script_script() {
        let dir = scratch_dir("journal_roundtrip");
        let path = dir.path().join("events.jsonl");
        let events = vec![
            Event::Add(offer(0)),
            Event::Add(offer(1)),
            Event::Update {
                id: 1,
                offer: offer(9),
            },
            Event::Remove { id: 0 },
        ];
        let mut journal = Journal::create(&path, 2).unwrap();
        for (i, event) in events.iter().enumerate() {
            assert_eq!(journal.append(event).unwrap(), i as u64 + 1);
        }
        journal.sync().unwrap();
        assert_eq!(journal.seq(), 4);

        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.events, events);
        assert!(!contents.dropped_torn_tail);

        // The file is literally a parse_script script.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(parse_script(&text).unwrap(), events);
    }

    #[test]
    fn missing_journals_are_empty_not_errors() {
        let dir = scratch_dir("journal_missing");
        let contents = read_journal(&dir.path().join("nope.jsonl")).unwrap();
        assert_eq!(contents.events, Vec::new());
        assert_eq!(contents.committed_bytes, 0);
    }

    #[test]
    fn torn_tails_are_dropped_and_resume_truncates_them() {
        let dir = scratch_dir("journal_torn");
        let path = dir.path().join("events.jsonl");
        let mut journal = Journal::create(&path, 1).unwrap();
        journal.append(&Event::Add(offer(0))).unwrap();
        journal.append(&Event::Add(offer(1))).unwrap();
        drop(journal);
        let whole = std::fs::read(&path).unwrap();

        // Tear mid-way through the second line.
        let cut = whole.len() - 5;
        std::fs::write(&path, &whole[..cut]).unwrap();
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.events.len(), 1, "torn line dropped");
        assert!(contents.dropped_torn_tail);
        let first_line_len = contents.committed_bytes;

        // Resuming truncates the torn bytes and appends cleanly after.
        let mut resumed = Journal::resume(&path, 1, first_line_len, 1).unwrap();
        assert_eq!(resumed.append(&Event::Remove { id: 0 }).unwrap(), 2);
        resumed.sync().unwrap();
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.events.len(), 2);
        assert_eq!(contents.events[1], Event::Remove { id: 0 });
        assert!(!contents.dropped_torn_tail);
    }

    #[test]
    fn terminated_garbage_is_a_named_corruption_error() {
        let dir = scratch_dir("journal_garbage");
        let path = dir.path().join("events.jsonl");
        std::fs::write(&path, b"{\"event\":\"add\"\n").unwrap();
        let err = read_journal(&path).unwrap_err();
        assert!(
            matches!(err, StorageError::CorruptJournal { line: 1, .. }),
            "{err}"
        );

        // Valid first line, garbage second (terminated), torn third: the
        // terminated garbage is the error, not the torn tail.
        let mut text = Event::Add(offer(0)).to_json_line();
        text.push('\n');
        text.push_str("not json\n");
        text.push_str("{\"event\":\"add\"");
        std::fs::write(&path, text).unwrap();
        let err = read_journal(&path).unwrap_err();
        assert!(
            matches!(err, StorageError::CorruptJournal { line: 2, .. }),
            "{err}"
        );

        // Invalid UTF-8 on a terminated line is named, not panicked on.
        std::fs::write(&path, b"\xff\xfe\n").unwrap();
        let err = read_journal(&path).unwrap_err();
        assert!(matches!(err, StorageError::CorruptJournal { .. }), "{err}");
    }

    #[test]
    fn query_lines_are_tolerated_on_read() {
        // The durable writer never journals queries, but the journal is a
        // parse_script script — a hand-written one with queries replays.
        let dir = scratch_dir("journal_queries");
        let path = dir.path().join("events.jsonl");
        let mut text = Event::Add(offer(0)).to_json_line();
        text.push('\n');
        text.push_str(&Event::Query(QueryKind::Measure).to_json_line());
        text.push('\n');
        std::fs::write(&path, text).unwrap();
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.events.len(), 2);
    }
}
