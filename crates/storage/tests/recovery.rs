//! Recovery determinism properties — the acceptance bar of the durability
//! tier.
//!
//! Kill a durable serving run at *any* event, recover, and every query
//! answer must byte-match (a) an uninterrupted live run over the surviving
//! mutation prefix, and (b) the from-scratch batch oracle — at any shards
//! × threads × chunk × kernel budget. Separately, truncating the journal
//! at *every byte offset* must either recover cleanly (torn line dropped)
//! or fail with a named error, never panic.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use flexoffers_engine::{Budget, Engine, Kernel};
use flexoffers_model::{FlexOffer, Slice};
use flexoffers_serving::batch;
use flexoffers_serving::{DurabilityConfig, Event, EventSink, LiveBook, QueryKind, ServeConfig};
use flexoffers_storage::{recover, save_snapshot, DurableBook, Snapshot, StorageError};
use proptest::prelude::*;

/// Scratch dir under the system temp dir (no tempfile crate in the tree),
/// removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn scratch_dir(tag: &str) -> ScratchDir {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "flexoffers_recovery_{tag}_{}_{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    ScratchDir(dir)
}

fn arb_flexoffer() -> impl Strategy<Value = FlexOffer> {
    (
        0i64..4,
        0i64..5,
        prop::collection::vec((-5i64..5, 0i64..5), 1..5),
        0.0f64..1.0,
        0.0f64..1.0,
    )
        .prop_map(|(tes, window, raw, cmin_pos, cmax_pos)| {
            let slices: Vec<Slice> = raw
                .into_iter()
                .map(|(min, w)| Slice::new(min, min + w).unwrap())
                .collect();
            let pmin: i64 = slices.iter().map(Slice::min).sum();
            let pmax: i64 = slices.iter().map(Slice::max).sum();
            let cmin = pmin + ((pmax - pmin) as f64 * cmin_pos) as i64;
            let cmax = cmin + ((pmax - cmin) as f64 * cmax_pos) as i64;
            FlexOffer::with_totals(tes, tes + window, slices, cmin, cmax).unwrap()
        })
}

/// A raw op resolved against the ids live at apply time, so any generated
/// sequence is a valid event stream (see `crates/serving/tests/props.rs`).
#[derive(Clone, Debug)]
enum RawOp {
    Add(FlexOffer),
    Update(usize, FlexOffer),
    Remove(usize),
    Query(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<RawOp>> {
    let op = (0usize..8, 0usize..1 << 20, arb_flexoffer()).prop_map(|(sel, pick, fo)| match sel {
        0..=2 => RawOp::Add(fo),
        3 | 4 => RawOp::Update(pick, fo),
        5 => RawOp::Remove(pick),
        _ => RawOp::Query(pick),
    });
    prop::collection::vec(op, 0..20)
}

fn resolve(ops: Vec<RawOp>) -> Vec<Event> {
    let mut live: Vec<u64> = Vec::new();
    let mut next_id: u64 = 0;
    let mut events = Vec::new();
    for op in ops {
        match op {
            RawOp::Add(offer) => {
                live.push(next_id);
                next_id += 1;
                events.push(Event::Add(offer));
            }
            RawOp::Update(pick, offer) => {
                if !live.is_empty() {
                    let id = live[pick % live.len()];
                    events.push(Event::Update { id, offer });
                }
            }
            RawOp::Remove(pick) => {
                if !live.is_empty() {
                    let id = live.swap_remove(pick % live.len());
                    events.push(Event::Remove { id });
                }
            }
            RawOp::Query(pick) => {
                events.push(Event::Query(QueryKind::all()[pick % 4]));
            }
        }
    }
    events
}

fn durable_config(journal: &Path, snapshot_every: Option<u64>, sync_every: u64) -> ServeConfig {
    ServeConfig {
        durability: Some(DurabilityConfig {
            snapshot_every,
            sync_every,
            ..DurabilityConfig::new(journal)
        }),
        ..ServeConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The flagship property: run a durable book, kill it after a random
    /// number of events (no clean shutdown, snapshots possibly stale),
    /// recover under a *different* shards × threads × chunk × kernel
    /// budget, and every query answer byte-matches an uninterrupted
    /// memory-only run over the same mutation prefix — and the batch
    /// oracle.
    #[test]
    fn kill_at_random_event_recovers_byte_identically(
        ops in arb_ops(),
        cut_frac in 0usize..=100,
        serve_shards in 1usize..5,
        recover_shards in 1usize..5,
        threads in 1usize..4,
        chunk in 1usize..9,
        kernel_pick in 0usize..3,
        snapshot_pick in 0u64..7,
    ) {
        // 0 = no periodic snapshots; otherwise snapshot every 1..=6 events.
        let snapshot_every = (snapshot_pick > 0).then_some(snapshot_pick);
        let events = resolve(ops);
        let cut = events.len() * cut_frac / 100;
        let dir = scratch_dir("kill");
        // sync_every 1 so the surviving journal is exactly the applied
        // mutation prefix — the crash loses nothing, which is what makes
        // the uninterrupted reference well-defined.
        let config = durable_config(&dir.path().join("events.jsonl"), snapshot_every, 1);

        let (mut durable, _) =
            DurableBook::open(config.clone(), serve_shards, Engine::sequential()).unwrap();
        for event in &events[..cut] {
            durable.apply(event.clone()).expect("resolved events are valid");
        }
        drop(durable); // kill: no finish(), no shutdown snapshot

        let kernel = [Kernel::Scalar, Kernel::Columnar, Kernel::Auto][kernel_pick];
        let budget = Budget::with_threads(threads)
            .unwrap()
            .with_chunk_size(chunk)
            .unwrap()
            .with_kernel(kernel);
        let (mut recovered, report) =
            recover(&config, recover_shards, Engine::new(budget)).unwrap();

        let mutations: Vec<&Event> = events[..cut]
            .iter()
            .filter(|e| !matches!(e, Event::Query(_)))
            .collect();
        prop_assert_eq!(report.journal_events as usize, mutations.len());

        let mut uninterrupted =
            LiveBook::new(config.clone(), serve_shards, Engine::sequential()).unwrap();
        for event in &mutations {
            uninterrupted.apply((*event).clone()).expect("valid");
        }
        let logical = uninterrupted.to_portfolio();
        let flat = Engine::sequential();
        for kind in QueryKind::all() {
            let after_crash = recovered.answer(kind);
            let no_crash = uninterrupted.answer(kind);
            prop_assert_eq!(&after_crash, &no_crash, "{} diverged after recovery", kind);
            let oracle = batch::answer(&flat, &config, logical.as_slice(), kind);
            prop_assert_eq!(&after_crash, &oracle, "{} diverged from the batch oracle", kind);
        }
    }

    /// Torn-tail totality: truncating the journal at every byte offset
    /// either recovers cleanly to the complete-line prefix, or (with a
    /// deliberately corrupted snapshot) fails with a named error — never
    /// a panic, at any offset.
    #[test]
    fn truncation_at_every_byte_offset_never_panics(
        ops in arb_ops(),
        snapshot_at_frac in 0usize..=100,
    ) {
        let mutations: Vec<Event> = resolve(ops)
            .into_iter()
            .filter(|e| !matches!(e, Event::Query(_)))
            .collect();
        let dir = scratch_dir("torn");
        let journal_path = dir.path().join("events.jsonl");
        let config = durable_config(&journal_path, None, 1);
        let durability = config.durability.clone().unwrap();

        // Write the full journal through the real writer, snapshotting at
        // a random point so truncation can land before, at, or after it.
        let snapshot_at = mutations.len() * snapshot_at_frac / 100;
        let (mut durable, _) =
            DurableBook::open(config.clone(), 3, Engine::sequential()).unwrap();
        for (i, event) in mutations.iter().enumerate() {
            durable.apply(event.clone()).expect("valid");
            if i + 1 == snapshot_at {
                durable.snapshot_now().unwrap();
            }
        }
        drop(durable);

        let whole = std::fs::read(&journal_path).unwrap();
        for offset in 0..=whole.len() {
            std::fs::write(&journal_path, &whole[..offset]).unwrap();
            let complete_lines = whole[..offset].iter().filter(|&&b| b == b'\n').count();
            let (book, report) = recover(&config, 3, Engine::sequential())
                .unwrap_or_else(|e| panic!("offset {offset}: recovery errored: {e}"));
            prop_assert_eq!(
                report.journal_events as usize,
                complete_lines,
                "offset {} kept the wrong number of events",
                offset
            );
            prop_assert_eq!(
                report.dropped_torn_tail,
                offset > 0 && whole[offset - 1] != b'\n',
                "offset {} misreported its torn tail",
                offset
            );
            // Recovery state is the prefix state: live count must match a
            // replay of the surviving lines.
            let mut reference =
                LiveBook::new(config.clone(), 3, Engine::sequential()).unwrap();
            for event in &mutations[..complete_lines] {
                reference.apply(event.clone()).expect("valid");
            }
            prop_assert_eq!(book.live_ids(), reference.live_ids());
        }

        // With the snapshot corrupted instead, every offset is still a
        // named outcome: CorruptSnapshot when the snapshot is consulted.
        std::fs::write(durability.snapshot_path(), b"garbage\n{}\n").unwrap();
        std::fs::write(&journal_path, &whole).unwrap();
        let err = recover(&config, 3, Engine::sequential()).unwrap_err();
        prop_assert!(
            matches!(err, StorageError::CorruptSnapshot { .. }),
            "corrupt snapshot must be the named error, got {}",
            err
        );
    }
}

/// Deterministic single-case cousin of the proptest above, exercising a
/// larger stream with periodic snapshots — cheap insurance that the
/// proptest generators don't quietly shrink coverage.
#[test]
fn recovery_with_periodic_snapshots_matches_uninterrupted_run() {
    let dir = scratch_dir("periodic");
    let config = durable_config(&dir.path().join("events.jsonl"), Some(8), 3);

    let offers: Vec<FlexOffer> = (0..40)
        .map(|i| {
            FlexOffer::new(
                i % 6,
                i % 6 + 1 + i % 3,
                vec![Slice::new(-2 + i % 4, 3).unwrap()],
            )
            .unwrap()
        })
        .collect();
    let mut events: Vec<Event> = offers.iter().cloned().map(Event::Add).collect();
    events.push(Event::Remove { id: 11 });
    events.push(Event::Update {
        id: 12,
        offer: offers[0].clone(),
    });

    let (mut durable, _) = DurableBook::open(config.clone(), 4, Engine::sequential()).unwrap();
    for event in &events {
        durable.apply(event.clone()).unwrap();
    }
    drop(durable); // crash after the last event; snapshot sits at seq 40

    let (mut recovered, report) = recover(&config, 4, Engine::sequential()).unwrap();
    assert_eq!(report.journal_events, events.len() as u64);
    assert_eq!(report.snapshot_seq, Some(40));
    assert_eq!(report.replayed, events.len() as u64 - 40);

    let mut uninterrupted = LiveBook::new(config.clone(), 4, Engine::sequential()).unwrap();
    for event in &events {
        uninterrupted.apply(event.clone()).unwrap();
    }
    for kind in QueryKind::all() {
        assert_eq!(recovered.answer(kind), uninterrupted.answer(kind), "{kind}");
    }
}

/// A snapshot written mid-stream stays valid when the journal is cut back
/// exactly to its sequence: zero-replay recovery.
#[test]
fn zero_replay_recovery_from_an_exact_snapshot() {
    let dir = scratch_dir("exact");
    let journal_path = dir.path().join("events.jsonl");
    let config = durable_config(&journal_path, None, 1);
    let durability = config.durability.clone().unwrap();

    let (mut durable, _) = DurableBook::open(config.clone(), 2, Engine::sequential()).unwrap();
    for i in 0..9 {
        durable
            .apply(Event::Add(
                FlexOffer::new(i, i + 2, vec![Slice::new(0, 2).unwrap()]).unwrap(),
            ))
            .unwrap();
    }
    durable.snapshot_now().unwrap();
    drop(durable);

    // Hand-build the exact-seq case by re-saving the snapshot at the
    // journal's full length (snapshot_now already did) and recovering.
    let (mut recovered, report) = recover(&config, 2, Engine::sequential()).unwrap();
    assert_eq!(report.snapshot_seq, Some(9));
    assert_eq!(report.replayed, 0);
    assert_eq!(recovered.len(), 9);
    let answer = recovered.answer(QueryKind::Measure);
    assert!(answer.contains("\"offers\":9"), "{answer}");

    // And a snapshot one past the journal (hand-tampered) falls back to
    // full replay rather than erroring or panicking.
    let snapshot = Snapshot {
        seq: 10,
        export: recovered.export(),
    };
    save_snapshot(&durability.snapshot_path(), &snapshot).unwrap();
    let (_, report) = recover(&config, 2, Engine::sequential()).unwrap();
    assert_eq!(report.snapshot_seq, None, "ahead snapshot ignored");
    assert_eq!(report.replayed, 9);
}
