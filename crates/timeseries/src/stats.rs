//! Descriptive statistics over series.

use crate::series::Series;
use crate::value::SeriesValue;
use crate::Slot;

/// Summary statistics of a series' stored values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of stored values.
    pub len: usize,
    /// Sum of values.
    pub sum: f64,
    /// Arithmetic mean (0 for an empty series).
    pub mean: f64,
    /// Population variance (0 for an empty series).
    pub variance: f64,
    /// Minimum value, if any.
    pub min: Option<f64>,
    /// Maximum value, if any.
    pub max: Option<f64>,
    /// Largest absolute value (0 for an empty series).
    pub peak: f64,
}

impl Summary {
    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Computes [`Summary`] statistics for `series`.
pub fn summarize<T: SeriesValue>(series: &Series<T>) -> Summary {
    let len = series.len();
    if len == 0 {
        return Summary {
            len: 0,
            sum: 0.0,
            mean: 0.0,
            variance: 0.0,
            min: None,
            max: None,
            peak: 0.0,
        };
    }
    let mut sum = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut peak = 0.0f64;
    for (_, v) in series.iter() {
        let x = v.to_f64();
        sum += x;
        min = min.min(x);
        max = max.max(x);
        peak = peak.max(x.abs());
    }
    let mean = sum / len as f64;
    let variance = series
        .iter()
        .map(|(_, v)| {
            let d = v.to_f64() - mean;
            d * d
        })
        .sum::<f64>()
        / len as f64;
    Summary {
        len,
        sum,
        mean,
        variance,
        min: Some(min),
        max: Some(max),
        peak,
    }
}

/// The slot holding the maximum value (first on ties), or `None` if empty.
pub fn argmax<T: SeriesValue>(series: &Series<T>) -> Option<Slot> {
    let mut best: Option<(Slot, T)> = None;
    for (slot, v) in series.iter() {
        match best {
            None => best = Some((slot, v)),
            Some((_, bv)) if v > bv => best = Some((slot, v)),
            _ => {}
        }
    }
    best.map(|(slot, _)| slot)
}

/// The slot holding the minimum value (first on ties), or `None` if empty.
pub fn argmin<T: SeriesValue>(series: &Series<T>) -> Option<Slot> {
    let mut best: Option<(Slot, T)> = None;
    for (slot, v) in series.iter() {
        match best {
            None => best = Some((slot, v)),
            Some((_, bv)) if v < bv => best = Some((slot, v)),
            _ => {}
        }
    }
    best.map(|(slot, _)| slot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Series::new(0, vec![1i64, 2, 3, -6]);
        let sm = summarize(&s);
        assert_eq!(sm.len, 4);
        assert_eq!(sm.sum, 0.0);
        assert_eq!(sm.mean, 0.0);
        assert_eq!(sm.min, Some(-6.0));
        assert_eq!(sm.max, Some(3.0));
        assert_eq!(sm.peak, 6.0);
        assert_eq!(sm.variance, (1.0 + 4.0 + 9.0 + 36.0) / 4.0);
    }

    #[test]
    fn summary_of_empty() {
        let s: Series<i64> = Series::empty();
        let sm = summarize(&s);
        assert_eq!(sm.len, 0);
        assert_eq!(sm.min, None);
        assert_eq!(sm.max, None);
        assert_eq!(sm.peak, 0.0);
        assert_eq!(sm.std_dev(), 0.0);
    }

    #[test]
    fn constant_series_has_zero_variance() {
        let s = Series::constant(5, 10, 4i64);
        let sm = summarize(&s);
        assert_eq!(sm.variance, 0.0);
        assert_eq!(sm.mean, 4.0);
    }

    #[test]
    fn argmax_argmin_first_on_ties() {
        let s = Series::new(0, vec![1i64, 3, 3, 0, 0]);
        assert_eq!(argmax(&s), Some(1));
        assert_eq!(argmin(&s), Some(3));
        let e: Series<i64> = Series::empty();
        assert_eq!(argmax(&e), None);
        assert_eq!(argmin(&e), None);
    }
}
