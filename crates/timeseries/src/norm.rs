//! Series norms: Manhattan, Euclidean, maximum, and generalised p-norms.
//!
//! The paper applies the L1 (Manhattan) and L2 (Euclidean) norms to the
//! difference between a flex-offer's maximum and minimum assignments
//! (Definition 7, Example 5) and discusses — citing Lee & Verleysen \[7\] —
//! that such norms ignore the temporal structure of a series. The norms
//! here reproduce exactly that behaviour; the measures crate exposes the
//! consequence as the time-series measure's "captures time: No"
//! characteristic.

use serde::{Deserialize, Serialize};

use crate::error::TimeSeriesError;
use crate::series::Series;
use crate::value::SeriesValue;

/// A vector norm applied to a series' values.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Norm {
    /// Manhattan norm: sum of absolute values.
    L1,
    /// Euclidean norm: square root of the sum of squares.
    L2,
    /// Maximum norm: largest absolute value.
    LInf,
    /// Generalised p-norm for `p >= 1`; construct via [`Norm::lp`].
    Lp(f64),
}

impl Norm {
    /// Creates a generalised p-norm, rejecting `p < 1` (not a norm: the
    /// triangle inequality fails) and non-finite `p`.
    pub fn lp(p: f64) -> Result<Self, TimeSeriesError> {
        if !p.is_finite() || p < 1.0 {
            return Err(TimeSeriesError::InvalidNormOrder { p });
        }
        Ok(Norm::Lp(p))
    }

    /// Applies the norm to the series' values.
    pub fn of<T: SeriesValue>(self, series: &Series<T>) -> f64 {
        self.of_values(series.iter().map(|(_, v)| v.to_f64()))
    }

    /// Applies the norm to a plain value stream, accumulating in iteration
    /// order with exactly the arithmetic [`Norm::of`] uses — `of` is this
    /// function over the series' stored values, so a caller that streams
    /// the same values in the same order gets the bitwise-identical norm
    /// without materialising a [`Series`]. This is the seam the measures
    /// crate's columnar kernels evaluate the time-series measure through.
    pub fn of_values(self, values: impl Iterator<Item = f64>) -> f64 {
        match self {
            Norm::L1 => values.map(f64::abs).sum(),
            Norm::L2 => values.map(|x| x * x).sum::<f64>().sqrt(),
            Norm::LInf => values.map(f64::abs).fold(0.0, f64::max),
            Norm::Lp(p) => values.map(|x| x.abs().powf(p)).sum::<f64>().powf(1.0 / p),
        }
    }

    /// The norm of the difference `a - b`, i.e. the induced distance.
    pub fn distance<T: SeriesValue>(self, a: &Series<T>, b: &Series<T>) -> f64 {
        self.of(&(a - b))
    }

    /// Applies the norm to a plain 2-vector; used by the paper's *vector
    /// flexibility* measure (Definition 4, Example 4).
    pub fn of_vec2(self, x: f64, y: f64) -> f64 {
        match self {
            Norm::L1 => x.abs() + y.abs(),
            Norm::L2 => x.hypot(y),
            Norm::LInf => x.abs().max(y.abs()),
            Norm::Lp(p) => (x.abs().powf(p) + y.abs().powf(p)).powf(1.0 / p),
        }
    }

    /// A short, stable label ("L1", "L2", ...), used in reports and benches.
    pub fn label(self) -> String {
        match self {
            Norm::L1 => "L1".to_owned(),
            Norm::L2 => "L2".to_owned(),
            Norm::LInf => "Linf".to_owned(),
            Norm::Lp(p) => format!("L{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(values: Vec<i64>) -> Series<i64> {
        Series::new(0, values)
    }

    #[test]
    fn l1_is_sum_of_abs() {
        assert_eq!(Norm::L1.of(&s(vec![1, -2, 3])), 6.0);
    }

    #[test]
    fn l2_is_euclidean() {
        assert_eq!(Norm::L2.of(&s(vec![3, 4])), 5.0);
    }

    #[test]
    fn linf_is_max_abs() {
        assert_eq!(Norm::LInf.of(&s(vec![1, -7, 3])), 7.0);
    }

    #[test]
    fn lp_interpolates() {
        let series = s(vec![3, 4]);
        let p3 = Norm::lp(3.0).unwrap().of(&series);
        assert!((p3 - (27.0f64 + 64.0).powf(1.0 / 3.0)).abs() < 1e-12);
        // p-norms decrease with p for a fixed vector.
        assert!(Norm::L1.of(&series) >= p3);
        assert!(p3 >= Norm::LInf.of(&series));
    }

    #[test]
    fn invalid_p_rejected() {
        assert!(Norm::lp(0.5).is_err());
        assert!(Norm::lp(f64::NAN).is_err());
        assert!(Norm::lp(f64::INFINITY).is_err());
        assert!(Norm::lp(1.0).is_ok());
    }

    #[test]
    fn empty_series_has_zero_norm() {
        let e: Series<i64> = Series::empty();
        for n in [Norm::L1, Norm::L2, Norm::LInf, Norm::Lp(3.0)] {
            assert_eq!(n.of(&e), 0.0);
        }
    }

    #[test]
    fn distance_is_norm_of_difference() {
        let a = s(vec![1, 2]);
        let b = s(vec![0, 4]);
        assert_eq!(Norm::L1.distance(&a, &b), 3.0);
        assert_eq!(Norm::L1.distance(&b, &a), 3.0);
    }

    #[test]
    fn paper_example_5_norms() {
        // series_flexibility(f1): difference <0,1> has L1 = L2 = 1.
        let d = Series::new(0, vec![0i64, 1]);
        assert_eq!(Norm::L1.of(&d), 1.0);
        assert_eq!(Norm::L2.of(&d), 1.0);
    }

    #[test]
    fn paper_example_13_time_blindness() {
        // f1' = ([0,10], <[0,1]>) yields a difference with a single 1 ten
        // slots out; the norms cannot tell it from Example 5's series.
        let d_far = Series::new(10, vec![1i64]).with_domain(0..11);
        assert_eq!(Norm::L1.of(&d_far), 1.0);
        assert_eq!(Norm::L2.of(&d_far), 1.0);
    }

    #[test]
    fn vec2_norms_match_paper_example_4_arithmetic() {
        // <5, 10>: L1 = 15, L2 = 11.180...
        assert_eq!(Norm::L1.of_vec2(5.0, 10.0), 15.0);
        assert!((Norm::L2.of_vec2(5.0, 10.0) - 11.180339887498949).abs() < 1e-12);
    }

    #[test]
    fn norm_labels() {
        assert_eq!(Norm::L1.label(), "L1");
        assert_eq!(Norm::Lp(3.0).label(), "L3");
    }
}
