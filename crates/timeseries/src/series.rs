//! The [`Series`] type: a dense, offset-anchored discrete time series.

use std::fmt;
use std::ops::Range;

use serde::{Deserialize, Serialize};

use crate::value::SeriesValue;
use crate::Slot;

/// A discrete time series: a total function from time slots (`i64`) to values
/// of type `T`.
///
/// A series stores a contiguous block of values beginning at [`Series::start`]
/// and is implicitly [`SeriesValue::ZERO`] everywhere outside the stored
/// block. Two series are considered equal ([`PartialEq`]) when they are equal
/// *as functions* — leading or trailing explicit zeros and the anchor of an
/// all-zero series do not affect equality. This matches the paper's usage,
/// where an assignment "is a time series" (Definition 2) independent of how
/// much zero padding a representation happens to carry.
#[derive(Clone, Serialize, Deserialize)]
pub struct Series<T = i64> {
    start: Slot,
    values: Vec<T>,
}

impl<T: SeriesValue> Series<T> {
    /// Creates a series whose first stored value sits at slot `start`.
    pub fn new(start: Slot, values: Vec<T>) -> Self {
        Self { start, values }
    }

    /// Creates the everywhere-zero series.
    pub fn empty() -> Self {
        Self {
            start: 0,
            values: Vec::new(),
        }
    }

    /// Creates a series of `len` copies of `value` starting at `start`.
    pub fn constant(start: Slot, len: usize, value: T) -> Self {
        Self {
            start,
            values: vec![value; len],
        }
    }

    /// Creates a series of `len` values starting at `start`, with the value at
    /// slot `start + i` produced by `f(start + i)`.
    pub fn from_fn(start: Slot, len: usize, mut f: impl FnMut(Slot) -> T) -> Self {
        Self {
            start,
            values: (0..len as i64).map(|i| f(start + i)).collect(),
        }
    }

    /// Creates a series with a single stored value.
    pub fn singleton(slot: Slot, value: T) -> Self {
        Self {
            start: slot,
            values: vec![value],
        }
    }

    /// The slot of the first stored value. Meaningless for an empty series.
    pub fn start(&self) -> Slot {
        self.start
    }

    /// One past the slot of the last stored value.
    pub fn end(&self) -> Slot {
        self.start + self.values.len() as i64
    }

    /// The stored domain `start..end`.
    pub fn domain(&self) -> Range<Slot> {
        self.start..self.end()
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if no values are stored (the series is everywhere zero).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The stored values, without their slot anchors.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Consumes the series, returning its anchor and values.
    pub fn into_parts(self) -> (Slot, Vec<T>) {
        (self.start, self.values)
    }

    /// The stored value at `slot`, or `None` outside the stored domain.
    pub fn get(&self, slot: Slot) -> Option<T> {
        if slot < self.start {
            return None;
        }
        self.values.get((slot - self.start) as usize).copied()
    }

    /// The value of the series *as a function* at `slot`: the stored value
    /// inside the domain, zero outside.
    pub fn at(&self, slot: Slot) -> T {
        self.get(slot).unwrap_or(T::ZERO)
    }

    /// Iterates over `(slot, value)` pairs of the stored domain.
    pub fn iter(&self) -> impl Iterator<Item = (Slot, T)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, v)| (self.start + i as i64, *v))
    }

    /// Iterates over the `(slot, value)` pairs whose value is non-zero.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (Slot, T)> + '_ {
        self.iter().filter(|(_, v)| !v.is_zero())
    }

    /// Returns the same function shifted `dt` slots to the right
    /// (`shifted(s)(t) = s(t - dt)`).
    pub fn shifted(&self, dt: Slot) -> Self {
        Self {
            start: self.start + dt,
            values: self.values.clone(),
        }
    }

    /// The inclusive slot span `(first, last)` carrying non-zero values, or
    /// `None` if the series is everywhere zero.
    pub fn support(&self) -> Option<(Slot, Slot)> {
        let first = self.iter().find(|(_, v)| !v.is_zero())?.0;
        let last = self
            .iter()
            .filter(|(_, v)| !v.is_zero())
            .last()
            .expect("a first non-zero implies a last non-zero")
            .0;
        Some((first, last))
    }

    /// A copy with leading and trailing stored zeros removed. An all-zero
    /// series trims to [`Series::empty`].
    pub fn trimmed(&self) -> Self {
        match self.support() {
            None => Self::empty(),
            Some((first, last)) => self.restrict(first..last + 1),
        }
    }

    /// The restriction of the series to `range` (zero outside `range`),
    /// stored over exactly the intersection of `range` and the domain.
    pub fn restrict(&self, range: Range<Slot>) -> Self {
        let lo = range.start.max(self.start);
        let hi = range.end.min(self.end());
        if lo >= hi {
            return Self::empty();
        }
        let values = self.values[(lo - self.start) as usize..(hi - self.start) as usize].to_vec();
        Self { start: lo, values }
    }

    /// A copy whose stored domain is padded with zeros to cover `range` as
    /// well as the existing domain.
    pub fn with_domain(&self, range: Range<Slot>) -> Self {
        if range.start >= range.end {
            return self.clone();
        }
        if self.is_empty() {
            return Self::constant(range.start, (range.end - range.start) as usize, T::ZERO);
        }
        let lo = range.start.min(self.start);
        let hi = range.end.max(self.end());
        let mut values = vec![T::ZERO; (hi - lo) as usize];
        for (slot, v) in self.iter() {
            values[(slot - lo) as usize] = v;
        }
        Self { start: lo, values }
    }

    /// Sets the value at `slot`, growing the stored domain with zeros if
    /// needed.
    pub fn set(&mut self, slot: Slot, value: T) {
        self.ensure_contains(slot);
        let idx = (slot - self.start) as usize;
        self.values[idx] = value;
    }

    /// Adds `value` to the value at `slot`, growing the stored domain with
    /// zeros if needed.
    pub fn add_at(&mut self, slot: Slot, value: T) {
        self.ensure_contains(slot);
        let idx = (slot - self.start) as usize;
        self.values[idx] = self.values[idx] + value;
    }

    fn ensure_contains(&mut self, slot: Slot) {
        if self.is_empty() {
            self.start = slot;
            self.values.push(T::ZERO);
            return;
        }
        if slot < self.start {
            let pad = (self.start - slot) as usize;
            let mut new_values = vec![T::ZERO; pad];
            new_values.append(&mut self.values);
            self.values = new_values;
            self.start = slot;
        } else if slot >= self.end() {
            let pad = (slot - self.end() + 1) as usize;
            self.values.extend(std::iter::repeat_n(T::ZERO, pad));
        }
    }

    /// Sum of all values.
    pub fn sum(&self) -> T {
        self.values.iter().fold(T::ZERO, |acc, v| acc + *v)
    }

    /// Applies `f` to every stored value, preserving the anchor.
    pub fn map<U: SeriesValue>(&self, f: impl Fn(T) -> U) -> Series<U> {
        Series {
            start: self.start,
            values: self.values.iter().map(|v| f(*v)).collect(),
        }
    }

    /// Converts to a `f64`-valued series.
    pub fn to_f64(&self) -> Series<f64> {
        self.map(SeriesValue::to_f64)
    }

    /// Multiplies every value by `k`.
    pub fn scaled(&self, k: T) -> Self {
        self.map(|v| v * k)
    }

    /// Pointwise combination over the union of both stored domains; slots
    /// that only one side stores contribute [`SeriesValue::ZERO`] for the
    /// other side. The result stores the full union domain.
    pub fn zip_union<U: SeriesValue, R: SeriesValue>(
        &self,
        other: &Series<U>,
        f: impl Fn(T, U) -> R,
    ) -> Series<R> {
        if self.is_empty() && other.is_empty() {
            return Series::empty();
        }
        let (lo, hi) = if self.is_empty() {
            (other.start, other.end())
        } else if other.is_empty() {
            (self.start, self.end())
        } else {
            (self.start.min(other.start), self.end().max(other.end()))
        };
        Series::from_fn(lo, (hi - lo) as usize, |slot| {
            f(self.at(slot), other.at(slot))
        })
    }
}

impl<T: SeriesValue> Default for Series<T> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<T: SeriesValue> PartialEq for Series<T> {
    /// Function equality: equal values at every slot, ignoring zero padding.
    fn eq(&self, other: &Self) -> bool {
        if self.is_empty() && other.is_empty() {
            return true;
        }
        let lo = self.start.min(other.start);
        let hi = self.end().max(other.end());
        (lo..hi).all(|slot| self.at(slot) == other.at(slot))
    }
}

impl<T: SeriesValue> fmt::Debug for Series<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Series@{}{:?}", self.start, self.values)
    }
}

impl<T: SeriesValue + fmt::Display> fmt::Display for Series<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{t={}: <", self.start)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ">}}")
    }
}

impl<T: SeriesValue> FromIterator<(Slot, T)> for Series<T> {
    /// Builds a series from `(slot, value)` pairs; later pairs overwrite
    /// earlier ones at the same slot, and gaps are filled with zeros.
    fn from_iter<I: IntoIterator<Item = (Slot, T)>>(iter: I) -> Self {
        let mut s = Self::empty();
        for (slot, v) in iter {
            s.set(slot, v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let s = Series::new(2, vec![1i64, 2, 3]);
        assert_eq!(s.start(), 2);
        assert_eq!(s.end(), 5);
        assert_eq!(s.len(), 3);
        assert_eq!(s.at(2), 1);
        assert_eq!(s.at(4), 3);
        assert_eq!(s.at(1), 0);
        assert_eq!(s.at(5), 0);
        assert_eq!(s.get(1), None);
        assert_eq!(s.get(2), Some(1));
    }

    #[test]
    fn empty_series_is_zero_function() {
        let s: Series<i64> = Series::empty();
        assert!(s.is_empty());
        assert_eq!(s.at(0), 0);
        assert_eq!(s.at(-100), 0);
        assert_eq!(s.sum(), 0);
        assert_eq!(s.support(), None);
    }

    #[test]
    fn function_equality_ignores_padding() {
        let a = Series::new(1, vec![0i64, 5, 0]);
        let b = Series::new(2, vec![5i64]);
        assert_eq!(a, b);
        let c = Series::new(0, vec![0i64, 0]);
        assert_eq!(c, Series::empty());
    }

    #[test]
    fn inequality_detected() {
        let a = Series::new(0, vec![1i64]);
        let b = Series::new(1, vec![1i64]);
        assert_ne!(a, b);
    }

    #[test]
    fn shifted_moves_the_function() {
        let s = Series::new(0, vec![7i64, 8]);
        let t = s.shifted(3);
        assert_eq!(t.at(3), 7);
        assert_eq!(t.at(4), 8);
        assert_eq!(t.at(0), 0);
    }

    #[test]
    fn support_and_trim() {
        let s = Series::new(0, vec![0i64, 0, 3, 0, 4, 0]);
        assert_eq!(s.support(), Some((2, 4)));
        let t = s.trimmed();
        assert_eq!(t.start(), 2);
        assert_eq!(t.values(), &[3, 0, 4]);
        assert_eq!(s, t);
    }

    #[test]
    fn restrict_clips() {
        let s = Series::new(0, vec![1i64, 2, 3, 4]);
        let r = s.restrict(1..3);
        assert_eq!(r.start(), 1);
        assert_eq!(r.values(), &[2, 3]);
        assert!(s.restrict(10..20).is_empty());
        assert!(s.restrict(3..3).is_empty());
    }

    #[test]
    fn with_domain_pads() {
        let s = Series::new(2, vec![5i64]);
        let p = s.with_domain(0..5);
        assert_eq!(p.start(), 0);
        assert_eq!(p.values(), &[0, 0, 5, 0, 0]);
        assert_eq!(p, s);
    }

    #[test]
    fn set_and_add_grow_domain() {
        let mut s: Series<i64> = Series::empty();
        s.set(3, 5);
        assert_eq!(s.values(), &[5]);
        s.add_at(1, 2);
        assert_eq!(s.start(), 1);
        assert_eq!(s.values(), &[2, 0, 5]);
        s.add_at(4, -1);
        assert_eq!(s.values(), &[2, 0, 5, -1]);
        s.add_at(3, 5);
        assert_eq!(s.at(3), 10);
    }

    #[test]
    fn zip_union_covers_both_domains() {
        let a = Series::new(0, vec![1i64, 2]);
        let b = Series::new(3, vec![10i64]);
        let c = a.zip_union(&b, |x, y| x + y);
        assert_eq!(c.start(), 0);
        assert_eq!(c.values(), &[1, 2, 0, 10]);
    }

    #[test]
    fn zip_union_with_empty() {
        let a = Series::new(5, vec![1i64]);
        let e: Series<i64> = Series::empty();
        assert_eq!(a.zip_union(&e, |x, y| x + y), a);
        assert_eq!(e.zip_union(&a, |x, y| x + y), a);
        assert!(e.zip_union(&e, |x: i64, y: i64| x + y).is_empty());
    }

    #[test]
    fn from_iter_fills_gaps() {
        let s: Series<i64> = [(2, 5), (5, 7)].into_iter().collect();
        assert_eq!(s.start(), 2);
        assert_eq!(s.values(), &[5, 0, 0, 7]);
    }

    #[test]
    fn map_scale_sum() {
        let s = Series::new(0, vec![1i64, -2, 3]);
        assert_eq!(s.sum(), 2);
        assert_eq!(s.scaled(2).values(), &[2, -4, 6]);
        let f = s.to_f64();
        assert_eq!(f.values(), &[1.0, -2.0, 3.0]);
    }

    #[test]
    fn display_format() {
        let s = Series::new(1, vec![2i64, 3]);
        assert_eq!(format!("{s}"), "{t=1: <2, 3>}");
    }
}
