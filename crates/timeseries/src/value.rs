//! The scalar value types a [`Series`](crate::Series) can carry.

use std::fmt::Debug;
use std::ops::{Add, Mul, Neg, Sub};

/// Scalar type usable as the codomain of a [`Series`](crate::Series).
///
/// The workspace uses two instantiations: `i64` for energy amounts (the
/// paper's domain ℤ, Section 2) and `f64` for prices and other continuous
/// quantities in the market simulation.
pub trait SeriesValue:
    Copy
    + Debug
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + Default
    + 'static
{
    /// The additive identity; the implicit value of a series outside its
    /// stored domain.
    const ZERO: Self;

    /// The multiplicative identity.
    const ONE: Self;

    /// Lossy conversion to `f64`, used by norms and statistics.
    fn to_f64(self) -> f64;

    /// Conversion from `f64`. Integer values round half away from zero;
    /// used by mean-style aggregations that are intrinsically fractional.
    fn from_f64(v: f64) -> Self;

    /// Absolute value.
    fn abs_val(self) -> Self;

    /// `true` if this is exactly [`SeriesValue::ZERO`].
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }
}

impl SeriesValue for i64 {
    const ZERO: Self = 0;
    const ONE: Self = 1;

    fn to_f64(self) -> f64 {
        self as f64
    }

    fn from_f64(v: f64) -> Self {
        v.round() as i64
    }

    fn abs_val(self) -> Self {
        self.abs()
    }
}

impl SeriesValue for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    fn to_f64(self) -> f64 {
        self
    }

    fn from_f64(v: f64) -> Self {
        v
    }

    fn abs_val(self) -> Self {
        self.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i64_constants() {
        assert_eq!(<i64 as SeriesValue>::ZERO, 0);
        assert_eq!(<i64 as SeriesValue>::ONE, 1);
        assert!(0i64.is_zero());
        assert!(!3i64.is_zero());
    }

    #[test]
    fn i64_round_trip() {
        assert_eq!(i64::from_f64(2.5), 3);
        assert_eq!(i64::from_f64(-2.5), -3);
        assert_eq!(i64::from_f64(2.4), 2);
        assert_eq!(5i64.to_f64(), 5.0);
    }

    #[test]
    fn f64_identity() {
        assert_eq!(f64::from_f64(2.5), 2.5);
        assert_eq!(2.5f64.to_f64(), 2.5);
        assert_eq!((-2.5f64).abs_val(), 2.5);
    }

    #[test]
    fn abs_val_i64() {
        assert_eq!((-7i64).abs_val(), 7);
        assert_eq!(7i64.abs_val(), 7);
        assert_eq!(0i64.abs_val(), 0);
    }
}
