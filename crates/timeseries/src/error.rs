//! Error types for series operations.

use std::error::Error;
use std::fmt;

/// Errors produced by series operations.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum TimeSeriesError {
    /// A resampling or windowing factor of zero was supplied.
    InvalidFactor {
        /// The offending factor.
        factor: usize,
    },
    /// A p-norm order below 1 (or non-finite) was supplied.
    InvalidNormOrder {
        /// The offending order.
        p: f64,
    },
    /// An exponential-smoothing factor outside `(0, 1]` was supplied.
    InvalidSmoothing {
        /// The offending smoothing factor.
        alpha: f64,
    },
}

impl fmt::Display for TimeSeriesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeSeriesError::InvalidFactor { factor } => {
                write!(f, "resampling factor must be positive, got {factor}")
            }
            TimeSeriesError::InvalidNormOrder { p } => {
                write!(f, "p-norm order must be finite and >= 1, got {p}")
            }
            TimeSeriesError::InvalidSmoothing { alpha } => {
                write!(f, "smoothing factor must lie in (0, 1], got {alpha}")
            }
        }
    }
}

impl Error for TimeSeriesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            TimeSeriesError::InvalidFactor { factor: 0 }.to_string(),
            "resampling factor must be positive, got 0"
        );
        assert!(TimeSeriesError::InvalidNormOrder { p: 0.5 }
            .to_string()
            .contains("0.5"));
        assert!(TimeSeriesError::InvalidSmoothing { alpha: 2.0 }
            .to_string()
            .contains("(0, 1]"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error>(_: &E) {}
        assert_error(&TimeSeriesError::InvalidFactor { factor: 0 });
    }
}
