//! Arithmetic over series, aligned on the union of their domains.
//!
//! The operators borrow their operands (`&a + &b`); series are typically
//! reused after participating in arithmetic, so taking ownership would force
//! clones at most call sites.

use std::ops::{Add, Neg, Sub};

use crate::series::Series;
use crate::value::SeriesValue;

impl<T: SeriesValue> Add for &Series<T> {
    type Output = Series<T>;

    fn add(self, rhs: Self) -> Series<T> {
        self.zip_union(rhs, |a, b| a + b)
    }
}

impl<T: SeriesValue> Sub for &Series<T> {
    type Output = Series<T>;

    fn sub(self, rhs: Self) -> Series<T> {
        self.zip_union(rhs, |a, b| a - b)
    }
}

impl<T: SeriesValue> Neg for &Series<T> {
    type Output = Series<T>;

    fn neg(self) -> Series<T> {
        self.map(|v| -v)
    }
}

/// Sums an iterator of series over the union of all their domains.
pub fn sum_series<'a, T: SeriesValue + 'a>(
    iter: impl IntoIterator<Item = &'a Series<T>>,
) -> Series<T> {
    iter.into_iter().fold(Series::empty(), |acc, s| &acc + s)
}

/// Pointwise minimum over the union domain.
pub fn pointwise_min<T: SeriesValue>(a: &Series<T>, b: &Series<T>) -> Series<T> {
    a.zip_union(b, |x, y| if x < y { x } else { y })
}

/// Pointwise maximum over the union domain.
pub fn pointwise_max<T: SeriesValue>(a: &Series<T>, b: &Series<T>) -> Series<T> {
    a.zip_union(b, |x, y| if x > y { x } else { y })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_aligns_domains() {
        let a = Series::new(0, vec![1i64, 2, 3]);
        let b = Series::new(2, vec![10i64, 20]);
        let c = &a + &b;
        assert_eq!(c.start(), 0);
        assert_eq!(c.values(), &[1, 2, 13, 20]);
    }

    #[test]
    fn sub_gives_paper_example_5_difference() {
        // f1 = ([0,1], <[0,1]>): f_min = <0> @ 0, f_max = <1> @ 1.
        let f_min = Series::new(0, vec![0i64]);
        let f_max = Series::new(1, vec![1i64]);
        let d = &f_max - &f_min;
        assert_eq!(d, Series::new(0, vec![0i64, 1]));
    }

    #[test]
    fn neg_negates() {
        let a = Series::new(0, vec![1i64, -2]);
        assert_eq!((-&a).values(), &[-1, 2]);
    }

    #[test]
    fn add_then_sub_round_trips() {
        let a = Series::new(-1, vec![4i64, 5, 6]);
        let b = Series::new(1, vec![7i64, 8]);
        let c = &(&a + &b) - &b;
        assert_eq!(c, a);
    }

    #[test]
    fn sum_of_none_is_empty() {
        let out: Series<i64> = sum_series(std::iter::empty::<&Series<i64>>());
        assert!(out.is_empty());
    }

    #[test]
    fn sum_of_many() {
        let xs = [
            Series::new(0, vec![1i64]),
            Series::new(1, vec![2i64]),
            Series::new(0, vec![0i64, 3]),
        ];
        let total = sum_series(xs.iter());
        assert_eq!(total, Series::new(0, vec![1i64, 5]));
    }

    #[test]
    fn pointwise_min_max() {
        let a = Series::new(0, vec![1i64, 5]);
        let b = Series::new(0, vec![3i64, 2]);
        assert_eq!(pointwise_min(&a, &b).values(), &[1, 2]);
        assert_eq!(pointwise_max(&a, &b).values(), &[3, 5]);
    }

    #[test]
    fn min_against_zero_outside_domain() {
        let a = Series::new(0, vec![5i64]);
        let b = Series::new(1, vec![5i64]);
        // Outside each stored domain the other side is 0.
        assert_eq!(pointwise_min(&a, &b).values(), &[0, 0]);
        assert_eq!(pointwise_max(&a, &b).values(), &[5, 5]);
    }
}
