//! Discrete time-series substrate for the `flexoffers` workspace.
//!
//! Flex-offer *assignments* (Valsomatzis et al., EDBT 2015, Definition 2) are
//! time series, and the paper's *time-series flexibility measure*
//! (Definition 7) is the norm of a difference between two time series. This
//! crate provides the series algebra those definitions need:
//!
//! * [`Series`] — a total function from discrete time slots (`i64`) to values,
//!   stored as a start offset plus a dense value vector and implicitly zero
//!   everywhere else;
//! * arithmetic over the union domain ([`ops`]);
//! * the Manhattan, Euclidean, maximum and generalised p-norms ([`Norm`]);
//! * descriptive statistics ([`stats`]), resampling ([`resample`]) and
//!   rolling windows ([`window`]).
//!
//! Time has the domain of the integers here rather than the paper's natural
//! numbers: series arithmetic (differences, shifts) is total this way, and the
//! flex-offer model layer re-imposes non-negative starts where the paper
//! requires them.
//!
//! # Example
//!
//! ```
//! use flexoffers_timeseries::{Series, Norm};
//!
//! // The paper's Example 5: f_max - f_min = <0, 1> starting at slot 0.
//! let f_min = Series::new(0, vec![0i64]);
//! let f_max = Series::new(1, vec![1i64]);
//! let diff = &f_max - &f_min;
//! assert_eq!(Norm::L1.of(&diff), 1.0);
//! assert_eq!(Norm::L2.of(&diff), 1.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod norm;
pub mod ops;
pub mod resample;
pub mod series;
pub mod stats;
pub mod value;
pub mod window;

pub use error::TimeSeriesError;
pub use norm::Norm;
pub use resample::Aggregation;
pub use series::Series;
pub use value::SeriesValue;

/// A time slot index. Slots are dimensionless; callers choose the granularity
/// (the paper, Section 2: any precision is reached by scaling with a
/// coefficient).
pub type Slot = i64;
