//! Rolling-window transforms, used by the workload generators (price
//! smoothing, wind autocorrelation) and by schedulers inspecting local load.

use crate::error::TimeSeriesError;
use crate::resample::Aggregation;
use crate::series::Series;
use crate::value::SeriesValue;

/// Applies `agg` over a sliding window of `width` slots.
///
/// The output value at slot `t` aggregates input slots `t .. t+width` (a
/// *forward-looking* window, matching how a scheduler asks "how much load
/// lands in the next `width` slots starting here"). The output domain is the
/// input domain shrunk so every window fits entirely inside it; an input
/// shorter than `width` yields the empty series.
pub fn rolling<T: SeriesValue>(
    series: &Series<T>,
    width: usize,
    agg: Aggregation,
) -> Result<Series<T>, TimeSeriesError> {
    if width == 0 {
        return Err(TimeSeriesError::InvalidFactor { factor: width });
    }
    if series.len() < width {
        return Ok(Series::empty());
    }
    let n_out = series.len() - width + 1;
    let values = series.values();
    let out = (0..n_out)
        .map(|i| window_agg(&values[i..i + width], agg))
        .collect();
    Ok(Series::new(series.start(), out))
}

fn window_agg<T: SeriesValue>(window: &[T], agg: Aggregation) -> T {
    match agg {
        Aggregation::Sum => window.iter().fold(T::ZERO, |acc, v| acc + *v),
        Aggregation::Mean => {
            let sum: f64 = window.iter().map(|v| v.to_f64()).sum();
            T::from_f64(sum / window.len() as f64)
        }
        Aggregation::Max => window
            .iter()
            .copied()
            .reduce(|a, b| if b > a { b } else { a })
            .unwrap_or(T::ZERO),
        Aggregation::Min => window
            .iter()
            .copied()
            .reduce(|a, b| if b < a { b } else { a })
            .unwrap_or(T::ZERO),
    }
}

/// Exponential moving average with smoothing factor `alpha` in `(0, 1]`.
///
/// Used by the synthetic wind model to give production traces realistic
/// short-term autocorrelation.
pub fn ema(series: &Series<f64>, alpha: f64) -> Result<Series<f64>, TimeSeriesError> {
    if !(alpha > 0.0 && alpha <= 1.0) {
        return Err(TimeSeriesError::InvalidSmoothing { alpha });
    }
    if series.is_empty() {
        return Ok(Series::empty());
    }
    let mut out = Vec::with_capacity(series.len());
    let mut prev = series.values()[0];
    for &v in series.values() {
        prev = alpha * v + (1.0 - alpha) * prev;
        out.push(prev);
    }
    Ok(Series::new(series.start(), out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_sum() {
        let s = Series::new(2, vec![1i64, 2, 3, 4]);
        let r = rolling(&s, 2, Aggregation::Sum).unwrap();
        assert_eq!(r.start(), 2);
        assert_eq!(r.values(), &[3, 5, 7]);
    }

    #[test]
    fn rolling_width_one_is_identity() {
        let s = Series::new(0, vec![5i64, -1]);
        assert_eq!(rolling(&s, 1, Aggregation::Sum).unwrap(), s);
    }

    #[test]
    fn rolling_wider_than_series_is_empty() {
        let s = Series::new(0, vec![1i64]);
        assert!(rolling(&s, 2, Aggregation::Sum).unwrap().is_empty());
    }

    #[test]
    fn rolling_zero_width_rejected() {
        let s = Series::new(0, vec![1i64]);
        assert!(rolling(&s, 0, Aggregation::Sum).is_err());
    }

    #[test]
    fn rolling_max_min_mean() {
        let s = Series::new(0, vec![1i64, 5, 2]);
        assert_eq!(rolling(&s, 2, Aggregation::Max).unwrap().values(), &[5, 5]);
        assert_eq!(rolling(&s, 2, Aggregation::Min).unwrap().values(), &[1, 2]);
        assert_eq!(rolling(&s, 2, Aggregation::Mean).unwrap().values(), &[3, 4]);
    }

    #[test]
    fn ema_smooths_toward_signal() {
        let s = Series::new(0, vec![0.0, 10.0, 10.0, 10.0]);
        let e = ema(&s, 0.5).unwrap();
        assert_eq!(e.values()[0], 0.0);
        assert!(e.values()[1] > 0.0 && e.values()[1] < 10.0);
        // Monotone approach to the plateau value.
        assert!(e.values()[2] > e.values()[1]);
        assert!(e.values()[3] > e.values()[2]);
        assert!(e.values()[3] < 10.0);
    }

    #[test]
    fn ema_alpha_one_is_identity() {
        let s = Series::new(0, vec![3.0, -1.0, 4.0]);
        assert_eq!(ema(&s, 1.0).unwrap(), s);
    }

    #[test]
    fn ema_invalid_alpha() {
        let s = Series::new(0, vec![1.0]);
        assert!(ema(&s, 0.0).is_err());
        assert!(ema(&s, 1.5).is_err());
        assert!(ema(&s, f64::NAN).is_err());
    }
}
