//! Changing series granularity.
//!
//! The paper fixes slice duration at one time unit and notes (Section 2) that
//! any finer or coarser granularity is reached by scaling with a coefficient.
//! Resampling implements the coarsening direction: collapsing `factor`
//! consecutive slots into one.

use serde::{Deserialize, Serialize};

use crate::error::TimeSeriesError;
use crate::series::Series;
use crate::value::SeriesValue;

/// How values are combined when collapsing a bucket of consecutive slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregation {
    /// Sum of the bucket (appropriate for energy amounts).
    Sum,
    /// Mean of the bucket; integer series round half away from zero.
    Mean,
    /// Maximum of the bucket.
    Max,
    /// Minimum of the bucket.
    Min,
}

impl Aggregation {
    fn apply<T: SeriesValue>(self, values: &[T]) -> T {
        match self {
            Aggregation::Sum => values.iter().fold(T::ZERO, |acc, v| acc + *v),
            Aggregation::Mean => {
                let sum: f64 = values.iter().map(|v| v.to_f64()).sum();
                T::from_f64(sum / values.len() as f64)
            }
            Aggregation::Max => values
                .iter()
                .copied()
                .fold(None::<T>, |acc, v| match acc {
                    None => Some(v),
                    Some(a) => Some(if v > a { v } else { a }),
                })
                .unwrap_or(T::ZERO),
            Aggregation::Min => values
                .iter()
                .copied()
                .fold(None::<T>, |acc, v| match acc {
                    None => Some(v),
                    Some(a) => Some(if v < a { v } else { a }),
                })
                .unwrap_or(T::ZERO),
        }
    }
}

/// Collapses every `factor` consecutive slots into one.
///
/// Bucket `b` of the result covers input slots `b*factor .. (b+1)*factor`;
/// buckets are aligned to multiples of `factor` in absolute slot numbering,
/// so two series resampled with the same factor stay aligned. Slots the
/// input does not store contribute zeros, mirroring the series-as-function
/// semantics.
pub fn downsample<T: SeriesValue>(
    series: &Series<T>,
    factor: usize,
    agg: Aggregation,
) -> Result<Series<T>, TimeSeriesError> {
    if factor == 0 {
        return Err(TimeSeriesError::InvalidFactor { factor });
    }
    if series.is_empty() {
        return Ok(Series::empty());
    }
    let f = factor as i64;
    let first_bucket = series.start().div_euclid(f);
    let last_bucket = (series.end() - 1).div_euclid(f);
    let mut out = Vec::with_capacity((last_bucket - first_bucket + 1) as usize);
    let mut bucket = Vec::with_capacity(factor);
    for b in first_bucket..=last_bucket {
        bucket.clear();
        for slot in b * f..(b + 1) * f {
            bucket.push(series.at(slot));
        }
        out.push(agg.apply(&bucket));
    }
    Ok(Series::new(first_bucket, out))
}

/// Expands every slot into `factor` slots.
///
/// With [`Aggregation::Sum`] semantics in mind, `spread` divides each value
/// evenly across the new slots (integer series place the remainder on the
/// earliest slots so the total is preserved exactly); any other aggregation
/// repeats the value.
pub fn upsample<T: SeriesValue>(
    series: &Series<T>,
    factor: usize,
    spread: bool,
) -> Result<Series<T>, TimeSeriesError> {
    if factor == 0 {
        return Err(TimeSeriesError::InvalidFactor { factor });
    }
    if series.is_empty() {
        return Ok(Series::empty());
    }
    let f = factor as i64;
    let mut out = Vec::with_capacity(series.len() * factor);
    for (_, v) in series.iter() {
        if spread {
            // Integer-exact split: distribute v into `factor` parts whose
            // prefix sums match the real-valued even split.
            let total = v.to_f64();
            let mut emitted = 0.0;
            for k in 0..factor {
                let target = total * (k as f64 + 1.0) / factor as f64;
                let part = T::from_f64(target - emitted);
                emitted += part.to_f64();
                out.push(part);
            }
        } else {
            out.extend(std::iter::repeat_n(v, factor));
        }
    }
    Ok(Series::new(series.start() * f, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsample_sum_preserves_total() {
        let s = Series::new(0, vec![1i64, 2, 3, 4, 5, 6]);
        let d = downsample(&s, 2, Aggregation::Sum).unwrap();
        assert_eq!(d.values(), &[3, 7, 11]);
        assert_eq!(d.sum(), s.sum());
    }

    #[test]
    fn downsample_aligns_to_absolute_buckets() {
        // start = 1, factor = 2: first bucket covers slots 0..2 with an
        // implicit zero at slot 0.
        let s = Series::new(1, vec![10i64, 20, 30]);
        let d = downsample(&s, 2, Aggregation::Sum).unwrap();
        assert_eq!(d.start(), 0);
        assert_eq!(d.values(), &[10, 50]);
    }

    #[test]
    fn downsample_mean_max_min() {
        let s = Series::new(0, vec![1i64, 3, -5, 7]);
        assert_eq!(
            downsample(&s, 2, Aggregation::Mean).unwrap().values(),
            &[2, 1]
        );
        assert_eq!(
            downsample(&s, 2, Aggregation::Max).unwrap().values(),
            &[3, 7]
        );
        assert_eq!(
            downsample(&s, 2, Aggregation::Min).unwrap().values(),
            &[1, -5]
        );
    }

    #[test]
    fn downsample_negative_start() {
        let s = Series::new(-3, vec![1i64, 1, 1]);
        let d = downsample(&s, 2, Aggregation::Sum).unwrap();
        assert_eq!(d.start(), -2);
        assert_eq!(d.values(), &[1, 2]);
    }

    #[test]
    fn zero_factor_rejected() {
        let s = Series::new(0, vec![1i64]);
        assert!(downsample(&s, 0, Aggregation::Sum).is_err());
        assert!(upsample(&s, 0, true).is_err());
    }

    #[test]
    fn upsample_spread_preserves_total_exactly() {
        let s = Series::new(1, vec![7i64, -5]);
        let u = upsample(&s, 3, true).unwrap();
        assert_eq!(u.start(), 3);
        assert_eq!(u.sum(), s.sum());
        assert_eq!(u.values(), &[2, 3, 2, -2, -1, -2]);
    }

    #[test]
    fn upsample_repeat() {
        let s = Series::new(0, vec![4i64]);
        let u = upsample(&s, 3, false).unwrap();
        assert_eq!(u.values(), &[4, 4, 4]);
    }

    #[test]
    fn down_then_up_identity_for_constant() {
        let s = Series::constant(0, 4, 6i64);
        let d = downsample(&s, 2, Aggregation::Sum).unwrap();
        let u = upsample(&d, 2, true).unwrap();
        assert_eq!(u, s);
    }

    #[test]
    fn empty_series_resample() {
        let e: Series<i64> = Series::empty();
        assert!(downsample(&e, 4, Aggregation::Sum).unwrap().is_empty());
        assert!(upsample(&e, 4, true).unwrap().is_empty());
    }
}
