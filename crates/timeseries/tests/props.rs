//! Property-based tests for the series algebra.

use flexoffers_timeseries::ops::{pointwise_max, pointwise_min, sum_series};
use flexoffers_timeseries::{Norm, Series};
use proptest::prelude::*;

fn arb_series() -> impl Strategy<Value = Series<i64>> {
    (-20i64..20, prop::collection::vec(-50i64..50, 0..24))
        .prop_map(|(start, values)| Series::new(start, values))
}

proptest! {
    #[test]
    fn add_is_commutative(a in arb_series(), b in arb_series()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_is_associative(a in arb_series(), b in arb_series(), c in arb_series()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn zero_is_identity(a in arb_series()) {
        let zero: Series<i64> = Series::empty();
        prop_assert_eq!(&a + &zero, a.clone());
        prop_assert_eq!(&zero + &a, a);
    }

    #[test]
    fn sub_then_add_round_trips(a in arb_series(), b in arb_series()) {
        prop_assert_eq!(&(&a - &b) + &b, a);
    }

    #[test]
    fn neg_is_sub_from_zero(a in arb_series()) {
        let zero: Series<i64> = Series::empty();
        prop_assert_eq!(-&a, &zero - &a);
    }

    #[test]
    fn shift_is_invertible_and_preserves_norms(a in arb_series(), dt in -50i64..50) {
        let moved = a.shifted(dt);
        prop_assert_eq!(moved.shifted(-dt), a.clone());
        for n in [Norm::L1, Norm::L2, Norm::LInf] {
            prop_assert_eq!(n.of(&moved), n.of(&a));
        }
    }

    #[test]
    fn trim_preserves_function(a in arb_series()) {
        prop_assert_eq!(a.trimmed(), a);
    }

    #[test]
    fn with_domain_preserves_function(a in arb_series(), lo in -30i64..30, len in 0i64..30) {
        prop_assert_eq!(a.with_domain(lo..lo + len), a);
    }

    #[test]
    fn triangle_inequality(a in arb_series(), b in arb_series()) {
        for n in [Norm::L1, Norm::L2, Norm::LInf] {
            let lhs = n.of(&(&a + &b));
            let rhs = n.of(&a) + n.of(&b);
            prop_assert!(lhs <= rhs + 1e-9, "{} > {}", lhs, rhs);
        }
    }

    #[test]
    fn norm_zero_iff_zero_series(a in arb_series()) {
        let is_zero = a == Series::empty();
        for n in [Norm::L1, Norm::L2, Norm::LInf] {
            prop_assert_eq!(n.of(&a) == 0.0, is_zero);
        }
    }

    #[test]
    fn norm_ordering_l1_ge_l2_ge_linf(a in arb_series()) {
        let (l1, l2, linf) = (Norm::L1.of(&a), Norm::L2.of(&a), Norm::LInf.of(&a));
        prop_assert!(l1 + 1e-9 >= l2);
        prop_assert!(l2 + 1e-9 >= linf);
    }

    #[test]
    fn sum_series_matches_fold(xs in prop::collection::vec(arb_series(), 0..6)) {
        let total = sum_series(xs.iter());
        let folded = xs.iter().fold(Series::empty(), |acc, s| &acc + s);
        prop_assert_eq!(total, folded);
    }

    #[test]
    fn min_le_max_pointwise(a in arb_series(), b in arb_series()) {
        let mn = pointwise_min(&a, &b);
        let mx = pointwise_max(&a, &b);
        let lo = mn.start().min(mx.start()) - 2;
        let hi = mn.end().max(mx.end()) + 2;
        for slot in lo..hi {
            prop_assert!(mn.at(slot) <= mx.at(slot));
            prop_assert_eq!(mn.at(slot) + mx.at(slot), a.at(slot) + b.at(slot));
        }
    }

    #[test]
    fn restrict_union_covers(a in arb_series(), split in -20i64..20) {
        // Restriction to complementary ranges sums back to the original.
        let left = a.restrict(i64::MIN / 2..split);
        let right = a.restrict(split..i64::MAX / 2);
        prop_assert_eq!(&left + &right, a);
    }

    #[test]
    fn downsample_sum_preserves_total(a in arb_series(), factor in 1usize..5) {
        let d = flexoffers_timeseries::resample::downsample(
            &a, factor, flexoffers_timeseries::Aggregation::Sum).unwrap();
        prop_assert_eq!(d.sum(), a.sum());
    }

    #[test]
    fn upsample_spread_preserves_total(a in arb_series(), factor in 1usize..5) {
        let u = flexoffers_timeseries::resample::upsample(&a, factor, true).unwrap();
        prop_assert_eq!(u.sum(), a.sum());
    }
}
