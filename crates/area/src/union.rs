//! The union area of all assignments (Definition 10), in closed form.

use flexoffers_model::FlexOffer;

use crate::cell::Cell;

/// The union extent of one grid column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColumnExtent {
    /// The column's time slot.
    pub slot: i64,
    /// Cells covered above the axis: energies `0 .. above`.
    pub above: u64,
    /// Cells covered below the axis: energies `-below .. 0`.
    pub below: u64,
}

impl ColumnExtent {
    /// Cells covered in this column.
    pub fn size(&self) -> u64 {
        self.above + self.below
    }
}

/// The area jointly covered by all valid assignments of a flex-offer
/// (Definition 10's union), stored per column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnionArea {
    columns: Vec<ColumnExtent>,
}

impl UnionArea {
    /// Builds a union area from precomputed per-column extents. Callers
    /// must pass the columns ascending by slot and spanning the offer's
    /// occupancy window — the invariant [`union_area`] establishes and
    /// every accessor assumes. The seam exists for batch evaluators that
    /// compute extents out-of-line (the measures crate's columnar sweep)
    /// and hand the finished area to scalar consumers.
    pub fn from_columns(columns: Vec<ColumnExtent>) -> Self {
        debug_assert!(
            columns.windows(2).all(|w| w[1].slot == w[0].slot + 1),
            "columns must be contiguous and ascending by slot"
        );
        Self { columns }
    }

    /// Per-column extents, ascending by slot, spanning the occupancy window.
    pub fn columns(&self) -> &[ColumnExtent] {
        &self.columns
    }

    /// Total number of covered cells `|union of area(fa)|`.
    pub fn size(&self) -> u64 {
        self.columns.iter().map(ColumnExtent::size).sum()
    }

    /// The covered cells, ascending in `(t, e)` order.
    pub fn cells(&self) -> Vec<Cell> {
        let mut out = Vec::with_capacity(self.size() as usize);
        for col in &self.columns {
            for e in -(col.below as i64)..col.above as i64 {
                out.push(Cell::new(col.slot, e));
            }
        }
        out
    }

    /// Largest extent above the axis over all columns.
    pub fn max_above(&self) -> u64 {
        self.columns.iter().map(|c| c.above).max().unwrap_or(0)
    }

    /// Largest extent below the axis over all columns.
    pub fn max_below(&self) -> u64 {
        self.columns.iter().map(|c| c.below).max().unwrap_or(0)
    }
}

/// Computes the union area in `O(s + tf)` using monotonic-deque sliding
/// maxima over the achievable slice bands.
///
/// Column `c` is reachable by slice `i` started at `t` iff `c = t + i` with
/// `tes <= t <= tls`, i.e. `i` ranges over the window
/// `[c - tls, c - tes] ∩ [0, s)`. As `c` advances by one the window shifts
/// by one, so the per-column maxima of the bands' positive and negative ends
/// are classic sliding-window maxima.
pub fn union_area(fo: &FlexOffer) -> UnionArea {
    let s = fo.slice_count();
    let bands: Vec<(i64, i64)> = (0..s).map(|i| fo.achievable_band(i)).collect();
    // Per-slice contribution to the two sides of the axis.
    let above: Vec<i64> = bands.iter().map(|(_, hi)| (*hi).max(0)).collect();
    let below: Vec<i64> = bands.iter().map(|(lo, _)| (-*lo).max(0)).collect();

    let tes = fo.earliest_start();
    let tls = fo.latest_start();
    let mut columns = Vec::with_capacity((fo.latest_end() - tes) as usize);
    // Monotonic deques of slice indices with decreasing key values.
    let mut dq_above: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut dq_below: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for c in fo.occupancy_window() {
        // Window of slice indices for this column.
        let enter = c - tes; // largest index entering at this column
        let leave = c - tls; // smallest index still in the window
        if enter >= 0 && (enter as usize) < s {
            let i = enter as usize;
            while dq_above.back().is_some_and(|&j| above[j] <= above[i]) {
                dq_above.pop_back();
            }
            dq_above.push_back(i);
            while dq_below.back().is_some_and(|&j| below[j] <= below[i]) {
                dq_below.pop_back();
            }
            dq_below.push_back(i);
        }
        while dq_above.front().is_some_and(|&j| (j as i64) < leave) {
            dq_above.pop_front();
        }
        while dq_below.front().is_some_and(|&j| (j as i64) < leave) {
            dq_below.pop_front();
        }
        let col_above = dq_above.front().map_or(0, |&j| above[j]) as u64;
        let col_below = dq_below.front().map_or(0, |&j| below[j]) as u64;
        columns.push(ColumnExtent {
            slot: c,
            above: col_above,
            below: col_below,
        });
    }
    UnionArea { columns }
}

/// Reference implementation of [`union_area`]: direct double loop over
/// columns and slice indices, `O((s + tf) * s)`. Retained for cross-checking
/// and for the ablation benchmark comparing the two.
pub fn union_area_naive(fo: &FlexOffer) -> UnionArea {
    let s = fo.slice_count() as i64;
    let bands: Vec<(i64, i64)> = (0..fo.slice_count())
        .map(|i| fo.achievable_band(i))
        .collect();
    let tes = fo.earliest_start();
    let tls = fo.latest_start();
    let mut columns = Vec::new();
    for c in fo.occupancy_window() {
        let lo_i = (c - tls).max(0);
        let hi_i = (c - tes).min(s - 1);
        let mut above = 0i64;
        let mut below = 0i64;
        for i in lo_i..=hi_i {
            let (lo, hi) = bands[i as usize];
            above = above.max(hi.max(0));
            below = below.max((-lo).max(0));
        }
        columns.push(ColumnExtent {
            slot: c,
            above: above as u64,
            below: below as u64,
        });
    }
    UnionArea { columns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;

    fn fo(tes: i64, tls: i64, slices: Vec<(i64, i64)>) -> FlexOffer {
        FlexOffer::new(
            tes,
            tls,
            slices
                .into_iter()
                .map(|(a, b)| Slice::new(a, b).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn paper_figure_5_union() {
        // f4 = ([0,4], <[2,2]>): five assignments, two cells each,
        // union covers 10 cells.
        let f4 = fo(0, 4, vec![(2, 2)]);
        let u = union_area(&f4);
        assert_eq!(u.size(), 10);
        assert_eq!(u.columns().len(), 5);
        assert!(u.columns().iter().all(|c| c.above == 2 && c.below == 0));
    }

    #[test]
    fn paper_figure_6_union() {
        // f5 = ([0,4], <[1,1],[2,2]>): union has 1 + 2*5 = 11 cells (the
        // paper's Example 9 prose says "10-2" but its final value 8 matches
        // 11 - cmin(3); see EXPERIMENTS.md).
        let f5 = fo(0, 4, vec![(1, 1), (2, 2)]);
        let u = union_area(&f5);
        assert_eq!(u.size(), 11);
        let cols = u.columns();
        assert_eq!(
            cols[0],
            ColumnExtent {
                slot: 0,
                above: 1,
                below: 0
            }
        );
        for col in &cols[1..] {
            assert_eq!(col.above, 2);
            assert_eq!(col.below, 0);
        }
    }

    #[test]
    fn paper_figure_7_union_is_24() {
        // f6 = ([0,2], <[-1,2],[-4,-1],[-3,1]>): Example 15's joint area is
        // 24 cells.
        let f6 = fo(0, 2, vec![(-1, 2), (-4, -1), (-3, 1)]);
        let u = union_area(&f6);
        assert_eq!(u.size(), 24);
        let per_column: Vec<u64> = u.columns().iter().map(ColumnExtent::size).collect();
        assert_eq!(per_column, vec![3, 6, 6, 5, 4]);
    }

    #[test]
    fn naive_matches_deque_on_paper_figures() {
        for f in [
            fo(0, 4, vec![(2, 2)]),
            fo(0, 4, vec![(1, 1), (2, 2)]),
            fo(0, 2, vec![(-1, 2), (-4, -1), (-3, 1)]),
            fo(1, 6, vec![(1, 3), (2, 4), (0, 5), (0, 3)]),
        ] {
            assert_eq!(union_area(&f), union_area_naive(&f));
        }
    }

    #[test]
    fn totals_shrink_the_union() {
        // Two [0,5] slices with totals forced to [9,10]: each slice must
        // give at least 4, so nothing below energy 4 is *optional*, but the
        // area still spans 0..hi per column; the achievable band caps hi.
        let loose = fo(0, 0, vec![(0, 5), (0, 5)]);
        let tight = FlexOffer::with_totals(
            0,
            0,
            vec![Slice::new(0, 5).unwrap(), Slice::new(0, 5).unwrap()],
            9,
            10,
        )
        .unwrap();
        assert_eq!(union_area(&loose).size(), 10);
        // Bands stay [4,5] -> above extent 5 per column; union unchanged
        // in size here because areas are axis-anchored.
        assert_eq!(union_area(&tight).size(), 10);

        // But a cmax cap visibly shrinks it.
        let capped = FlexOffer::with_totals(
            0,
            0,
            vec![Slice::new(0, 5).unwrap(), Slice::new(0, 5).unwrap()],
            0,
            4,
        )
        .unwrap();
        // Each slice can reach at most 4.
        assert_eq!(union_area(&capped).size(), 8);
    }

    #[test]
    fn cells_enumeration_matches_size() {
        let f = fo(0, 2, vec![(-1, 2), (-4, -1), (-3, 1)]);
        let u = union_area(&f);
        let cells = u.cells();
        assert_eq!(cells.len() as u64, u.size());
        // All cells within the occupancy window.
        assert!(cells.iter().all(|c| (0..5).contains(&c.t)));
    }

    #[test]
    fn max_extents() {
        let f = fo(0, 2, vec![(-1, 2), (-4, -1), (-3, 1)]);
        let u = union_area(&f);
        assert_eq!(u.max_above(), 2);
        assert_eq!(u.max_below(), 4);
    }

    #[test]
    fn zero_flexoffer_has_zero_area() {
        let f = fo(0, 3, vec![(0, 0), (0, 0)]);
        assert_eq!(union_area(&f).size(), 0);
    }
}
