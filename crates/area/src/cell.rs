//! Grid cells of `G = N0 x Z` (paper, Section 3.2, absolute area-based
//! flexibility).

use serde::{Deserialize, Serialize};

/// A unit cell of the time/energy grid, identified by its lower-left corner
/// `(t, e)` — e.g. cell `(0, 0)` has corners `(0,0)`, `(0,1)`, `(1,0)`,
/// `(1,1)` (the paper's convention).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Cell {
    /// Time slot of the cell's left edge.
    pub t: i64,
    /// Energy coordinate of the cell's bottom edge.
    pub e: i64,
}

impl Cell {
    /// Creates a cell from its lower-left corner.
    pub fn new(t: i64, e: i64) -> Self {
        Self { t, e }
    }

    /// `true` if the cell lies above the time axis (consumption side).
    pub fn is_above_axis(&self) -> bool {
        self.e >= 0
    }
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.t, self.e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        let c = Cell::new(3, -2);
        assert_eq!(c.t, 3);
        assert_eq!(c.e, -2);
        assert_eq!(c.to_string(), "(3, -2)");
    }

    #[test]
    fn axis_sides() {
        assert!(Cell::new(0, 0).is_above_axis());
        assert!(Cell::new(0, 5).is_above_axis());
        assert!(!Cell::new(0, -1).is_above_axis());
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = vec![Cell::new(1, 0), Cell::new(0, 5), Cell::new(0, -1)];
        v.sort();
        assert_eq!(v, vec![Cell::new(0, -1), Cell::new(0, 5), Cell::new(1, 0)]);
    }
}
