//! Error types for area computations.

use std::error::Error;
use std::fmt;

/// Errors produced by area computations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AreaError {
    /// Brute-force enumeration was refused because `L(f)` exceeds the limit
    /// (or its size overflows `u128`).
    SpaceTooLarge {
        /// The configured assignment-count limit.
        limit: u128,
    },
}

impl fmt::Display for AreaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AreaError::SpaceTooLarge { limit } => write!(
                f,
                "assignment space exceeds the brute-force limit of {limit}"
            ),
        }
    }
}

impl Error for AreaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(AreaError::SpaceTooLarge { limit: 5 }
            .to_string()
            .contains('5'));
    }
}
