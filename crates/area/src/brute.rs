//! Brute-force union area by enumerating `L(f)` — the literal reading of
//! Definition 10, used to validate the closed form.

use std::collections::HashSet;

use flexoffers_model::FlexOffer;

use crate::assignment_area::assignment_area;
use crate::cell::Cell;
use crate::error::AreaError;

/// Computes `|union over fa in L(f) of area(fa)|` by enumerating every valid
/// assignment, refusing when `L(f)` exceeds `limit` assignments.
pub fn union_area_brute(fo: &FlexOffer, limit: u128) -> Result<u64, AreaError> {
    match fo.constrained_assignment_count() {
        Some(n) if n <= limit => {}
        _ => return Err(AreaError::SpaceTooLarge { limit }),
    }
    let mut cells: HashSet<Cell> = HashSet::new();
    for a in fo.assignments() {
        cells.extend(assignment_area(&a));
    }
    Ok(cells.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::union::union_area;
    use flexoffers_model::Slice;

    fn fo(tes: i64, tls: i64, slices: Vec<(i64, i64)>) -> FlexOffer {
        FlexOffer::new(
            tes,
            tls,
            slices
                .into_iter()
                .map(|(a, b)| Slice::new(a, b).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn brute_matches_closed_form_on_paper_figures() {
        for f in [
            fo(0, 4, vec![(2, 2)]),
            fo(0, 4, vec![(1, 1), (2, 2)]),
            fo(0, 2, vec![(-1, 2), (-4, -1), (-3, 1)]),
            fo(1, 6, vec![(1, 3), (2, 4), (0, 5), (0, 3)]),
        ] {
            assert_eq!(
                union_area_brute(&f, 1 << 20).unwrap(),
                union_area(&f).size(),
                "mismatch for {f}"
            );
        }
    }

    #[test]
    fn brute_respects_totals() {
        let f = FlexOffer::with_totals(
            0,
            0,
            vec![Slice::new(0, 5).unwrap(), Slice::new(0, 5).unwrap()],
            0,
            4,
        )
        .unwrap();
        assert_eq!(union_area_brute(&f, 1 << 20).unwrap(), 8);
    }

    #[test]
    fn limit_enforced() {
        let f = fo(0, 100, vec![(0, 50), (0, 50)]);
        assert!(matches!(
            union_area_brute(&f, 10),
            Err(AreaError::SpaceTooLarge { limit: 10 })
        ));
    }
}
