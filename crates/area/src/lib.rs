//! Grid-cell area semantics for flex-offers.
//!
//! The paper's *area-based* flexibility measures (Definitions 9–11) place
//! assignments on a two-dimensional grid `G = N0 x Z` — discretised time on
//! the x-axis, discretised energy on the y-axis, cells identified by their
//! lower-left corner — and measure the cells "between the assignment's energy
//! values and the x-axis" (Definition 9). The flexibility area of a
//! flex-offer is the union of the areas of *all* its valid assignments
//! (Definition 10).
//!
//! This crate computes:
//!
//! * the area of a single assignment ([`assignment_area()`]);
//! * the union area of all assignments, in closed form in
//!   `O(s + tf)` time ([`union::union_area`]) and by brute-force enumeration
//!   for cross-checking ([`brute::union_area_brute`]);
//! * ASCII renderings of flex-offers, assignments and union areas that
//!   regenerate the paper's Figures 1–7 ([`render`]).
//!
//! # Closed form
//!
//! An assignment's area in one column is *anchored at the time axis*: value
//! `v > 0` covers exactly the cells `0..v`, and `v < 0` covers `v..0`. The
//! per-column union over all assignments is therefore decided by the extreme
//! achievable values alone. Slice `i`'s achievable band under the total
//! constraints is computed by
//! [`FlexOffer::achievable_band`](flexoffers_model::FlexOffer::achievable_band),
//! and a column's union extent is the maximum positive band end (above the
//! axis) plus the maximum negative band end (below) over every `(start,
//! slice)` pair that lands on the column. Property tests verify the closed
//! form against brute-force enumeration.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod assignment_area;
pub mod brute;
pub mod cell;
pub mod error;
pub mod render;
pub mod union;

pub use assignment_area::{assignment_area, assignment_area_size};
pub use brute::union_area_brute;
pub use cell::Cell;
pub use error::AreaError;
pub use render::{render_assignment, render_flexoffer, render_union};
pub use union::{union_area, union_area_naive, ColumnExtent, UnionArea};
