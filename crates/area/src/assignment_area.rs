//! The area of a single assignment (Definition 9).

use flexoffers_model::Assignment;

use crate::cell::Cell;

/// The set of cells between the assignment's energy values and the time axis
/// (Definition 9), in ascending `(t, e)` order.
///
/// A value `v > 0` at slot `t` covers cells `(t, 0) .. (t, v-1)`; a value
/// `v < 0` covers `(t, -1) .. (t, v)` — the paper's Example 7 covers the
/// positive case, and the negative case follows from "between the energy
/// values and the X-axis" applied below the axis (used by Example 15's mixed
/// flex-offer).
pub fn assignment_area(a: &Assignment) -> Vec<Cell> {
    let mut cells = Vec::with_capacity(assignment_area_size(a) as usize);
    for (i, &v) in a.values().iter().enumerate() {
        let t = a.start() + i as i64;
        if v > 0 {
            cells.extend((0..v).map(|e| Cell::new(t, e)));
        } else if v < 0 {
            cells.extend((v..0).map(|e| Cell::new(t, e)));
        }
    }
    cells
}

/// The number of cells in [`assignment_area`]: `sum(|v(i)|)`.
pub fn assignment_area_size(a: &Assignment) -> u64 {
    a.values().iter().map(|v| v.unsigned_abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_7() {
        // {f3a} from t=1: <2, 1, 3> covers
        // {(1,0),(1,1),(2,0),(3,0),(3,1),(3,2)}.
        let a = Assignment::new(1, vec![2, 1, 3]);
        let cells = assignment_area(&a);
        assert_eq!(
            cells,
            vec![
                Cell::new(1, 0),
                Cell::new(1, 1),
                Cell::new(2, 0),
                Cell::new(3, 0),
                Cell::new(3, 1),
                Cell::new(3, 2),
            ]
        );
        assert_eq!(assignment_area_size(&a), 6);
    }

    #[test]
    fn zero_values_cover_nothing() {
        let a = Assignment::new(0, vec![0, 0, 0]);
        assert!(assignment_area(&a).is_empty());
        assert_eq!(assignment_area_size(&a), 0);
    }

    #[test]
    fn negative_values_cover_below_axis() {
        let a = Assignment::new(2, vec![-2]);
        assert_eq!(
            assignment_area(&a),
            vec![Cell::new(2, -2), Cell::new(2, -1)]
        );
        assert_eq!(assignment_area_size(&a), 2);
    }

    #[test]
    fn mixed_assignment() {
        let a = Assignment::new(0, vec![1, -1]);
        assert_eq!(assignment_area(&a), vec![Cell::new(0, 0), Cell::new(1, -1)]);
    }

    #[test]
    fn size_matches_cell_count_always() {
        let a = Assignment::new(-3, vec![4, 0, -5, 2]);
        assert_eq!(assignment_area(&a).len() as u64, assignment_area_size(&a));
        assert_eq!(assignment_area_size(&a), 11);
    }
}
