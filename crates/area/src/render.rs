//! ASCII renderings of flex-offers, assignments and union areas on the
//! time/energy grid — the tooling that regenerates the paper's Figures 1–7.
//!
//! Legend:
//!
//! * `#` — cells covered by *every* admissible choice (the inflexible part
//!   of a profile, or an assignment's area);
//! * `:` — cells covered by *some* admissible choice (the flexible band);
//! * `.` — uncovered grid cells;
//! * `=====` — the time axis separating consumption (above) from
//!   production (below).

use std::collections::HashMap;

use flexoffers_model::{Assignment, FlexOffer};

use crate::union::union_area;

/// Character grid over cell coordinates, rendered with energy labels on the
/// left, the time axis between energies 0 and -1, and slot labels at the
/// bottom. Cells are addressed like [`Cell`](crate::Cell): by their
/// lower-left corner.
struct Canvas {
    t_lo: i64,
    t_hi: i64, // exclusive
    e_lo: i64,
    e_hi: i64, // exclusive
    cells: HashMap<(i64, i64), char>,
}

impl Canvas {
    fn new(t_lo: i64, t_hi: i64, e_lo: i64, e_hi: i64) -> Self {
        Self {
            // Always show at least one row and column.
            t_lo,
            t_hi: t_hi.max(t_lo + 1),
            e_lo: e_lo.min(0),
            e_hi: e_hi.max(1),
            cells: HashMap::new(),
        }
    }

    /// Sets `ch` on cells between value `v` and the axis in column `t`
    /// (Definition 9's covering rule), without overwriting solid `#` cells.
    fn fill_to_axis(&mut self, t: i64, v: i64, ch: char) {
        let range = if v > 0 { 0..v } else { v..0 };
        for e in range {
            let entry = self.cells.entry((t, e)).or_insert(ch);
            if *entry != '#' {
                *entry = ch;
            }
        }
    }

    fn render(&self) -> String {
        let mut out = String::new();
        for e in (self.e_lo..self.e_hi).rev() {
            out.push_str(&format!("{e:>4} |"));
            for t in self.t_lo..self.t_hi {
                let ch = self.cells.get(&(t, e)).copied().unwrap_or('.');
                out.push(' ');
                out.push(ch);
                out.push(' ');
            }
            out.push('\n');
            if e == 0 {
                // The time axis sits between cell rows 0 and -1.
                out.push_str("     +");
                out.push_str(&"===".repeat((self.t_hi - self.t_lo) as usize));
                out.push('\n');
            }
        }
        // The loop prints the axis after row 0; grids floating entirely
        // above the axis still need a floor.
        if self.e_lo > 0 {
            out.push_str("     +");
            out.push_str(&"===".repeat((self.t_hi - self.t_lo) as usize));
            out.push('\n');
        }
        out.push_str("      ");
        for t in self.t_lo..self.t_hi {
            out.push_str(&format!("{t:^3}"));
        }
        out.push('\n');
        out
    }
}

/// Renders a flex-offer's profile anchored at its earliest start time, with
/// `#` for energy every admissible slice value covers and `:` for the
/// flexible band, plus the start window annotation — the layout of the
/// paper's Figure 1.
pub fn render_flexoffer(fo: &FlexOffer) -> String {
    // Cells covering value v occupy rows 0..v (or v..0), so the exclusive
    // upper row bound is the largest slice maximum itself.
    let e_hi = fo
        .slices()
        .iter()
        .map(|s| s.max())
        .max()
        .unwrap_or(0)
        .max(0);
    let e_lo = fo
        .slices()
        .iter()
        .map(|s| s.min())
        .min()
        .unwrap_or(0)
        .min(0);
    let mut canvas = Canvas::new(fo.earliest_start(), fo.latest_end(), e_lo, e_hi);
    for (i, s) in fo.slices().iter().enumerate() {
        let t = fo.earliest_start() + i as i64;
        // Flexible band first, solid core on top.
        canvas.fill_to_axis(t, s.min(), ':');
        canvas.fill_to_axis(t, s.max(), ':');
        let solid = if s.min() > 0 {
            s.min()
        } else if s.max() < 0 {
            s.max()
        } else {
            0
        };
        if solid != 0 {
            canvas.fill_to_axis(t, solid, '#');
        }
    }
    let mut out = format!("flex-offer {fo}\n");
    out.push_str(&canvas.render());
    out.push_str(&format!(
        "      start window: [{}, {}], profile shown at earliest start\n",
        fo.earliest_start(),
        fo.latest_start()
    ));
    out
}

/// Renders one assignment's area (`#` cells), the layout of Figure 4.
pub fn render_assignment(a: &Assignment) -> String {
    let e_hi = a.values().iter().copied().max().unwrap_or(0).max(0);
    let e_lo = a.values().iter().copied().min().unwrap_or(0).min(0);
    let mut canvas = Canvas::new(a.start(), a.start() + a.len() as i64, e_lo, e_hi);
    for (i, &v) in a.values().iter().enumerate() {
        canvas.fill_to_axis(a.start() + i as i64, v, '#');
    }
    let mut out = format!("assignment {a}\n");
    out.push_str(&canvas.render());
    out
}

/// Renders the union area of all valid assignments (`:` cells), the layout
/// of Figures 5–7.
pub fn render_union(fo: &FlexOffer) -> String {
    let u = union_area(fo);
    let e_hi = u.max_above() as i64;
    let e_lo = -(u.max_below() as i64);
    let mut canvas = Canvas::new(fo.earliest_start(), fo.latest_end(), e_lo, e_hi);
    for col in u.columns() {
        canvas.fill_to_axis(col.slot, col.above as i64, ':');
        canvas.fill_to_axis(col.slot, -(col.below as i64), ':');
    }
    let mut out = format!("union area of {fo}: {} cells\n", u.size());
    out.push_str(&canvas.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;

    fn fo(tes: i64, tls: i64, slices: Vec<(i64, i64)>) -> FlexOffer {
        FlexOffer::new(
            tes,
            tls,
            slices
                .into_iter()
                .map(|(a, b)| Slice::new(a, b).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn renders_tiny_consumption_profile() {
        let f = fo(0, 1, vec![(1, 2)]);
        let text = render_flexoffer(&f);
        // 2 energy rows + axis + labels + header + footer.
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("flex-offer"));
        // Row e=1 holds the flexible ':' cell; row e=0 the solid '#'.
        assert!(lines[1].contains(':'), "line: {}", lines[1]);
        assert!(lines[2].contains('#'), "line: {}", lines[2]);
        assert!(text.contains("start window: [0, 1]"));
    }

    #[test]
    fn assignment_render_matches_example_7_shape() {
        let a = Assignment::new(1, vec![2, 1, 3]);
        let text = render_assignment(&a);
        let hash_count = text.chars().filter(|c| *c == '#').count();
        assert_eq!(hash_count, 6, "six covered cells in Example 7:\n{text}");
    }

    /// Counts grid characters, skipping the header line (which may itself
    /// contain ':' from the flex-offer notation).
    fn grid_chars(text: &str, ch: char) -> usize {
        text.lines()
            .skip(1)
            .flat_map(str::chars)
            .filter(|c| *c == ch)
            .count()
    }

    #[test]
    fn union_render_counts_cells() {
        let f5 = fo(0, 4, vec![(1, 1), (2, 2)]);
        let text = render_union(&f5);
        assert!(text.contains("11 cells"), "{text}");
        assert_eq!(grid_chars(&text, ':'), 11);
    }

    #[test]
    fn mixed_union_renders_axis_between_sides() {
        let f6 = fo(0, 2, vec![(-1, 2), (-4, -1), (-3, 1)]);
        let text = render_union(&f6);
        assert!(text.contains("24 cells"));
        // Axis line present, production cells below it.
        assert!(text.contains("==="));
        assert_eq!(grid_chars(&text, ':'), 24);
    }

    #[test]
    fn negative_profile_renders_below_axis() {
        let f = fo(0, 0, vec![(-2, -1)]);
        let text = render_flexoffer(&f);
        assert!(text.contains('#'));
        assert!(text.contains(':'));
        assert!(text.contains("==="));
    }
}
