//! Property tests: the closed-form union area equals the brute-force union
//! over the enumerated assignment set, and per-assignment areas are
//! consistent with Definition 9.

use flexoffers_area::{
    assignment_area, assignment_area_size, union_area, union_area_brute, union_area_naive,
};
use flexoffers_model::{FlexOffer, Slice};
use proptest::prelude::*;

fn arb_flexoffer() -> impl Strategy<Value = FlexOffer> {
    (
        0i64..3,
        0i64..4,
        prop::collection::vec((-4i64..4, 0i64..4), 1..4),
        0.0f64..1.0,
        0.0f64..1.0,
    )
        .prop_map(|(tes, window, raw, cmin_pos, cmax_pos)| {
            let slices: Vec<Slice> = raw
                .into_iter()
                .map(|(min, w)| Slice::new(min, min + w).unwrap())
                .collect();
            let pmin: i64 = slices.iter().map(Slice::min).sum();
            let pmax: i64 = slices.iter().map(Slice::max).sum();
            let cmin = pmin + ((pmax - pmin) as f64 * cmin_pos) as i64;
            let cmax = cmin + ((pmax - cmin) as f64 * cmax_pos) as i64;
            FlexOffer::with_totals(tes, tes + window, slices, cmin, cmax).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn closed_form_equals_brute_force(fo in arb_flexoffer()) {
        let closed = union_area(&fo).size();
        let brute = union_area_brute(&fo, 1 << 22).expect("space bounded by strategy");
        prop_assert_eq!(closed, brute, "flex-offer {}", fo);
    }

    #[test]
    fn deque_equals_naive(fo in arb_flexoffer()) {
        prop_assert_eq!(union_area(&fo), union_area_naive(&fo));
    }

    #[test]
    fn union_dominates_every_assignment_area(fo in arb_flexoffer()) {
        let u = union_area(&fo).size();
        for a in fo.assignments() {
            prop_assert!(assignment_area_size(&a) <= u);
        }
    }

    #[test]
    fn assignment_area_cells_are_distinct_and_sized(fo in arb_flexoffer()) {
        for a in fo.assignments().take(64) {
            let cells = assignment_area(&a);
            let mut dedup = cells.clone();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), cells.len());
            prop_assert_eq!(cells.len() as u64, assignment_area_size(&a));
            // Definition 9: every cell sits between the value and the axis.
            for c in &cells {
                let v = a.value_at(c.t);
                if c.e >= 0 {
                    prop_assert!(c.e < v);
                } else {
                    prop_assert!(c.e >= v);
                }
            }
        }
    }

    #[test]
    fn union_columns_cover_occupancy_window_exactly(fo in arb_flexoffer()) {
        let u = union_area(&fo);
        let slots: Vec<i64> = u.columns().iter().map(|c| c.slot).collect();
        let expected: Vec<i64> = fo.occupancy_window().collect();
        prop_assert_eq!(slots, expected);
    }

    #[test]
    fn widening_the_start_window_never_shrinks_the_union(fo in arb_flexoffer()) {
        let wider = FlexOffer::with_totals(
            fo.earliest_start(),
            fo.latest_start() + 1,
            fo.slices().to_vec(),
            fo.total_min(),
            fo.total_max(),
        ).unwrap();
        prop_assert!(union_area(&wider).size() >= union_area(&fo).size());
    }
}
