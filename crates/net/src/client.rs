//! A small blocking client for the framed TCP tier — what `flexctl bomb`,
//! `bench_net`, and the integration suite speak.

use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};

use flexoffers_serving::Event;
use serde::Value;

use crate::conn::{Line, LineReader};
use crate::frame;

/// One parsed response line.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// `{"id":…,"ok":…}` — `payload` holds the raw JSON bytes of the `ok`
    /// value (`true`, `{"id":N}`, or a query answer object, verbatim).
    Ok {
        /// The echoed request id.
        id: u64,
        /// The raw `ok` value.
        payload: String,
    },
    /// `{"id":…,"error":{…}}` — `id` is `None` when the server could not
    /// attribute the error to a request (`"id":null`).
    Err {
        /// The echoed request id, if any.
        id: Option<u64>,
        /// The machine-readable code (see [`frame::ErrorCode`]).
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

impl Reply {
    /// Whether this is a success reply.
    pub fn is_ok(&self) -> bool {
        matches!(self, Reply::Ok { .. })
    }

    /// The server-assigned logical offer id of an add acknowledgement
    /// (`{"ok":{"id":N}}`), if this reply is one.
    pub fn assigned_id(&self) -> Option<u64> {
        let Reply::Ok { payload, .. } = self else {
            return None;
        };
        let value: Value = serde_json::from_str(payload).ok()?;
        match value.get("id") {
            Some(Value::U64(n)) => Some(*n),
            Some(Value::I64(n)) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// A blocking connection speaking the `{"id":…,"event":…}` framing with
/// auto-assigned, strictly increasing request ids.
pub struct NetClient {
    stream: TcpStream,
    reader: LineReader,
    next_id: u64,
}

impl NetClient {
    /// Connects and prepares the line reader (Nagle off — requests are
    /// single small lines).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader = LineReader::new(stream.try_clone()?);
        Ok(Self {
            stream,
            reader,
            next_id: 0,
        })
    }

    /// The id the next [`send_event`](Self::send_event) will use.
    pub fn next_request_id(&self) -> u64 {
        self.next_id
    }

    /// Frames and sends one event, blocking for its reply.
    pub fn send_event(&mut self, event: &Event) -> io::Result<Reply> {
        let id = self.next_id;
        self.next_id += 1;
        let line = frame::request_line(id, event);
        let raw = self.send_raw(&line)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            )
        })?;
        parse_reply(&raw).map_err(|message| io::Error::new(io::ErrorKind::InvalidData, message))
    }

    /// Sends one raw line (no framing help — tests poke malformed frames
    /// through here) and reads one reply line; `None` means the server
    /// closed the connection instead of replying.
    pub fn send_raw(&mut self, line: &str) -> io::Result<Option<String>> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        match self.reader.next_line(None) {
            Line::Data(reply) => Ok(Some(reply)),
            Line::Eof | Line::Oversize => Ok(None),
        }
    }
}

/// Parses one response line into a [`Reply`].
pub fn parse_reply(line: &str) -> Result<Reply, String> {
    let value: Value =
        serde_json::from_str(line).map_err(|e| format!("malformed reply JSON: {e}"))?;
    let id = match value.get("id") {
        Some(Value::U64(n)) => Some(*n),
        Some(Value::I64(n)) if *n >= 0 => Some(*n as u64),
        Some(Value::Null) => None,
        _ => return Err("reply needs an integer-or-null `id`".to_owned()),
    };
    if value.get("ok").is_some() {
        let id = id.ok_or("ok replies carry a non-null id")?;
        let payload = frame::ok_payload(line).ok_or("unrecognised ok-reply shape")?;
        return Ok(Reply::Ok {
            id,
            payload: payload.to_owned(),
        });
    }
    let error = value.get("error").ok_or("reply needs `ok` or `error`")?;
    let code = error
        .get("code")
        .and_then(Value::as_str)
        .ok_or("error replies need a string `code`")?;
    let message = error
        .get("message")
        .and_then(Value::as_str)
        .unwrap_or_default();
    Ok(Reply::Err {
        id,
        code: code.to_owned(),
        message: message.to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::ErrorCode;

    #[test]
    fn replies_parse_back() {
        assert_eq!(
            parse_reply(&frame::ok_true(3)).unwrap(),
            Reply::Ok {
                id: 3,
                payload: "true".to_owned()
            }
        );
        let added = parse_reply(&frame::ok_assigned(4, 17)).unwrap();
        assert_eq!(added.assigned_id(), Some(17));
        assert!(added.is_ok());

        let parsed = parse_reply(&frame::error_line(None, ErrorCode::BadFrame, "nope")).unwrap();
        assert_eq!(
            parsed,
            Reply::Err {
                id: None,
                code: "bad_frame".to_owned(),
                message: "nope".to_owned()
            }
        );
        assert!(!parsed.is_ok());
        assert_eq!(parsed.assigned_id(), None);

        assert!(parse_reply("{\"id\":1}").is_err());
        assert!(parse_reply("{\"id\":1.5,\"ok\":true}").is_err());
        assert!(parse_reply("nope").is_err());
    }
}
