//! The request/response envelope of the TCP tier.
//!
//! One request per line: `{"id":N,"event":{…}}`, where the nested object
//! is exactly one `flexoffers-jsonl/1` script event — the same bytes a
//! serve script or the journal holds (see `docs/PROTOCOL.md`, which is
//! normative for both layers). Responses echo the request id:
//! `{"id":N,"ok":…}` on success, `{"id":N,"error":{"code":…,"message":…}}`
//! on failure; `id` is `null` when the envelope itself was unreadable.
//! Request ids must be strictly increasing per connection — the connection
//! handler enforces that; this module only parses and renders lines.

use std::fmt;

use flexoffers_serving::Event;
use serde::Value;

/// The wire-format version the whole stack speaks — serve scripts, the
/// journal file, and this network framing. See `docs/PROTOCOL.md`.
pub const PROTOCOL_VERSION: &str = "flexoffers-jsonl/1";

/// Hard per-line ceiling; a longer frame closes the connection (a missing
/// newline must not buffer unboundedly).
pub const MAX_LINE_BYTES: usize = 16 * 1024 * 1024;

/// Machine-readable `code` values of response error lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The envelope was unreadable — malformed JSON, a missing or invalid
    /// `id`, a non-monotone id, or an oversize line. Closes the connection.
    BadFrame,
    /// The envelope parsed but the nested event did not (unknown tag, bad
    /// offer, float id, …). The connection stays open.
    BadEvent,
    /// An update/remove named an offer id that is not live. The
    /// connection stays open.
    UnknownId,
    /// The query's answer wait exceeded the server deadline. The
    /// connection stays open; the query still ran.
    Deadline,
    /// The server is draining for shutdown. Closes the connection.
    ShuttingDown,
    /// The serving loop or the server's own record/answer writers failed.
    /// Closes the connection.
    ServerError,
}

impl ErrorCode {
    /// The wire-format `code` string.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "bad_frame",
            ErrorCode::BadEvent => "bad_event",
            ErrorCode::UnknownId => "unknown_id",
            ErrorCode::Deadline => "deadline",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::ServerError => "server_error",
        }
    }

    /// Parses a wire-format `code` string.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "bad_frame" => Some(ErrorCode::BadFrame),
            "bad_event" => Some(ErrorCode::BadEvent),
            "unknown_id" => Some(ErrorCode::UnknownId),
            "deadline" => Some(ErrorCode::Deadline),
            "shutting_down" => Some(ErrorCode::ShuttingDown),
            "server_error" => Some(ErrorCode::ServerError),
            _ => None,
        }
    }

    /// Whether the server closes the connection after sending this code.
    pub fn closes_connection(self) -> bool {
        matches!(
            self,
            ErrorCode::BadFrame | ErrorCode::ShuttingDown | ErrorCode::ServerError
        )
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One parsed request frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// The client-chosen request id, echoed on the response line.
    pub id: u64,
    /// The nested script event.
    pub event: Event,
}

/// Why [`parse`] rejected a line — carries everything needed to render
/// the error response.
#[derive(Clone, Debug, PartialEq)]
pub struct FrameRejection {
    /// The request id, when the envelope got far enough to yield one.
    pub id: Option<u64>,
    /// The response `code` (also decides whether the connection closes).
    pub code: ErrorCode,
    /// Human-readable detail for the response `message`.
    pub message: String,
}

impl FrameRejection {
    /// Renders the rejection as its response line.
    pub fn line(&self) -> String {
        error_line(self.id, self.code, &self.message)
    }
}

/// Parses one request line into a [`Frame`].
///
/// Ids follow the same strictness as event ids (`docs/PROTOCOL.md`):
/// integer tokens only — `3.0`, `-1`, and `"3"` are all rejected.
pub fn parse(line: &str) -> Result<Frame, FrameRejection> {
    let bad =
        |id: Option<u64>, code: ErrorCode, message: String| FrameRejection { id, code, message };
    let value: Value = serde_json::from_str(line).map_err(|e| {
        bad(
            None,
            ErrorCode::BadFrame,
            format!("malformed frame JSON: {e}"),
        )
    })?;
    let Value::Object(fields) = &value else {
        return Err(bad(
            None,
            ErrorCode::BadFrame,
            format!("frame must be a JSON object, found {}", value.kind()),
        ));
    };
    for (key, _) in fields {
        if key != "id" && key != "event" {
            return Err(bad(
                None,
                ErrorCode::BadFrame,
                format!("unknown frame field `{key}`"),
            ));
        }
    }
    let id = match value.get("id") {
        None => return Err(bad(None, ErrorCode::BadFrame, "missing `id`".to_owned())),
        Some(Value::U64(n)) => *n,
        Some(Value::I64(n)) if *n >= 0 => *n as u64,
        Some(Value::I64(n)) => {
            return Err(bad(
                None,
                ErrorCode::BadFrame,
                format!("bad `id`: request id must be non-negative, got {n}"),
            ))
        }
        Some(Value::F64(f)) => {
            return Err(bad(
                None,
                ErrorCode::BadFrame,
                format!("bad `id`: request id must be an integer, got {f:?}"),
            ))
        }
        Some(other) => {
            return Err(bad(
                None,
                ErrorCode::BadFrame,
                format!("bad `id`: expected integer, found {}", other.kind()),
            ))
        }
    };
    let event_value = value
        .get("event")
        .ok_or_else(|| bad(Some(id), ErrorCode::BadFrame, "missing `event`".to_owned()))?;
    let event = Event::from_value(event_value)
        .map_err(|message| bad(Some(id), ErrorCode::BadEvent, message))?;
    Ok(Frame { id, event })
}

/// Renders a request line — what [`parse`] reads back.
pub fn request_line(id: u64, event: &Event) -> String {
    format!("{{\"id\":{id},\"event\":{}}}", event.to_json_line())
}

/// The success response of an update/remove: `{"id":N,"ok":true}`.
pub fn ok_true(id: u64) -> String {
    format!("{{\"id\":{id},\"ok\":true}}")
}

/// The success response of an add: `{"id":N,"ok":{"id":ASSIGNED}}` — the
/// server-assigned logical offer id the client must use for later
/// updates/removes.
pub fn ok_assigned(id: u64, assigned: u64) -> String {
    format!("{{\"id\":{id},\"ok\":{{\"id\":{assigned}}}}}")
}

/// The success response of a query: the serve answer line, verbatim, as
/// the `ok` value.
pub fn ok_answer(id: u64, answer: &str) -> String {
    format!("{{\"id\":{id},\"ok\":{answer}}}")
}

/// Renders an error response line (`id` `None` renders as `null`).
pub fn error_line(id: Option<u64>, code: ErrorCode, message: &str) -> String {
    let quoted = serde_json::to_string(&Value::Str(message.to_owned())).expect("strings serialize");
    match id {
        Some(id) => format!(
            "{{\"id\":{id},\"error\":{{\"code\":\"{}\",\"message\":{quoted}}}}}",
            code.name()
        ),
        None => format!(
            "{{\"id\":null,\"error\":{{\"code\":\"{}\",\"message\":{quoted}}}}}",
            code.name()
        ),
    }
}

/// Extracts the raw `ok` value from a success line rendered by
/// [`ok_true`]/[`ok_assigned`]/[`ok_answer`] — the exact answer bytes, no
/// re-serialization.
pub fn ok_payload(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("{\"id\":")?;
    let sep = rest.find(",\"ok\":")?;
    if sep == 0 || !rest[..sep].bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest[sep + ",\"ok\":".len()..].strip_suffix('}')
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_serving::QueryKind;

    #[test]
    fn request_lines_round_trip() {
        let event = Event::Query(QueryKind::Measure);
        let line = request_line(7, &event);
        assert_eq!(
            line,
            "{\"id\":7,\"event\":{\"event\":\"query\",\"kind\":\"measure\"}}"
        );
        let frame = parse(&line).unwrap();
        assert_eq!(frame, Frame { id: 7, event });
        let remove = Event::Remove { id: 3 };
        assert_eq!(parse(&request_line(8, &remove)).unwrap().event, remove);
    }

    #[test]
    fn envelope_ids_are_strict_integers() {
        for (line, needle) in [
            ("{\"id\":3.0,\"event\":{}}", "must be an integer"),
            ("{\"id\":-1,\"event\":{}}", "non-negative"),
            ("{\"id\":\"3\",\"event\":{}}", "expected integer"),
            (
                "{\"event\":{\"event\":\"remove\",\"id\":0}}",
                "missing `id`",
            ),
        ] {
            let rejection = parse(line).unwrap_err();
            assert_eq!(rejection.code, ErrorCode::BadFrame, "{line}");
            assert_eq!(rejection.id, None, "{line}");
            assert!(
                rejection.message.contains(needle),
                "{line} -> {}",
                rejection.message
            );
        }
    }

    #[test]
    fn envelope_errors_are_bad_frame_and_event_errors_are_bad_event() {
        let rejection = parse("not json").unwrap_err();
        assert_eq!(rejection.code, ErrorCode::BadFrame);
        assert!(rejection
            .line()
            .starts_with("{\"id\":null,\"error\":{\"code\":\"bad_frame\""));

        let rejection = parse("[1,2]").unwrap_err();
        assert!(rejection.message.contains("must be a JSON object"));

        let rejection = parse("{\"id\":1,\"event\":{\"event\":\"upsert\"}}").unwrap_err();
        assert_eq!(
            (rejection.id, rejection.code),
            (Some(1), ErrorCode::BadEvent)
        );
        assert!(rejection.message.contains("unknown event `upsert`"));

        // A float id nested in the event is the event's problem, not the
        // frame's — the connection survives it.
        let rejection =
            parse("{\"id\":2,\"event\":{\"event\":\"remove\",\"id\":3.0}}").unwrap_err();
        assert_eq!(
            (rejection.id, rejection.code),
            (Some(2), ErrorCode::BadEvent)
        );

        let rejection = parse("{\"id\":2,\"extra\":1,\"event\":{}}").unwrap_err();
        assert!(rejection.message.contains("unknown frame field `extra`"));

        let rejection = parse("{\"id\":2}").unwrap_err();
        assert_eq!(
            (rejection.id, rejection.code),
            (Some(2), ErrorCode::BadFrame)
        );
        assert!(rejection.message.contains("missing `event`"));
    }

    #[test]
    fn responses_render_and_extract() {
        assert_eq!(ok_true(4), "{\"id\":4,\"ok\":true}");
        assert_eq!(ok_assigned(4, 17), "{\"id\":4,\"ok\":{\"id\":17}}");
        let answer = "{\"query\":\"measure\",\"offers\":2}";
        assert_eq!(
            ok_answer(9, answer),
            format!("{{\"id\":9,\"ok\":{answer}}}")
        );
        assert_eq!(ok_payload(&ok_answer(9, answer)), Some(answer));
        assert_eq!(ok_payload(&ok_true(4)), Some("true"));
        assert_eq!(ok_payload(&ok_assigned(4, 17)), Some("{\"id\":17}"));
        assert_eq!(ok_payload("{\"id\":1,\"error\":{}}"), None);

        let line = error_line(Some(5), ErrorCode::Deadline, "query \"x\" late");
        assert_eq!(
            line,
            "{\"id\":5,\"error\":{\"code\":\"deadline\",\"message\":\"query \\\"x\\\" late\"}}"
        );
        let _: Value = serde_json::from_str(&line).expect("escaped messages stay valid JSON");
        assert!(error_line(None, ErrorCode::BadFrame, "x").starts_with("{\"id\":null,"));
    }

    #[test]
    fn error_codes_round_trip_and_classify() {
        for code in [
            ErrorCode::BadFrame,
            ErrorCode::BadEvent,
            ErrorCode::UnknownId,
            ErrorCode::Deadline,
            ErrorCode::ShuttingDown,
            ErrorCode::ServerError,
        ] {
            assert_eq!(ErrorCode::parse(code.name()), Some(code));
            assert_eq!(code.to_string(), code.name());
        }
        assert_eq!(ErrorCode::parse("teapot"), None);
        assert!(ErrorCode::BadFrame.closes_connection());
        assert!(!ErrorCode::UnknownId.closes_connection());
        assert!(!ErrorCode::Deadline.closes_connection());
    }
}
