//! The framed TCP server over one serving loop.
//!
//! A fixed pool of [`NetConfig::max_conns`] worker threads pulls accepted
//! connections off a queue; each worker owns one connection at a time and
//! reads `{"id":…,"event":…}` frames line by line. Every request — from
//! any connection — passes through one mutex-guarded gate that holds the
//! [`LiveHandle`], the live-id set, and the record/answer writers, so the
//! order the server acknowledges is exactly the order the book applied and
//! the order the record file shows. That single serialization point is
//! what makes the recorded log a byte-identity oracle: replaying it
//! through `flexctl serve --script --batch` reproduces every answered
//! query byte-for-byte.
//!
//! The gate also mirrors `parse_script_from`'s static validation
//! dynamically: updates/removes of ids that are not live are refused at
//! the gate (an `unknown_id` error response) instead of reaching the sink,
//! where they would kill the loop for every connection.

use std::collections::BTreeSet;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Duration;

use flexoffers_serving::{Event, LiveHandle, ServeError};

use crate::conn::{Line, LineReader};
use crate::frame::{self, ErrorCode};

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(15);
/// Socket read timeout — bounds how long a drain waits on an idle reader.
const READ_POLL: Duration = Duration::from_millis(50);
/// How long an idle worker waits for the next queued connection.
const DISPATCH_POLL: Duration = Duration::from_millis(25);

/// Tunables of a [`NetServer`].
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Fixed worker-pool size; connections beyond it queue until a worker
    /// frees up (`flexctl serve --max-conns`).
    pub max_conns: usize,
    /// Per-query bound on the answer wait (`--deadline-ms`). `None` waits
    /// indefinitely; a zero duration refuses every query immediately — a
    /// deterministic drill switch.
    pub deadline: Option<Duration>,
    /// Write every applied mutation and answered query to this path as a
    /// canonical serve script (`--record`) — the byte-identity oracle's
    /// input.
    pub record: Option<PathBuf>,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            max_conns: 4,
            deadline: None,
            record: None,
        }
    }
}

/// What a finished [`NetServer::run`] reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Frames read (including ones answered with an error).
    pub requests: u64,
    /// Mutations acknowledged and applied.
    pub mutations: u64,
    /// Queries answered within their deadline.
    pub queries: u64,
    /// Error responses sent (all codes, deadline expiries included).
    pub errors: u64,
    /// The subset of `errors` that were deadline expiries.
    pub deadline_expired: u64,
}

impl fmt::Display for NetSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "served {} connections, {} requests ({} mutations, {} queries, {} errors, {} deadline-expired)",
            self.connections, self.requests, self.mutations, self.queries, self.errors,
            self.deadline_expired
        )
    }
}

/// Why the server stopped instead of reporting a summary.
#[derive(Debug)]
pub enum NetError<E> {
    /// The listener, the record file, or the answer writer failed.
    Io(io::Error),
    /// The serving loop's sink failed (surfaced by its shutdown).
    Sink(E),
}

impl<E: fmt::Display> fmt::Display for NetError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "network serving I/O error: {e}"),
            NetError::Sink(e) => write!(f, "serving sink failed: {e}"),
        }
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for NetError<E> {}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    mutations: AtomicU64,
    queries: AtomicU64,
    errors: AtomicU64,
    deadline_expired: AtomicU64,
}

impl Counters {
    fn summary(&self) -> NetSummary {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        NetSummary {
            connections: load(&self.connections),
            requests: load(&self.requests),
            mutations: load(&self.mutations),
            queries: load(&self.queries),
            errors: load(&self.errors),
            deadline_expired: load(&self.deadline_expired),
        }
    }
}

fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// The single serialization point: every request holds this across
/// validate + send + record, so acknowledged order == applied order ==
/// recorded order.
struct Gate<E, W> {
    handle: LiveHandle<E>,
    live: BTreeSet<u64>,
    next_id: u64,
    answers: W,
    record: Option<BufWriter<File>>,
    io_failure: Option<io::Error>,
}

impl<E, W: Write> Gate<E, W> {
    fn record_line(&mut self, line: &str) -> io::Result<()> {
        if let Some(record) = &mut self.record {
            writeln!(record, "{line}")?;
        }
        Ok(())
    }

    fn answer_lines(&mut self, query_line: &str, answer: &str) -> io::Result<()> {
        self.record_line(query_line)?;
        writeln!(self.answers, "{answer}")?;
        self.answers.flush()
    }
}

/// The TCP front: a listener plus the state [`run`](Self::run) turns into
/// a worker pool.
pub struct NetServer<E: Send + 'static> {
    listener: TcpListener,
    addr: SocketAddr,
    config: NetConfig,
    handle: LiveHandle<E>,
    live: BTreeSet<u64>,
    next_id: u64,
}

impl<E: Send + 'static> NetServer<E> {
    /// Binds the listener and wires it to a serving loop's handle.
    ///
    /// `live_ids` and `next_id` seed server-side id validation with the
    /// (possibly journal-recovered) book's state — the dynamic mirror of
    /// [`parse_script_from`](flexoffers_serving::parse_script_from)'s
    /// seeding.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        config: NetConfig,
        handle: LiveHandle<E>,
        live_ids: Vec<u64>,
        next_id: u64,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Self {
            listener,
            addr,
            config,
            handle,
            live: live_ids.into_iter().collect(),
            next_id,
        })
    }

    /// The bound address (`--listen 127.0.0.1:0` resolves here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves until `stop` flips: stops accepting, drains requests already
    /// received, joins the workers, then shuts the serving loop down —
    /// running the sink's `finish()` (journal sync + shutdown snapshot for
    /// a durable sink). Answered query lines stream to `answers` in
    /// serialization order — the same bytes `serve --script` would print
    /// for the recorded log.
    pub fn run<W: Write + Send>(
        self,
        stop: &AtomicBool,
        answers: W,
    ) -> Result<NetSummary, NetError<E>> {
        let NetServer {
            listener,
            addr: _,
            config,
            handle,
            live,
            next_id,
        } = self;
        let record = match &config.record {
            Some(path) => Some(BufWriter::new(File::create(path).map_err(NetError::Io)?)),
            None => None,
        };
        listener.set_nonblocking(true).map_err(NetError::Io)?;
        let deadline = config.deadline;
        let gate = Mutex::new(Gate {
            handle,
            live,
            next_id,
            answers,
            record,
            io_failure: None,
        });
        let counters = Counters::default();
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Mutex::new(conn_rx);

        let accept_error = std::thread::scope(|scope| {
            for _ in 0..config.max_conns.max(1) {
                scope.spawn(|| worker(&conn_rx, &gate, &counters, stop, deadline));
            }
            let mut accept_error = None;
            loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        bump(&counters.connections);
                        let _ = stream.set_nodelay(true);
                        if stream.set_read_timeout(Some(READ_POLL)).is_err() {
                            continue;
                        }
                        if conn_tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        stop.store(true, Ordering::SeqCst);
                        accept_error = Some(e);
                        break;
                    }
                }
            }
            // Dropping the sender is what lets idle workers exit; busy
            // ones finish their drain first (the scope joins them).
            drop(conn_tx);
            accept_error
        });

        let mut gate = gate
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner());
        let flush_failure = match gate.record.as_mut() {
            Some(record) => record.flush().and_then(|()| gate.answers.flush()),
            None => gate.answers.flush(),
        }
        .err();
        gate.handle.shutdown().map_err(NetError::Sink)?;
        if let Some(e) = accept_error {
            return Err(NetError::Io(e));
        }
        if let Some(e) = gate.io_failure {
            return Err(NetError::Io(e));
        }
        if let Some(e) = flush_failure {
            return Err(NetError::Io(e));
        }
        Ok(counters.summary())
    }
}

fn worker<E: Send + 'static, W: Write + Send>(
    conn_rx: &Mutex<mpsc::Receiver<TcpStream>>,
    gate: &Mutex<Gate<E, W>>,
    counters: &Counters,
    stop: &AtomicBool,
    deadline: Option<Duration>,
) {
    loop {
        let next = {
            let rx = conn_rx.lock().unwrap_or_else(|poison| poison.into_inner());
            rx.recv_timeout(DISPATCH_POLL)
        };
        match next {
            Ok(stream) => handle_conn(stream, gate, counters, stop, deadline),
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn handle_conn<E: Send + 'static, W: Write + Send>(
    stream: TcpStream,
    gate: &Mutex<Gate<E, W>>,
    counters: &Counters,
    stop: &AtomicBool,
    deadline: Option<Duration>,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = LineReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut last_id: Option<u64> = None;
    loop {
        let line = match reader.next_line(Some(stop)) {
            Line::Eof => return,
            Line::Oversize => {
                bump(&counters.errors);
                let reply = frame::error_line(
                    None,
                    ErrorCode::BadFrame,
                    &format!(
                        "frame exceeds the {}-byte line limit",
                        frame::MAX_LINE_BYTES
                    ),
                );
                let _ = writeln!(writer, "{reply}");
                let _ = writer.flush();
                return;
            }
            Line::Data(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        bump(&counters.requests);
        let (reply, error) = respond(gate, counters, deadline, stop, &line, &mut last_id);
        if writeln!(writer, "{reply}").is_err() || writer.flush().is_err() {
            return;
        }
        if error.is_some_and(ErrorCode::closes_connection) {
            return;
        }
    }
}

fn respond<E, W: Write>(
    gate: &Mutex<Gate<E, W>>,
    counters: &Counters,
    deadline: Option<Duration>,
    stop: &AtomicBool,
    line: &str,
    last_id: &mut Option<u64>,
) -> (String, Option<ErrorCode>) {
    let frame = match frame::parse(line) {
        Err(rejection) => {
            bump(&counters.errors);
            return (rejection.line(), Some(rejection.code));
        }
        Ok(frame) => frame,
    };
    if let Some(prev) = *last_id {
        if frame.id <= prev {
            bump(&counters.errors);
            return (
                frame::error_line(
                    Some(frame.id),
                    ErrorCode::BadFrame,
                    &format!(
                        "request id {} is not greater than predecessor {prev} \
                         (ids are strictly increasing per connection)",
                        frame.id
                    ),
                ),
                Some(ErrorCode::BadFrame),
            );
        }
    }
    *last_id = Some(frame.id);
    process(gate, counters, deadline, stop, frame.id, frame.event)
}

fn process<E, W: Write>(
    gate: &Mutex<Gate<E, W>>,
    counters: &Counters,
    deadline: Option<Duration>,
    stop: &AtomicBool,
    request_id: u64,
    event: Event,
) -> (String, Option<ErrorCode>) {
    let mut gate = gate.lock().unwrap_or_else(|poison| poison.into_inner());
    let fail = |code: ErrorCode, message: &str| {
        bump(&counters.errors);
        (
            frame::error_line(Some(request_id), code, message),
            Some(code),
        )
    };
    if gate.io_failure.is_some() {
        return fail(
            ErrorCode::ServerError,
            "an earlier record/answer write failed; the server is halting",
        );
    }
    match event {
        Event::Query(kind) => {
            let result = match deadline {
                Some(d) if d.is_zero() => Err(ServeError::DeadlineExceeded),
                Some(d) => gate.handle.query_deadline(kind, d),
                None => gate.handle.query(kind),
            };
            match result {
                Ok(answer) => {
                    let query_line = Event::Query(kind).to_json_line();
                    if let Err(e) = gate.answer_lines(&query_line, &answer) {
                        gate.io_failure = Some(e);
                        stop.store(true, Ordering::SeqCst);
                        return fail(
                            ErrorCode::ServerError,
                            "recording the answered query failed; the server is halting",
                        );
                    }
                    bump(&counters.queries);
                    (frame::ok_answer(request_id, &answer), None)
                }
                Err(ServeError::DeadlineExceeded) => {
                    bump(&counters.deadline_expired);
                    fail(
                        ErrorCode::Deadline,
                        &format!("query `{kind}` missed its deadline; the answer was abandoned"),
                    )
                }
                Err(err) => {
                    stop.store(true, Ordering::SeqCst);
                    fail(ErrorCode::ServerError, &err.to_string())
                }
            }
        }
        Event::Add(offer) => {
            let event = Event::Add(offer);
            let line = event.to_json_line();
            match gate.handle.send(event) {
                Ok(_) => {
                    let assigned = gate.next_id;
                    gate.live.insert(assigned);
                    gate.next_id += 1;
                    if let Err(e) = gate.record_line(&line) {
                        gate.io_failure = Some(e);
                        stop.store(true, Ordering::SeqCst);
                        return fail(
                            ErrorCode::ServerError,
                            "recording the mutation failed; the server is halting",
                        );
                    }
                    bump(&counters.mutations);
                    (frame::ok_assigned(request_id, assigned), None)
                }
                Err(err) => {
                    stop.store(true, Ordering::SeqCst);
                    fail(ErrorCode::ServerError, &err.to_string())
                }
            }
        }
        Event::Update { id, offer } => {
            if !gate.live.contains(&id) {
                return fail(
                    ErrorCode::UnknownId,
                    &format!("update of unknown offer id {id}"),
                );
            }
            let event = Event::Update { id, offer };
            let line = event.to_json_line();
            match gate.handle.send(event) {
                Ok(_) => {
                    if let Err(e) = gate.record_line(&line) {
                        gate.io_failure = Some(e);
                        stop.store(true, Ordering::SeqCst);
                        return fail(
                            ErrorCode::ServerError,
                            "recording the mutation failed; the server is halting",
                        );
                    }
                    bump(&counters.mutations);
                    (frame::ok_true(request_id), None)
                }
                Err(err) => {
                    stop.store(true, Ordering::SeqCst);
                    fail(ErrorCode::ServerError, &err.to_string())
                }
            }
        }
        Event::Remove { id } => {
            if !gate.live.contains(&id) {
                return fail(
                    ErrorCode::UnknownId,
                    &format!("remove of unknown offer id {id}"),
                );
            }
            let event = Event::Remove { id };
            let line = event.to_json_line();
            match gate.handle.send(event) {
                Ok(_) => {
                    gate.live.remove(&id);
                    if let Err(e) = gate.record_line(&line) {
                        gate.io_failure = Some(e);
                        stop.store(true, Ordering::SeqCst);
                        return fail(
                            ErrorCode::ServerError,
                            "recording the mutation failed; the server is halting",
                        );
                    }
                    bump(&counters.mutations);
                    (frame::ok_true(request_id), None)
                }
                Err(err) => {
                    stop.store(true, Ordering::SeqCst);
                    fail(ErrorCode::ServerError, &err.to_string())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{NetClient, Reply};
    use flexoffers_engine::Engine;
    use flexoffers_model::{FlexOffer, Slice};
    use flexoffers_serving::{parse_script, LiveServer, QueryKind, ServeConfig};
    use std::sync::Arc;

    fn offer(tes: i64) -> FlexOffer {
        FlexOffer::new(tes, tes + 3, vec![Slice::new(-1, 2).unwrap()]).unwrap()
    }

    struct Running {
        addr: SocketAddr,
        stop: Arc<AtomicBool>,
        thread: Option<
            std::thread::JoinHandle<Result<NetSummary, NetError<flexoffers_serving::LiveError>>>,
        >,
    }

    impl Running {
        fn start(config: NetConfig) -> Self {
            let handle =
                LiveServer::spawn(ServeConfig::default(), 2, Engine::sequential()).unwrap();
            let server = NetServer::bind("127.0.0.1:0", config, handle, Vec::new(), 0).unwrap();
            let addr = server.local_addr();
            let stop = Arc::new(AtomicBool::new(false));
            let run_stop = Arc::clone(&stop);
            let thread = std::thread::spawn(move || server.run(&run_stop, std::io::sink()));
            Self {
                addr,
                stop,
                thread: Some(thread),
            }
        }

        fn finish(mut self) -> NetSummary {
            self.stop.store(true, Ordering::SeqCst);
            self.thread.take().unwrap().join().unwrap().unwrap()
        }
    }

    impl Drop for Running {
        fn drop(&mut self) {
            self.stop.store(true, Ordering::SeqCst);
            if let Some(thread) = self.thread.take() {
                let _ = thread.join();
            }
        }
    }

    #[test]
    fn requests_round_trip_and_count() {
        let server = Running::start(NetConfig::default());
        let mut client = NetClient::connect(server.addr).unwrap();
        let added = client.send_event(&Event::Add(offer(0))).unwrap();
        assert_eq!(added.assigned_id(), Some(0));
        let added = client.send_event(&Event::Add(offer(1))).unwrap();
        assert_eq!(added.assigned_id(), Some(1));
        assert_eq!(
            client
                .send_event(&Event::Update {
                    id: 0,
                    offer: offer(5)
                })
                .unwrap(),
            Reply::Ok {
                id: 2,
                payload: "true".to_owned()
            }
        );
        let Reply::Ok { payload, .. } = client
            .send_event(&Event::Query(QueryKind::Measure))
            .unwrap()
        else {
            panic!("queries answer")
        };
        assert!(payload.contains("\"offers\":2"), "{payload}");
        let summary = server.finish();
        assert_eq!(summary.connections, 1);
        assert_eq!(summary.requests, 4);
        assert_eq!(summary.mutations, 3);
        assert_eq!(summary.queries, 1);
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn unknown_ids_fail_softly_and_bad_frames_close() {
        let server = Running::start(NetConfig::default());
        let mut client = NetClient::connect(server.addr).unwrap();
        let reply = client.send_event(&Event::Remove { id: 9 }).unwrap();
        assert_eq!(
            reply,
            Reply::Err {
                id: Some(0),
                code: "unknown_id".to_owned(),
                message: "remove of unknown offer id 9".to_owned()
            }
        );
        // The connection survived; the sink never saw the bad remove.
        assert!(client.send_event(&Event::Add(offer(0))).unwrap().is_ok());

        // A malformed frame closes the connection after the error line.
        let raw = client.send_raw("this is not a frame").unwrap().unwrap();
        assert!(
            raw.starts_with("{\"id\":null,\"error\":{\"code\":\"bad_frame\""),
            "{raw}"
        );
        // The connection is gone: either a clean EOF or a broken pipe.
        assert!(
            !matches!(client.send_raw("{}"), Ok(Some(_))),
            "closed after bad frame"
        );

        // Non-monotone ids are a framing violation too.
        let mut strict = NetClient::connect(server.addr).unwrap();
        let line = frame::request_line(5, &Event::Query(QueryKind::Measure));
        assert!(strict.send_raw(&line).unwrap().unwrap().contains("\"ok\""));
        let replayed = strict.send_raw(&line).unwrap().unwrap();
        assert!(replayed.contains("bad_frame"), "{replayed}");
        assert!(replayed.contains("strictly increasing"), "{replayed}");
        assert!(!matches!(strict.send_raw(&line), Ok(Some(_))));

        let summary = server.finish();
        assert_eq!(summary.errors, 3);
        assert_eq!(summary.mutations, 1);
    }

    #[test]
    fn zero_deadline_refuses_queries_but_not_mutations() {
        let server = Running::start(NetConfig {
            deadline: Some(Duration::ZERO),
            ..NetConfig::default()
        });
        let mut client = NetClient::connect(server.addr).unwrap();
        assert!(client.send_event(&Event::Add(offer(0))).unwrap().is_ok());
        let Reply::Err { code, message, .. } = client
            .send_event(&Event::Query(QueryKind::Measure))
            .unwrap()
        else {
            panic!("zero deadline must refuse")
        };
        assert_eq!(code, "deadline");
        assert!(message.contains("missed its deadline"), "{message}");
        // Deadline errors keep the connection open.
        assert!(client.send_event(&Event::Add(offer(1))).unwrap().is_ok());
        let summary = server.finish();
        assert_eq!(summary.deadline_expired, 1);
        assert_eq!(summary.errors, 1);
        assert_eq!(summary.mutations, 2);
    }

    #[test]
    fn back_to_back_expired_queries_do_not_wedge_the_pool() {
        // A sink whose queries always outlive the deadline: every query
        // expires, every reply lands in a dropped channel. The regression
        // being pinned: N such expiries must not leave workers wedged —
        // the pool keeps serving mutations and fresh connections.
        struct SlowSink;
        impl flexoffers_serving::EventSink for SlowSink {
            type Error = flexoffers_serving::LiveError;
            fn apply(
                &mut self,
                event: Event,
            ) -> Result<Option<String>, flexoffers_serving::LiveError> {
                Ok(match event {
                    Event::Query(_) => {
                        std::thread::sleep(Duration::from_millis(15));
                        Some("{\"slow\":true}".to_owned())
                    }
                    _ => None,
                })
            }
        }

        let handle = LiveServer::spawn_sink(SlowSink);
        let config = NetConfig {
            max_conns: 2,
            deadline: Some(Duration::from_millis(1)),
            record: None,
        };
        let server = NetServer::bind("127.0.0.1:0", config, handle, Vec::new(), 0).unwrap();
        let addr = server.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let run_stop = Arc::clone(&stop);
        let thread = std::thread::spawn(move || server.run(&run_stop, std::io::sink()));

        let n = 6;
        let mut client = NetClient::connect(addr).unwrap();
        for i in 0..n {
            let Reply::Err { code, .. } = client
                .send_event(&Event::Query(QueryKind::Measure))
                .unwrap()
            else {
                panic!("query #{i} must expire")
            };
            assert_eq!(code, "deadline", "query #{i}");
        }
        // The pool is still alive: the same connection takes a mutation,
        // and a brand-new connection gets a worker slot.
        assert!(client.send_event(&Event::Add(offer(0))).unwrap().is_ok());
        let mut fresh = NetClient::connect(addr).unwrap();
        assert!(fresh.send_event(&Event::Add(offer(1))).unwrap().is_ok());

        drop(client);
        drop(fresh);
        stop.store(true, Ordering::SeqCst);
        let summary = thread.join().unwrap().unwrap();
        assert_eq!(summary.deadline_expired, n);
        assert_eq!(summary.mutations, 2);
    }

    #[test]
    fn the_record_log_is_a_valid_continuation_script() {
        let path = std::env::temp_dir().join(format!(
            "flexoffers_net_record_{}.jsonl",
            std::process::id()
        ));
        let server = Running::start(NetConfig {
            record: Some(path.clone()),
            ..NetConfig::default()
        });
        let mut client = NetClient::connect(server.addr).unwrap();
        client.send_event(&Event::Add(offer(0))).unwrap();
        client.send_event(&Event::Add(offer(1))).unwrap();
        client.send_event(&Event::Remove { id: 0 }).unwrap();
        client
            .send_event(&Event::Query(QueryKind::Aggregate))
            .unwrap();
        // A refused mutation must not be recorded.
        client.send_event(&Event::Remove { id: 0 }).unwrap();
        drop(client);
        server.finish();

        let recorded = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let events = parse_script(&recorded).unwrap();
        assert_eq!(events.len(), 4, "{recorded}");
        assert_eq!(events[2], Event::Remove { id: 0 });
        assert_eq!(events[3], Event::Query(QueryKind::Aggregate));
    }

    #[test]
    fn seeded_validation_continues_a_recovered_history() {
        // Ids 0 and 2 live, next add owns 3 — the state a recovered
        // journal would hand over.
        let handle = LiveServer::spawn(ServeConfig::default(), 2, Engine::sequential()).unwrap();
        for tes in 0..4 {
            handle.add(offer(tes)).unwrap();
        }
        handle.remove(1).unwrap();
        handle.remove(3).unwrap();
        let server =
            NetServer::bind("127.0.0.1:0", NetConfig::default(), handle, vec![0, 2], 4).unwrap();
        let addr = server.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let run_stop = Arc::clone(&stop);
        let thread = std::thread::spawn(move || server.run(&run_stop, std::io::sink()));

        let mut client = NetClient::connect(addr).unwrap();
        assert!(client
            .send_event(&Event::Update {
                id: 2,
                offer: offer(9)
            })
            .unwrap()
            .is_ok());
        let Reply::Err { code, .. } = client.send_event(&Event::Remove { id: 1 }).unwrap() else {
            panic!("dead id must be refused")
        };
        assert_eq!(code, "unknown_id");
        let added = client.send_event(&Event::Add(offer(10))).unwrap();
        assert_eq!(added.assigned_id(), Some(4), "adds continue the history");

        drop(client);
        stop.store(true, Ordering::SeqCst);
        thread.join().unwrap().unwrap();
    }
}
