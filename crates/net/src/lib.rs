//! `flexoffers_net` — the TCP front of the serving tier.
//!
//! The serving crate's [`LiveHandle`](flexoffers_serving::LiveHandle) is an
//! in-process channel; this crate puts it on a socket. A [`NetServer`] is a
//! [`std::net::TcpListener`] plus a fixed worker pool speaking the
//! `flexoffers-jsonl/1` script protocol framed one request per line:
//!
//! ```text
//! → {"id":0,"event":{"event":"add","offer":{...}}}
//! ← {"id":0,"ok":{"id":17}}
//! → {"id":1,"event":{"event":"query","kind":"measure"}}
//! ← {"id":1,"ok":{"query":"measure",...}}
//! → {"id":2,"event":{"event":"remove","id":9999}}
//! ← {"id":2,"error":{"code":"unknown_id","message":"remove of unknown offer id 9999"}}
//! ```
//!
//! `docs/PROTOCOL.md` at the repository root is the normative spec of both
//! the nested event objects and this envelope.
//!
//! # Guarantees
//!
//! * **Serialization** — every mutation from every connection goes through
//!   one gate into the one serving loop; the order the server acknowledges
//!   is the order the book applied, so a [`NetConfig::record`] log replayed
//!   through `flexctl serve --script --batch` reproduces each answered
//!   query byte-for-byte.
//! * **Deadlines** — [`NetConfig::deadline`] bounds each query's answer
//!   wait; an expired wait returns a structured `deadline` error instead of
//!   hanging the connection (the query itself still runs — queries never
//!   mutate, so the recorded history is unaffected).
//! * **Graceful drain** — flipping the `stop` flag (wired to
//!   SIGINT/SIGTERM via [`signal`]) stops accepting, drains requests
//!   already received, then shuts the serving loop down — which runs the
//!   durable sink's `finish()`, so a signal composes with `--journal`
//!   exactly like a clean `--script` run.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::atomic::{AtomicBool, Ordering};
//! use std::sync::Arc;
//!
//! use flexoffers_engine::Engine;
//! use flexoffers_model::{FlexOffer, Slice};
//! use flexoffers_net::{NetClient, NetConfig, NetServer, Reply};
//! use flexoffers_serving::{Event, LiveServer, QueryKind, ServeConfig};
//!
//! let handle = LiveServer::spawn(ServeConfig::default(), 2, Engine::sequential())?;
//! let server = NetServer::bind("127.0.0.1:0", NetConfig::default(), handle, Vec::new(), 0)?;
//! let addr = server.local_addr();
//! let stop = Arc::new(AtomicBool::new(false));
//! let serving = {
//!     let stop = Arc::clone(&stop);
//!     std::thread::spawn(move || server.run(&stop, std::io::sink()))
//! };
//!
//! let mut client = NetClient::connect(addr)?;
//! let offer = FlexOffer::new(0, 4, vec![Slice::new(-1, 2)?])?;
//! let added = client.send_event(&Event::Add(offer))?;
//! assert_eq!(added.assigned_id(), Some(0));
//! let Reply::Ok { payload, .. } = client.send_event(&Event::Query(QueryKind::Measure))? else {
//!     panic!("queries answer");
//! };
//! assert!(payload.starts_with("{\"query\":\"measure\""));
//!
//! drop(client);
//! stop.store(true, Ordering::SeqCst);
//! let summary = serving.join().unwrap()?;
//! assert_eq!((summary.connections, summary.requests), (1, 2));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod conn;

pub mod client;
pub mod frame;
pub mod server;
pub mod signal;
pub mod stats;

pub use client::{parse_reply, NetClient, Reply};
pub use frame::{ErrorCode, Frame, FrameRejection, MAX_LINE_BYTES, PROTOCOL_VERSION};
pub use server::{NetConfig, NetError, NetServer, NetSummary};
pub use stats::percentile;
