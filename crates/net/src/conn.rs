//! Stop-aware line reading off a `TcpStream`.
//!
//! `BufReader::read_line` cannot resume cleanly across read timeouts, so
//! the server keeps its own buffer: reads append, complete LF-terminated
//! lines pop off the front. When a `stop` flag is supplied (the server
//! side sets a short socket read timeout), the reader polls it between
//! reads — after stop, lines already buffered still come out (the drain),
//! then `Eof` without touching the socket again.

use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::frame::MAX_LINE_BYTES;

pub(crate) enum Line {
    Data(String),
    Eof,
    Oversize,
}

pub(crate) struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    scanned: usize,
}

impl LineReader {
    pub(crate) fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            buf: Vec::new(),
            scanned: 0,
        }
    }

    pub(crate) fn next_line(&mut self, stop: Option<&AtomicBool>) -> Line {
        loop {
            if let Some(pos) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=self.scanned + pos).collect();
                line.pop();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                self.scanned = 0;
                return Line::Data(String::from_utf8_lossy(&line).into_owned());
            }
            self.scanned = self.buf.len();
            if self.buf.len() > MAX_LINE_BYTES {
                return Line::Oversize;
            }
            if stop.is_some_and(|flag| flag.load(Ordering::SeqCst)) {
                return Line::Eof;
            }
            let mut chunk = [0u8; 8192];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Line::Eof,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) => {}
                Err(_) => return Line::Eof,
            }
        }
    }
}
