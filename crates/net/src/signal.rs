//! A process-wide SIGINT/SIGTERM latch with no libc-crate dependency.
//!
//! [`install`] registers a minimal handler — libc `signal(2)` through a
//! raw FFI declaration; libc itself is already linked on every supported
//! target — that flips one static [`AtomicBool`]; [`fired`] polls it.
//! `flexctl serve --listen` runs a watcher thread that translates the
//! latch into the server's stop flag, so SIGTERM and ctrl-c drain
//! in-flight requests and run the durable sink's `finish()` instead of
//! killing the process mid-write.

use std::sync::atomic::{AtomicBool, Ordering};

static FIRED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    FIRED.store(true, Ordering::SeqCst);
}

/// Registers the latch for SIGINT and SIGTERM. Returns `false` when the
/// platform refused (non-unix, or `signal(2)` reported `SIG_ERR`) — the
/// caller keeps serving, it just cannot promise graceful signal handling.
pub fn install() -> bool {
    #[cfg(unix)]
    {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        const SIG_ERR: usize = usize::MAX;
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        // SAFETY: `signal(2)` with a handler that only stores to an
        // AtomicBool is async-signal-safe; the constants match POSIX.
        unsafe { signal(SIGINT, on_signal) != SIG_ERR && signal(SIGTERM, on_signal) != SIG_ERR }
    }
    #[cfg(not(unix))]
    {
        false
    }
}

/// Whether a registered signal has fired since the last [`reset`].
pub fn fired() -> bool {
    FIRED.load(Ordering::SeqCst)
}

/// Clears the latch (tests; a server that wants to survive one signal).
pub fn reset() {
    FIRED.store(false, Ordering::SeqCst)
}

#[cfg(all(test, unix))]
mod tests {
    #[test]
    fn a_raised_sigterm_flips_the_latch() {
        assert!(super::install());
        super::reset();
        assert!(!super::fired());
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        // SAFETY: raise(SIGTERM) delivers synchronously to this thread;
        // the installed handler only flips the latch.
        unsafe {
            raise(15);
        }
        assert!(super::fired());
        super::reset();
    }
}
