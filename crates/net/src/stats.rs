//! Tiny sample statistics shared by `flexctl bomb` and `bench_net`.

/// Nearest-rank percentile (`p` in `[0, 100]`) over unsorted samples;
/// `None` on an empty slice. `p = 50` is the median sample, `p = 100` the
/// maximum; NaNs sort last under the IEEE total order.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    // The epsilon keeps FP noise (0.999 * 1000 = 999.0000000000001) from
    // pushing an exact rank over its ceiling.
    let rank = ((p / 100.0) * n as f64 - 1e-9).ceil() as usize;
    Some(sorted[rank.clamp(1, n) - 1])
}

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn nearest_rank_matches_by_hand() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&samples, 50.0), Some(50.0));
        assert_eq!(percentile(&samples, 99.0), Some(99.0));
        assert_eq!(percentile(&samples, 100.0), Some(100.0));
        assert_eq!(percentile(&samples, 0.0), Some(1.0));

        let thousand: Vec<f64> = (1..=1000).map(f64::from).collect();
        assert_eq!(percentile(&thousand, 99.9), Some(999.0));

        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[7.5], 99.9), Some(7.5));
        // Order must not matter.
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), Some(2.0));
    }
}
