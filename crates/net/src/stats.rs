//! Tiny sample statistics shared by `flexctl bomb` and `bench_net`.

/// Nearest-rank percentile (`p` in `[0, 100]`) over unsorted samples;
/// `None` on an empty slice or when `p` is outside `[0, 100]` (including
/// a NaN `p` — an out-of-range rank is a caller bug, not a statistic).
/// `p = 50` is the median sample, `p = 0` the minimum, `p = 100` the
/// maximum; NaN *samples* sort last under the IEEE total order.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    // The epsilon keeps FP noise (0.999 * 1000 = 999.0000000000001) from
    // pushing an exact rank over its ceiling.
    let rank = ((p / 100.0) * n as f64 - 1e-9).ceil() as usize;
    Some(sorted[rank.clamp(1, n) - 1])
}

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn nearest_rank_matches_by_hand() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&samples, 50.0), Some(50.0));
        assert_eq!(percentile(&samples, 99.0), Some(99.0));
        assert_eq!(percentile(&samples, 100.0), Some(100.0));
        assert_eq!(percentile(&samples, 0.0), Some(1.0));

        let thousand: Vec<f64> = (1..=1000).map(f64::from).collect();
        assert_eq!(percentile(&thousand, 99.9), Some(999.0));

        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[7.5], 99.9), Some(7.5));
        // Order must not matter.
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), Some(2.0));
    }

    #[test]
    fn out_of_range_p_is_rejected_not_clamped() {
        let samples = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&samples, 100.1), None);
        assert_eq!(percentile(&samples, 1000.0), None);
        assert_eq!(percentile(&samples, -0.1), None);
        assert_eq!(percentile(&samples, f64::NAN), None);
        // The boundaries themselves stay valid.
        assert_eq!(percentile(&samples, 0.0), Some(1.0));
        assert_eq!(percentile(&samples, 100.0), Some(3.0));
    }

    #[test]
    fn single_sample_answers_every_valid_p() {
        for p in [0.0, 0.1, 50.0, 99.9, 100.0] {
            assert_eq!(percentile(&[42.0], p), Some(42.0), "p = {p}");
        }
    }

    #[test]
    fn nan_samples_sort_last_under_total_order() {
        // NaNs are worst-case latencies: they occupy the top ranks.
        let samples = [f64::NAN, 1.0, f64::NAN, 2.0];
        assert_eq!(percentile(&samples, 50.0), Some(2.0));
        assert!(percentile(&samples, 100.0).unwrap().is_nan());
        // An all-NaN slice still answers (pinned): every rank is NaN.
        let all_nan = [f64::NAN, f64::NAN];
        assert!(percentile(&all_nan, 50.0).unwrap().is_nan());
    }
}
