//! Resolving measures by name — the entry point for CLIs, config files and
//! experiment definitions that select measures at runtime.

use flexoffers_timeseries::Norm;

use crate::abs_area::AbsoluteAreaFlexibility;
use crate::assignments::AssignmentFlexibility;
use crate::energy::EnergyFlexibility;
use crate::measure::Measure;
use crate::product::ProductFlexibility;
use crate::rel_area::RelativeAreaFlexibility;
use crate::series::TimeSeriesFlexibility;
use crate::time::TimeFlexibility;
use crate::vector::VectorFlexibility;

/// Instantiates a measure from its name. Accepted names (case-insensitive):
///
/// | name | measure |
/// |---|---|
/// | `time` | time flexibility |
/// | `energy` | energy flexibility |
/// | `product` | product flexibility |
/// | `vector`, `vector-l1`, `vector-l2`, `vector-linf` | vector flexibility under the norm |
/// | `series`, `time-series`, `series-l1`, `series-l2`, `series-linf` | time-series flexibility |
/// | `assignments`, `assignments-log2`, `assignments-exact` | Definition 8 / log-scaled / exact `|L(f)|` |
/// | `abs-area`, `abs-area-strict` | absolute area (literal / mixed-rejecting) |
/// | `rel-area`, `rel-area-strict` | relative area (literal / mixed-rejecting) |
pub fn measure_by_name(name: &str) -> Option<Box<dyn Measure>> {
    Some(match name.to_ascii_lowercase().as_str() {
        "time" => Box::new(TimeFlexibility),
        "energy" => Box::new(EnergyFlexibility),
        "product" => Box::new(ProductFlexibility),
        "vector" | "vector-l1" => Box::new(VectorFlexibility::new(Norm::L1)),
        "vector-l2" => Box::new(VectorFlexibility::new(Norm::L2)),
        "vector-linf" => Box::new(VectorFlexibility::new(Norm::LInf)),
        "series" | "time-series" | "series-l1" => Box::new(TimeSeriesFlexibility::new(Norm::L1)),
        "series-l2" => Box::new(TimeSeriesFlexibility::new(Norm::L2)),
        "series-linf" => Box::new(TimeSeriesFlexibility::new(Norm::LInf)),
        "assignments" => Box::new(AssignmentFlexibility::new()),
        "assignments-log2" => Box::new(AssignmentFlexibility::log_scaled()),
        "assignments-exact" => Box::new(AssignmentFlexibility::exact()),
        "abs-area" => Box::new(AbsoluteAreaFlexibility::new()),
        "abs-area-strict" => Box::new(AbsoluteAreaFlexibility::rejecting_mixed()),
        "rel-area" => Box::new(RelativeAreaFlexibility::new()),
        "rel-area-strict" => Box::new(RelativeAreaFlexibility::rejecting_mixed()),
        _ => return None,
    })
}

/// All names [`measure_by_name`] accepts, canonical spellings first.
pub fn available_names() -> &'static [&'static str] {
    &[
        "time",
        "energy",
        "product",
        "vector",
        "vector-l2",
        "vector-linf",
        "series",
        "series-l2",
        "series-linf",
        "assignments",
        "assignments-log2",
        "assignments-exact",
        "abs-area",
        "abs-area-strict",
        "rel-area",
        "rel-area-strict",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::{FlexOffer, Slice};

    fn figure1() -> FlexOffer {
        FlexOffer::new(
            1,
            6,
            vec![
                Slice::new(1, 3).unwrap(),
                Slice::new(2, 4).unwrap(),
                Slice::new(0, 5).unwrap(),
                Slice::new(0, 3).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn every_advertised_name_resolves_and_evaluates() {
        let f = figure1();
        for name in available_names() {
            let m = measure_by_name(name)
                .unwrap_or_else(|| panic!("advertised name {name} did not resolve"));
            m.of(&f)
                .unwrap_or_else(|e| panic!("{name} failed on Figure 1: {e}"));
        }
    }

    #[test]
    fn unknown_names_yield_none() {
        assert!(measure_by_name("entropy").is_none());
        assert!(measure_by_name("").is_none());
    }

    #[test]
    fn case_insensitive() {
        assert!(measure_by_name("PRODUCT").is_some());
        assert!(measure_by_name("Abs-Area").is_some());
    }

    #[test]
    fn norm_variants_differ() {
        let f = figure1();
        let l1 = measure_by_name("vector-l1").unwrap().of(&f).unwrap();
        let l2 = measure_by_name("vector-l2").unwrap().of(&f).unwrap();
        assert!(l1 > l2);
    }

    #[test]
    fn strict_variants_reject_mixed() {
        let mixed = FlexOffer::new(0, 1, vec![Slice::new(-1, 1).unwrap()]).unwrap();
        assert!(measure_by_name("abs-area").unwrap().of(&mixed).is_ok());
        assert!(measure_by_name("abs-area-strict")
            .unwrap()
            .of(&mixed)
            .is_err());
    }
}
