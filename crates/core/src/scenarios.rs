//! Which measure for which job — Section 4's "Application Scenarios"
//! paragraph as checkable data.
//!
//! The paper closes its discussion by matching measures to its two
//! motivating scenarios (plus their balancing variants). This module
//! encodes both the *criterion* each scenario imposes on a measure's
//! characteristics and the paper's own recommendation lists, and the tests
//! check the two against each other — the same declared-vs-derived
//! discipline `repro_table1` applies to Table 1.

use crate::characteristics::Characteristics;

/// The application scenarios of Sections 1 and 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Scenario 1: aggregation whose goal is cheaper scheduling with
    /// minimal flexibility loss. Needs measures that capture the *combined*
    /// effect of time and energy.
    AggregationForScheduling,
    /// Scenario 1 where aggregation "handles the balancing task as well":
    /// aggregates mix production and consumption, so the measure must also
    /// be meaningful for mixed flex-offers.
    AggregationWithBalancing,
    /// Scenario 2: an aggregator trades flex-offers as commodities; even
    /// single-dimension measures qualify because some appliances offer only
    /// time or only energy flexibility.
    MarketTrading,
    /// Scenario 2 where the aggregator additionally pursues local balance
    /// under a capacity limit: mixed support is required, and size
    /// awareness is only available through weighted combinations.
    MarketLocalBalance,
}

impl Scenario {
    /// The characteristic criterion the scenario imposes.
    pub fn admits(self, c: &Characteristics) -> bool {
        match self {
            Scenario::AggregationForScheduling => c.captures_time_energy,
            Scenario::AggregationWithBalancing => c.captures_time_energy && c.mixed,
            Scenario::MarketTrading => {
                c.captures_time || c.captures_energy || c.captures_time_energy
            }
            Scenario::MarketLocalBalance => c.mixed,
        }
    }

    /// The measures Section 4 names for the scenario (short names, in the
    /// paper's order of mention).
    pub fn paper_recommended(self) -> &'static [&'static str] {
        match self {
            // "measures that capture flexibility induced by both time and
            // energy, e.g., product flexibility and assignments
            // flexibility, are qualified".
            Scenario::AggregationForScheduling => &["Product", "Assignments"],
            // "measures that capture flexibility of mixed flex-offers such
            // as vector and assignments flexibility, are qualified".
            Scenario::AggregationWithBalancing => &["Vector", "Assignments"],
            // "the time-series measure, the time and energy flexibility
            // measures, and the product flexibility measure are
            // appropriate".
            Scenario::MarketTrading => &["Time-series", "Time", "Energy", "Product"],
            // "measures that capture flexibility of mixed flex-offers ...
            // are more appropriate"; area measures excluded.
            Scenario::MarketLocalBalance => &["Vector", "Assignments"],
        }
    }

    /// The measures Section 4 explicitly rules out for the scenario.
    pub fn paper_excluded(self) -> &'static [&'static str] {
        match self {
            // "Measures that capture only time or energy flexibility, such
            // as time-series flexibility, are not appropriate".
            Scenario::AggregationForScheduling => &["Time-series"],
            // "measures that are not suitable for mixed flex-offers, i.e.,
            // absolute and relative area-based flexibility, are
            // inappropriate".
            Scenario::AggregationWithBalancing => &["Abs. Area", "Rel. Area"],
            Scenario::MarketTrading => &[],
            // "only absolute and relative area-based flexibilities take
            // into account the size ... but they cannot be applied on mixed
            // flex-offers".
            Scenario::MarketLocalBalance => &["Abs. Area", "Rel. Area"],
        }
    }

    /// All four scenarios.
    pub fn all() -> [Scenario; 4] {
        [
            Scenario::AggregationForScheduling,
            Scenario::AggregationWithBalancing,
            Scenario::MarketTrading,
            Scenario::MarketLocalBalance,
        ]
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let label = match self {
            Scenario::AggregationForScheduling => "aggregation for scheduling (Scenario 1)",
            Scenario::AggregationWithBalancing => "aggregation with balancing (Scenario 1+)",
            Scenario::MarketTrading => "market trading (Scenario 2)",
            Scenario::MarketLocalBalance => "market with local balance (Scenario 2+)",
        };
        f.write_str(label)
    }
}

/// The measures whose declared characteristics satisfy a scenario's
/// criterion.
pub fn qualified_measures(scenario: Scenario) -> Vec<&'static str> {
    crate::characteristics::paper_table1()
        .into_iter()
        .filter(|(_, c)| scenario.admits(c))
        .map(|(name, _)| name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characteristics::paper_table1;

    fn characteristics_of(name: &str) -> Characteristics {
        paper_table1()
            .into_iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("unknown measure {name}"))
            .1
    }

    #[test]
    fn every_paper_recommendation_satisfies_the_derived_criterion() {
        for scenario in Scenario::all() {
            for name in scenario.paper_recommended() {
                assert!(
                    scenario.admits(&characteristics_of(name)),
                    "{scenario}: paper recommends {name} but the criterion rejects it"
                );
            }
        }
    }

    #[test]
    fn every_paper_exclusion_fails_the_derived_criterion() {
        for scenario in Scenario::all() {
            for name in scenario.paper_excluded() {
                assert!(
                    !scenario.admits(&characteristics_of(name)),
                    "{scenario}: paper excludes {name} but the criterion admits it"
                );
            }
        }
    }

    #[test]
    fn scenario1_qualified_set() {
        assert_eq!(
            qualified_measures(Scenario::AggregationForScheduling),
            vec!["Product", "Vector", "Assignments", "Abs. Area", "Rel. Area"]
        );
    }

    #[test]
    fn balancing_variants_drop_the_area_measures() {
        let with_balance = qualified_measures(Scenario::AggregationWithBalancing);
        assert_eq!(with_balance, vec!["Product", "Vector", "Assignments"]);
        assert!(qualified_measures(Scenario::MarketLocalBalance)
            .iter()
            .all(|n| !n.contains("Area")));
    }

    #[test]
    fn market_trading_admits_everything() {
        // Even single-dimension measures are tradeable commodities' yard
        // sticks; all eight capture at least one dimension.
        assert_eq!(qualified_measures(Scenario::MarketTrading).len(), 8);
    }

    #[test]
    fn display_labels() {
        assert!(Scenario::MarketTrading.to_string().contains("Scenario 2"));
    }
}
