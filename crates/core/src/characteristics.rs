//! The qualitative characteristics of flexibility measures — the paper's
//! Table 1 — as data.

use serde::{Deserialize, Serialize};

/// The eight yes/no characteristics Table 1 records per measure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Characteristics {
    /// Responds to time flexibility even when energy flexibility is zero.
    pub captures_time: bool,
    /// Responds to energy flexibility even when time flexibility is zero.
    pub captures_energy: bool,
    /// Responds to each of time and energy flexibility when the other is
    /// positive (the "combined effect").
    pub captures_time_energy: bool,
    /// Distinguishes flex-offers that differ only in the magnitude of their
    /// amounts (the paper's Examples 11–12 pair).
    pub captures_size: bool,
    /// Meaningful for pure-consumption (positive) flex-offers.
    pub positive: bool,
    /// Meaningful for pure-production (negative) flex-offers.
    pub negative: bool,
    /// Meaningful for mixed flex-offers.
    pub mixed: bool,
    /// Reduces to a single numeric value.
    pub single_value: bool,
}

impl Characteristics {
    /// The eight characteristics as `(label, value)` pairs, in Table 1's row
    /// order.
    pub fn rows(&self) -> [(&'static str, bool); 8] {
        [
            ("Captures time", self.captures_time),
            ("Captures energy", self.captures_energy),
            ("Captures time & energy", self.captures_time_energy),
            ("Captures size", self.captures_size),
            ("Captures positive flex-offers", self.positive),
            ("Captures negative flex-offers", self.negative),
            ("Captures Mixed flex-offers", self.mixed),
            ("Single Value", self.single_value),
        ]
    }
}

/// Table 1 of the paper, transcribed: characteristics of the eight measures
/// in the paper's column order.
pub fn paper_table1() -> Vec<(&'static str, Characteristics)> {
    let c = |ct, ce, cte, cs, mixed| Characteristics {
        captures_time: ct,
        captures_energy: ce,
        captures_time_energy: cte,
        captures_size: cs,
        positive: true,
        negative: true,
        mixed,
        single_value: true,
    };
    vec![
        ("Time", c(true, false, false, false, true)),
        ("Energy", c(false, true, false, false, true)),
        ("Product", c(false, false, true, false, true)),
        ("Vector", c(true, true, true, false, true)),
        ("Time-series", c(false, true, false, false, true)),
        ("Assignments", c(true, true, true, false, true)),
        ("Abs. Area", c(true, true, true, true, false)),
        ("Rel. Area", c(true, true, true, true, false)),
    ]
}

/// Renders a characteristics matrix in the layout of the paper's Table 1:
/// characteristics as rows, measures as columns, `Yes`/`No` cells.
pub fn render_table(columns: &[(&str, Characteristics)]) -> String {
    const LABEL_WIDTH: usize = 30;
    let col_width = columns
        .iter()
        .map(|(name, _)| name.len())
        .max()
        .unwrap_or(4)
        .max(4)
        + 2;
    let mut out = String::new();
    out.push_str(&format!("{:<LABEL_WIDTH$}", "Characteristics"));
    for (name, _) in columns {
        out.push_str(&format!("{name:>col_width$}"));
    }
    out.push('\n');
    for row_idx in 0..8 {
        let label = columns
            .first()
            .map(|(_, c)| c.rows()[row_idx].0)
            .unwrap_or("");
        out.push_str(&format!("{label:<LABEL_WIDTH$}"));
        for (_, c) in columns {
            let cell = if c.rows()[row_idx].1 { "Yes" } else { "No" };
            out.push_str(&format!("{cell:>col_width$}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_eight_measures() {
        let t = paper_table1();
        assert_eq!(t.len(), 8);
        let names: Vec<&str> = t.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "Time",
                "Energy",
                "Product",
                "Vector",
                "Time-series",
                "Assignments",
                "Abs. Area",
                "Rel. Area"
            ]
        );
    }

    #[test]
    fn every_measure_is_single_valued_and_covers_positive_negative() {
        for (_, c) in paper_table1() {
            assert!(c.single_value);
            assert!(c.positive);
            assert!(c.negative);
        }
    }

    #[test]
    fn only_area_measures_capture_size_and_reject_mixed() {
        for (name, c) in paper_table1() {
            let is_area = name.contains("Area");
            assert_eq!(c.captures_size, is_area, "{name}");
            assert_eq!(c.mixed, !is_area, "{name}");
        }
    }

    #[test]
    fn product_captures_neither_dimension_alone() {
        let t = paper_table1();
        let product = t.iter().find(|(n, _)| *n == "Product").unwrap().1;
        assert!(!product.captures_time);
        assert!(!product.captures_energy);
        assert!(product.captures_time_energy);
    }

    #[test]
    fn render_layout() {
        let text = render_table(&paper_table1());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 9); // header + 8 characteristic rows
        assert!(lines[0].contains("Time-series"));
        assert!(lines[1].starts_with("Captures time"));
        assert!(text.contains("Yes") && text.contains("No"));
    }

    #[test]
    fn rows_expose_all_flags() {
        let c = paper_table1()[0].1;
        assert_eq!(c.rows().len(), 8);
        assert_eq!(c.rows()[0], ("Captures time", true));
    }
}
