//! Energy flexibility (paper, Section 3.1).

use flexoffers_model::FlexOffer;

use crate::characteristics::Characteristics;
use crate::columnar::ColumnarKernel;
use crate::error::MeasureError;
use crate::measure::Measure;

/// Energy flexibility `ef(f) = cmax - cmin`, in energy units (Example 2).
///
/// The amount-side primitive flexibility, derived from the *total* energy
/// constraints — individual slice ranges enter only through the bounds they
/// impose on `cmin`/`cmax`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EnergyFlexibility;

impl Measure for EnergyFlexibility {
    fn name(&self) -> &'static str {
        "energy flexibility"
    }

    fn short_name(&self) -> &'static str {
        "Energy"
    }

    fn of(&self, fo: &FlexOffer) -> Result<f64, MeasureError> {
        Ok(fo.energy_flexibility() as f64)
    }

    fn columnar_kernel(&self) -> Option<ColumnarKernel> {
        Some(ColumnarKernel::Energy)
    }

    fn declared_characteristics(&self) -> Characteristics {
        Characteristics {
            captures_time: false,
            captures_energy: true,
            captures_time_energy: false,
            captures_size: false,
            positive: true,
            negative: true,
            mixed: true,
            single_value: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;

    #[test]
    fn example_2() {
        // Figure 1's f: ef = 15 - 3 = 12.
        let f = FlexOffer::new(
            1,
            6,
            vec![
                Slice::new(1, 3).unwrap(),
                Slice::new(2, 4).unwrap(),
                Slice::new(0, 5).unwrap(),
                Slice::new(0, 3).unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(EnergyFlexibility.of(&f).unwrap(), 12.0);
    }

    #[test]
    fn tight_totals_mean_zero() {
        let f = FlexOffer::with_totals(0, 9, vec![Slice::new(0, 4).unwrap()], 2, 2).unwrap();
        assert_eq!(EnergyFlexibility.of(&f).unwrap(), 0.0);
    }

    #[test]
    fn translation_invariant() {
        // Examples 11-12's pair: same ef despite 100x larger amounts.
        let fx = FlexOffer::new(1, 3, vec![Slice::new(1, 5).unwrap()]).unwrap();
        let fy = FlexOffer::new(1, 3, vec![Slice::new(101, 105).unwrap()]).unwrap();
        assert_eq!(
            EnergyFlexibility.of(&fx).unwrap(),
            EnergyFlexibility.of(&fy).unwrap()
        );
    }

    #[test]
    fn production_flexibility_is_positive_too() {
        let f = FlexOffer::new(0, 0, vec![Slice::new(-5, -1).unwrap()]).unwrap();
        assert_eq!(EnergyFlexibility.of(&f).unwrap(), 4.0);
    }
}
