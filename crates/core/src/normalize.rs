//! Normalisation of measures onto a common scale.
//!
//! Section 4's closing suggestion — weighting measures to combine their
//! strengths — only makes sense if the parts are commensurable: raw product
//! flexibility is in time×energy units, assignment flexibility is a count
//! that grows exponentially, area flexibility is in cells. A
//! [`NormalizedMeasure`] affinely rescales a measure using a reference
//! portfolio, mapping the reference's observed range onto `[0, 1]`, after
//! which [`WeightedMeasure`](crate::WeightedMeasure) weights express
//! genuine relative importance.

use flexoffers_model::FlexOffer;

use crate::characteristics::Characteristics;
use crate::error::MeasureError;
use crate::measure::Measure;
use crate::prepared::PreparedOffer;

/// A measure rescaled as `(m(f) - offset) / scale`.
pub struct NormalizedMeasure {
    inner: Box<dyn Measure>,
    offset: f64,
    scale: f64,
}

impl NormalizedMeasure {
    /// Fits the affine map so the reference portfolio's minimum and maximum
    /// measured values land on 0 and 1. A reference whose values are all
    /// equal (or empty) yields the identity scale with only the offset
    /// applied.
    pub fn fit(inner: Box<dyn Measure>, reference: &[FlexOffer]) -> Result<Self, MeasureError> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for fo in reference {
            let v = inner.of(fo)?;
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if !lo.is_finite() || hi <= lo {
            return Ok(Self {
                inner,
                offset: if lo.is_finite() { lo } else { 0.0 },
                scale: 1.0,
            });
        }
        Ok(Self {
            inner,
            offset: lo,
            scale: hi - lo,
        })
    }

    /// Explicit affine parameters (`scale` must be non-zero).
    pub fn with_affine(inner: Box<dyn Measure>, offset: f64, scale: f64) -> Self {
        assert!(scale != 0.0, "scale must be non-zero");
        Self {
            inner,
            offset,
            scale,
        }
    }

    /// The wrapped measure.
    pub fn inner(&self) -> &dyn Measure {
        self.inner.as_ref()
    }

    /// The fitted `(offset, scale)` pair.
    pub fn affine(&self) -> (f64, f64) {
        (self.offset, self.scale)
    }
}

impl Measure for NormalizedMeasure {
    fn name(&self) -> &'static str {
        "normalized measure"
    }

    fn short_name(&self) -> &'static str {
        self.inner.short_name()
    }

    fn of(&self, fo: &FlexOffer) -> Result<f64, MeasureError> {
        Ok((self.inner.of(fo)? - self.offset) / self.scale)
    }

    fn of_prepared(&self, prepared: &PreparedOffer<'_>) -> Result<f64, MeasureError> {
        Ok((self.inner.of_prepared(prepared)? - self.offset) / self.scale)
    }

    fn declared_characteristics(&self) -> Characteristics {
        // Affine maps preserve everything Table 1 talks about.
        self.inner.declared_characteristics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::product::ProductFlexibility;
    use crate::time::TimeFlexibility;
    use crate::weighted::WeightedMeasure;
    use flexoffers_model::Slice;

    fn fo(tes: i64, tls: i64, hi: i64) -> FlexOffer {
        FlexOffer::new(tes, tls, vec![Slice::new(0, hi).unwrap()]).unwrap()
    }

    fn reference() -> Vec<FlexOffer> {
        vec![fo(0, 0, 2), fo(0, 4, 4), fo(0, 8, 8)]
    }

    #[test]
    fn fit_maps_reference_extremes_to_unit_interval() {
        let m = NormalizedMeasure::fit(Box::new(ProductFlexibility), &reference()).unwrap();
        // Reference products: 0, 16, 64.
        assert_eq!(m.of(&fo(0, 0, 2)).unwrap(), 0.0);
        assert_eq!(m.of(&fo(0, 8, 8)).unwrap(), 1.0);
        let mid = m.of(&fo(0, 4, 4)).unwrap();
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn degenerate_reference_keeps_identity_scale() {
        let same = vec![fo(0, 3, 2), fo(1, 4, 2)];
        let m = NormalizedMeasure::fit(Box::new(TimeFlexibility), &same).unwrap();
        assert_eq!(m.affine(), (3.0, 1.0));
        assert_eq!(m.of(&same[0]).unwrap(), 0.0);
        let empty = NormalizedMeasure::fit(Box::new(TimeFlexibility), &[]).unwrap();
        assert_eq!(empty.affine(), (0.0, 1.0));
    }

    #[test]
    fn characteristics_pass_through() {
        let m = NormalizedMeasure::fit(Box::new(ProductFlexibility), &reference()).unwrap();
        assert_eq!(
            m.declared_characteristics(),
            ProductFlexibility.declared_characteristics()
        );
        assert_eq!(m.short_name(), "Product");
    }

    #[test]
    fn weighted_combination_of_normalized_parts_is_balanced() {
        // With normalisation, a 50/50 weighting really is 50/50 even though
        // raw product values dwarf raw time values.
        let refs = reference();
        let combo = WeightedMeasure::new(vec![
            (
                0.5,
                Box::new(NormalizedMeasure::fit(Box::new(TimeFlexibility), &refs).unwrap())
                    as Box<dyn Measure>,
            ),
            (
                0.5,
                Box::new(NormalizedMeasure::fit(Box::new(ProductFlexibility), &refs).unwrap()),
            ),
        ]);
        // The reference maximum scores 1.0 under both parts.
        assert!((combo.of(&fo(0, 8, 8)).unwrap() - 1.0).abs() < 1e-12);
        // The reference minimum scores 0.0.
        assert_eq!(combo.of(&fo(0, 0, 2)).unwrap(), 0.0);
    }

    #[test]
    #[should_panic(expected = "scale must be non-zero")]
    fn zero_scale_rejected() {
        NormalizedMeasure::with_affine(Box::new(TimeFlexibility), 0.0, 0.0);
    }
}
