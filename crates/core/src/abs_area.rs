//! Absolute area-based flexibility (Definitions 9–10).

use flexoffers_area::union_area;
use flexoffers_model::{FlexOffer, SignClass};

use crate::characteristics::Characteristics;
use crate::columnar::ColumnarKernel;
use crate::error::MeasureError;
use crate::measure::Measure;
use crate::prepared::PreparedOffer;

/// How the measure treats mixed flex-offers, for which the paper deems it
/// "not feasible" (Section 4) yet still evaluates Definition 10 literally in
/// Example 15.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MixedPolicy {
    /// Apply Definition 10 verbatim (subtract `cmin`), reproducing
    /// Example 15's value of 32 for `f6` — with the caveat that the result
    /// overstates flexibility, which is exactly the paper's argument for
    /// "No" in Table 1's mixed row.
    #[default]
    DefinitionLiteral,
    /// Refuse with [`MeasureError::MixedNotSupported`].
    Reject,
}

/// Absolute area-based flexibility: the size of the area jointly covered by
/// all assignments, minus the inflexible base (Definition 10, Examples 8–9).
///
/// The base is the energy every assignment must exchange regardless of the
/// chosen instantiation: `cmin` for consumption flex-offers and — per
/// Section 4 — `|cmax|` for production flex-offers, whose *smaller*
/// magnitude bound is the maximum constraint. Together with
/// [`RelativeAreaFlexibility`](crate::RelativeAreaFlexibility) it is the
/// only proposed measure that sees the actual *size* of the amounts
/// (Table 1's "captures size" row).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AbsoluteAreaFlexibility {
    /// Mixed flex-offer handling.
    pub mixed_policy: MixedPolicy,
}

impl AbsoluteAreaFlexibility {
    /// Definition-literal policy (Example 15 reproduces).
    pub fn new() -> Self {
        Self::default()
    }

    /// Rejecting policy: `of` fails on mixed flex-offers, enforcing
    /// Section 4's applicability rule at the type level.
    pub fn rejecting_mixed() -> Self {
        Self {
            mixed_policy: MixedPolicy::Reject,
        }
    }

    /// The inflexible base subtracted from the union area: energy that is
    /// committed no matter which assignment is chosen.
    pub fn inflexible_base(&self, fo: &FlexOffer) -> Result<i64, MeasureError> {
        match fo.sign() {
            SignClass::Positive | SignClass::Zero => Ok(fo.total_min()),
            SignClass::Negative => Ok(-fo.total_max()),
            SignClass::Mixed => match self.mixed_policy {
                MixedPolicy::DefinitionLiteral => Ok(fo.total_min()),
                MixedPolicy::Reject => Err(MeasureError::MixedNotSupported {
                    measure: "Abs. Area",
                }),
            },
        }
    }
}

impl Measure for AbsoluteAreaFlexibility {
    fn name(&self) -> &'static str {
        "absolute area-based flexibility"
    }

    fn short_name(&self) -> &'static str {
        "Abs. Area"
    }

    fn of(&self, fo: &FlexOffer) -> Result<f64, MeasureError> {
        let base = self.inflexible_base(fo)?;
        Ok(union_area(fo).size() as f64 - base as f64)
    }

    fn of_prepared(&self, prepared: &PreparedOffer<'_>) -> Result<f64, MeasureError> {
        let base = self.inflexible_base(prepared.offer())?;
        Ok(prepared.union_size() as f64 - base as f64)
    }

    fn columnar_kernel(&self) -> Option<ColumnarKernel> {
        Some(ColumnarKernel::AbsArea(self.mixed_policy))
    }

    fn declared_characteristics(&self) -> Characteristics {
        Characteristics {
            captures_time: true,
            captures_energy: true,
            captures_time_energy: true,
            captures_size: true,
            positive: true,
            negative: true,
            mixed: false,
            single_value: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;

    fn fo(tes: i64, tls: i64, slices: Vec<(i64, i64)>) -> FlexOffer {
        FlexOffer::new(
            tes,
            tls,
            slices
                .into_iter()
                .map(|(a, b)| Slice::new(a, b).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn example_8() {
        // f4 = ([0,4], <[2,2]>), cmin = cmax = 2: 10 cells - 2 = 8.
        let f4 = fo(0, 4, vec![(2, 2)]);
        assert_eq!(AbsoluteAreaFlexibility::new().of(&f4).unwrap(), 8.0);
    }

    #[test]
    fn example_9() {
        // f5 = ([0,4], <[1,1],[2,2]>), cmin = cmax = 3: union 11 - 3 = 8.
        // (The paper's prose says "10-2=8"; the subtraction must use
        // cmin = 3 per Definition 10, and the union has 11 cells — the final
        // value 8 is what Definition 10 yields. See EXPERIMENTS.md.)
        let f5 = fo(0, 4, vec![(1, 1), (2, 2)]);
        assert_eq!(AbsoluteAreaFlexibility::new().of(&f5).unwrap(), 8.0);
    }

    #[test]
    fn example_15_mixed_literal() {
        // f6: union 24, cmin = -8 -> 24 - (-8) = 32.
        let f6 = fo(0, 2, vec![(-1, 2), (-4, -1), (-3, 1)]);
        assert_eq!(AbsoluteAreaFlexibility::new().of(&f6).unwrap(), 32.0);
    }

    #[test]
    fn rejecting_policy_refuses_mixed() {
        let f6 = fo(0, 2, vec![(-1, 2), (-4, -1), (-3, 1)]);
        assert_eq!(
            AbsoluteAreaFlexibility::rejecting_mixed().of(&f6),
            Err(MeasureError::MixedNotSupported {
                measure: "Abs. Area"
            })
        );
    }

    #[test]
    fn production_uses_cmax_per_section_4() {
        // Mirror of f4: five single-slice production assignments of -2.
        let prod = fo(0, 4, vec![(-2, -2)]);
        // Union 10 cells below the axis; base |cmax| = 2 -> 8, symmetric
        // with Example 8.
        assert_eq!(AbsoluteAreaFlexibility::new().of(&prod).unwrap(), 8.0);
    }

    #[test]
    fn mirror_symmetry_consumption_production() {
        let cons = fo(0, 3, vec![(1, 3), (0, 2)]);
        let prod = fo(0, 3, vec![(-3, -1), (-2, 0)]);
        let m = AbsoluteAreaFlexibility::new();
        assert_eq!(m.of(&cons).unwrap(), m.of(&prod).unwrap());
    }

    #[test]
    fn captures_size_unlike_the_others() {
        // Examples 11-12's pair now *differ*.
        let fx = fo(1, 3, vec![(1, 5)]);
        let fy = fo(1, 3, vec![(101, 105)]);
        let m = AbsoluteAreaFlexibility::new();
        assert_eq!(m.of(&fx).unwrap(), 15.0 - 1.0);
        assert_eq!(m.of(&fy).unwrap(), 315.0 - 101.0);
    }

    #[test]
    fn inflexible_consumption_measures_zero() {
        let f = fo(0, 0, vec![(2, 2), (1, 1)]);
        assert_eq!(AbsoluteAreaFlexibility::new().of(&f).unwrap(), 0.0);
    }

    #[test]
    fn mixed_literal_is_mirror_asymmetric() {
        // Another face of the mixed unsoundness: subtracting cmin is not
        // symmetric under production/consumption mirroring, so the same
        // physical flexibility measures differently depending on sign
        // orientation. (Non-mixed flex-offers are symmetric because the
        // base switches to |cmax| for production, per Section 4.)
        let f = fo(0, 0, vec![(1, 1), (-3, -3)]);
        let mirrored = fo(0, 0, vec![(-1, -1), (3, 3)]);
        let m = AbsoluteAreaFlexibility::new();
        assert_eq!(m.of(&f).unwrap(), 4.0 + 2.0); // |u|=4, cmin=-2
        assert_eq!(m.of(&mirrored).unwrap(), 4.0 - 2.0); // |u|=4, cmin=2
    }

    #[test]
    fn mixed_literal_overstates_inflexible_offer() {
        // The pathology behind Table 1's "No": an inflexible balanced mixed
        // flex-offer still gets a positive "flexibility".
        let f = fo(0, 0, vec![(1, 1), (-1, -1)]);
        assert_eq!(AbsoluteAreaFlexibility::new().of(&f).unwrap(), 2.0);
    }
}
