//! Relative area-based flexibility (Definition 11).

use flexoffers_model::FlexOffer;

use crate::abs_area::{AbsoluteAreaFlexibility, MixedPolicy};
use crate::characteristics::Characteristics;
use crate::columnar::ColumnarKernel;
use crate::error::MeasureError;
use crate::measure::Measure;
use crate::prepared::PreparedOffer;
use crate::set::SetAggregation;

/// Relative area-based flexibility:
/// `2 * absolute_area_flexibility / (|cmin| + |cmax|)` (Definition 11,
/// Example 10) — the absolute area normalised by the average total-energy
/// magnitude, for comparing flex-offers of different sizes.
///
/// Undefined when `|cmin| + |cmax| = 0` (Definition 11's side condition).
/// Over a set it aggregates by *average*, per Section 4.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RelativeAreaFlexibility {
    /// Mixed flex-offer handling, shared with the absolute measure.
    pub mixed_policy: MixedPolicy,
}

impl RelativeAreaFlexibility {
    /// Definition-literal policy (Example 15 reproduces).
    pub fn new() -> Self {
        Self::default()
    }

    /// Rejecting policy: `of` fails on mixed flex-offers.
    pub fn rejecting_mixed() -> Self {
        Self {
            mixed_policy: MixedPolicy::Reject,
        }
    }
}

impl Measure for RelativeAreaFlexibility {
    fn name(&self) -> &'static str {
        "relative area-based flexibility"
    }

    fn short_name(&self) -> &'static str {
        "Rel. Area"
    }

    fn of(&self, fo: &FlexOffer) -> Result<f64, MeasureError> {
        let denominator = fo.total_min().unsigned_abs() + fo.total_max().unsigned_abs();
        if denominator == 0 {
            return Err(MeasureError::UndefinedDenominator);
        }
        let abs = AbsoluteAreaFlexibility {
            mixed_policy: self.mixed_policy,
        }
        .of(fo)?;
        Ok(2.0 * abs / denominator as f64)
    }

    fn of_prepared(&self, prepared: &PreparedOffer<'_>) -> Result<f64, MeasureError> {
        let fo = prepared.offer();
        let denominator = fo.total_min().unsigned_abs() + fo.total_max().unsigned_abs();
        if denominator == 0 {
            return Err(MeasureError::UndefinedDenominator);
        }
        let abs = AbsoluteAreaFlexibility {
            mixed_policy: self.mixed_policy,
        }
        .of_prepared(prepared)?;
        Ok(2.0 * abs / denominator as f64)
    }

    fn columnar_kernel(&self) -> Option<ColumnarKernel> {
        Some(ColumnarKernel::RelArea(self.mixed_policy))
    }

    fn set_aggregation(&self) -> SetAggregation {
        SetAggregation::Average
    }

    /// Section 4: "the sum of relative flexibilities is not meaningful,
    /// instead the average relative flexibility could be used."
    fn of_set(&self, fos: &[FlexOffer]) -> Result<f64, MeasureError> {
        if fos.is_empty() {
            return Err(MeasureError::EmptySet {
                measure: "Rel. Area",
            });
        }
        let mut total = 0.0;
        for fo in fos {
            total += self.of(fo)?;
        }
        Ok(total / fos.len() as f64)
    }

    fn declared_characteristics(&self) -> Characteristics {
        Characteristics {
            captures_time: true,
            captures_energy: true,
            captures_time_energy: true,
            captures_size: true,
            positive: true,
            negative: true,
            mixed: false,
            single_value: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;

    fn fo(tes: i64, tls: i64, slices: Vec<(i64, i64)>) -> FlexOffer {
        FlexOffer::new(
            tes,
            tls,
            slices
                .into_iter()
                .map(|(a, b)| Slice::new(a, b).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn example_10_f4() {
        // f4: 2*8 / (|2| + |2|) = 4.
        let f4 = fo(0, 4, vec![(2, 2)]);
        assert_eq!(RelativeAreaFlexibility::new().of(&f4).unwrap(), 4.0);
    }

    #[test]
    fn example_10_f5() {
        // f5: 2*8 / (|3| + |3|) = 16/6.
        let f5 = fo(0, 4, vec![(1, 1), (2, 2)]);
        let v = RelativeAreaFlexibility::new().of(&f5).unwrap();
        assert!((v - 16.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn example_15_mixed() {
        // f6: 2*32 / (|-8| + |2|) = 6.4.
        let f6 = fo(0, 2, vec![(-1, 2), (-4, -1), (-3, 1)]);
        assert!((RelativeAreaFlexibility::new().of(&f6).unwrap() - 6.4).abs() < 1e-12);
    }

    #[test]
    fn undefined_denominator() {
        // cmin = cmax = 0: Definition 11's side condition fails.
        let f = fo(0, 1, vec![(0, 0)]);
        assert_eq!(
            RelativeAreaFlexibility::new().of(&f),
            Err(MeasureError::UndefinedDenominator)
        );
        // A balanced mixed flex-offer hits the same condition.
        let balanced = fo(0, 0, vec![(1, 1), (-1, -1)]);
        assert_eq!(
            RelativeAreaFlexibility::new().of(&balanced),
            Err(MeasureError::UndefinedDenominator)
        );
    }

    #[test]
    fn size_normalisation() {
        // The 100x-shifted pair of Examples 11-12 now orders by *relative*
        // flexibility: fx is relatively far more flexible.
        let fx = fo(1, 3, vec![(1, 5)]);
        let fy = fo(1, 3, vec![(101, 105)]);
        let m = RelativeAreaFlexibility::new();
        let vx = m.of(&fx).unwrap();
        let vy = m.of(&fy).unwrap();
        assert!((vx - 2.0 * 14.0 / 6.0).abs() < 1e-12);
        assert!((vy - 2.0 * 214.0 / 206.0).abs() < 1e-12);
        assert!(vx > vy);
    }

    #[test]
    fn set_semantics_averages() {
        let f4 = fo(0, 4, vec![(2, 2)]);
        let f5 = fo(0, 4, vec![(1, 1), (2, 2)]);
        let m = RelativeAreaFlexibility::new();
        let avg = m.of_set(&[f4.clone(), f5.clone()]).unwrap();
        let expected = (m.of(&f4).unwrap() + m.of(&f5).unwrap()) / 2.0;
        assert!((avg - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_set_rejected() {
        assert_eq!(
            RelativeAreaFlexibility::new().of_set(&[]),
            Err(MeasureError::EmptySet {
                measure: "Rel. Area"
            })
        );
    }

    #[test]
    fn rejecting_policy_propagates() {
        let f6 = fo(0, 2, vec![(-1, 2), (-4, -1), (-3, 1)]);
        assert!(RelativeAreaFlexibility::rejecting_mixed().of(&f6).is_err());
    }
}
