//! Set-level measurement helpers (paper, Section 4).
//!
//! Both scenarios compare *sets* of flex-offers — e.g. a portfolio before
//! and after aggregation. [`Measure::of_set`]
//! provides each measure's canonical set semantics; this module adds
//! explicit aggregation control and a convenience report across all eight
//! measures.

use flexoffers_model::FlexOffer;

use crate::error::MeasureError;
use crate::measure::{all_measures, Measure};

/// How individual values combine into a set value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SetAggregation {
    /// Sum of member values (the paper's rule for most measures).
    Sum,
    /// Average of member values (the paper's rule for relative area).
    Average,
}

impl SetAggregation {
    /// Applies the aggregation to a measure over a set, overriding the
    /// measure's own `of_set` rule.
    pub fn apply(self, measure: &dyn Measure, fos: &[FlexOffer]) -> Result<f64, MeasureError> {
        match self {
            SetAggregation::Sum => {
                let mut total = 0.0;
                for fo in fos {
                    total += measure.of(fo)?;
                }
                Ok(total)
            }
            SetAggregation::Average => {
                if fos.is_empty() {
                    return Err(MeasureError::EmptySet {
                        measure: measure.short_name(),
                    });
                }
                let mut total = 0.0;
                for fo in fos {
                    total += measure.of(fo)?;
                }
                Ok(total / fos.len() as f64)
            }
        }
    }
}

/// One measure's value over a set, or the error explaining why it does not
/// apply.
#[derive(Debug)]
pub struct SetMeasurement {
    /// The measure's Table 1 column name.
    pub measure: &'static str,
    /// The set-level value under the measure's canonical set semantics.
    pub value: Result<f64, MeasureError>,
}

/// Evaluates all eight measures over a set with their canonical set
/// semantics — the comparison table Scenario 1 and 2 analyses start from.
pub fn measure_set(fos: &[FlexOffer]) -> Vec<SetMeasurement> {
    all_measures()
        .iter()
        .map(|m| SetMeasurement {
            measure: m.short_name(),
            value: m.of_set(fos),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel_area::RelativeAreaFlexibility;
    use crate::time::TimeFlexibility;
    use flexoffers_model::Slice;

    fn offers() -> Vec<FlexOffer> {
        vec![
            FlexOffer::new(0, 2, vec![Slice::new(1, 3).unwrap()]).unwrap(),
            FlexOffer::new(1, 5, vec![Slice::new(0, 2).unwrap()]).unwrap(),
        ]
    }

    #[test]
    fn explicit_sum_and_average() {
        let fos = offers();
        let sum = SetAggregation::Sum.apply(&TimeFlexibility, &fos).unwrap();
        let avg = SetAggregation::Average
            .apply(&TimeFlexibility, &fos)
            .unwrap();
        assert_eq!(sum, 6.0);
        assert_eq!(avg, 3.0);
    }

    #[test]
    fn average_of_empty_errors() {
        assert!(matches!(
            SetAggregation::Average.apply(&TimeFlexibility, &[]),
            Err(MeasureError::EmptySet { .. })
        ));
        assert_eq!(
            SetAggregation::Sum.apply(&TimeFlexibility, &[]).unwrap(),
            0.0
        );
    }

    #[test]
    fn measure_set_covers_all_eight() {
        let report = measure_set(&offers());
        assert_eq!(report.len(), 8);
        for entry in &report {
            assert!(
                entry.value.is_ok(),
                "{} failed on a plain consumption set",
                entry.measure
            );
        }
    }

    #[test]
    fn canonical_relative_area_set_rule_is_average() {
        let fos = offers();
        let m = RelativeAreaFlexibility::new();
        let canonical = m.of_set(&fos).unwrap();
        let avg = SetAggregation::Average.apply(&m, &fos).unwrap();
        assert!((canonical - avg).abs() < 1e-12);
    }
}
