//! Product flexibility (Definition 3).

use flexoffers_model::FlexOffer;

use crate::characteristics::Characteristics;
use crate::columnar::ColumnarKernel;
use crate::error::MeasureError;
use crate::measure::Measure;

/// Product flexibility `tf(f) * ef(f)` (Definition 3, Example 3).
///
/// The paper's adaptation of the original "total flexibility" of Šikšnys et
/// al. to total-energy constraints. Its known blind spot (Example 11): the
/// product collapses to zero as soon as *either* dimension has zero
/// flexibility, even though the flex-offer is still flexible in the other —
/// hence Table 1's "captures time: No / captures energy: No / captures time
/// & energy: Yes".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProductFlexibility;

impl Measure for ProductFlexibility {
    fn name(&self) -> &'static str {
        "product flexibility"
    }

    fn short_name(&self) -> &'static str {
        "Product"
    }

    fn of(&self, fo: &FlexOffer) -> Result<f64, MeasureError> {
        Ok(fo.time_flexibility() as f64 * fo.energy_flexibility() as f64)
    }

    fn columnar_kernel(&self) -> Option<ColumnarKernel> {
        Some(ColumnarKernel::Product)
    }

    fn declared_characteristics(&self) -> Characteristics {
        Characteristics {
            captures_time: false,
            captures_energy: false,
            captures_time_energy: true,
            captures_size: false,
            positive: true,
            negative: true,
            mixed: true,
            single_value: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;

    #[test]
    fn example_3() {
        // Figure 1's f: 5 * 12 = 60.
        let f = FlexOffer::new(
            1,
            6,
            vec![
                Slice::new(1, 3).unwrap(),
                Slice::new(2, 4).unwrap(),
                Slice::new(0, 5).unwrap(),
                Slice::new(0, 3).unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(ProductFlexibility.of(&f).unwrap(), 60.0);
    }

    #[test]
    fn example_11_zero_collapse() {
        // fx = ([2,8], <[5,5]>): tf = 6, ef = 0 -> product 0.
        let fx = FlexOffer::new(2, 8, vec![Slice::fixed(5)]).unwrap();
        assert_eq!(ProductFlexibility.of(&fx).unwrap(), 0.0);
    }

    #[test]
    fn example_11_size_blindness() {
        // fx = ([1,3], <[1,5]>) and fy = ([1,3], <[101,105]>) both get 8.
        let fx = FlexOffer::new(1, 3, vec![Slice::new(1, 5).unwrap()]).unwrap();
        let fy = FlexOffer::new(1, 3, vec![Slice::new(101, 105).unwrap()]).unwrap();
        assert_eq!(ProductFlexibility.of(&fx).unwrap(), 8.0);
        assert_eq!(ProductFlexibility.of(&fy).unwrap(), 8.0);
    }

    #[test]
    fn set_comparison_sums_products() {
        // Section 4: "To compare two or more sets of flex-offers, we should
        // sum the product flexibilities of the flex-offers in each set."
        let fx = FlexOffer::new(1, 3, vec![Slice::new(1, 5).unwrap()]).unwrap();
        let set = vec![fx.clone(), fx];
        assert_eq!(ProductFlexibility.of_set(&set).unwrap(), 16.0);
    }
}
