//! Reusable per-offer measurement handles.
//!
//! Evaluating all eight measures over one flex-offer repeats work: the two
//! area measures (Definitions 10–11) each recompute the assignment-union
//! area, the single `O(s + tf)` sub-computation that dominates a full
//! measurement pass. A [`PreparedOffer`] hoists that shared normalisation
//! out of the hot loop — the union area is computed lazily, at most once
//! per offer, and every measure's
//! [`Measure::of_prepared`](crate::Measure::of_prepared) reuses it. The
//! portfolio engine prepares each offer exactly once per batch, whatever
//! the number of measures; passes that request no area measure never pay
//! for the sweep at all.

use std::cell::OnceCell;

use flexoffers_area::{union_area, UnionArea};
use flexoffers_model::FlexOffer;

/// A flex-offer paired with its lazily computed, measure-shared
/// intermediates.
///
/// The union-area sweep (Definition 10) runs on first use and is cached;
/// the handle then serves every area-derived measure without
/// recomputation. All other measures read the offer directly, so preparing
/// is never slower than a plain per-measure loop — no measure set pays for
/// work it does not use.
#[derive(Clone, Debug)]
pub struct PreparedOffer<'a> {
    offer: &'a FlexOffer,
    union: OnceCell<UnionArea>,
}

impl<'a> PreparedOffer<'a> {
    /// Prepares an offer. Construction is free; intermediates are computed
    /// on first use and cached.
    pub fn new(offer: &'a FlexOffer) -> Self {
        Self {
            offer,
            union: OnceCell::new(),
        }
    }

    /// Prepares an offer with its union area already computed — for batch
    /// evaluators (the columnar kernels) that sweep unions out-of-line and
    /// hand them to scalar fallback measures without a second sweep. The
    /// caller must pass the offer's own union (`union_area(offer)` or a
    /// value-identical reproduction); the handle serves it verbatim.
    pub fn with_union(offer: &'a FlexOffer, union: UnionArea) -> Self {
        let cell = OnceCell::new();
        cell.set(union).expect("fresh cell accepts a value");
        Self { offer, union: cell }
    }

    /// The underlying flex-offer.
    pub fn offer(&self) -> &'a FlexOffer {
        self.offer
    }

    /// The assignment-union area (Definition 10), computed on first call
    /// and cached.
    pub fn union(&self) -> &UnionArea {
        self.union.get_or_init(|| union_area(self.offer))
    }

    /// Total number of cells in the union area.
    pub fn union_size(&self) -> u64 {
        self.union().size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::all_measures;
    use flexoffers_model::Slice;

    fn figure1() -> FlexOffer {
        FlexOffer::new(
            1,
            6,
            vec![
                Slice::new(1, 3).unwrap(),
                Slice::new(2, 4).unwrap(),
                Slice::new(0, 5).unwrap(),
                Slice::new(0, 3).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn prepared_union_matches_direct_computation() {
        let f = figure1();
        let prepared = PreparedOffer::new(&f);
        assert_eq!(prepared.union_size(), union_area(&f).size());
        assert_eq!(prepared.offer(), &f);
    }

    #[test]
    fn every_measure_agrees_with_its_unprepared_path() {
        let f = figure1();
        let prepared = PreparedOffer::new(&f);
        for m in all_measures() {
            assert_eq!(
                m.of_prepared(&prepared),
                m.of(&f),
                "{} diverges between prepared and direct evaluation",
                m.name()
            );
        }
    }

    #[test]
    fn with_union_serves_the_injected_area_without_recomputing() {
        let f = figure1();
        let union = union_area(&f);
        let prepared = PreparedOffer::with_union(&f, union.clone());
        assert_eq!(prepared.union(), &union);
        assert_eq!(prepared.union_size(), union.size());
    }

    #[test]
    fn with_union_matches_lazy_preparation_for_every_measure() {
        let f = figure1();
        let seeded = PreparedOffer::with_union(&f, union_area(&f));
        let lazy = PreparedOffer::new(&f);
        for m in all_measures() {
            assert_eq!(m.of_prepared(&seeded), m.of_prepared(&lazy), "{}", m.name());
        }
    }

    #[test]
    fn mixed_offer_agrees_too() {
        let f6 = FlexOffer::new(
            0,
            2,
            vec![
                Slice::new(-1, 2).unwrap(),
                Slice::new(-4, -1).unwrap(),
                Slice::new(-3, 1).unwrap(),
            ],
        )
        .unwrap();
        let prepared = PreparedOffer::new(&f6);
        for m in all_measures() {
            assert_eq!(m.of_prepared(&prepared), m.of(&f6), "{}", m.name());
        }
    }
}
