//! Weighted combinations of measures.
//!
//! Section 4 closes with: "Weighting is one way of combining different
//! flexibility measures and balancing their influences to fulfill specific
//! characteristics mentioned in Table 1" — e.g. pairing a size-aware area
//! measure with a mixed-capable vector measure for an aggregator that both
//! balances and trades.

use flexoffers_model::FlexOffer;

use crate::characteristics::Characteristics;
use crate::error::MeasureError;
use crate::measure::Measure;
use crate::prepared::PreparedOffer;

/// A linear combination `sum(w_i * m_i(f))` of measures.
///
/// The declared characteristics are the *disjunction* of the parts'
/// capture/sign rows — a combination responds to whatever any part responds
/// to — except the sign-class rows, which take the *conjunction*: the
/// combination is only applicable where every part is.
pub struct WeightedMeasure {
    parts: Vec<(f64, Box<dyn Measure>)>,
}

impl WeightedMeasure {
    /// Creates a combination from `(weight, measure)` parts.
    pub fn new(parts: Vec<(f64, Box<dyn Measure>)>) -> Self {
        Self { parts }
    }

    /// The parts as `(weight, measure)` pairs.
    pub fn parts(&self) -> impl Iterator<Item = (f64, &dyn Measure)> {
        self.parts.iter().map(|(w, m)| (*w, m.as_ref()))
    }
}

impl Measure for WeightedMeasure {
    fn name(&self) -> &'static str {
        "weighted combination"
    }

    fn short_name(&self) -> &'static str {
        "Weighted"
    }

    fn of(&self, fo: &FlexOffer) -> Result<f64, MeasureError> {
        let mut total = 0.0;
        for (w, m) in &self.parts {
            total += w * m.of(fo)?;
        }
        Ok(total)
    }

    fn of_prepared(&self, prepared: &PreparedOffer<'_>) -> Result<f64, MeasureError> {
        let mut total = 0.0;
        for (w, m) in &self.parts {
            total += w * m.of_prepared(prepared)?;
        }
        Ok(total)
    }

    fn declared_characteristics(&self) -> Characteristics {
        let mut out = Characteristics {
            captures_time: false,
            captures_energy: false,
            captures_time_energy: false,
            captures_size: false,
            positive: true,
            negative: true,
            mixed: true,
            single_value: true,
        };
        for (_, m) in &self.parts {
            let c = m.declared_characteristics();
            out.captures_time |= c.captures_time;
            out.captures_energy |= c.captures_energy;
            out.captures_time_energy |= c.captures_time_energy;
            out.captures_size |= c.captures_size;
            out.positive &= c.positive;
            out.negative &= c.negative;
            out.mixed &= c.mixed;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abs_area::AbsoluteAreaFlexibility;
    use crate::energy::EnergyFlexibility;
    use crate::time::TimeFlexibility;
    use crate::vector::VectorFlexibility;
    use flexoffers_model::Slice;

    fn fo() -> FlexOffer {
        FlexOffer::new(1, 3, vec![Slice::new(1, 5).unwrap()]).unwrap()
    }

    #[test]
    fn linear_combination_value() {
        let m = WeightedMeasure::new(vec![
            (2.0, Box::new(TimeFlexibility)),
            (0.5, Box::new(EnergyFlexibility)),
        ]);
        // tf = 2, ef = 4 -> 2*2 + 0.5*4 = 6.
        assert_eq!(m.of(&fo()).unwrap(), 6.0);
    }

    #[test]
    fn characteristics_union_of_captures() {
        let m = WeightedMeasure::new(vec![
            (1.0, Box::new(TimeFlexibility)),
            (1.0, Box::new(EnergyFlexibility)),
        ]);
        let c = m.declared_characteristics();
        assert!(c.captures_time && c.captures_energy);
        assert!(!c.captures_size);
        assert!(c.mixed);
    }

    #[test]
    fn mixed_support_is_conjunction() {
        // Adding an area part restricts the combination to non-mixed.
        let m = WeightedMeasure::new(vec![
            (1.0, Box::new(VectorFlexibility::default())),
            (1.0, Box::new(AbsoluteAreaFlexibility::rejecting_mixed())),
        ]);
        let c = m.declared_characteristics();
        assert!(!c.mixed);
        assert!(c.captures_size);
        // And evaluation on a mixed flex-offer propagates the part's error.
        let mixed = FlexOffer::new(0, 0, vec![Slice::new(-1, 1).unwrap()]).unwrap();
        assert!(m.of(&mixed).is_err());
    }

    #[test]
    fn empty_combination_is_zero() {
        let m = WeightedMeasure::new(vec![]);
        assert_eq!(m.of(&fo()).unwrap(), 0.0);
    }

    #[test]
    fn set_semantics_inherited_sum() {
        let m = WeightedMeasure::new(vec![(1.0, Box::new(TimeFlexibility))]);
        let set = vec![fo(), fo()];
        assert_eq!(m.of_set(&set).unwrap(), 4.0);
    }
}
