//! The eight flexibility measures of Valsomatzis et al. (EDBT 2015) —
//! *Measuring and Comparing Energy Flexibilities* — the primary contribution
//! the paper proposes for valuing flex-offers, evaluating aggregation
//! techniques and comparing flexibility offerings.
//!
//! | Measure | Definition | Type |
//! |---|---|---|
//! | [`TimeFlexibility`] | Sec. 3.1 | `tls - tes` |
//! | [`EnergyFlexibility`] | Sec. 3.1 | `cmax - cmin` |
//! | [`ProductFlexibility`] | Def. 3 | `tf * ef` |
//! | [`VectorFlexibility`] | Def. 4 | norm of `<tf, ef>` |
//! | [`TimeSeriesFlexibility`] | Def. 5–7 | norm of `f_max - f_min` |
//! | [`AssignmentFlexibility`] | Def. 8 | number of assignments |
//! | [`AbsoluteAreaFlexibility`] | Def. 9–10 | union area − inflexible base |
//! | [`RelativeAreaFlexibility`] | Def. 11 | size-normalised absolute area |
//!
//! Every measure implements the [`Measure`] trait, which also lifts it to
//! *sets* of flex-offers (Section 4 of the paper: sums for most measures,
//! the average for relative area). [`WeightedMeasure`] combines measures, as
//! the paper's discussion of "weighting" suggests for scenarios no single
//! measure covers.
//!
//! The paper's Table 1 — which measure captures time, energy, their
//! combination, size, and which sign classes — ships twice here: transcribed
//! ([`characteristics::paper_table1`]) and *empirically derived* from probe
//! families ([`probe::empirical_characteristics`]), so the qualitative
//! claims can be regenerated and checked rather than trusted.
//!
//! # Example
//!
//! ```
//! use flexoffers_measures::{all_measures, Measure, ProductFlexibility};
//! use flexoffers_model::{FlexOffer, Slice};
//!
//! // The paper's Figure 1 flex-offer.
//! let f = FlexOffer::new(1, 6, vec![
//!     Slice::new(1, 3).unwrap(),
//!     Slice::new(2, 4).unwrap(),
//!     Slice::new(0, 5).unwrap(),
//!     Slice::new(0, 3).unwrap(),
//! ]).unwrap();
//!
//! // Example 3: product flexibility = tf * ef = 5 * 12 = 60.
//! assert_eq!(ProductFlexibility.of(&f).unwrap(), 60.0);
//!
//! for m in all_measures() {
//!     println!("{}: {:?}", m.short_name(), m.of(&f));
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod abs_area;
pub mod assignments;
pub mod characteristics;
pub mod columnar;
pub mod energy;
pub mod error;
pub mod measure;
pub mod normalize;
pub mod prepared;
pub mod probe;
pub mod product;
pub mod registry;
pub mod rel_area;
pub mod scenarios;
pub mod series;
pub mod set;
pub mod time;
pub mod vector;
pub mod weighted;

pub use abs_area::{AbsoluteAreaFlexibility, MixedPolicy};
pub use assignments::{AssignmentFlexibility, CountScale};
pub use characteristics::Characteristics;
pub use columnar::{ColumnarBatch, ColumnarKernel};
pub use energy::EnergyFlexibility;
pub use error::MeasureError;
pub use measure::{all_measures, Measure};
pub use normalize::NormalizedMeasure;
pub use prepared::PreparedOffer;
pub use product::ProductFlexibility;
pub use registry::{available_names, measure_by_name};
pub use rel_area::RelativeAreaFlexibility;
pub use scenarios::{qualified_measures, Scenario};
pub use series::TimeSeriesFlexibility;
pub use set::SetAggregation;
pub use time::TimeFlexibility;
pub use vector::VectorFlexibility;
pub use weighted::WeightedMeasure;

pub use flexoffers_timeseries::Norm;
