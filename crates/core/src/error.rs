//! Error types for flexibility measurement.

use std::error::Error;
use std::fmt;

/// Errors produced when a measure is applied outside its domain of
/// applicability (the paper's Section 4 catalogues these limits per
/// measure).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MeasureError {
    /// The measure rejects mixed flex-offers (the paper: absolute and
    /// relative area-based flexibility "is not feasible" for flex-offers
    /// representing both production and consumption).
    MixedNotSupported {
        /// The rejecting measure's short name.
        measure: &'static str,
    },
    /// Relative area-based flexibility is undefined when
    /// `|cmin| + |cmax| = 0` (Definition 11's side condition).
    UndefinedDenominator,
    /// A set-level aggregation needing at least one element got none (e.g.
    /// the average used for relative area flexibility over a set).
    EmptySet {
        /// The aggregating measure's short name.
        measure: &'static str,
    },
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasureError::MixedNotSupported { measure } => {
                write!(
                    f,
                    "{measure} flexibility is not defined for mixed flex-offers"
                )
            }
            MeasureError::UndefinedDenominator => write!(
                f,
                "relative area-based flexibility requires |cmin| + |cmax| != 0"
            ),
            MeasureError::EmptySet { measure } => {
                write!(f, "{measure} flexibility of an empty set is undefined")
            }
        }
    }
}

impl Error for MeasureError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MeasureError::MixedNotSupported {
            measure: "Abs. Area"
        }
        .to_string()
        .contains("mixed"));
        assert!(MeasureError::UndefinedDenominator
            .to_string()
            .contains("cmin"));
        assert!(MeasureError::EmptySet {
            measure: "Rel. Area"
        }
        .to_string()
        .contains("empty"));
    }

    #[test]
    fn implements_error() {
        fn assert_error<E: Error>(_: &E) {}
        assert_error(&MeasureError::UndefinedDenominator);
    }
}
