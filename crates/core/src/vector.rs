//! Vector flexibility (Definition 4).

use flexoffers_model::FlexOffer;
use flexoffers_timeseries::Norm;

use crate::characteristics::Characteristics;
use crate::columnar::ColumnarKernel;
use crate::error::MeasureError;
use crate::measure::Measure;

/// Vector flexibility: the length of the vector `<tf(f), ef(f)>` under a
/// chosen norm (Definition 4, Example 4).
///
/// Unlike [`ProductFlexibility`](crate::ProductFlexibility) it stays
/// non-zero when only one dimension is flexible, which is why Section 4
/// recommends it where zero-time or zero-energy flex-offers occur (e.g.
/// production units that cannot shift in time). Like the product it is blind
/// to amount magnitudes (Example 12).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VectorFlexibility {
    /// Norm applied to the 2-vector; the paper proposes Manhattan and
    /// Euclidean.
    pub norm: Norm,
}

impl VectorFlexibility {
    /// Vector flexibility under the given norm.
    pub fn new(norm: Norm) -> Self {
        Self { norm }
    }

    /// The raw components `(tf, ef)` before the norm is applied.
    pub fn components(fo: &FlexOffer) -> (f64, f64) {
        (fo.time_flexibility() as f64, fo.energy_flexibility() as f64)
    }
}

impl Default for VectorFlexibility {
    /// Manhattan norm, the first of the paper's two proposals.
    fn default() -> Self {
        Self { norm: Norm::L1 }
    }
}

impl Measure for VectorFlexibility {
    fn name(&self) -> &'static str {
        "vector flexibility"
    }

    fn short_name(&self) -> &'static str {
        "Vector"
    }

    fn of(&self, fo: &FlexOffer) -> Result<f64, MeasureError> {
        let (t, e) = Self::components(fo);
        Ok(self.norm.of_vec2(t, e))
    }

    fn columnar_kernel(&self) -> Option<ColumnarKernel> {
        Some(ColumnarKernel::Vector(self.norm))
    }

    fn declared_characteristics(&self) -> Characteristics {
        Characteristics {
            captures_time: true,
            captures_energy: true,
            captures_time_energy: true,
            captures_size: false,
            positive: true,
            negative: true,
            mixed: true,
            single_value: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;

    fn figure1() -> FlexOffer {
        FlexOffer::new(
            1,
            6,
            vec![
                Slice::new(1, 3).unwrap(),
                Slice::new(2, 4).unwrap(),
                Slice::new(0, 5).unwrap(),
                Slice::new(0, 3).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure1_components_follow_definitions() {
        // Example 4 prints <5, 10>, but Definition 4's components are
        // tf = 5 (Example 1) and ef = 12 (Example 2); we follow the
        // definitions — see the errata notes in EXPERIMENTS.md.
        assert_eq!(VectorFlexibility::components(&figure1()), (5.0, 12.0));
    }

    #[test]
    fn figure1_norms() {
        let f = figure1();
        assert_eq!(VectorFlexibility::new(Norm::L1).of(&f).unwrap(), 17.0);
        let l2 = VectorFlexibility::new(Norm::L2).of(&f).unwrap();
        assert!((l2 - (25.0f64 + 144.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn example_4_arithmetic_with_papers_components() {
        // The paper's own arithmetic on <5, 10>: L1 = 15, L2 = 11.180.
        assert_eq!(Norm::L1.of_vec2(5.0, 10.0), 15.0);
        assert!((Norm::L2.of_vec2(5.0, 10.0) - 11.180339887498949).abs() < 1e-9);
    }

    #[test]
    fn survives_zero_in_one_dimension() {
        // Example 11's fx = ([2,8], <[5,5]>): product collapses, vector
        // reports the remaining time flexibility.
        let fx = FlexOffer::new(2, 8, vec![Slice::fixed(5)]).unwrap();
        assert_eq!(VectorFlexibility::default().of(&fx).unwrap(), 6.0);
        assert_eq!(VectorFlexibility::new(Norm::L2).of(&fx).unwrap(), 6.0);
    }

    #[test]
    fn example_12_size_blindness() {
        let fx = FlexOffer::new(1, 3, vec![Slice::new(1, 5).unwrap()]).unwrap();
        let fy = FlexOffer::new(1, 3, vec![Slice::new(101, 105).unwrap()]).unwrap();
        // L1: |2| + |4| = 6; L2: sqrt(4 + 16) = 4.472; equal for both.
        assert_eq!(
            VectorFlexibility::new(Norm::L1).of(&fx).unwrap(),
            VectorFlexibility::new(Norm::L1).of(&fy).unwrap()
        );
        let l2 = VectorFlexibility::new(Norm::L2).of(&fx).unwrap();
        assert!((l2 - 4.47213595499958).abs() < 1e-9);
        assert_eq!(l2, VectorFlexibility::new(Norm::L2).of(&fy).unwrap());
    }

    #[test]
    fn sign_independent() {
        // "it is independent of the sign of the energy values".
        let cons = FlexOffer::new(0, 2, vec![Slice::new(1, 4).unwrap()]).unwrap();
        let prod = FlexOffer::new(0, 2, vec![Slice::new(-4, -1).unwrap()]).unwrap();
        assert_eq!(
            VectorFlexibility::default().of(&cons).unwrap(),
            VectorFlexibility::default().of(&prod).unwrap()
        );
    }
}
