//! Time-series flexibility (Definitions 5–7).

use flexoffers_model::FlexOffer;
use flexoffers_timeseries::Norm;

use crate::characteristics::Characteristics;
use crate::columnar::ColumnarKernel;
use crate::error::MeasureError;
use crate::measure::Measure;

/// Time-series flexibility: the norm of the difference between the maximum
/// and minimum assignments, `||f_max - f_min||` (Definition 7, Example 5).
///
/// The extremes are the paper's Definitions 5–6: the minimum assignment sits
/// at the earliest start with every slice at its range minimum, the maximum
/// at the latest start with every slice at its maximum. The difference is
/// taken as series subtraction over the union of their domains.
///
/// Section 4's verdict (citing Lee & Verleysen): point-wise norms ignore the
/// *temporal* structure, so a ten-fold larger start window leaves the value
/// unchanged (Example 13) — the measure effectively captures only energy
/// flexibility.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeSeriesFlexibility {
    /// Norm applied to the difference series.
    pub norm: Norm,
}

impl TimeSeriesFlexibility {
    /// Time-series flexibility under the given norm.
    pub fn new(norm: Norm) -> Self {
        Self { norm }
    }

    /// The difference series `f_max - f_min` the norm is applied to.
    pub fn difference(fo: &FlexOffer) -> flexoffers_timeseries::Series<i64> {
        &fo.max_assignment().as_series() - &fo.min_assignment().as_series()
    }
}

impl Default for TimeSeriesFlexibility {
    /// Manhattan norm, the first of the paper's two proposals.
    fn default() -> Self {
        Self { norm: Norm::L1 }
    }
}

impl Measure for TimeSeriesFlexibility {
    fn name(&self) -> &'static str {
        "time-series flexibility"
    }

    fn short_name(&self) -> &'static str {
        "Time-series"
    }

    fn of(&self, fo: &FlexOffer) -> Result<f64, MeasureError> {
        Ok(self.norm.of(&Self::difference(fo)))
    }

    fn columnar_kernel(&self) -> Option<ColumnarKernel> {
        Some(ColumnarKernel::TimeSeries(self.norm))
    }

    fn declared_characteristics(&self) -> Characteristics {
        Characteristics {
            captures_time: false,
            captures_energy: true,
            captures_time_energy: false,
            captures_size: false,
            positive: true,
            negative: true,
            mixed: true,
            single_value: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;
    use flexoffers_timeseries::Series;

    #[test]
    fn example_5() {
        // f1 = ([0,1], <[0,1]>): difference <0,1>, L1 = L2 = 1.
        let f1 = FlexOffer::new(0, 1, vec![Slice::new(0, 1).unwrap()]).unwrap();
        let d = TimeSeriesFlexibility::difference(&f1);
        assert_eq!(d, Series::new(0, vec![0, 1]));
        assert_eq!(TimeSeriesFlexibility::new(Norm::L1).of(&f1).unwrap(), 1.0);
        assert_eq!(TimeSeriesFlexibility::new(Norm::L2).of(&f1).unwrap(), 1.0);
    }

    #[test]
    fn example_13_time_blindness() {
        // f1' = ([0,10], <[0,1]>): ten-fold time flexibility, same norms.
        let f1p = FlexOffer::new(0, 10, vec![Slice::new(0, 1).unwrap()]).unwrap();
        assert_eq!(TimeSeriesFlexibility::new(Norm::L1).of(&f1p).unwrap(), 1.0);
        assert_eq!(TimeSeriesFlexibility::new(Norm::L2).of(&f1p).unwrap(), 1.0);
        // The difference series is <0,...,0,1> with the 1 at slot 10.
        let d = TimeSeriesFlexibility::difference(&f1p);
        assert_eq!(d.at(10), 1);
        assert_eq!(d.iter_nonzero().count(), 1);
    }

    #[test]
    fn overlapping_extremes_cancel() {
        // With tf = 0 the extremes share a domain; only range widths remain.
        let f = FlexOffer::new(
            3,
            3,
            vec![Slice::new(2, 5).unwrap(), Slice::new(-1, 1).unwrap()],
        )
        .unwrap();
        let d = TimeSeriesFlexibility::difference(&f);
        assert_eq!(d, Series::new(3, vec![3, 2]));
        assert_eq!(TimeSeriesFlexibility::default().of(&f).unwrap(), 5.0);
    }

    #[test]
    fn applies_to_production_and_mixed() {
        let prod = FlexOffer::new(0, 0, vec![Slice::new(-5, -2).unwrap()]).unwrap();
        assert_eq!(TimeSeriesFlexibility::default().of(&prod).unwrap(), 3.0);
        let mixed = FlexOffer::new(0, 0, vec![Slice::new(-1, 2).unwrap()]).unwrap();
        assert_eq!(TimeSeriesFlexibility::default().of(&mixed).unwrap(), 3.0);
    }

    #[test]
    fn inflexible_offer_measures_zero() {
        let f = FlexOffer::new(2, 2, vec![Slice::fixed(4), Slice::fixed(-1)]).unwrap();
        assert_eq!(TimeSeriesFlexibility::default().of(&f).unwrap(), 0.0);
    }

    #[test]
    fn mirror_asymmetry_under_partial_overlap() {
        // A finding about Definition 7: the minimum assignment anchors at
        // the *earliest* start and the maximum at the *latest*, so mirroring
        // a flex-offer (production <-> consumption) swaps which value vector
        // sits at which anchor. When the extremes partially overlap
        // (0 < tf < s), the overlapped slots mix different slices and the
        // norm changes with the sign orientation.
        let f = FlexOffer::new(0, 1, vec![Slice::fixed(-4), Slice::new(-1, 0).unwrap()]).unwrap();
        let mirrored =
            FlexOffer::new(0, 1, vec![Slice::fixed(4), Slice::new(0, 1).unwrap()]).unwrap();
        let m = TimeSeriesFlexibility::default();
        assert_eq!(m.of(&f).unwrap(), 7.0);
        assert_eq!(m.of(&mirrored).unwrap(), 9.0);

        // With disjoint extremes (tf >= s) the multiset of contributions is
        // preserved and symmetry returns.
        let g = FlexOffer::new(0, 2, vec![Slice::fixed(-4), Slice::new(-1, 0).unwrap()]).unwrap();
        let g_mirror =
            FlexOffer::new(0, 2, vec![Slice::fixed(4), Slice::new(0, 1).unwrap()]).unwrap();
        assert_eq!(m.of(&g).unwrap(), m.of(&g_mirror).unwrap());
    }
}
