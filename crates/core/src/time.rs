//! Time flexibility (paper, Section 3.1).

use flexoffers_model::FlexOffer;

use crate::characteristics::Characteristics;
use crate::columnar::ColumnarKernel;
use crate::error::MeasureError;
use crate::measure::Measure;

/// Time flexibility `tf(f) = tls - tes`, in time units (Example 1).
///
/// One of the two primitive flexibilities; blind to everything about the
/// amounts. Suited to Scenario 2's appliances "characterized only by time
/// ... flexibility" (Section 4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimeFlexibility;

impl Measure for TimeFlexibility {
    fn name(&self) -> &'static str {
        "time flexibility"
    }

    fn short_name(&self) -> &'static str {
        "Time"
    }

    fn of(&self, fo: &FlexOffer) -> Result<f64, MeasureError> {
        Ok(fo.time_flexibility() as f64)
    }

    fn columnar_kernel(&self) -> Option<ColumnarKernel> {
        Some(ColumnarKernel::Time)
    }

    fn declared_characteristics(&self) -> Characteristics {
        Characteristics {
            captures_time: true,
            captures_energy: false,
            captures_time_energy: false,
            captures_size: false,
            positive: true,
            negative: true,
            mixed: true,
            single_value: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;

    #[test]
    fn example_1() {
        // Figure 1's f: tf = 6 - 1 = 5.
        let f = FlexOffer::new(
            1,
            6,
            vec![
                Slice::new(1, 3).unwrap(),
                Slice::new(2, 4).unwrap(),
                Slice::new(0, 5).unwrap(),
                Slice::new(0, 3).unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(TimeFlexibility.of(&f).unwrap(), 5.0);
    }

    #[test]
    fn zero_window_means_zero() {
        let f = FlexOffer::new(4, 4, vec![Slice::new(0, 9).unwrap()]).unwrap();
        assert_eq!(TimeFlexibility.of(&f).unwrap(), 0.0);
    }

    #[test]
    fn ignores_amounts_entirely() {
        let small = FlexOffer::new(0, 3, vec![Slice::new(1, 5).unwrap()]).unwrap();
        let large = FlexOffer::new(0, 3, vec![Slice::new(101, 105).unwrap()]).unwrap();
        assert_eq!(
            TimeFlexibility.of(&small).unwrap(),
            TimeFlexibility.of(&large).unwrap()
        );
    }

    #[test]
    fn set_semantics_sums() {
        let f = FlexOffer::new(0, 2, vec![Slice::fixed(1)]).unwrap();
        let g = FlexOffer::new(0, 5, vec![Slice::fixed(1)]).unwrap();
        assert_eq!(TimeFlexibility.of_set(&[f, g]).unwrap(), 7.0);
    }
}
