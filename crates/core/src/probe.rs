//! Empirical derivation of Table 1.
//!
//! Rather than trusting the transcribed characteristics matrix, this module
//! *measures the measures*: each characteristic is operationalised as a
//! behavioural probe over small flex-offer families, and the resulting
//! empirical matrix is compared against the paper's claims.
//!
//! The probes:
//!
//! * **captures time** — strictly increasing on a family whose start window
//!   grows while energy flexibility stays zero;
//! * **captures energy** — strictly increasing on a family whose slice range
//!   widens symmetrically around a fixed amount while the window is fixed
//!   (the symmetric widening keeps the *size* constant, isolating `ef`);
//! * **captures time & energy** — responds to each dimension while the other
//!   is held positive;
//! * **captures size** — distinguishes the paper's own Examples 11–12 pair
//!   (`[1,5]` vs `[101,105]` amounts, identical flexibilities);
//! * **positive / negative** — evaluates on consumption representatives and
//!   their production mirror images, requiring mirror symmetry;
//! * **mixed** — evaluates on mixed representatives *and* agrees with the
//!   consumption analog on a completely inflexible balanced mixed flex-offer
//!   (a sound measure must not report flexibility where a single assignment
//!   exists).
//!
//! One deliberate deviation surfaces: the paper declares the *time-series*
//! measure size-blind (Table 1), but with `tf > 0` the extreme assignments
//! of Definitions 5–6 do not overlap, so the raw amounts — not just the
//! range widths — enter the difference series, and the Examples 11–12 pair
//! measures 6 vs 206 under L1. See [`known_deviations`] and EXPERIMENTS.md.

use flexoffers_model::{FlexOffer, Slice};

use crate::characteristics::Characteristics;
use crate::measure::Measure;

/// A cell where a measure's empirical behaviour disagrees with a declared
/// characteristics matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Discrepancy {
    /// The measure's Table 1 column name.
    pub measure: String,
    /// The characteristic row label.
    pub characteristic: &'static str,
    /// The declared (paper) value.
    pub declared: bool,
    /// The probed value.
    pub empirical: bool,
}

impl std::fmt::Display for Discrepancy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} / {}: declared {} but probes say {}",
            self.measure,
            self.characteristic,
            yes_no(self.declared),
            yes_no(self.empirical)
        )
    }
}

fn yes_no(b: bool) -> &'static str {
    if b {
        "Yes"
    } else {
        "No"
    }
}

fn fo(tes: i64, tls: i64, slices: Vec<(i64, i64)>) -> FlexOffer {
    FlexOffer::new(
        tes,
        tls,
        slices
            .into_iter()
            .map(|(a, b)| Slice::new(a, b).expect("probe slice ranges are ordered"))
            .collect(),
    )
    .expect("probe flex-offers are well-formed")
}

/// Production mirror image: negate every amount (consumption becomes
/// production of the same shape).
fn mirror(f: &FlexOffer) -> FlexOffer {
    FlexOffer::with_totals(
        f.earliest_start(),
        f.latest_start(),
        f.slices()
            .iter()
            .map(|s| Slice::new(-s.max(), -s.min()).expect("mirror preserves ordering"))
            .collect(),
        -f.total_max(),
        -f.total_min(),
    )
    .expect("mirror preserves invariants")
}

/// Start window grows, energy flexibility pinned at zero.
fn time_family() -> Vec<FlexOffer> {
    (0..4).map(|k| fo(0, k, vec![(2, 2), (1, 1)])).collect()
}

/// Slice range widens symmetrically around amount 5, window pinned.
fn energy_family() -> Vec<FlexOffer> {
    (0..4).map(|k| fo(1, 1, vec![(5 - k, 5 + k)])).collect()
}

/// Start window grows with energy flexibility held positive.
fn joint_time_family() -> Vec<FlexOffer> {
    (0..4).map(|k| fo(0, k, vec![(3, 5)])).collect()
}

/// Energy flexibility grows with time flexibility held positive.
fn joint_energy_family() -> Vec<FlexOffer> {
    (0..4).map(|k| fo(0, 2, vec![(5 - k, 5 + k)])).collect()
}

/// The paper's Examples 11–12 pair: identical flexibilities, 100-shifted
/// amounts.
fn size_pair() -> (FlexOffer, FlexOffer) {
    (fo(1, 3, vec![(1, 5)]), fo(1, 3, vec![(101, 105)]))
}

fn positive_representatives() -> Vec<FlexOffer> {
    vec![
        fo(0, 2, vec![(1, 3), (0, 2)]),
        fo(1, 1, vec![(2, 5)]),
        fo(0, 4, vec![(2, 2)]), // Figure 5's f4
    ]
}

fn mixed_representatives() -> Vec<FlexOffer> {
    vec![
        fo(0, 2, vec![(-1, 2), (-4, -1), (-3, 1)]), // Figure 7's f6
        fo(0, 1, vec![(-2, 3)]),
    ]
}

/// Inflexible single-assignment pair: balanced mixed vs consumption analog.
fn inflexible_pair() -> (FlexOffer, FlexOffer) {
    (
        fo(0, 0, vec![(1, 1), (-1, -1)]),
        fo(0, 0, vec![(1, 1), (1, 1)]),
    )
}

fn strictly_increasing(m: &dyn Measure, family: &[FlexOffer]) -> bool {
    let mut prev: Option<f64> = None;
    for f in family {
        let Ok(v) = m.of(f) else { return false };
        if let Some(p) = prev {
            if v <= p + 1e-9 {
                return false;
            }
        }
        prev = Some(v);
    }
    true
}

fn values_differ(m: &dyn Measure, a: &FlexOffer, b: &FlexOffer) -> bool {
    match (m.of(a), m.of(b)) {
        (Ok(x), Ok(y)) => (x - y).abs() > 1e-9,
        _ => false,
    }
}

/// Derives a measure's characteristics from behaviour alone.
pub fn empirical_characteristics(m: &dyn Measure) -> Characteristics {
    let positive = positive_representatives().iter().all(|f| m.of(f).is_ok());

    let negative = positive_representatives().iter().all(|f| {
        let mf = mirror(f);
        match (m.of(f), m.of(&mf)) {
            (Ok(x), Ok(y)) => (x - y).abs() < 1e-9,
            _ => false,
        }
    });

    let mixed = {
        let reps_ok = mixed_representatives().iter().all(|f| m.of(f).is_ok());
        let (balanced_mixed, analog) = inflexible_pair();
        let consistent = match (m.of(&balanced_mixed), m.of(&analog)) {
            (Ok(x), Ok(y)) => (x - y).abs() < 1e-9,
            _ => false,
        };
        reps_ok && consistent
    };

    let (fx, fy) = size_pair();

    Characteristics {
        captures_time: strictly_increasing(m, &time_family()),
        captures_energy: strictly_increasing(m, &energy_family()),
        captures_time_energy: strictly_increasing(m, &joint_time_family())
            && strictly_increasing(m, &joint_energy_family()),
        captures_size: values_differ(m, &fx, &fy),
        positive,
        negative,
        mixed,
        single_value: true,
    }
}

/// Compares a measure's empirical behaviour against its declared
/// characteristics; an empty result means the declaration is faithful.
pub fn verify_measure(m: &dyn Measure) -> Vec<Discrepancy> {
    let declared = m.declared_characteristics();
    let empirical = empirical_characteristics(m);
    declared
        .rows()
        .iter()
        .zip(empirical.rows())
        .filter(|(d, e)| d.1 != e.1)
        .map(|(d, e)| Discrepancy {
            measure: m.short_name().to_owned(),
            characteristic: d.0,
            declared: d.1,
            empirical: e.1,
        })
        .collect()
}

/// The deviations we *expect* between the paper's Table 1 and behaviour:
/// the time-series measure is declared size-blind, but its extreme
/// assignments stop overlapping once `tf > 0`, letting raw amounts into the
/// difference series (Examples 11–12 measure 6 vs 206 under L1).
pub fn known_deviations() -> Vec<Discrepancy> {
    vec![Discrepancy {
        measure: "Time-series".to_owned(),
        characteristic: "Captures size",
        declared: false,
        empirical: true,
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::all_measures;

    #[test]
    fn empirical_matrix_matches_paper_except_known_deviations() {
        let known = known_deviations();
        let mut found = Vec::new();
        for m in all_measures() {
            found.extend(verify_measure(m.as_ref()));
        }
        assert_eq!(
            found, known,
            "unexpected discrepancies between probes and Table 1"
        );
    }

    #[test]
    fn product_fails_single_dimension_probes() {
        let c = empirical_characteristics(&crate::ProductFlexibility);
        assert!(!c.captures_time);
        assert!(!c.captures_energy);
        assert!(c.captures_time_energy);
    }

    #[test]
    fn vector_passes_all_capture_probes_but_size() {
        let c = empirical_characteristics(&crate::VectorFlexibility::default());
        assert!(c.captures_time && c.captures_energy && c.captures_time_energy);
        assert!(!c.captures_size);
        assert!(c.mixed);
    }

    #[test]
    fn area_measures_fail_the_mixed_probe() {
        let abs = empirical_characteristics(&crate::AbsoluteAreaFlexibility::new());
        assert!(!abs.mixed);
        assert!(abs.captures_size);
        let rel = empirical_characteristics(&crate::RelativeAreaFlexibility::new());
        assert!(!rel.mixed);
        assert!(rel.captures_size);
    }

    #[test]
    fn every_measure_is_mirror_symmetric() {
        for m in all_measures() {
            let c = empirical_characteristics(m.as_ref());
            assert!(c.negative, "{} lost mirror symmetry", m.short_name());
            assert!(c.positive);
        }
    }

    #[test]
    fn time_series_size_leak_is_real() {
        // The deviation documented in known_deviations().
        let (fx, fy) = size_pair();
        let m = crate::TimeSeriesFlexibility::default();
        assert_eq!(m.of(&fx).unwrap(), 6.0);
        assert_eq!(m.of(&fy).unwrap(), 206.0);
    }

    #[test]
    fn discrepancy_display() {
        let d = &known_deviations()[0];
        let text = d.to_string();
        assert!(text.contains("Time-series"));
        assert!(text.contains("declared No"));
    }

    #[test]
    fn mirror_helper_is_involutive() {
        for f in positive_representatives() {
            assert_eq!(mirror(&mirror(&f)), f);
        }
    }
}
