//! Struct-of-arrays kernels for the measure and baseline hot paths.
//!
//! The row-oriented hot loop ([`Measure::of_prepared`] per offer) touches
//! every offer's `FlexOffer` allocation once per measure and re-derives
//! shared intermediates (profile sums, assignment series, the union-area
//! sweep's scratch) per offer, per call. A [`ColumnarBatch`] flips the
//! layout: one `load` pass flattens a chunk of offers into contiguous
//! columns, and each measure then runs as a single pass over those columns
//! ([`ColumnarBatch::eval_into`]) — no per-offer allocation, no virtual
//! dispatch inside the loop, and the union-area sweep reuses one arena of
//! scratch buffers for the whole chunk.
//!
//! # Layout invariants
//!
//! A loaded batch of `n` offers holds:
//!
//! * **Per-offer columns**, all of length `n`, index-aligned with the
//!   loaded slice: `tes` (earliest start), `tf` (time flexibility
//!   `tls - tes`), `total_min`/`total_max` (the paper's `cmin`/`cmax`),
//!   and the profile span `(slice_start, slice_len)`.
//! * **Per-slice columns** `es_min`/`es_max`: every offer's slice bounds
//!   flattened back to back, so offer `i`'s slices occupy
//!   `es_min[slice_start[i] .. slice_start[i] + slice_len[i]]` (and the
//!   same range of `es_max`). `slice_start` is monotone:
//!   `slice_start[i] + slice_len[i] == slice_start[i + 1]`.
//! * **Lazy union sizes** `union_size`, filled on the first area-measure
//!   kernel and reused by both area measures (mirroring how a
//!   [`PreparedOffer`] shares one union per offer).
//!
//! `load` truncates and refills every column in place, retaining
//! capacity — a batch owned by a long-lived worker (the serving tier keeps
//! one per shard) does zero steady-state allocations once warm.
//!
//! # Bitwise identity
//!
//! Every kernel replicates the scalar measure's arithmetic operation for
//! operation — same integer expressions, same `f64` accumulation order,
//! same error precedence — so for any offer the columnar value (or error)
//! is **bitwise identical** to [`Measure::of_prepared`]. The engine's
//! proptests pin this for all eight measures and the baseline at arbitrary
//! shards × threads × chunking.

use flexoffers_area::{ColumnExtent, UnionArea};
use flexoffers_model::{FlexOffer, SignClass};
use flexoffers_timeseries::{Norm, Series};

use crate::abs_area::MixedPolicy;
use crate::assignments::CountScale;
use crate::error::MeasureError;
use crate::measure::Measure;
use crate::prepared::PreparedOffer;

/// One per-offer row of measure values, in measure order.
type Row = Vec<Result<f64, MeasureError>>;

/// The columnar kernel evaluating one measure as a single pass over a
/// [`ColumnarBatch`]'s columns. A measure advertises its kernel through
/// [`Measure::columnar_kernel`]; measures without one (the constrained
/// assignment count, wrappers like the weighted combination) fall back to
/// the scalar [`Measure::of_prepared`] path inside
/// [`ColumnarBatch::rows`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ColumnarKernel {
    /// Time flexibility `tls - tes`.
    Time,
    /// Energy flexibility `cmax - cmin`.
    Energy,
    /// Product flexibility `tf * ef`.
    Product,
    /// Vector flexibility: the norm of `<tf, ef>`.
    Vector(Norm),
    /// Time-series flexibility: the norm of `f_max - f_min`.
    TimeSeries(Norm),
    /// Unconstrained assignment count (Definition 8) at the given scale.
    /// The constrained `|L(f)|` count has no columnar kernel.
    Assignments(CountScale),
    /// Absolute area flexibility under the given mixed-sign policy.
    AbsArea(MixedPolicy),
    /// Relative area flexibility under the given mixed-sign policy.
    RelArea(MixedPolicy),
}

/// A monotonic sliding-window deque over slice indices, backed by a
/// reusable buffer (indices are only appended; the front advances through
/// a head cursor). Replaces the per-offer `VecDeque` allocations of the
/// scalar union sweep.
#[derive(Debug, Default)]
struct MonoDeque {
    buf: Vec<usize>,
    head: usize,
}

impl MonoDeque {
    fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }

    fn front(&self) -> Option<usize> {
        self.buf.get(self.head).copied()
    }

    fn back(&self) -> Option<usize> {
        if self.buf.len() > self.head {
            self.buf.last().copied()
        } else {
            None
        }
    }

    fn push_back(&mut self, i: usize) {
        self.buf.push(i);
    }

    fn pop_back(&mut self) {
        self.buf.pop();
    }

    fn pop_front(&mut self) {
        self.head += 1;
    }
}

/// A struct-of-arrays view of a chunk of flex-offers plus the scratch
/// arena the kernels run in — see the module docs for the layout
/// invariants. Create once ([`ColumnarBatch::new`]), [`load`] per chunk;
/// all buffers retain capacity across loads.
///
/// [`load`]: ColumnarBatch::load
#[derive(Debug, Default)]
pub struct ColumnarBatch {
    // Per-offer columns.
    tes: Vec<i64>,
    tf: Vec<i64>,
    total_min: Vec<i64>,
    total_max: Vec<i64>,
    slice_start: Vec<usize>,
    slice_len: Vec<usize>,
    // Per-slice columns (flattened).
    es_min: Vec<i64>,
    es_max: Vec<i64>,
    // Per-offer sign class, derived during the same load pass that
    // flattens the slices (the area kernels would otherwise re-scan every
    // offer's slices per evaluation).
    sign: Vec<SignClass>,
    // Lazy per-offer union-area sizes.
    union_size: Vec<u64>,
    union_ready: bool,
    // Scratch: per-slice achievable bands and the sweep's deques.
    band_above: Vec<i64>,
    band_below: Vec<i64>,
    dq_above: MonoDeque,
    dq_below: MonoDeque,
    // Scratch: the baseline's per-offer fitted midpoints.
    fit_buf: Vec<i64>,
    // Scratch: the time-series kernel's per-offer difference values.
    ts_buf: Vec<f64>,
}

impl ColumnarBatch {
    /// An empty batch. Buffers grow on first [`load`](ColumnarBatch::load)
    /// and are retained afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of offers currently loaded.
    pub fn len(&self) -> usize {
        self.tes.len()
    }

    /// `true` when no offers are loaded.
    pub fn is_empty(&self) -> bool {
        self.tes.is_empty()
    }

    /// Flattens `offers` into the batch's columns, replacing any previous
    /// load. Capacity is retained — reloading a same-sized chunk allocates
    /// nothing.
    pub fn load(&mut self, offers: &[FlexOffer]) {
        self.tes.clear();
        self.tf.clear();
        self.total_min.clear();
        self.total_max.clear();
        self.slice_start.clear();
        self.slice_len.clear();
        self.es_min.clear();
        self.es_max.clear();
        self.sign.clear();
        self.union_size.clear();
        self.union_ready = false;

        self.tes.reserve(offers.len());
        self.tf.reserve(offers.len());
        self.total_min.reserve(offers.len());
        self.total_max.reserve(offers.len());
        self.slice_start.reserve(offers.len());
        self.slice_len.reserve(offers.len());
        self.sign.reserve(offers.len());
        for fo in offers {
            self.tes.push(fo.earliest_start());
            self.tf.push(fo.time_flexibility());
            self.total_min.push(fo.total_min());
            self.total_max.push(fo.total_max());
            self.slice_start.push(self.es_min.len());
            self.slice_len.push(fo.slice_count());
            let mut any_pos = false;
            let mut any_neg = false;
            for s in fo.slices() {
                any_pos |= s.max() > 0;
                any_neg |= s.min() < 0;
                self.es_min.push(s.min());
                self.es_max.push(s.max());
            }
            self.sign.push(match (any_pos, any_neg) {
                (false, false) => SignClass::Zero,
                (true, false) => SignClass::Positive,
                (false, true) => SignClass::Negative,
                (true, true) => SignClass::Mixed,
            });
        }
    }

    /// Offer `i`'s slice-bound columns.
    fn slices_of(&self, i: usize) -> (&[i64], &[i64]) {
        let range = self.slice_start[i]..self.slice_start[i] + self.slice_len[i];
        (&self.es_min[range.clone()], &self.es_max[range])
    }

    /// The absolute-area measure's inflexible base for offer `i` — the
    /// columnar mirror of `AbsoluteAreaFlexibility::inflexible_base`,
    /// reading the sign class the load pass derived (the same
    /// any-positive/any-negative scan [`SignClass::of`] runs).
    fn inflexible_base(&self, i: usize, policy: MixedPolicy) -> Result<i64, MeasureError> {
        match self.sign[i] {
            SignClass::Positive | SignClass::Zero => Ok(self.total_min[i]),
            SignClass::Negative => Ok(-self.total_max[i]),
            SignClass::Mixed => match policy {
                MixedPolicy::DefinitionLiteral => Ok(self.total_min[i]),
                MixedPolicy::Reject => Err(MeasureError::MixedNotSupported {
                    measure: "Abs. Area",
                }),
            },
        }
    }

    /// Runs offer `i`'s union-area sweep — achievable bands from hoisted
    /// profile sums, then the monotonic-deque sliding maxima over the
    /// occupancy window — emitting one `(slot, above, below)` extent per
    /// column. Integer arithmetic throughout, identical per column to
    /// [`flexoffers_area::union_area`]; the profile sums are computed once
    /// per offer here where the scalar `achievable_band` re-derives them
    /// per slice.
    fn union_columns(&mut self, i: usize, mut emit: impl FnMut(i64, u64, u64)) {
        let start = self.slice_start[i];
        let len = self.slice_len[i];
        let s_min = &self.es_min[start..start + len];
        let s_max = &self.es_max[start..start + len];
        let profile_min: i64 = s_min.iter().sum();
        let profile_max: i64 = s_max.iter().sum();
        let tes = self.tes[i];

        if self.tf[i] == 0 {
            // No start flexibility: each column holds exactly one slice, so
            // the sliding-maxima window is a single band — emit it directly,
            // no band storage, no deques.
            for k in 0..len {
                let others_min = profile_min - s_min[k];
                let others_max = profile_max - s_max[k];
                let hi = s_max[k].min(self.total_max[i] - others_min);
                let lo = s_min[k].max(self.total_min[i] - others_max);
                debug_assert!(lo <= hi, "achievable band empty for slice {k}");
                emit(tes + k as i64, hi.max(0) as u64, (-lo).max(0) as u64);
            }
            return;
        }

        self.band_above.clear();
        self.band_below.clear();
        for k in 0..len {
            let others_min = profile_min - s_min[k];
            let others_max = profile_max - s_max[k];
            let hi = s_max[k].min(self.total_max[i] - others_min);
            let lo = s_min[k].max(self.total_min[i] - others_max);
            debug_assert!(lo <= hi, "achievable band empty for slice {k}");
            self.band_above.push(hi.max(0));
            self.band_below.push((-lo).max(0));
        }

        let tls = tes + self.tf[i];
        self.dq_above.clear();
        self.dq_below.clear();
        for c in tes..tls + len as i64 {
            let enter = c - tes;
            let leave = c - tls;
            if enter >= 0 && (enter as usize) < len {
                let k = enter as usize;
                while self
                    .dq_above
                    .back()
                    .is_some_and(|j| self.band_above[j] <= self.band_above[k])
                {
                    self.dq_above.pop_back();
                }
                self.dq_above.push_back(k);
                while self
                    .dq_below
                    .back()
                    .is_some_and(|j| self.band_below[j] <= self.band_below[k])
                {
                    self.dq_below.pop_back();
                }
                self.dq_below.push_back(k);
            }
            while self.dq_above.front().is_some_and(|j| (j as i64) < leave) {
                self.dq_above.pop_front();
            }
            while self.dq_below.front().is_some_and(|j| (j as i64) < leave) {
                self.dq_below.pop_front();
            }
            let above = self.dq_above.front().map_or(0, |j| self.band_above[j]) as u64;
            let below = self.dq_below.front().map_or(0, |j| self.band_below[j]) as u64;
            emit(c, above, below);
        }
    }

    /// Fills the `union_size` column (one sweep per offer) if it is not
    /// already warm. Both area kernels share the result, exactly as the
    /// two scalar area measures share one [`PreparedOffer`] union.
    fn ensure_union(&mut self) {
        if self.union_ready {
            return;
        }
        for i in 0..self.len() {
            let mut size = 0u64;
            self.union_columns(i, |_, above, below| size += above + below);
            self.union_size.push(size);
        }
        self.union_ready = true;
    }

    /// Materialises offer `i`'s full [`UnionArea`] (per-column extents,
    /// not just the size) from the batch's columns — what
    /// [`ColumnarBatch::rows`] injects into fallback [`PreparedOffer`]s
    /// via [`PreparedOffer::with_union`], so scalar-path measures in a
    /// mixed measure set never re-run the sweep.
    pub fn union_area_of(&mut self, i: usize) -> UnionArea {
        let mut columns = Vec::with_capacity(self.tf[i] as usize + self.slice_len[i]);
        self.union_columns(i, |slot, above, below| {
            columns.push(ColumnExtent { slot, above, below });
        });
        UnionArea::from_columns(columns)
    }

    /// The unconstrained assignment count for offer `i` — the columnar
    /// mirror of `FlexOffer::unconstrained_assignment_count` (same checked
    /// `u128` product, same overflow signalling).
    fn unconstrained_count(&self, i: usize) -> Option<u128> {
        let (mins, maxes) = self.slices_of(i);
        let mut product: u128 = (self.tf[i] as u128).checked_add(1)?;
        for (&lo, &hi) in mins.iter().zip(maxes) {
            let cardinality = (hi - lo) as u64 + 1;
            product = product.checked_mul(cardinality as u128)?;
        }
        Some(product)
    }

    /// The base-2 logarithm of offer `i`'s assignment count — the columnar
    /// mirror of `FlexOffer::log2_assignment_count`, accumulating in the
    /// same slice order so the float result is bitwise identical.
    fn log2_count(&self, i: usize) -> f64 {
        let (mins, maxes) = self.slices_of(i);
        let mut log = ((self.tf[i] + 1) as f64).log2();
        for (&lo, &hi) in mins.iter().zip(maxes) {
            let cardinality = (hi - lo) as u64 + 1;
            log += (cardinality as f64).log2();
        }
        log
    }

    /// Evaluates `kernel` over every loaded offer in one pass, replacing
    /// `out`'s contents with one value (or error) per offer in load order.
    /// Each value is bitwise identical to the corresponding scalar
    /// measure's [`Measure::of_prepared`].
    pub fn eval_into(&mut self, kernel: ColumnarKernel, out: &mut Vec<Result<f64, MeasureError>>) {
        out.clear();
        out.reserve(self.len());
        match kernel {
            ColumnarKernel::Time => {
                out.extend(self.tf.iter().map(|&tf| Ok(tf as f64)));
            }
            ColumnarKernel::Energy => {
                out.extend(
                    self.total_min
                        .iter()
                        .zip(&self.total_max)
                        .map(|(&lo, &hi)| Ok((hi - lo) as f64)),
                );
            }
            ColumnarKernel::Product => {
                out.extend(
                    self.tf
                        .iter()
                        .zip(self.total_min.iter().zip(&self.total_max))
                        .map(|(&tf, (&lo, &hi))| Ok(tf as f64 * (hi - lo) as f64)),
                );
            }
            ColumnarKernel::Vector(norm) => {
                out.extend(
                    self.tf
                        .iter()
                        .zip(self.total_min.iter().zip(&self.total_max))
                        .map(|(&tf, (&lo, &hi))| Ok(norm.of_vec2(tf as f64, (hi - lo) as f64))),
                );
            }
            ColumnarKernel::TimeSeries(norm) => {
                for i in 0..self.len() {
                    let start = self.slice_start[i];
                    let len = self.slice_len[i];
                    let mins = &self.es_min[start..start + len];
                    let maxes = &self.es_max[start..start + len];
                    let tf = self.tf[i] as usize;
                    // The difference series f_max - f_min over its stored
                    // domain tes .. tls + s (tf + len slots), in slot
                    // order — the exact value stream `Norm::of` reads off
                    // the materialised series. f_min occupies the first
                    // `len` slots, f_max the last `len`; filled segment by
                    // segment (min-only head, overlap, zero gap, max-only
                    // tail) so the hot loops are branch-free, producing
                    // the identical f64 per slot.
                    let buf = &mut self.ts_buf;
                    buf.clear();
                    let head = tf.min(len);
                    for &lo in &mins[..head] {
                        buf.push((0 - lo) as f64);
                    }
                    if tf < len {
                        for (&hi, &lo) in maxes[..len - tf].iter().zip(&mins[tf..]) {
                            buf.push((hi - lo) as f64);
                        }
                    } else {
                        buf.resize(tf, 0.0);
                    }
                    for &hi in &maxes[len - head..] {
                        buf.push(hi as f64);
                    }
                    debug_assert_eq!(buf.len(), tf + len);
                    out.push(Ok(norm.of_values(buf.iter().copied())));
                }
            }
            ColumnarKernel::Assignments(scale) => {
                for i in 0..self.len() {
                    out.push(match scale {
                        CountScale::Linear => Ok(match self.unconstrained_count(i) {
                            Some(n) => n as f64,
                            None => self.log2_count(i).exp2(),
                        }),
                        CountScale::Log2 => Ok(self.log2_count(i)),
                    });
                }
            }
            ColumnarKernel::AbsArea(policy) => {
                self.ensure_union();
                for i in 0..self.len() {
                    out.push(
                        self.inflexible_base(i, policy)
                            .map(|base| self.union_size[i] as f64 - base as f64),
                    );
                }
            }
            ColumnarKernel::RelArea(policy) => {
                self.ensure_union();
                for i in 0..self.len() {
                    // Denominator check first, then the mixed-policy
                    // check — the scalar measure's error precedence.
                    let denominator =
                        self.total_min[i].unsigned_abs() + self.total_max[i].unsigned_abs();
                    if denominator == 0 {
                        out.push(Err(MeasureError::UndefinedDenominator));
                        continue;
                    }
                    out.push(self.inflexible_base(i, policy).map(|base| {
                        let abs = self.union_size[i] as f64 - base as f64;
                        2.0 * abs / denominator as f64
                    }));
                }
            }
        }
    }

    /// Per-measure columns of `measures` over `offers` — loads the batch,
    /// runs every kernel-backed measure as a columnar pass, and evaluates
    /// the rest through one [`PreparedOffer`] per offer (seeded with the
    /// batch's cached union when the area kernels already swept it). The
    /// result is measure-major: `columns[j][i]` is measure `j` on offer
    /// `i`, bitwise identical to the scalar prepared-offer loop. Reducing
    /// straight off these columns (the engine's portfolio summaries do)
    /// skips the row transpose entirely.
    pub fn columns(
        &mut self,
        offers: &[FlexOffer],
        measures: &[Box<dyn Measure>],
    ) -> Vec<Vec<Result<f64, MeasureError>>> {
        self.load(offers);
        let kernels: Vec<Option<ColumnarKernel>> =
            measures.iter().map(|m| m.columnar_kernel()).collect();
        let mut columns: Vec<Vec<Result<f64, MeasureError>>> =
            measures.iter().map(|_| Vec::new()).collect();
        for (j, kernel) in kernels.iter().enumerate() {
            if let Some(kernel) = *kernel {
                let mut column = std::mem::take(&mut columns[j]);
                self.eval_into(kernel, &mut column);
                columns[j] = column;
            }
        }
        if kernels.iter().any(Option::is_none) {
            for (i, fo) in offers.iter().enumerate() {
                let prepared = if self.union_ready {
                    PreparedOffer::with_union(fo, self.union_area_of(i))
                } else {
                    PreparedOffer::new(fo)
                };
                for (j, kernel) in kernels.iter().enumerate() {
                    if kernel.is_none() {
                        columns[j].push(measures[j].of_prepared(&prepared));
                    }
                }
            }
        }
        columns
    }

    /// Per-offer rows of `measures` over `offers` —
    /// [`columns`](ColumnarBatch::columns) transposed back to the offer ×
    /// measure layout of the scalar prepared-offer loop, bitwise
    /// identical to it.
    pub fn rows(&mut self, offers: &[FlexOffer], measures: &[Box<dyn Measure>]) -> Vec<Row> {
        let columns = self.columns(offers, measures);
        (0..offers.len())
            .map(|i| columns.iter().map(|column| column[i].clone()).collect())
            .collect()
    }

    /// The no-flexibility baseline load of `offers` — the columnar mirror
    /// of the market crate's earliest-start midpoint baseline
    /// (`baseline_load`): per offer, slice midpoints fitted to the total
    /// bounds by the same forward drop/raise passes, accumulated into one
    /// dense series anchored at the chunk's earliest start. Integer
    /// arithmetic throughout; the returned series matches the scalar fold
    /// representation exactly (same anchor, same stored span), so chunked
    /// partials merge bitwise identically.
    pub fn baseline_partial(&mut self, offers: &[FlexOffer]) -> Series<i64> {
        self.load(offers);
        if self.is_empty() {
            return Series::empty();
        }
        let lo = self.tes.iter().copied().min().expect("non-empty batch");
        let hi = self
            .tes
            .iter()
            .zip(&self.slice_len)
            .map(|(&tes, &len)| tes + len as i64)
            .max()
            .expect("non-empty batch");
        let mut acc = vec![0i64; (hi - lo) as usize];
        for i in 0..self.len() {
            let start = self.slice_start[i];
            let len = self.slice_len[i];
            self.fit_buf.clear();
            for k in start..start + len {
                let (min, max) = (self.es_min[k], self.es_max[k]);
                self.fit_buf.push(min + (max - min) / 2);
            }
            // The market crate's `fit`: one forward pass dropping toward
            // cmax, one forward pass raising toward cmin.
            let mut total: i64 = self.fit_buf.iter().sum();
            for (v, k) in self.fit_buf.iter_mut().zip(start..start + len) {
                if total <= self.total_max[i] {
                    break;
                }
                let drop = (*v - self.es_min[k]).min(total - self.total_max[i]);
                *v -= drop;
                total -= drop;
            }
            for (v, k) in self.fit_buf.iter_mut().zip(start..start + len) {
                if total >= self.total_min[i] {
                    break;
                }
                let add = (self.es_max[k] - *v).min(self.total_min[i] - total);
                *v += add;
                total += add;
            }
            let offset = (self.tes[i] - lo) as usize;
            for (k, v) in self.fit_buf.iter().enumerate() {
                acc[offset + k] += v;
            }
        }
        Series::new(lo, acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::all_measures;
    use flexoffers_area::union_area;
    use flexoffers_model::Slice;

    fn figure1() -> FlexOffer {
        FlexOffer::new(
            1,
            6,
            vec![
                Slice::new(1, 3).unwrap(),
                Slice::new(2, 4).unwrap(),
                Slice::new(0, 5).unwrap(),
                Slice::new(0, 3).unwrap(),
            ],
        )
        .unwrap()
    }

    fn mixed() -> FlexOffer {
        // The paper's Figure 7 f6 — mixed sign, union area 24.
        FlexOffer::new(
            0,
            2,
            vec![
                Slice::new(-1, 2).unwrap(),
                Slice::new(-4, -1).unwrap(),
                Slice::new(-3, 1).unwrap(),
            ],
        )
        .unwrap()
    }

    fn batch_of(offers: &[FlexOffer]) -> ColumnarBatch {
        let mut batch = ColumnarBatch::new();
        batch.load(offers);
        batch
    }

    #[test]
    fn load_flattens_and_reload_reuses() {
        let offers = vec![figure1(), mixed()];
        let mut batch = batch_of(&offers);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.slice_len, vec![4, 3]);
        assert_eq!(batch.slice_start, vec![0, 4]);
        assert_eq!(batch.es_min.len(), 7);
        batch.load(&offers[..1]);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.es_min.len(), 4);
        batch.load(&[]);
        assert!(batch.is_empty());
    }

    #[test]
    fn union_sizes_match_the_scalar_sweep() {
        let offers = vec![
            figure1(),
            mixed(),
            FlexOffer::new(0, 4, vec![Slice::new(2, 2).unwrap()]).unwrap(),
            FlexOffer::with_totals(
                0,
                0,
                vec![Slice::new(0, 5).unwrap(), Slice::new(0, 5).unwrap()],
                0,
                4,
            )
            .unwrap(),
        ];
        let mut batch = batch_of(&offers);
        batch.ensure_union();
        for (i, fo) in offers.iter().enumerate() {
            assert_eq!(batch.union_size[i], union_area(fo).size(), "offer {i}");
            assert_eq!(batch.union_area_of(i), union_area(fo), "offer {i}");
        }
    }

    #[test]
    fn rows_match_the_prepared_offer_loop_bitwise() {
        let offers = vec![figure1(), mixed()];
        let measures = all_measures();
        let rows = ColumnarBatch::new().rows(&offers, &measures);
        for (fo, row) in offers.iter().zip(&rows) {
            let prepared = PreparedOffer::new(fo);
            for (m, got) in measures.iter().zip(row) {
                assert_eq!(*got, m.of_prepared(&prepared), "{}", m.name());
            }
        }
    }

    #[test]
    fn fallback_measures_ride_along_with_the_cached_union() {
        // A set mixing kernel-backed area measures with a kernel-less one
        // (the constrained count): the fallback path must produce scalar
        // values and the kernels must still run.
        let offers = vec![figure1()];
        let measures: Vec<Box<dyn Measure>> = vec![
            Box::new(crate::abs_area::AbsoluteAreaFlexibility::default()),
            Box::new(crate::assignments::AssignmentFlexibility::exact()),
        ];
        assert!(measures[1].columnar_kernel().is_none());
        let rows = ColumnarBatch::new().rows(&offers, &measures);
        let prepared = PreparedOffer::new(&offers[0]);
        assert_eq!(rows[0][0], measures[0].of_prepared(&prepared));
        assert_eq!(rows[0][1], measures[1].of_prepared(&prepared));
    }

    #[test]
    fn empty_batch_yields_no_rows_and_an_empty_baseline() {
        let mut batch = ColumnarBatch::new();
        assert!(batch.rows(&[], &all_measures()).is_empty());
        assert!(batch.baseline_partial(&[]).is_empty());
    }

    #[test]
    fn rel_area_error_precedence_is_denominator_first() {
        // A zero mixed offer is impossible; use a zero offer (denominator
        // 0) and a mixed offer under Reject to see both errors.
        let zero = FlexOffer::new(0, 1, vec![Slice::new(0, 0).unwrap()]).unwrap();
        let offers = vec![zero, mixed()];
        let mut batch = batch_of(&offers);
        let mut out = Vec::new();
        batch.eval_into(ColumnarKernel::RelArea(MixedPolicy::Reject), &mut out);
        assert_eq!(out[0], Err(MeasureError::UndefinedDenominator));
        assert_eq!(
            out[1],
            Err(MeasureError::MixedNotSupported {
                measure: "Abs. Area"
            })
        );
    }
}
