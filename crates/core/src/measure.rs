//! The [`Measure`] trait: one interface over all eight flexibility measures.

use flexoffers_model::FlexOffer;

use crate::abs_area::AbsoluteAreaFlexibility;
use crate::assignments::AssignmentFlexibility;
use crate::characteristics::Characteristics;
use crate::energy::EnergyFlexibility;
use crate::error::MeasureError;
use crate::prepared::PreparedOffer;
use crate::product::ProductFlexibility;
use crate::rel_area::RelativeAreaFlexibility;
use crate::series::TimeSeriesFlexibility;
use crate::set::SetAggregation;
use crate::time::TimeFlexibility;
use crate::vector::VectorFlexibility;

/// A single-valued flexibility measure over flex-offers.
///
/// The paper requires each measure to (a) produce a single value for one
/// flex-offer and (b) lift to sets of flex-offers for comparing portfolios
/// (Section 4). The default set semantics is the sum of member values — the
/// paper's rule for product, vector, time-series, assignments and absolute
/// area — and [`RelativeAreaFlexibility`] overrides it with the average, as
/// Section 4 prescribes ("the sum of relative flexibilities is not
/// meaningful, instead the average relative flexibility could be used").
///
/// Measures are `Send + Sync`: they are immutable evaluation rules, and the
/// portfolio engine fans them out across worker threads.
pub trait Measure: Send + Sync {
    /// Full name, e.g. `"product flexibility"`.
    fn name(&self) -> &'static str;

    /// Table 1 column header, e.g. `"Product"`.
    fn short_name(&self) -> &'static str;

    /// The measure's value for one flex-offer.
    fn of(&self, fo: &FlexOffer) -> Result<f64, MeasureError>;

    /// The measure's value for a prepared flex-offer, reusing any
    /// intermediates the [`PreparedOffer`] carries (the union area, for the
    /// two area measures). Defaults to the plain [`Measure::of`] path;
    /// results are always identical — preparation only removes repeated
    /// work, never changes arithmetic.
    fn of_prepared(&self, prepared: &PreparedOffer<'_>) -> Result<f64, MeasureError> {
        self.of(prepared.offer())
    }

    /// The measure's value for a set of flex-offers. Default: sum.
    fn of_set(&self, fos: &[FlexOffer]) -> Result<f64, MeasureError> {
        let mut total = 0.0;
        for fo in fos {
            total += self.of(fo)?;
        }
        Ok(total)
    }

    /// The columnar kernel evaluating this measure as a single pass over a
    /// [`ColumnarBatch`](crate::columnar::ColumnarBatch), or `None` when the
    /// measure has no columnar form (wrappers, the constrained assignment
    /// count) and must run through the scalar [`Measure::of_prepared`]
    /// fallback. An implementation may only return a kernel whose batch
    /// evaluation is bitwise identical to `of_prepared` — the engine
    /// switches paths freely on that contract.
    fn columnar_kernel(&self) -> Option<crate::columnar::ColumnarKernel> {
        None
    }

    /// How [`Measure::of_set`] combines member values: [`SetAggregation::Sum`]
    /// by default, [`SetAggregation::Average`] for relative area (Section 4).
    /// Batch evaluators (the portfolio engine) use this to merge per-offer
    /// values without re-running the sequential `of_set` loop; every
    /// override must keep the two in agreement.
    fn set_aggregation(&self) -> SetAggregation {
        SetAggregation::Sum
    }

    /// The measure's declared qualitative characteristics — its column of
    /// the paper's Table 1. [`probe`](crate::probe) re-derives these
    /// empirically.
    fn declared_characteristics(&self) -> Characteristics;
}

/// The paper's eight measures with their default configurations (vector and
/// time-series use the Manhattan norm; assignments use the linear count;
/// absolute/relative area use the definition-literal mixed policy so
/// Example 15 reproduces).
pub fn all_measures() -> Vec<Box<dyn Measure>> {
    vec![
        Box::new(TimeFlexibility),
        Box::new(EnergyFlexibility),
        Box::new(ProductFlexibility),
        Box::new(VectorFlexibility::default()),
        Box::new(TimeSeriesFlexibility::default()),
        Box::new(AssignmentFlexibility::default()),
        Box::new(AbsoluteAreaFlexibility::default()),
        Box::new(RelativeAreaFlexibility::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;

    fn figure1() -> FlexOffer {
        FlexOffer::new(
            1,
            6,
            vec![
                Slice::new(1, 3).unwrap(),
                Slice::new(2, 4).unwrap(),
                Slice::new(0, 5).unwrap(),
                Slice::new(0, 3).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn all_measures_has_eight_in_table_order() {
        let names: Vec<&str> = all_measures().iter().map(|m| m.short_name()).collect();
        assert_eq!(
            names,
            vec![
                "Time",
                "Energy",
                "Product",
                "Vector",
                "Time-series",
                "Assignments",
                "Abs. Area",
                "Rel. Area"
            ]
        );
    }

    #[test]
    fn all_measures_evaluate_figure1() {
        let f = figure1();
        for m in all_measures() {
            let v = m.of(&f).unwrap_or_else(|e| panic!("{}: {e}", m.name()));
            assert!(v.is_finite());
            assert!(v >= 0.0, "{} produced {v}", m.name());
        }
    }

    #[test]
    fn default_set_semantics_is_sum() {
        let f = figure1();
        let set = vec![f.clone(), f.clone(), f];
        for m in all_measures()
            .iter()
            .filter(|m| m.short_name() != "Rel. Area")
        {
            let single = m.of(&set[0]).unwrap();
            let total = m.of_set(&set).unwrap();
            assert!(
                (total - 3.0 * single).abs() < 1e-9,
                "{}: {total} != 3 * {single}",
                m.name()
            );
        }
    }

    #[test]
    fn empty_set_sums_to_zero() {
        for m in all_measures()
            .iter()
            .filter(|m| m.short_name() != "Rel. Area")
        {
            assert_eq!(m.of_set(&[]).unwrap(), 0.0);
        }
    }

    #[test]
    fn declared_characteristics_match_paper_table1() {
        let table = crate::characteristics::paper_table1();
        for (m, (name, expected)) in all_measures().iter().zip(table) {
            assert_eq!(m.short_name(), name);
            assert_eq!(m.declared_characteristics(), expected, "{name}");
        }
    }
}
