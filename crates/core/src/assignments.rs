//! Assignment flexibility (Definition 8).

use flexoffers_model::FlexOffer;

use crate::characteristics::Characteristics;
use crate::columnar::ColumnarKernel;
use crate::error::MeasureError;
use crate::measure::Measure;

/// How the assignment count is reported.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CountScale {
    /// The raw count `(tf+1) * prod(width+1)` — Definition 8 verbatim.
    /// Reported via `f64`, so astronomically large spaces lose precision
    /// (and can reach infinity); use [`CountScale::Log2`] for those.
    #[default]
    Linear,
    /// Base-2 logarithm of the count. Monotone in the raw count, defined for
    /// any flex-offer, and comparable across huge spaces. An inflexible
    /// flex-offer (one assignment) measures 0.
    Log2,
}

/// Assignment flexibility: the number of possible assignments
/// `(tls - tes + 1) * prod(amax_i - amin_i + 1)` (Definition 8, Example 6).
///
/// Definition 8 deliberately ignores the total energy constraints (the
/// paper's Section 4 notes this), so the count is over the unconstrained
/// product space; `constrained` switches to the exact `|L(f)|` for analyses
/// that want the pruned space. Section 4 also observes the measure's skew:
/// energy flexibility enters *exponentially* (per slice) while time enters
/// linearly — Example 14's `f6` jumps from 3 to 240 assignments through its
/// slice ranges alone.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AssignmentFlexibility {
    /// Report the raw count or its logarithm.
    pub scale: CountScale,
    /// Count only assignments satisfying the total energy constraints
    /// (exact `|L(f)|`) instead of Definition 8's product space.
    pub constrained: bool,
}

impl AssignmentFlexibility {
    /// Definition 8 verbatim: linear scale, unconstrained.
    pub fn new() -> Self {
        Self::default()
    }

    /// Log2-scaled unconstrained count.
    pub fn log_scaled() -> Self {
        Self {
            scale: CountScale::Log2,
            constrained: false,
        }
    }

    /// Linear-scaled exact `|L(f)|`.
    pub fn exact() -> Self {
        Self {
            scale: CountScale::Linear,
            constrained: true,
        }
    }
}

impl Measure for AssignmentFlexibility {
    fn name(&self) -> &'static str {
        "assignment flexibility"
    }

    fn short_name(&self) -> &'static str {
        "Assignments"
    }

    fn of(&self, fo: &FlexOffer) -> Result<f64, MeasureError> {
        let linear = match (self.constrained, self.scale) {
            (false, CountScale::Linear) => match fo.unconstrained_assignment_count() {
                Some(n) => n as f64,
                None => fo.log2_assignment_count().exp2(),
            },
            (false, CountScale::Log2) => return Ok(fo.log2_assignment_count()),
            (true, _) => match fo.constrained_assignment_count() {
                Some(n) => n as f64,
                None => fo.constrained_assignment_count_f64(),
            },
        };
        match self.scale {
            CountScale::Linear => Ok(linear),
            CountScale::Log2 => Ok(linear.log2()),
        }
    }

    fn columnar_kernel(&self) -> Option<ColumnarKernel> {
        // The exact |L(f)| count enumerates the constrained space and has
        // no columnar form; Definition 8's product-space count does.
        if self.constrained {
            None
        } else {
            Some(ColumnarKernel::Assignments(self.scale))
        }
    }

    fn declared_characteristics(&self) -> Characteristics {
        Characteristics {
            captures_time: true,
            captures_energy: true,
            captures_time_energy: true,
            captures_size: false,
            positive: true,
            negative: true,
            mixed: true,
            single_value: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;

    fn fo(tes: i64, tls: i64, slices: Vec<(i64, i64)>) -> FlexOffer {
        FlexOffer::new(
            tes,
            tls,
            slices
                .into_iter()
                .map(|(a, b)| Slice::new(a, b).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn example_6() {
        // f2 = ([0,2], <[0,2]>) has 9 assignments.
        let f2 = fo(0, 2, vec![(0, 2)]);
        assert_eq!(AssignmentFlexibility::new().of(&f2).unwrap(), 9.0);
    }

    #[test]
    fn example_14() {
        // f6: 240 assignments; tf=0 -> 80; ef=0 -> 3.
        let f6 = fo(0, 2, vec![(-1, 2), (-4, -1), (-3, 1)]);
        assert_eq!(AssignmentFlexibility::new().of(&f6).unwrap(), 240.0);
        let tf0 = fo(0, 0, vec![(-1, 2), (-4, -1), (-3, 1)]);
        assert_eq!(AssignmentFlexibility::new().of(&tf0).unwrap(), 80.0);
        let ef0 = fo(0, 2, vec![(-1, -1), (-4, -4), (-3, -3)]);
        assert_eq!(AssignmentFlexibility::new().of(&ef0).unwrap(), 3.0);
    }

    #[test]
    fn exponential_energy_vs_linear_time_skew() {
        // Section 4: growing each slice range multiplies the count, growing
        // the window only adds.
        let base = fo(0, 2, vec![(0, 1), (0, 1)]);
        let wider_time = fo(0, 5, vec![(0, 1), (0, 1)]);
        let wider_energy = fo(0, 2, vec![(0, 3), (0, 3)]);
        let m = AssignmentFlexibility::new();
        assert_eq!(m.of(&base).unwrap(), 12.0);
        assert_eq!(m.of(&wider_time).unwrap(), 24.0); // 2x
        assert_eq!(m.of(&wider_energy).unwrap(), 48.0); // 4x
    }

    #[test]
    fn log_scale_handles_huge_spaces() {
        let huge = FlexOffer::new(0, 0, vec![Slice::new(0, 128).unwrap(); 40]).unwrap();
        let log = AssignmentFlexibility::log_scaled().of(&huge).unwrap();
        assert!((log - 40.0 * 129f64.log2()).abs() < 1e-9);
        // Linear falls back to exp2 of the log (may be +inf for absurd
        // sizes, but stays monotone).
        let lin = AssignmentFlexibility::new().of(&huge).unwrap();
        assert!(lin > 1e80);
    }

    #[test]
    fn constrained_variant_counts_l_f() {
        let f = FlexOffer::with_totals(
            0,
            0,
            vec![Slice::new(0, 2).unwrap(), Slice::new(0, 2).unwrap()],
            2,
            2,
        )
        .unwrap();
        assert_eq!(AssignmentFlexibility::new().of(&f).unwrap(), 9.0);
        assert_eq!(AssignmentFlexibility::exact().of(&f).unwrap(), 3.0);
    }

    #[test]
    fn inflexible_offer_has_one_assignment_and_log_zero() {
        let f = fo(4, 4, vec![(3, 3)]);
        assert_eq!(AssignmentFlexibility::new().of(&f).unwrap(), 1.0);
        assert_eq!(AssignmentFlexibility::log_scaled().of(&f).unwrap(), 0.0);
    }

    #[test]
    fn size_blind() {
        let fx = fo(1, 3, vec![(1, 5)]);
        let fy = fo(1, 3, vec![(101, 105)]);
        assert_eq!(
            AssignmentFlexibility::new().of(&fx).unwrap(),
            AssignmentFlexibility::new().of(&fy).unwrap()
        );
    }
}
