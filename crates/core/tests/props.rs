//! Property tests for measure invariants.

use flexoffers_measures::{
    all_measures, AbsoluteAreaFlexibility, AssignmentFlexibility, ColumnarBatch, EnergyFlexibility,
    Measure, Norm, PreparedOffer, ProductFlexibility, RelativeAreaFlexibility, TimeFlexibility,
    TimeSeriesFlexibility, VectorFlexibility,
};
use flexoffers_model::{FlexOffer, Slice};
use proptest::prelude::*;

fn arb_flexoffer() -> impl Strategy<Value = FlexOffer> {
    (
        0i64..4,
        0i64..5,
        prop::collection::vec((-5i64..5, 0i64..5), 1..5),
        0.0f64..1.0,
        0.0f64..1.0,
    )
        .prop_map(|(tes, window, raw, cmin_pos, cmax_pos)| {
            let slices: Vec<Slice> = raw
                .into_iter()
                .map(|(min, w)| Slice::new(min, min + w).unwrap())
                .collect();
            let pmin: i64 = slices.iter().map(Slice::min).sum();
            let pmax: i64 = slices.iter().map(Slice::max).sum();
            let cmin = pmin + ((pmax - pmin) as f64 * cmin_pos) as i64;
            let cmax = cmin + ((pmax - cmin) as f64 * cmax_pos) as i64;
            FlexOffer::with_totals(tes, tes + window, slices, cmin, cmax).unwrap()
        })
}

/// A pure-consumption flex-offer (non-negative slice minima).
fn arb_positive_flexoffer() -> impl Strategy<Value = FlexOffer> {
    (
        0i64..4,
        0i64..5,
        prop::collection::vec((0i64..5, 0i64..5), 1..5),
    )
        .prop_map(|(tes, window, raw)| {
            let slices: Vec<Slice> = raw
                .into_iter()
                .map(|(min, w)| Slice::new(min, min + w).unwrap())
                .collect();
            FlexOffer::new(tes, tes + window, slices).unwrap()
        })
}

fn mirror(f: &FlexOffer) -> FlexOffer {
    FlexOffer::with_totals(
        f.earliest_start(),
        f.latest_start(),
        f.slices()
            .iter()
            .map(|s| Slice::new(-s.max(), -s.min()).unwrap())
            .collect(),
        -f.total_max(),
        -f.total_min(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_measures_nonnegative_where_defined(fo in arb_flexoffer()) {
        for m in all_measures() {
            if let Ok(v) = m.of(&fo) {
                prop_assert!(v >= -1e-9, "{} gave {v} on {}", m.name(), fo);
            }
        }
    }

    #[test]
    fn all_measures_mirror_symmetric_where_meaningful(fo in arb_flexoffer()) {
        // The area measures' definition-literal mixed handling subtracts
        // cmin, which is sign-asymmetric — the very unsoundness behind
        // Table 1's mixed "No" (see abs_area unit tests). Symmetry is
        // asserted for every measure on non-mixed inputs and for the
        // mixed-capable measures everywhere.
        let mf = mirror(&fo);
        let is_mixed = fo.sign() == flexoffers_model::SignClass::Mixed;
        // The time-series measure anchors minimum values at the earliest
        // start and maximum values at the latest; mirroring swaps the value
        // roles but not the anchors, so with partially overlapping extremes
        // (0 < tf < s) the measure is genuinely orientation-dependent — a
        // documented finding (see series.rs tests and EXPERIMENTS.md).
        let partial_overlap =
            fo.time_flexibility() > 0 && (fo.time_flexibility() as usize) < fo.slice_count();
        for m in all_measures() {
            if is_mixed && !m.declared_characteristics().mixed {
                continue;
            }
            if m.short_name() == "Time-series" && partial_overlap {
                continue;
            }
            match (m.of(&fo), m.of(&mf)) {
                (Ok(a), Ok(b)) => prop_assert!(
                    (a - b).abs() < 1e-9,
                    "{}: {a} vs {b} on {}", m.name(), fo
                ),
                // Definedness must also be symmetric.
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "{}: asymmetric {:?} vs {:?}", m.name(), a, b),
            }
        }
    }

    #[test]
    fn product_is_time_times_energy(fo in arb_flexoffer()) {
        let t = TimeFlexibility.of(&fo).unwrap();
        let e = EnergyFlexibility.of(&fo).unwrap();
        prop_assert_eq!(ProductFlexibility.of(&fo).unwrap(), t * e);
    }

    #[test]
    fn vector_l1_is_time_plus_energy(fo in arb_flexoffer()) {
        let t = TimeFlexibility.of(&fo).unwrap();
        let e = EnergyFlexibility.of(&fo).unwrap();
        prop_assert_eq!(VectorFlexibility::new(Norm::L1).of(&fo).unwrap(), t + e);
        // L2 <= L1 and L2 >= each component.
        let l2 = VectorFlexibility::new(Norm::L2).of(&fo).unwrap();
        prop_assert!(l2 <= t + e + 1e-9);
        prop_assert!(l2 + 1e-9 >= t.max(e));
    }

    #[test]
    fn widening_window_never_decreases_window_aware_measures(fo in arb_flexoffer()) {
        let wider = FlexOffer::with_totals(
            fo.earliest_start(),
            fo.latest_start() + 1,
            fo.slices().to_vec(),
            fo.total_min(),
            fo.total_max(),
        ).unwrap();
        for m in [
            Box::new(TimeFlexibility) as Box<dyn Measure>,
            Box::new(ProductFlexibility),
            Box::new(VectorFlexibility::default()),
            Box::new(AssignmentFlexibility::default()),
        ] {
            let before = m.of(&fo).unwrap();
            let after = m.of(&wider).unwrap();
            prop_assert!(after + 1e-9 >= before, "{} shrank", m.name());
        }
        // Area measures too, where defined.
        let abs = AbsoluteAreaFlexibility::new();
        if let (Ok(b), Ok(a)) = (abs.of(&fo), abs.of(&wider)) {
            prop_assert!(a + 1e-9 >= b);
        }
    }

    #[test]
    fn series_flexibility_zero_iff_extremes_coincide(fo in arb_flexoffer()) {
        let m = TimeSeriesFlexibility::default();
        let v = m.of(&fo).unwrap();
        let extremes_equal =
            fo.min_assignment().as_series() == fo.max_assignment().as_series();
        prop_assert_eq!(v == 0.0, extremes_equal);
    }

    #[test]
    fn assignment_measure_matches_model_count(fo in arb_flexoffer()) {
        let m = AssignmentFlexibility::default();
        let expected = fo.unconstrained_assignment_count().unwrap() as f64;
        prop_assert_eq!(m.of(&fo).unwrap(), expected);
        let exact = AssignmentFlexibility::exact();
        prop_assert_eq!(
            exact.of(&fo).unwrap(),
            fo.constrained_assignment_count().unwrap() as f64
        );
    }

    #[test]
    fn relative_area_invariant_under_amount_scaling(fo in arb_positive_flexoffer(), k in 2i64..5) {
        // Scaling all amounts by k scales the union area and the totals by
        // k, leaving the relative measure unchanged (the paper's
        // "size-independent" intent, Definition 11).
        let scaled = FlexOffer::with_totals(
            fo.earliest_start(),
            fo.latest_start(),
            fo.slices().iter().map(|s| Slice::new(s.min() * k, s.max() * k).unwrap()).collect(),
            fo.total_min() * k,
            fo.total_max() * k,
        ).unwrap();
        let m = RelativeAreaFlexibility::new();
        match (m.of(&fo), m.of(&scaled)) {
            (Ok(a), Ok(b)) => prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}"),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "definedness changed: {:?} vs {:?}", a, b),
        }
    }

    #[test]
    fn absolute_area_scales_linearly_with_amounts(fo in arb_positive_flexoffer(), k in 2i64..5) {
        let scaled = FlexOffer::with_totals(
            fo.earliest_start(),
            fo.latest_start(),
            fo.slices().iter().map(|s| Slice::new(s.min() * k, s.max() * k).unwrap()).collect(),
            fo.total_min() * k,
            fo.total_max() * k,
        ).unwrap();
        let m = AbsoluteAreaFlexibility::new();
        prop_assert!((m.of(&scaled).unwrap() - k as f64 * m.of(&fo).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn translation_leaves_flexibility_primitives_unchanged(fo in arb_positive_flexoffer(), d in 1i64..50) {
        // Shifting all amounts by +d changes the size but not tf/ef.
        let shifted = FlexOffer::with_totals(
            fo.earliest_start(),
            fo.latest_start(),
            fo.slices().iter().map(|s| Slice::new(s.min() + d, s.max() + d).unwrap()).collect(),
            fo.total_min() + d * fo.slice_count() as i64,
            fo.total_max() + d * fo.slice_count() as i64,
        ).unwrap();
        prop_assert_eq!(TimeFlexibility.of(&fo).unwrap(), TimeFlexibility.of(&shifted).unwrap());
        prop_assert_eq!(EnergyFlexibility.of(&fo).unwrap(), EnergyFlexibility.of(&shifted).unwrap());
        prop_assert_eq!(ProductFlexibility.of(&fo).unwrap(), ProductFlexibility.of(&shifted).unwrap());
        prop_assert_eq!(
            AssignmentFlexibility::default().of(&fo).unwrap(),
            AssignmentFlexibility::default().of(&shifted).unwrap()
        );
    }

    #[test]
    fn set_sum_equals_sum_of_parts(fos in prop::collection::vec(arb_positive_flexoffer(), 1..5)) {
        for m in all_measures().iter().filter(|m| m.short_name() != "Rel. Area") {
            let total = m.of_set(&fos).unwrap();
            let parts: f64 = fos.iter().map(|f| m.of(f).unwrap()).sum();
            prop_assert!((total - parts).abs() < 1e-6, "{}", m.name());
        }
    }

    /// Columnar kernels are bitwise identical to the scalar prepared-offer
    /// loop — every value and every error, for all eight default measures
    /// plus the reject-mixed, log-scaled and (kernel-less, fallback-path)
    /// exact variants, over portfolios with mixed signs, empty sets and
    /// singletons.
    #[test]
    fn columnar_rows_match_the_scalar_loop_bitwise(
        fos in prop::collection::vec(arb_flexoffer(), 0..12),
    ) {
        let measures = kernel_suite();
        let rows = ColumnarBatch::new().rows(&fos, &measures);
        prop_assert_eq!(rows.len(), fos.len());
        for (i, fo) in fos.iter().enumerate() {
            let prepared = PreparedOffer::new(fo);
            for (j, m) in measures.iter().enumerate() {
                let scalar = m.of_prepared(&prepared);
                match (&rows[i][j], &scalar) {
                    (Ok(a), Ok(b)) => prop_assert_eq!(
                        a.to_bits(), b.to_bits(),
                        "{} on {}: {} vs {}", m.name(), fo, a, b
                    ),
                    (Err(a), Err(b)) => prop_assert_eq!(a, b, "{} on {}", m.name(), fo),
                    (a, b) => prop_assert!(
                        false,
                        "{} on {}: {:?} vs {:?}", m.name(), fo, a, b
                    ),
                }
            }
        }
    }

    /// One batch arena reloaded across differently sized chunks gives the
    /// same values as a fresh batch per chunk — scratch reuse is
    /// observationally inert.
    #[test]
    fn arena_reuse_never_changes_values(
        fos in prop::collection::vec(arb_flexoffer(), 1..12),
        split in 0usize..12,
    ) {
        let measures = kernel_suite();
        let split = split.min(fos.len());
        let mut arena = ColumnarBatch::new();
        let mut reused = arena.rows(&fos[..split], &measures);
        reused.extend(arena.rows(&fos[split..], &measures));
        let mut fresh = ColumnarBatch::new().rows(&fos[..split], &measures);
        fresh.extend(ColumnarBatch::new().rows(&fos[split..], &measures));
        prop_assert_eq!(reused, fresh);
    }
}

/// The eight default measures plus the variants that flip kernel-relevant
/// knobs: mixed-sign rejection (error paths), the log₂ assignment scale,
/// and the constrained count, which has no columnar kernel and must ride
/// the fallback path.
fn kernel_suite() -> Vec<Box<dyn Measure>> {
    let mut measures = all_measures();
    measures.push(Box::new(AbsoluteAreaFlexibility::rejecting_mixed()));
    measures.push(Box::new(RelativeAreaFlexibility::rejecting_mixed()));
    measures.push(Box::new(AssignmentFlexibility::log_scaled()));
    measures.push(Box::new(AssignmentFlexibility::exact()));
    measures
}
