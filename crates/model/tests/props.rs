//! Property-based tests for the flex-offer model invariants.

use flexoffers_model::{Assignment, FlexOffer, Slice};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small random flex-offer: bounded dimensions so enumeration stays cheap.
fn arb_flexoffer() -> impl Strategy<Value = FlexOffer> {
    (
        0i64..4,                                          // tes
        0i64..4,                                          // extra window
        prop::collection::vec((-4i64..4, 0i64..4), 1..4), // (min, extra width)
        0.0f64..1.0,                                      // cmin position in [pmin, pmax]
        0.0f64..1.0,                                      // cmax position in [cmin, pmax]
    )
        .prop_map(|(tes, window, raw_slices, cmin_pos, cmax_pos)| {
            let slices: Vec<Slice> = raw_slices
                .into_iter()
                .map(|(min, w)| Slice::new(min, min + w).unwrap())
                .collect();
            let pmin: i64 = slices.iter().map(Slice::min).sum();
            let pmax: i64 = slices.iter().map(Slice::max).sum();
            let cmin = pmin + ((pmax - pmin) as f64 * cmin_pos) as i64;
            let cmax = cmin + ((pmax - cmin) as f64 * cmax_pos) as i64;
            FlexOffer::with_totals(tes, tes + window, slices, cmin, cmax).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn enumeration_yields_only_valid_assignments(fo in arb_flexoffer()) {
        for a in fo.assignments() {
            prop_assert!(fo.is_valid_assignment(&a));
        }
    }

    #[test]
    fn enumeration_count_matches_dp_count(fo in arb_flexoffer()) {
        let enumerated = fo.assignments().count() as u128;
        prop_assert_eq!(fo.constrained_assignment_count(), Some(enumerated));
        prop_assert_eq!(fo.constrained_assignment_count_f64(), enumerated as f64);
    }

    #[test]
    fn unconstrained_count_matches_definition_8(fo in arb_flexoffer()) {
        let expected = (fo.time_flexibility() as u128 + 1)
            * fo.slices().iter().map(|s| s.cardinality() as u128).product::<u128>();
        prop_assert_eq!(fo.unconstrained_assignment_count(), Some(expected));
        prop_assert_eq!(fo.assignments_unconstrained().count() as u128, expected);
    }

    #[test]
    fn default_totals_make_every_tuple_valid(fo in arb_flexoffer()) {
        if fo.has_default_totals() {
            prop_assert_eq!(
                fo.assignments().count(),
                fo.assignments_unconstrained().count()
            );
        }
    }

    #[test]
    fn achievable_band_is_tight(fo in arb_flexoffer()) {
        // Every enumerated value per slice lies in the band, and the band's
        // endpoints are actually achieved.
        let s = fo.slice_count();
        let mut seen_min = vec![i64::MAX; s];
        let mut seen_max = vec![i64::MIN; s];
        for a in fo.assignments() {
            for (i, v) in a.values().iter().enumerate() {
                seen_min[i] = seen_min[i].min(*v);
                seen_max[i] = seen_max[i].max(*v);
            }
        }
        for i in 0..s {
            let (lo, hi) = fo.achievable_band(i);
            prop_assert_eq!(seen_min[i], lo, "slice {} lower bound", i);
            prop_assert_eq!(seen_max[i], hi, "slice {} upper bound", i);
        }
    }

    #[test]
    fn sampled_assignments_are_valid(fo in arb_flexoffer(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for a in fo.sample_assignments(16, &mut rng) {
            prop_assert!(fo.is_valid_assignment(&a));
        }
    }

    #[test]
    fn validator_agrees_with_enumeration_membership(fo in arb_flexoffer()) {
        // Everything the enumerator produces validates; a mutation outside
        // the slice range fails.
        let first = fo.assignments().next().expect("space never empty");
        prop_assert!(fo.is_valid_assignment(&first));
        let mut broken = first.values().to_vec();
        broken[0] = fo.slices()[0].max() + 1;
        prop_assert!(!fo.is_valid_assignment(&Assignment::new(first.start(), broken)));
    }

    #[test]
    fn serde_round_trip(fo in arb_flexoffer()) {
        let json = serde_json::to_string(&fo).unwrap();
        let back: FlexOffer = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(fo, back);
    }

    #[test]
    fn time_and_energy_flexibility_are_nonnegative(fo in arb_flexoffer()) {
        prop_assert!(fo.time_flexibility() >= 0);
        prop_assert!(fo.energy_flexibility() >= 0);
    }

    #[test]
    fn min_max_assignment_bound_every_assignment_total(fo in arb_flexoffer()) {
        let lo = fo.min_assignment().total();
        let hi = fo.max_assignment().total();
        for a in fo.assignments() {
            prop_assert!(a.total() >= lo && a.total() <= hi);
        }
    }
}
