//! Assignment validation against a flex-offer (Definition 2's conditions).

use crate::assignment::Assignment;
use crate::error::AssignmentViolation;
use crate::flexoffer::FlexOffer;

impl FlexOffer {
    /// Checks Definition 2's conditions, returning the *first* violation:
    ///
    /// 1. structural: one value per slice;
    /// 2. `tes <= tstart <= tls`;
    /// 3. `amin(i) <= v(i) <= amax(i)` for every slice `i`;
    /// 4. `cmin <= sum(v(i)) <= cmax`.
    pub fn check_assignment(&self, a: &Assignment) -> Result<(), AssignmentViolation> {
        match self.assignment_violations(a).into_iter().next() {
            None => Ok(()),
            Some(v) => Err(v),
        }
    }

    /// `true` iff `a` is a valid assignment of this flex-offer, i.e. a member
    /// of `L(f)`.
    pub fn is_valid_assignment(&self, a: &Assignment) -> bool {
        self.assignment_violations(a).is_empty()
    }

    /// All violations of Definition 2's conditions (empty for a valid
    /// assignment). Useful for diagnostics: a scheduler bug report wants all
    /// broken slices, not just the first.
    pub fn assignment_violations(&self, a: &Assignment) -> Vec<AssignmentViolation> {
        let mut out = Vec::new();
        if a.len() != self.slice_count() {
            out.push(AssignmentViolation::LengthMismatch {
                expected: self.slice_count(),
                actual: a.len(),
            });
            // Per-slice checks below would misalign; stop at the structural
            // violation.
            return out;
        }
        if a.start() < self.earliest_start() {
            out.push(AssignmentViolation::StartTooEarly {
                start: a.start(),
                earliest_start: self.earliest_start(),
            });
        }
        if a.start() > self.latest_start() {
            out.push(AssignmentViolation::StartTooLate {
                start: a.start(),
                latest_start: self.latest_start(),
            });
        }
        for (index, (slice, value)) in self.slices().iter().zip(a.values()).enumerate() {
            if !slice.contains(*value) {
                out.push(AssignmentViolation::SliceOutOfRange {
                    index,
                    value: *value,
                    min: slice.min(),
                    max: slice.max(),
                });
            }
        }
        let total = a.total();
        if total < self.total_min() || total > self.total_max() {
            out.push(AssignmentViolation::TotalOutOfRange {
                total,
                total_min: self.total_min(),
                total_max: self.total_max(),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::Slice;

    fn figure1() -> FlexOffer {
        FlexOffer::new(
            1,
            6,
            vec![
                Slice::new(1, 3).unwrap(),
                Slice::new(2, 4).unwrap(),
                Slice::new(0, 5).unwrap(),
                Slice::new(0, 3).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn paper_figure1_assignment_is_valid() {
        let f = figure1();
        // fa1 with {fa1} from t=2: <2, 3, 1, 2> (paper, Section 2).
        let a = Assignment::new(2, vec![2, 3, 1, 2]);
        assert!(f.is_valid_assignment(&a));
        assert_eq!(f.check_assignment(&a), Ok(()));
    }

    #[test]
    fn length_mismatch_short_circuits() {
        let f = figure1();
        let a = Assignment::new(2, vec![2, 3]);
        let v = f.assignment_violations(&a);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], AssignmentViolation::LengthMismatch { .. }));
    }

    #[test]
    fn start_window_enforced() {
        let f = figure1();
        assert!(matches!(
            f.check_assignment(&Assignment::new(0, vec![2, 3, 1, 2])),
            Err(AssignmentViolation::StartTooEarly { .. })
        ));
        assert!(matches!(
            f.check_assignment(&Assignment::new(7, vec![2, 3, 1, 2])),
            Err(AssignmentViolation::StartTooLate { .. })
        ));
    }

    #[test]
    fn slice_ranges_enforced() {
        let f = figure1();
        let a = Assignment::new(2, vec![0, 3, 1, 2]); // slice 0 requires >= 1
        assert!(matches!(
            f.check_assignment(&a),
            Err(AssignmentViolation::SliceOutOfRange { index: 0, .. })
        ));
    }

    #[test]
    fn totals_enforced() {
        let f = FlexOffer::with_totals(
            0,
            0,
            vec![Slice::new(0, 5).unwrap(), Slice::new(0, 5).unwrap()],
            3,
            7,
        )
        .unwrap();
        // Slice-wise fine, total 10 > cmax 7.
        let a = Assignment::new(0, vec![5, 5]);
        assert!(matches!(
            f.check_assignment(&a),
            Err(AssignmentViolation::TotalOutOfRange { total: 10, .. })
        ));
        // Total 2 < cmin 3.
        let b = Assignment::new(0, vec![1, 1]);
        assert!(!f.is_valid_assignment(&b));
        // Total inside.
        let c = Assignment::new(0, vec![2, 3]);
        assert!(f.is_valid_assignment(&c));
    }

    #[test]
    fn multiple_violations_reported() {
        let f = figure1();
        let a = Assignment::new(0, vec![0, 5, 6, 4]);
        let v = f.assignment_violations(&a);
        // Start too early + all four slices out of range; the total (15)
        // still satisfies cmax = 15, so no total violation.
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn min_assignment_valid_iff_default_totals() {
        let f = figure1();
        assert!(f.is_valid_assignment(&f.min_assignment()));
        assert!(f.is_valid_assignment(&f.max_assignment()));
        let g = FlexOffer::with_totals(0, 1, vec![Slice::new(0, 5).unwrap()], 2, 4).unwrap();
        // Definition 5/6 extremes ignore totals; here they are invalid.
        assert!(!g.is_valid_assignment(&g.min_assignment()));
        assert!(!g.is_valid_assignment(&g.max_assignment()));
    }
}
