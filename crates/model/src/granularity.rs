//! Granularity refinement.
//!
//! The paper fixes slice duration at one time unit and observes (Section 2)
//! that "we can achieve any desired finer granularity/precision of time and
//! energy by simply multiplying their values with the desirable
//! coefficient". This module is that remark as code: [`refine`] rewrites a
//! flex-offer from 1-unit slices to `factor`-times finer slices.
//!
//! Refinement *adds* expressiveness — the finer model admits start times
//! between the original ones and uneven intra-slot energy splits — so it is
//! not invertible; what it preserves exactly is every original assignment
//! (mapped via [`refine_assignment`]), the total energy constraints, the
//! profile sums, and the sign class.

use crate::assignment::Assignment;
use crate::error::ModelError;
use crate::flexoffer::FlexOffer;
use crate::slice::Slice;
use crate::Energy;

/// Splits `total` into `k` integer parts whose cumulative sums track the
/// even split (the same rule as series upsampling, so totals are exact).
fn even_split(total: Energy, k: usize) -> Vec<Energy> {
    let mut parts = Vec::with_capacity(k);
    let mut emitted: Energy = 0;
    for j in 1..=k {
        let target = (total as f64 * j as f64 / k as f64).round() as Energy;
        parts.push(target - emitted);
        emitted = target;
    }
    parts
}

/// Rewrites `fo` at a `factor`-times finer time granularity.
///
/// Each original slice `[a, b]` becomes `factor` slices: the minima split
/// `a` evenly and each sub-slot's width splits `b - a` evenly (splitting
/// minima and widths separately keeps `amin <= amax` in every sub-slot,
/// which splitting `a` and `b` independently would not). The start window
/// and profile scale by `factor`; `cmin`/`cmax` are unchanged.
pub fn refine(fo: &FlexOffer, factor: usize) -> Result<FlexOffer, ModelError> {
    if factor == 0 {
        return Err(ModelError::EmptyProfile);
    }
    let k = factor as i64;
    let mut slices = Vec::with_capacity(fo.slice_count() * factor);
    for s in fo.slices() {
        let mins = even_split(s.min(), factor);
        let widths = even_split(s.width(), factor);
        for (lo, w) in mins.into_iter().zip(widths) {
            slices.push(Slice::new(lo, lo + w)?);
        }
    }
    FlexOffer::with_totals(
        fo.earliest_start() * k,
        fo.latest_start() * k,
        slices,
        fo.total_min(),
        fo.total_max(),
    )
}

/// Maps an assignment of `fo` into [`refine`]'s model: the start scales by
/// `factor`, each value starts from its sub-slots' minima, and the value's
/// offset above the slice minimum fills the sub-slots' widths left to
/// right. Valid whenever the original assignment is valid for `fo`, because
/// sub-slot minima sum to the slice minimum and sub-slot widths sum to the
/// slice width.
pub fn refine_assignment(fo: &FlexOffer, a: &Assignment, factor: usize) -> Assignment {
    let mut values = Vec::with_capacity(a.len() * factor);
    for (slice, &v) in fo.slices().iter().zip(a.values()) {
        let mins = even_split(slice.min(), factor);
        let widths = even_split(slice.width(), factor);
        let mut offset = v - slice.min();
        for (lo, w) in mins.into_iter().zip(widths) {
            let take = offset.clamp(0, w);
            values.push(lo + take);
            offset -= take;
        }
        debug_assert_eq!(offset, 0, "offset fits because v <= slice.max()");
    }
    Assignment::new(a.start() * factor as i64, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> FlexOffer {
        FlexOffer::new(
            1,
            6,
            vec![
                Slice::new(1, 3).unwrap(),
                Slice::new(2, 4).unwrap(),
                Slice::new(0, 5).unwrap(),
                Slice::new(0, 3).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn even_split_is_exact_and_balanced() {
        assert_eq!(even_split(7, 3), vec![2, 3, 2]);
        assert_eq!(even_split(-5, 2), vec![-3, -2]);
        assert_eq!(even_split(0, 4), vec![0, 0, 0, 0]);
        for total in -20..=20 {
            for k in 1..=5 {
                let parts = even_split(total, k);
                assert_eq!(parts.iter().sum::<i64>(), total);
                let spread = parts.iter().max().unwrap() - parts.iter().min().unwrap();
                assert!(spread <= 1, "{total}/{k} -> {parts:?}");
            }
        }
    }

    #[test]
    fn refine_preserves_totals_profile_sums_and_sign() {
        let f = figure1();
        for factor in [1usize, 2, 4] {
            let r = refine(&f, factor).unwrap();
            assert_eq!(r.slice_count(), f.slice_count() * factor);
            assert_eq!(r.total_min(), f.total_min());
            assert_eq!(r.total_max(), f.total_max());
            assert_eq!(r.profile_min(), f.profile_min());
            assert_eq!(r.profile_max(), f.profile_max());
            assert_eq!(r.sign(), f.sign());
            assert_eq!(r.time_flexibility(), f.time_flexibility() * factor as i64);
            assert_eq!(r.energy_flexibility(), f.energy_flexibility());
        }
    }

    #[test]
    fn factor_one_is_identity() {
        let f = figure1();
        assert_eq!(refine(&f, 1).unwrap(), f);
    }

    #[test]
    fn factor_zero_rejected() {
        assert!(refine(&figure1(), 0).is_err());
    }

    #[test]
    fn refined_assignments_stay_valid() {
        let f = figure1();
        for factor in [2usize, 3] {
            let r = refine(&f, factor).unwrap();
            for a in f.assignments().take(200) {
                let ra = refine_assignment(&f, &a, factor);
                assert!(
                    r.is_valid_assignment(&ra),
                    "refined {a} -> {ra} invalid at factor {factor}"
                );
                assert_eq!(ra.total(), a.total(), "refinement preserves energy");
            }
        }
    }

    #[test]
    fn production_profiles_refine_too() {
        let f = FlexOffer::new(
            0,
            2,
            vec![Slice::new(-5, -1).unwrap(), Slice::new(-3, 0).unwrap()],
        )
        .unwrap();
        let r = refine(&f, 2).unwrap();
        assert_eq!(r.sign(), crate::SignClass::Negative);
        assert_eq!(r.profile_min(), -8);
        for a in f.assignments().take(50) {
            assert!(r.is_valid_assignment(&refine_assignment(&f, &a, 2)));
        }
    }

    #[test]
    fn refinement_strictly_adds_assignments() {
        let f = FlexOffer::new(0, 1, vec![Slice::new(0, 2).unwrap()]).unwrap();
        let r = refine(&f, 2).unwrap();
        let original = f.constrained_assignment_count().unwrap();
        let refined = r.constrained_assignment_count().unwrap();
        assert!(refined > original, "{refined} <= {original}");
    }
}
