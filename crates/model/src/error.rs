//! Error types for flex-offer construction and assignment validation.

use std::error::Error;
use std::fmt;

use crate::{Energy, TimeSlot};

/// Errors raised when constructing model types with invalid parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A flex-offer must have at least one slice (Definition 1 requires a
    /// sequence of `s >= 1` consecutive slices).
    EmptyProfile,
    /// Flex-offer start times live in ℕ₀ (paper, Section 2).
    NegativeEarliestStart {
        /// The offending earliest start time.
        earliest_start: TimeSlot,
    },
    /// The start window must satisfy `tes <= tls`.
    StartWindowInverted {
        /// Earliest start time.
        earliest_start: TimeSlot,
        /// Latest start time.
        latest_start: TimeSlot,
    },
    /// A slice energy range must satisfy `amin <= amax`.
    InvalidSliceRange {
        /// Range minimum.
        min: Energy,
        /// Range maximum.
        max: Energy,
    },
    /// Total energy constraints must satisfy `cmin <= cmax`.
    TotalBoundsInverted {
        /// Total minimum constraint.
        total_min: Energy,
        /// Total maximum constraint.
        total_max: Energy,
    },
    /// Total energy constraints must lie within the profile sums:
    /// `sum(amin) <= cmin` and `cmax <= sum(amax)` (Definition 1's side
    /// condition).
    TotalBoundsOutsideProfile {
        /// Total minimum constraint.
        total_min: Energy,
        /// Total maximum constraint.
        total_max: Energy,
        /// Sum of slice minima.
        profile_min: Energy,
        /// Sum of slice maxima.
        profile_max: Energy,
    },
    /// An operation that materialises assignments was asked to exceed its
    /// limit (or the count overflows `u128`).
    TooManyAssignments {
        /// The configured limit.
        limit: u128,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyProfile => {
                write!(f, "a flex-offer requires at least one slice")
            }
            ModelError::NegativeEarliestStart { earliest_start } => {
                write!(
                    f,
                    "earliest start time must be non-negative, got {earliest_start}"
                )
            }
            ModelError::StartWindowInverted {
                earliest_start,
                latest_start,
            } => write!(
                f,
                "start window inverted: earliest {earliest_start} > latest {latest_start}"
            ),
            ModelError::InvalidSliceRange { min, max } => {
                write!(f, "slice energy range inverted: min {min} > max {max}")
            }
            ModelError::TotalBoundsInverted {
                total_min,
                total_max,
            } => write!(
                f,
                "total energy constraints inverted: cmin {total_min} > cmax {total_max}"
            ),
            ModelError::TotalBoundsOutsideProfile {
                total_min,
                total_max,
                profile_min,
                profile_max,
            } => write!(
                f,
                "total energy constraints [{total_min}, {total_max}] must lie within \
                 the profile sums [{profile_min}, {profile_max}]"
            ),
            ModelError::TooManyAssignments { limit } => {
                write!(f, "assignment space exceeds the limit of {limit}")
            }
        }
    }
}

impl Error for ModelError {}

/// A reason an [`Assignment`](crate::Assignment) fails to satisfy a
/// [`FlexOffer`](crate::FlexOffer) (Definition 2's three conditions plus the
/// structural length check).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AssignmentViolation {
    /// The assignment has a different number of values than the flex-offer
    /// has slices.
    LengthMismatch {
        /// Number of slices in the flex-offer.
        expected: usize,
        /// Number of values in the assignment.
        actual: usize,
    },
    /// The start time precedes the earliest start time.
    StartTooEarly {
        /// The assignment's start.
        start: TimeSlot,
        /// The flex-offer's earliest start.
        earliest_start: TimeSlot,
    },
    /// The start time exceeds the latest start time.
    StartTooLate {
        /// The assignment's start.
        start: TimeSlot,
        /// The flex-offer's latest start.
        latest_start: TimeSlot,
    },
    /// A value falls outside its slice's energy range.
    SliceOutOfRange {
        /// Zero-based slice index.
        index: usize,
        /// The offending value.
        value: Energy,
        /// Slice range minimum.
        min: Energy,
        /// Slice range maximum.
        max: Energy,
    },
    /// The sum of values falls outside the total energy constraints.
    TotalOutOfRange {
        /// The assignment's total energy.
        total: Energy,
        /// Total minimum constraint.
        total_min: Energy,
        /// Total maximum constraint.
        total_max: Energy,
    },
}

impl fmt::Display for AssignmentViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignmentViolation::LengthMismatch { expected, actual } => write!(
                f,
                "assignment has {actual} values but the flex-offer has {expected} slices"
            ),
            AssignmentViolation::StartTooEarly {
                start,
                earliest_start,
            } => write!(
                f,
                "start {start} precedes the earliest start time {earliest_start}"
            ),
            AssignmentViolation::StartTooLate {
                start,
                latest_start,
            } => write!(
                f,
                "start {start} exceeds the latest start time {latest_start}"
            ),
            AssignmentViolation::SliceOutOfRange {
                index,
                value,
                min,
                max,
            } => write!(
                f,
                "value {value} at slice {index} is outside the energy range [{min}, {max}]"
            ),
            AssignmentViolation::TotalOutOfRange {
                total,
                total_min,
                total_max,
            } => write!(
                f,
                "total energy {total} is outside the constraints [{total_min}, {total_max}]"
            ),
        }
    }
}

impl Error for AssignmentViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_error_messages_mention_values() {
        let e = ModelError::StartWindowInverted {
            earliest_start: 5,
            latest_start: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains('5') && msg.contains('2'));
    }

    #[test]
    fn violation_messages_mention_values() {
        let v = AssignmentViolation::SliceOutOfRange {
            index: 3,
            value: 9,
            min: 0,
            max: 5,
        };
        let msg = v.to_string();
        assert!(msg.contains("slice 3") && msg.contains('9'));
    }

    #[test]
    fn errors_implement_std_error() {
        fn assert_error<E: Error>(_: &E) {}
        assert_error(&ModelError::EmptyProfile);
        assert_error(&AssignmentViolation::LengthMismatch {
            expected: 1,
            actual: 2,
        });
    }
}
