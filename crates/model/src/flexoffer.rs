//! The [`FlexOffer`] type (Definition 1).

use serde::{Deserialize, Serialize};

use crate::assignment::Assignment;
use crate::error::ModelError;
use crate::sign::SignClass;
use crate::slice::Slice;
use crate::{Energy, TimeSlot};

/// A flex-offer `f = ([tes, tls], <s(1), ..., s(s)>)` with total energy
/// constraints `cmin <= cmax` (Definition 1).
///
/// Invariants, enforced at construction and on deserialization:
///
/// * at least one slice;
/// * `0 <= tes <= tls` (time lives in ℕ₀, Section 2);
/// * every slice satisfies `amin <= amax`;
/// * `sum(amin) <= cmin <= cmax <= sum(amax)`.
///
/// When no total constraints are given they default to the loosest admissible
/// pair, `cmin = sum(amin)` and `cmax = sum(amax)`, which makes the model
/// coincide with the original flex-offer definition of Šikšnys et al.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(try_from = "RawFlexOffer", into = "RawFlexOffer")]
pub struct FlexOffer {
    earliest_start: TimeSlot,
    latest_start: TimeSlot,
    slices: Vec<Slice>,
    total_min: Energy,
    total_max: Energy,
}

/// Serialized form of [`FlexOffer`]; deserialization re-validates all
/// invariants.
#[derive(Serialize, Deserialize)]
struct RawFlexOffer {
    earliest_start: TimeSlot,
    latest_start: TimeSlot,
    slices: Vec<Slice>,
    total_min: Energy,
    total_max: Energy,
}

impl TryFrom<RawFlexOffer> for FlexOffer {
    type Error = ModelError;

    fn try_from(raw: RawFlexOffer) -> Result<Self, ModelError> {
        FlexOffer::with_totals(
            raw.earliest_start,
            raw.latest_start,
            raw.slices,
            raw.total_min,
            raw.total_max,
        )
    }
}

impl From<FlexOffer> for RawFlexOffer {
    fn from(fo: FlexOffer) -> Self {
        RawFlexOffer {
            earliest_start: fo.earliest_start,
            latest_start: fo.latest_start,
            slices: fo.slices,
            total_min: fo.total_min,
            total_max: fo.total_max,
        }
    }
}

impl FlexOffer {
    /// Creates a flex-offer with default (loosest) total energy constraints.
    pub fn new(
        earliest_start: TimeSlot,
        latest_start: TimeSlot,
        slices: Vec<Slice>,
    ) -> Result<Self, ModelError> {
        let profile_min: Energy = slices.iter().map(Slice::min).sum();
        let profile_max: Energy = slices.iter().map(Slice::max).sum();
        Self::with_totals(
            earliest_start,
            latest_start,
            slices,
            profile_min,
            profile_max,
        )
    }

    /// Creates a flex-offer with explicit total energy constraints
    /// `[total_min, total_max]` (the paper's `cmin`, `cmax`).
    pub fn with_totals(
        earliest_start: TimeSlot,
        latest_start: TimeSlot,
        slices: Vec<Slice>,
        total_min: Energy,
        total_max: Energy,
    ) -> Result<Self, ModelError> {
        if slices.is_empty() {
            return Err(ModelError::EmptyProfile);
        }
        if earliest_start < 0 {
            return Err(ModelError::NegativeEarliestStart { earliest_start });
        }
        if earliest_start > latest_start {
            return Err(ModelError::StartWindowInverted {
                earliest_start,
                latest_start,
            });
        }
        if total_min > total_max {
            return Err(ModelError::TotalBoundsInverted {
                total_min,
                total_max,
            });
        }
        let profile_min: Energy = slices.iter().map(Slice::min).sum();
        let profile_max: Energy = slices.iter().map(Slice::max).sum();
        if total_min < profile_min || total_max > profile_max {
            return Err(ModelError::TotalBoundsOutsideProfile {
                total_min,
                total_max,
                profile_min,
                profile_max,
            });
        }
        Ok(Self {
            earliest_start,
            latest_start,
            slices,
            total_min,
            total_max,
        })
    }

    /// The earliest start time `tes`.
    pub fn earliest_start(&self) -> TimeSlot {
        self.earliest_start
    }

    /// The latest start time `tls`.
    pub fn latest_start(&self) -> TimeSlot {
        self.latest_start
    }

    /// The energy profile: the sequence of slices.
    pub fn slices(&self) -> &[Slice] {
        &self.slices
    }

    /// The profile duration `s` in time units.
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// The total minimum energy constraint `cmin`.
    pub fn total_min(&self) -> Energy {
        self.total_min
    }

    /// The total maximum energy constraint `cmax`.
    pub fn total_max(&self) -> Energy {
        self.total_max
    }

    /// Sum of slice minima (the lower bound Definition 1 puts on `cmin`).
    pub fn profile_min(&self) -> Energy {
        self.slices.iter().map(Slice::min).sum()
    }

    /// Sum of slice maxima (the upper bound Definition 1 puts on `cmax`).
    pub fn profile_max(&self) -> Energy {
        self.slices.iter().map(Slice::max).sum()
    }

    /// `true` if the total constraints are the loosest admissible pair
    /// (`cmin = sum(amin)`, `cmax = sum(amax)`).
    pub fn has_default_totals(&self) -> bool {
        self.total_min == self.profile_min() && self.total_max == self.profile_max()
    }

    /// Time flexibility `tf(f) = tls - tes` (paper, Section 3.1; Example 1).
    pub fn time_flexibility(&self) -> i64 {
        self.latest_start - self.earliest_start
    }

    /// Energy flexibility `ef(f) = cmax - cmin` (paper, Section 3.1;
    /// Example 2).
    pub fn energy_flexibility(&self) -> Energy {
        self.total_max - self.total_min
    }

    /// The sign class: consumption, production, mixed, or zero.
    pub fn sign(&self) -> SignClass {
        SignClass::of(self)
    }

    /// One past the last slot any assignment of this flex-offer can occupy
    /// (`tls + s`).
    pub fn latest_end(&self) -> TimeSlot {
        self.latest_start + self.slices.len() as i64
    }

    /// The slots an assignment could possibly occupy: `tes .. tls + s`.
    pub fn occupancy_window(&self) -> std::ops::Range<TimeSlot> {
        self.earliest_start..self.latest_end()
    }

    /// The *minimum assignment* (Definition 5): starts at the earliest start
    /// time with every slice at its range minimum.
    ///
    /// Note: Definitions 5–6 ignore the total energy constraints, so when
    /// `cmin > sum(amin)` this extreme is not itself a valid assignment; the
    /// paper uses it regardless to define the time-series measure
    /// (Definition 7), and so do we.
    pub fn min_assignment(&self) -> Assignment {
        Assignment::new(
            self.earliest_start,
            self.slices.iter().map(Slice::min).collect(),
        )
    }

    /// The *maximum assignment* (Definition 6): starts at the latest start
    /// time with every slice at its range maximum. See the note on
    /// [`FlexOffer::min_assignment`].
    pub fn max_assignment(&self) -> Assignment {
        Assignment::new(
            self.latest_start,
            self.slices.iter().map(Slice::max).collect(),
        )
    }

    /// The band of amounts slice `i` can take across *valid* assignments,
    /// i.e. accounting for the total energy constraints.
    ///
    /// A value `v` is achievable for slice `i` iff the remaining slices can
    /// absorb it: `v + sum_other(amin) <= cmax` and
    /// `v + sum_other(amax) >= cmin`. Because the other slices range over
    /// integer intervals, every integer between the band's endpoints is
    /// achievable (adjust one slice at a time — an integer intermediate-value
    /// argument). The band is never empty thanks to Definition 1's side
    /// condition `sum(amin) <= cmin <= cmax <= sum(amax)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn achievable_band(&self, i: usize) -> (Energy, Energy) {
        let s = &self.slices[i];
        let others_min = self.profile_min() - s.min();
        let others_max = self.profile_max() - s.max();
        let hi = s.max().min(self.total_max - others_min);
        let lo = s.min().max(self.total_min - others_max);
        debug_assert!(lo <= hi, "achievable band empty for slice {i}");
        (lo, hi)
    }

    /// A copy with the start window shifted by `dt` (used by aggregation and
    /// scheduling); fails if the shift drives `tes` negative.
    pub fn shifted(&self, dt: TimeSlot) -> Result<Self, ModelError> {
        Self::with_totals(
            self.earliest_start + dt,
            self.latest_start + dt,
            self.slices.clone(),
            self.total_min,
            self.total_max,
        )
    }
}

impl std::fmt::Display for FlexOffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "([{}, {}], <", self.earliest_start, self.latest_start)?;
        for (i, s) in self.slices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, ">, cmin={}, cmax={})", self.total_min, self.total_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1 flex-offer.
    pub(crate) fn figure1() -> FlexOffer {
        FlexOffer::new(
            1,
            6,
            vec![
                Slice::new(1, 3).unwrap(),
                Slice::new(2, 4).unwrap(),
                Slice::new(0, 5).unwrap(),
                Slice::new(0, 3).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure1_flexibilities_match_examples_1_and_2() {
        let f = figure1();
        assert_eq!(f.time_flexibility(), 5);
        assert_eq!(f.total_min(), 3);
        assert_eq!(f.total_max(), 15);
        assert_eq!(f.energy_flexibility(), 12);
        assert_eq!(f.slice_count(), 4);
        assert!(f.has_default_totals());
    }

    #[test]
    fn empty_profile_rejected() {
        assert_eq!(FlexOffer::new(0, 0, vec![]), Err(ModelError::EmptyProfile));
    }

    #[test]
    fn negative_start_rejected() {
        let r = FlexOffer::new(-1, 2, vec![Slice::fixed(1)]);
        assert_eq!(
            r,
            Err(ModelError::NegativeEarliestStart { earliest_start: -1 })
        );
    }

    #[test]
    fn inverted_window_rejected() {
        let r = FlexOffer::new(5, 2, vec![Slice::fixed(1)]);
        assert!(matches!(r, Err(ModelError::StartWindowInverted { .. })));
    }

    #[test]
    fn totals_must_nest_in_profile() {
        let slices = vec![Slice::new(0, 2).unwrap()];
        assert!(matches!(
            FlexOffer::with_totals(0, 0, slices.clone(), -1, 2),
            Err(ModelError::TotalBoundsOutsideProfile { .. })
        ));
        assert!(matches!(
            FlexOffer::with_totals(0, 0, slices.clone(), 0, 3),
            Err(ModelError::TotalBoundsOutsideProfile { .. })
        ));
        assert!(matches!(
            FlexOffer::with_totals(0, 0, slices, 2, 1),
            Err(ModelError::TotalBoundsInverted { .. })
        ));
    }

    #[test]
    fn min_max_assignments_per_definitions_5_and_6() {
        let f = figure1();
        let min = f.min_assignment();
        assert_eq!(min.start(), 1);
        assert_eq!(min.values(), &[1, 2, 0, 0]);
        let max = f.max_assignment();
        assert_eq!(max.start(), 6);
        assert_eq!(max.values(), &[3, 4, 5, 3]);
    }

    #[test]
    fn achievable_band_unconstrained_equals_slice_range() {
        let f = figure1();
        for (i, s) in f.slices().iter().enumerate() {
            assert_eq!(f.achievable_band(i), (s.min(), s.max()));
        }
    }

    #[test]
    fn achievable_band_tightens_under_totals() {
        // Two slices [0,5] each, total forced to exactly 5: each slice can
        // still take any value 0..=5 (the other absorbs the rest).
        let f = FlexOffer::with_totals(
            0,
            0,
            vec![Slice::new(0, 5).unwrap(), Slice::new(0, 5).unwrap()],
            5,
            5,
        )
        .unwrap();
        assert_eq!(f.achievable_band(0), (0, 5));
        // Total forced to 9: each slice must contribute at least 4.
        let g = FlexOffer::with_totals(
            0,
            0,
            vec![Slice::new(0, 5).unwrap(), Slice::new(0, 5).unwrap()],
            9,
            9,
        )
        .unwrap();
        assert_eq!(g.achievable_band(0), (4, 5));
        assert_eq!(g.achievable_band(1), (4, 5));
    }

    #[test]
    fn occupancy_window_spans_all_starts() {
        let f = figure1();
        assert_eq!(f.occupancy_window(), 1..10);
        assert_eq!(f.latest_end(), 10);
    }

    #[test]
    fn shifted_moves_window() {
        let f = figure1();
        let g = f.shifted(3).unwrap();
        assert_eq!(g.earliest_start(), 4);
        assert_eq!(g.latest_start(), 9);
        assert_eq!(g.slices(), f.slices());
        assert!(f.shifted(-2).is_err());
    }

    #[test]
    fn display_round_trips_structure() {
        let f = figure1();
        assert_eq!(
            f.to_string(),
            "([1, 6], <[1, 3], [2, 4], [0, 5], [0, 3]>, cmin=3, cmax=15)"
        );
    }
}
