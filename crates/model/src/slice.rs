//! Flex-offer slices: unit-duration energy ranges.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::Energy;

/// One slice of a flex-offer's energy profile: an inclusive energy range
/// `[amin, amax]` over one time unit (Definition 1).
///
/// Positive amounts denote consumption, negative amounts production
/// (Section 2 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(try_from = "RawSlice", into = "RawSlice")]
pub struct Slice {
    min: Energy,
    max: Energy,
}

/// Serialized form of [`Slice`]; deserialization re-validates the invariant.
#[derive(Serialize, Deserialize)]
struct RawSlice {
    min: Energy,
    max: Energy,
}

impl TryFrom<RawSlice> for Slice {
    type Error = ModelError;

    fn try_from(raw: RawSlice) -> Result<Self, ModelError> {
        Slice::new(raw.min, raw.max)
    }
}

impl From<Slice> for RawSlice {
    fn from(s: Slice) -> Self {
        RawSlice {
            min: s.min,
            max: s.max,
        }
    }
}

impl Slice {
    /// Creates a slice with range `[min, max]`; fails if `min > max`.
    pub fn new(min: Energy, max: Energy) -> Result<Self, ModelError> {
        if min > max {
            return Err(ModelError::InvalidSliceRange { min, max });
        }
        Ok(Self { min, max })
    }

    /// Creates a slice with a single admissible amount (`[v, v]`).
    pub fn fixed(v: Energy) -> Self {
        Self { min: v, max: v }
    }

    /// The range minimum `amin`.
    pub fn min(&self) -> Energy {
        self.min
    }

    /// The range maximum `amax`.
    pub fn max(&self) -> Energy {
        self.max
    }

    /// The range width `amax - amin` — the slice's own amount flexibility.
    pub fn width(&self) -> Energy {
        self.max - self.min
    }

    /// Number of admissible integer amounts (`width + 1`).
    pub fn cardinality(&self) -> u64 {
        (self.max - self.min) as u64 + 1
    }

    /// `true` if `v` lies inside the range.
    pub fn contains(&self, v: Energy) -> bool {
        self.min <= v && v <= self.max
    }

    /// `true` if the range admits exactly one amount.
    pub fn is_fixed(&self) -> bool {
        self.min == self.max
    }

    /// Clamps `v` into the range.
    pub fn clamp(&self, v: Energy) -> Energy {
        v.clamp(self.min, self.max)
    }

    /// The midpoint of the range, rounded toward the minimum.
    pub fn midpoint(&self) -> Energy {
        self.min + (self.max - self.min) / 2
    }
}

impl std::fmt::Display for Slice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_slice() {
        let s = Slice::new(-2, 5).unwrap();
        assert_eq!(s.min(), -2);
        assert_eq!(s.max(), 5);
        assert_eq!(s.width(), 7);
        assert_eq!(s.cardinality(), 8);
        assert!(!s.is_fixed());
    }

    #[test]
    fn inverted_range_rejected() {
        assert_eq!(
            Slice::new(3, 1),
            Err(ModelError::InvalidSliceRange { min: 3, max: 1 })
        );
    }

    #[test]
    fn fixed_slice() {
        let s = Slice::fixed(4);
        assert!(s.is_fixed());
        assert_eq!(s.width(), 0);
        assert_eq!(s.cardinality(), 1);
        assert_eq!(s.midpoint(), 4);
    }

    #[test]
    fn contains_and_clamp() {
        let s = Slice::new(0, 5).unwrap();
        assert!(s.contains(0) && s.contains(5) && s.contains(3));
        assert!(!s.contains(-1) && !s.contains(6));
        assert_eq!(s.clamp(-3), 0);
        assert_eq!(s.clamp(9), 5);
        assert_eq!(s.clamp(2), 2);
    }

    #[test]
    fn midpoint_rounds_toward_min() {
        assert_eq!(Slice::new(0, 5).unwrap().midpoint(), 2);
        assert_eq!(Slice::new(-5, 0).unwrap().midpoint(), -3);
        assert_eq!(Slice::new(2, 4).unwrap().midpoint(), 3);
    }

    #[test]
    fn display() {
        assert_eq!(Slice::new(1, 3).unwrap().to_string(), "[1, 3]");
    }
}
