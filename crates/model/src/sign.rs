//! Sign classification of flex-offers: consumption, production, or both.

use serde::{Deserialize, Serialize};

use crate::flexoffer::FlexOffer;

/// The sign class of a flex-offer (paper, Section 2).
///
/// * *Positive* flex-offers represent energy **consumption** (e.g. a
///   dishwasher): every admissible amount is non-negative and some amount is
///   strictly positive.
/// * *Negative* flex-offers represent energy **production** (e.g. a solar
///   panel): every admissible amount is non-positive and some amount is
///   strictly negative.
/// * *Mixed* flex-offers can both consume and produce (e.g. vehicle-to-grid).
/// * *Zero* flex-offers admit no energy exchange at all (every slice is
///   `[0, 0]`); the paper does not name this degenerate class, but it arises
///   naturally and several measures treat it like an inflexible object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignClass {
    /// Pure consumption.
    Positive,
    /// Pure production.
    Negative,
    /// Both consumption and production are admissible.
    Mixed,
    /// No energy exchange is admissible.
    Zero,
}

impl SignClass {
    /// Classifies a flex-offer by inspecting its slice ranges.
    pub fn of(fo: &FlexOffer) -> SignClass {
        let mut any_pos = false;
        let mut any_neg = false;
        for s in fo.slices() {
            if s.max() > 0 {
                any_pos = true;
            }
            if s.min() < 0 {
                any_neg = true;
            }
        }
        match (any_pos, any_neg) {
            (false, false) => SignClass::Zero,
            (true, false) => SignClass::Positive,
            (false, true) => SignClass::Negative,
            (true, true) => SignClass::Mixed,
        }
    }

    /// `true` for [`SignClass::Positive`].
    pub fn is_positive(self) -> bool {
        self == SignClass::Positive
    }

    /// `true` for [`SignClass::Negative`].
    pub fn is_negative(self) -> bool {
        self == SignClass::Negative
    }

    /// `true` for [`SignClass::Mixed`].
    pub fn is_mixed(self) -> bool {
        self == SignClass::Mixed
    }
}

impl std::fmt::Display for SignClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let label = match self {
            SignClass::Positive => "positive",
            SignClass::Negative => "negative",
            SignClass::Mixed => "mixed",
            SignClass::Zero => "zero",
        };
        f.write_str(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::Slice;

    fn fo(slices: Vec<Slice>) -> FlexOffer {
        FlexOffer::new(0, 0, slices).unwrap()
    }

    #[test]
    fn consumption_is_positive() {
        let f = fo(vec![Slice::new(0, 3).unwrap(), Slice::new(1, 2).unwrap()]);
        assert_eq!(SignClass::of(&f), SignClass::Positive);
        assert!(SignClass::of(&f).is_positive());
    }

    #[test]
    fn production_is_negative() {
        let f = fo(vec![
            Slice::new(-3, 0).unwrap(),
            Slice::new(-2, -1).unwrap(),
        ]);
        assert_eq!(SignClass::of(&f), SignClass::Negative);
    }

    #[test]
    fn crossing_range_is_mixed() {
        let f = fo(vec![Slice::new(-1, 2).unwrap()]);
        assert_eq!(SignClass::of(&f), SignClass::Mixed);
    }

    #[test]
    fn separate_pos_and_neg_slices_are_mixed() {
        let f = fo(vec![Slice::fixed(1), Slice::fixed(-1)]);
        assert_eq!(SignClass::of(&f), SignClass::Mixed);
    }

    #[test]
    fn all_zero_is_zero() {
        let f = fo(vec![Slice::fixed(0), Slice::fixed(0)]);
        assert_eq!(SignClass::of(&f), SignClass::Zero);
    }

    #[test]
    fn paper_figure_7_is_mixed() {
        // f6 = ([0,2], <[-1,2], [-4,-1], [-3,1]>)
        let f = FlexOffer::new(
            0,
            2,
            vec![
                Slice::new(-1, 2).unwrap(),
                Slice::new(-4, -1).unwrap(),
                Slice::new(-3, 1).unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(SignClass::of(&f), SignClass::Mixed);
    }

    #[test]
    fn display_labels() {
        assert_eq!(SignClass::Positive.to_string(), "positive");
        assert_eq!(SignClass::Mixed.to_string(), "mixed");
    }
}
