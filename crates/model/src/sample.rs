//! Uniform random sampling of valid assignments.
//!
//! Schedulers and property tests need "a random element of `L(f)`" without
//! enumerating the (potentially astronomical) assignment space. Sampling is
//! done exactly with the same dynamic program that counts assignments: the
//! start time is uniform over the window (every start admits the same value
//! tuples), and values are drawn slice by slice with probabilities
//! proportional to the number of completions, so every valid tuple is
//! equally likely (up to `f64` rounding of the DP weights, which is exact
//! below 2^53 completions).

use rand::Rng;

use crate::assignment::Assignment;
use crate::flexoffer::FlexOffer;
use crate::Energy;

impl FlexOffer {
    /// Draws a uniformly random valid assignment.
    pub fn sample_assignment<R: Rng + ?Sized>(&self, rng: &mut R) -> Assignment {
        let start = rng.gen_range(self.earliest_start()..=self.latest_start());

        // suffix_counts[i][t]: number of ways slices i.. reach offset-sum t.
        let suffix_counts = self.suffix_offset_counts();

        let offset_lo = self.total_min() - self.profile_min();
        let offset_hi = self.total_max() - self.profile_min();

        let mut values: Vec<Energy> = Vec::with_capacity(self.slice_count());
        // Remaining admissible window for the offset-sum of the still-unset
        // slices: starts as [offset_lo, offset_hi], shrinks as values commit.
        let mut lo = offset_lo;
        let mut hi = offset_hi;
        for (i, slice) in self.slices().iter().enumerate() {
            let tail = &suffix_counts[i + 1];
            let tail_max = tail.len() as i64 - 1;
            // Weight of choosing offset x for this slice: number of tail
            // completions with offset-sum inside [lo - x, hi - x].
            let weight = |x: i64| -> f64 {
                let a = (lo - x).max(0);
                let b = (hi - x).min(tail_max);
                if a > b {
                    0.0
                } else {
                    tail[a as usize..=b as usize].iter().sum()
                }
            };
            let total_weight: f64 = (0..=slice.width()).map(weight).sum();
            debug_assert!(total_weight > 0.0, "no valid completion for slice {i}");
            let mut pick = rng.gen_range(0.0..total_weight);
            let mut chosen = slice.width(); // fallback to the last candidate
            for x in 0..=slice.width() {
                let w = weight(x);
                if pick < w {
                    chosen = x;
                    break;
                }
                pick -= w;
            }
            values.push(slice.min() + chosen);
            lo -= chosen;
            hi -= chosen;
        }
        Assignment::new(start, values)
    }

    /// Draws `n` independent uniformly random valid assignments.
    pub fn sample_assignments<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Assignment> {
        (0..n).map(|_| self.sample_assignment(rng)).collect()
    }

    /// `suffix_counts[i][t]` = number of ways slices `i..s` can sum to
    /// offset `t` (offsets measured from each slice's minimum). Row `s` is
    /// the base case `[1]`.
    fn suffix_offset_counts(&self) -> Vec<Vec<f64>> {
        let s = self.slice_count();
        let mut rows: Vec<Vec<f64>> = vec![Vec::new(); s + 1];
        rows[s] = vec![1.0];
        for i in (0..s).rev() {
            let w = self.slices()[i].width() as usize;
            let tail = &rows[i + 1];
            let mut row = vec![0.0; tail.len() + w];
            for (t, &c) in tail.iter().enumerate() {
                if c == 0.0 {
                    continue;
                }
                for x in 0..=w {
                    row[t + x] += c;
                }
            }
            rows[i] = row;
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::Slice;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn samples_are_always_valid() {
        let f = FlexOffer::with_totals(
            0,
            3,
            vec![
                Slice::new(0, 3).unwrap(),
                Slice::new(-2, 2).unwrap(),
                Slice::new(1, 4).unwrap(),
            ],
            2,
            5,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for a in f.sample_assignments(500, &mut rng) {
            assert!(f.is_valid_assignment(&a), "invalid sample {a}");
        }
    }

    #[test]
    fn sampling_is_approximately_uniform() {
        // f = ([0,1], <[0,2],[0,2]>) with total in [2,2]: valid tuples are
        // (0,2),(1,1),(2,0) over 2 starts = 6 assignments.
        let f = FlexOffer::with_totals(
            0,
            1,
            vec![Slice::new(0, 2).unwrap(), Slice::new(0, 2).unwrap()],
            2,
            2,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 6000;
        let mut freq: HashMap<String, usize> = HashMap::new();
        for a in f.sample_assignments(n, &mut rng) {
            *freq.entry(a.to_string()).or_default() += 1;
        }
        assert_eq!(freq.len(), 6);
        let expected = n as f64 / 6.0;
        for (k, v) in &freq {
            let dev = (*v as f64 - expected).abs() / expected;
            assert!(dev < 0.15, "assignment {k} occurred {v} times");
        }
    }

    #[test]
    fn tight_totals_force_unique_tuple() {
        let f = FlexOffer::with_totals(
            2,
            2,
            vec![Slice::new(0, 5).unwrap(), Slice::new(0, 5).unwrap()],
            10,
            10,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let a = f.sample_assignment(&mut rng);
        assert_eq!(a, Assignment::new(2, vec![5, 5]));
    }

    #[test]
    fn single_point_space() {
        let f = FlexOffer::new(4, 4, vec![Slice::fixed(-3)]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(f.sample_assignment(&mut rng), Assignment::new(4, vec![-3]));
    }

    #[test]
    fn deterministic_under_seed() {
        let f = FlexOffer::new(
            0,
            5,
            vec![Slice::new(0, 4).unwrap(), Slice::new(-1, 3).unwrap()],
        )
        .unwrap();
        let a: Vec<_> = f.sample_assignments(10, &mut StdRng::seed_from_u64(9));
        let b: Vec<_> = f.sample_assignments(10, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
