//! Counting assignments without enumerating them.
//!
//! Definition 8's *assignment flexibility* is the size of the unconstrained
//! product space `(tls - tes + 1) * prod(amax_i - amin_i + 1)`. The paper
//! notes (Section 4) that this deliberately ignores the total constraints;
//! the dynamic-programming count here additionally computes the exact size
//! of `L(f)`, which quantifies how much the totals prune.

use crate::flexoffer::FlexOffer;

impl FlexOffer {
    /// Definition 8's count: `(tf + 1) * prod(width_i + 1)`, ignoring total
    /// constraints. `None` if the product overflows `u128` (the measure grows
    /// exponentially in the slice count — see the paper's Section 4
    /// discussion and Example 14).
    pub fn unconstrained_assignment_count(&self) -> Option<u128> {
        let mut product: u128 = (self.time_flexibility() as u128).checked_add(1)?;
        for s in self.slices() {
            product = product.checked_mul(s.cardinality() as u128)?;
        }
        Some(product)
    }

    /// Base-2 logarithm of Definition 8's count; finite for any flex-offer,
    /// usable when the exact count overflows.
    pub fn log2_assignment_count(&self) -> f64 {
        let mut log = ((self.time_flexibility() + 1) as f64).log2();
        for s in self.slices() {
            log += (s.cardinality() as f64).log2();
        }
        log
    }

    /// Exact number of *valid* assignments `|L(f)|`, i.e. value tuples whose
    /// total lies in `[cmin, cmax]`, times the `(tf + 1)` start choices.
    /// `None` if an intermediate count overflows `u128`.
    ///
    /// Runs a subset-sum style DP over per-slice offsets in
    /// `O(s * total_width^2)` time and `O(total_width)` space, where
    /// `total_width = sum(width_i)`.
    pub fn constrained_assignment_count(&self) -> Option<u128> {
        let counts = self.offset_sum_counts_u128()?;
        let lo = (self.total_min() - self.profile_min()) as usize;
        let hi = ((self.total_max() - self.profile_min()) as usize).min(counts.len() - 1);
        let mut tuples: u128 = 0;
        for &count in &counts[lo..=hi] {
            tuples = tuples.checked_add(count)?;
        }
        tuples.checked_mul(self.time_flexibility() as u128 + 1)
    }

    /// Like [`FlexOffer::constrained_assignment_count`] but computed in
    /// `f64`: exact for counts below 2^53, a close approximation beyond.
    pub fn constrained_assignment_count_f64(&self) -> f64 {
        let counts = self.offset_sum_counts_f64();
        let lo = (self.total_min() - self.profile_min()) as usize;
        let hi = ((self.total_max() - self.profile_min()) as usize).min(counts.len() - 1);
        let tuples: f64 = counts[lo..=hi].iter().sum();
        tuples * (self.time_flexibility() as f64 + 1.0)
    }

    /// Number of value tuples per offset total: entry `t` counts the tuples
    /// with `sum(v_i - amin_i) = t`. `None` on `u128` overflow.
    pub(crate) fn offset_sum_counts_u128(&self) -> Option<Vec<u128>> {
        let total_width: usize = self.slices().iter().map(|s| s.width() as usize).sum();
        let mut counts = vec![0u128; total_width + 1];
        counts[0] = 1;
        let mut reach = 0usize; // highest offset reachable so far
        for s in self.slices() {
            let w = s.width() as usize;
            if w == 0 {
                continue;
            }
            let mut next = vec![0u128; total_width + 1];
            for (t, &count) in counts.iter().enumerate().take(reach + 1) {
                if count == 0 {
                    continue;
                }
                for x in 0..=w {
                    let idx = t + x;
                    next[idx] = next[idx].checked_add(count)?;
                }
            }
            counts = next;
            reach += w;
        }
        Some(counts)
    }

    /// `f64` variant of [`FlexOffer::offset_sum_counts_u128`]; never fails.
    pub(crate) fn offset_sum_counts_f64(&self) -> Vec<f64> {
        let total_width: usize = self.slices().iter().map(|s| s.width() as usize).sum();
        let mut counts = vec![0f64; total_width + 1];
        counts[0] = 1.0;
        let mut reach = 0usize;
        for s in self.slices() {
            let w = s.width() as usize;
            if w == 0 {
                continue;
            }
            let mut next = vec![0f64; total_width + 1];
            for t in 0..=reach {
                if counts[t] == 0.0 {
                    continue;
                }
                for x in 0..=w {
                    next[t + x] += counts[t];
                }
            }
            counts = next;
            reach += w;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::Slice;

    fn fo(tes: i64, tls: i64, slices: Vec<(i64, i64)>) -> FlexOffer {
        FlexOffer::new(
            tes,
            tls,
            slices
                .into_iter()
                .map(|(a, b)| Slice::new(a, b).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn example_6_count() {
        // f2 = ([0,2], <[0,2]>): 3 starts x 3 values = 9.
        let f = fo(0, 2, vec![(0, 2)]);
        assert_eq!(f.unconstrained_assignment_count(), Some(9));
        assert_eq!(f.constrained_assignment_count(), Some(9));
    }

    #[test]
    fn example_14_counts() {
        // f6 has 240 assignments; 80 with tf = 0; 3 with ef = 0.
        let f6 = fo(0, 2, vec![(-1, 2), (-4, -1), (-3, 1)]);
        assert_eq!(f6.unconstrained_assignment_count(), Some(240));
        let tf0 = fo(0, 0, vec![(-1, 2), (-4, -1), (-3, 1)]);
        assert_eq!(tf0.unconstrained_assignment_count(), Some(80));
        let ef0 = fo(0, 2, vec![(-1, -1), (-4, -4), (-3, -3)]);
        assert_eq!(ef0.unconstrained_assignment_count(), Some(3));
    }

    #[test]
    fn example_14_f2_variants() {
        // f2 with tf = 0 has 3 assignments; with ef = 0 it has 3 starts.
        let tf0 = fo(0, 0, vec![(0, 2)]);
        assert_eq!(tf0.unconstrained_assignment_count(), Some(3));
        let ef0 = fo(0, 2, vec![(1, 1)]);
        assert_eq!(ef0.unconstrained_assignment_count(), Some(3));
    }

    #[test]
    fn constrained_count_matches_enumeration() {
        let f = FlexOffer::with_totals(
            0,
            1,
            vec![Slice::new(0, 3).unwrap(), Slice::new(-1, 2).unwrap()],
            1,
            3,
        )
        .unwrap();
        let enumerated = f.assignments().count() as u128;
        assert_eq!(f.constrained_assignment_count(), Some(enumerated));
        let approx = f.constrained_assignment_count_f64();
        assert_eq!(approx, enumerated as f64);
    }

    #[test]
    fn log2_is_consistent_with_exact() {
        let f = fo(0, 2, vec![(-1, 2), (-4, -1), (-3, 1)]);
        assert!((f.log2_assignment_count() - 240f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn huge_space_overflows_to_none_but_log_survives() {
        // 129^40 value tuples: far beyond u128.
        let slices = vec![Slice::new(0, 128).unwrap(); 40];
        let f = FlexOffer::new(0, 0, slices).unwrap();
        assert_eq!(f.unconstrained_assignment_count(), None);
        let log = f.log2_assignment_count();
        assert!((log - 40.0 * 129f64.log2()).abs() < 1e-9);
    }

    #[test]
    fn dp_handles_all_fixed_slices() {
        let f = fo(2, 5, vec![(3, 3), (1, 1)]);
        assert_eq!(f.constrained_assignment_count(), Some(4));
        assert_eq!(f.unconstrained_assignment_count(), Some(4));
    }

    #[test]
    fn totals_prune_exactly() {
        // Two [0,2] slices, total forced to 2: tuples (0,2),(1,1),(2,0).
        let f = FlexOffer::with_totals(
            0,
            4,
            vec![Slice::new(0, 2).unwrap(), Slice::new(0, 2).unwrap()],
            2,
            2,
        )
        .unwrap();
        assert_eq!(f.constrained_assignment_count(), Some(3 * 5));
        assert_eq!(f.unconstrained_assignment_count(), Some(9 * 5));
    }
}
