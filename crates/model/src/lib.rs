//! The flex-offer data model.
//!
//! A **flex-offer** (Definition 1 of Valsomatzis et al., EDBT 2015, after
//! Šikšnys et al., SSDBM 2012) captures a prosumer's energy flexibility in
//! *time* — a start window `[tes, tls]` — and in *amount* — a sequence of
//! unit-duration slices, each an energy range `[amin, amax]`, bounded by
//! total energy constraints `cmin <= cmax`.
//!
//! An **assignment** (Definition 2) instantiates a flex-offer: it fixes a
//! start time inside the window and one energy value per slice such that the
//! per-slice ranges and the total constraints hold.
//!
//! This crate provides:
//!
//! * [`FlexOffer`], [`Slice`], [`Assignment`] — the model types, with
//!   invariants enforced at construction ([`FlexOfferBuilder`] for fluent
//!   construction);
//! * validation of assignments against a flex-offer ([`validate`]);
//! * exhaustive enumeration of the assignment set `L(f)` ([`enumerate`]);
//! * closed-form and dynamic-programming assignment counting ([`count`]);
//! * uniform random sampling of valid assignments ([`sample`]);
//! * [`Portfolio`] — an owned set of flex-offers with summary queries.
//!
//! # Example: the paper's Figure 1 flex-offer
//!
//! ```
//! use flexoffers_model::{FlexOffer, Slice, Assignment};
//!
//! let f = FlexOffer::new(
//!     1,
//!     6,
//!     vec![
//!         Slice::new(1, 3).unwrap(),
//!         Slice::new(2, 4).unwrap(),
//!         Slice::new(0, 5).unwrap(),
//!         Slice::new(0, 3).unwrap(),
//!     ],
//! )
//! .unwrap();
//! assert_eq!(f.time_flexibility(), 5); // Example 1
//! assert_eq!(f.energy_flexibility(), 12); // Example 2
//!
//! // fa1 = <2, 3, 1, 2> starting at slot 2 is a valid assignment.
//! let fa1 = Assignment::new(2, vec![2, 3, 1, 2]);
//! assert!(f.is_valid_assignment(&fa1));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod assignment;
pub mod builder;
pub mod count;
pub mod enumerate;
pub mod error;
pub mod flexoffer;
pub mod granularity;
pub mod portfolio;
pub mod sample;
pub mod sign;
pub mod slice;
pub mod validate;

pub use assignment::Assignment;
pub use builder::FlexOfferBuilder;
pub use enumerate::Assignments;
pub use error::{AssignmentViolation, ModelError};
pub use flexoffer::FlexOffer;
pub use portfolio::Portfolio;
pub use sign::SignClass;
pub use slice::Slice;

/// An energy amount in abstract integer units (the paper's domain ℤ,
/// Section 2). Callers pick the physical granularity, e.g. 1 unit = 100 Wh.
pub type Energy = i64;

/// A time slot index (the paper's domain ℕ₀ for flex-offer starts; signed
/// here so series arithmetic stays total — constructors enforce
/// non-negativity where the paper requires it).
pub type TimeSlot = i64;
