//! Portfolios: owned sets of flex-offers.
//!
//! Both of the paper's scenarios operate on *sets* of flex-offers — an
//! aggregator's input in Scenario 1, tradeable commodities in Scenario 2 —
//! and every measure is lifted to sets (Section 4). `Portfolio` is the
//! workspace-wide carrier for such sets.

use serde::{Deserialize, Serialize};

use flexoffers_timeseries::Series;

use crate::assignment::Assignment;
use crate::flexoffer::FlexOffer;
use crate::sign::SignClass;
use crate::{Energy, TimeSlot};

/// An owned, ordered collection of flex-offers.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Portfolio {
    offers: Vec<FlexOffer>,
}

/// Per-[`SignClass`] counts for a portfolio.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SignSummary {
    /// Number of pure-consumption flex-offers.
    pub positive: usize,
    /// Number of pure-production flex-offers.
    pub negative: usize,
    /// Number of mixed flex-offers.
    pub mixed: usize,
    /// Number of zero (no-exchange) flex-offers.
    pub zero: usize,
}

impl Portfolio {
    /// Creates an empty portfolio.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a portfolio from existing flex-offers.
    pub fn from_offers(offers: Vec<FlexOffer>) -> Self {
        Self { offers }
    }

    /// Appends a flex-offer.
    pub fn push(&mut self, fo: FlexOffer) {
        self.offers.push(fo);
    }

    /// Number of flex-offers.
    pub fn len(&self) -> usize {
        self.offers.len()
    }

    /// `true` if the portfolio holds no flex-offers.
    pub fn is_empty(&self) -> bool {
        self.offers.is_empty()
    }

    /// The flex-offers as a slice.
    pub fn as_slice(&self) -> &[FlexOffer] {
        &self.offers
    }

    /// Iterates over the flex-offers.
    pub fn iter(&self) -> std::slice::Iter<'_, FlexOffer> {
        self.offers.iter()
    }

    /// Keeps only the first `len` offers (no-op when the portfolio is
    /// already at most `len` long) — for trimming generated populations to
    /// an exact benchmark size.
    pub fn truncate(&mut self, len: usize) {
        self.offers.truncate(len);
    }

    /// Consumes the portfolio, returning the flex-offers.
    pub fn into_offers(self) -> Vec<FlexOffer> {
        self.offers
    }

    /// Sum of total minimum constraints across offers.
    pub fn total_min(&self) -> Energy {
        self.offers.iter().map(FlexOffer::total_min).sum()
    }

    /// Sum of total maximum constraints across offers.
    pub fn total_max(&self) -> Energy {
        self.offers.iter().map(FlexOffer::total_max).sum()
    }

    /// Counts offers per sign class.
    pub fn sign_summary(&self) -> SignSummary {
        let mut out = SignSummary::default();
        for fo in &self.offers {
            match fo.sign() {
                SignClass::Positive => out.positive += 1,
                SignClass::Negative => out.negative += 1,
                SignClass::Mixed => out.mixed += 1,
                SignClass::Zero => out.zero += 1,
            }
        }
        out
    }

    /// A new portfolio keeping only offers of the given sign class.
    pub fn filter_sign(&self, sign: SignClass) -> Portfolio {
        Portfolio {
            offers: self
                .offers
                .iter()
                .filter(|fo| fo.sign() == sign)
                .cloned()
                .collect(),
        }
    }

    /// The slot range any assignment of any offer can occupy, or `None` for
    /// an empty portfolio.
    pub fn horizon(&self) -> Option<std::ops::Range<TimeSlot>> {
        let lo = self.offers.iter().map(FlexOffer::earliest_start).min()?;
        let hi = self.offers.iter().map(FlexOffer::latest_end).max()?;
        Some(lo..hi)
    }

    /// The summed load series of one assignment per offer.
    ///
    /// # Panics
    ///
    /// Panics if `assignments.len() != self.len()`; callers pair them
    /// positionally.
    pub fn load(&self, assignments: &[Assignment]) -> Series<i64> {
        assert_eq!(
            assignments.len(),
            self.offers.len(),
            "one assignment per flex-offer required"
        );
        let mut load = Series::empty();
        for a in assignments {
            load = &load + &a.as_series();
        }
        load
    }

    /// Checks every assignment against its flex-offer (positionally);
    /// `true` only if all are valid.
    pub fn all_valid(&self, assignments: &[Assignment]) -> bool {
        assignments.len() == self.offers.len()
            && self
                .offers
                .iter()
                .zip(assignments)
                .all(|(fo, a)| fo.is_valid_assignment(a))
    }
}

impl FromIterator<FlexOffer> for Portfolio {
    fn from_iter<I: IntoIterator<Item = FlexOffer>>(iter: I) -> Self {
        Self {
            offers: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Portfolio {
    type Item = FlexOffer;
    type IntoIter = std::vec::IntoIter<FlexOffer>;

    fn into_iter(self) -> Self::IntoIter {
        self.offers.into_iter()
    }
}

impl<'a> IntoIterator for &'a Portfolio {
    type Item = &'a FlexOffer;
    type IntoIter = std::slice::Iter<'a, FlexOffer>;

    fn into_iter(self) -> Self::IntoIter {
        self.offers.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::Slice;

    fn consumption() -> FlexOffer {
        FlexOffer::new(0, 2, vec![Slice::new(1, 3).unwrap()]).unwrap()
    }

    fn production() -> FlexOffer {
        FlexOffer::new(1, 4, vec![Slice::new(-3, -1).unwrap()]).unwrap()
    }

    #[test]
    fn summary_counts_classes() {
        let p: Portfolio = vec![
            consumption(),
            production(),
            consumption(),
            FlexOffer::new(0, 0, vec![Slice::new(-1, 1).unwrap()]).unwrap(),
            FlexOffer::new(0, 0, vec![Slice::fixed(0)]).unwrap(),
        ]
        .into_iter()
        .collect();
        let s = p.sign_summary();
        assert_eq!(s.positive, 2);
        assert_eq!(s.negative, 1);
        assert_eq!(s.mixed, 1);
        assert_eq!(s.zero, 1);
    }

    #[test]
    fn filter_by_sign() {
        let p = Portfolio::from_offers(vec![consumption(), production()]);
        assert_eq!(p.filter_sign(SignClass::Positive).len(), 1);
        assert_eq!(p.filter_sign(SignClass::Negative).len(), 1);
        assert!(p.filter_sign(SignClass::Mixed).is_empty());
    }

    #[test]
    fn horizon_spans_all_offers() {
        let p = Portfolio::from_offers(vec![consumption(), production()]);
        assert_eq!(p.horizon(), Some(0..5));
        assert_eq!(Portfolio::new().horizon(), None);
    }

    #[test]
    fn totals_sum() {
        let p = Portfolio::from_offers(vec![consumption(), production()]);
        assert_eq!(p.total_min(), 1 - 3);
        assert_eq!(p.total_max(), 3 - 1);
    }

    #[test]
    fn load_sums_assignments() {
        let p = Portfolio::from_offers(vec![consumption(), production()]);
        let assignments = vec![Assignment::new(1, vec![2]), Assignment::new(1, vec![-1])];
        assert!(p.all_valid(&assignments));
        let load = p.load(&assignments);
        assert_eq!(load.at(1), 1);
        assert_eq!(load.sum(), 1);
    }

    #[test]
    fn all_valid_rejects_wrong_length_and_invalid() {
        let p = Portfolio::from_offers(vec![consumption()]);
        assert!(!p.all_valid(&[]));
        assert!(!p.all_valid(&[Assignment::new(9, vec![2])]));
    }

    #[test]
    fn truncate_trims_and_saturates() {
        let mut p = Portfolio::from_offers(vec![consumption(), production()]);
        p.truncate(1);
        assert_eq!(p.len(), 1);
        p.truncate(5);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn iteration_both_ways() {
        let p = Portfolio::from_offers(vec![consumption(), production()]);
        assert_eq!(p.iter().count(), 2);
        assert_eq!((&p).into_iter().count(), 2);
        assert_eq!(p.clone().into_iter().count(), 2);
        assert_eq!(p.into_offers().len(), 2);
    }
}
