//! Exhaustive enumeration of the assignment set `L(f)`.
//!
//! The assignment space is a product space — `(tf + 1)` start times times the
//! per-slice value ranges — filtered by the total energy constraints. The
//! iterator walks it in odometer order: starts ascending, values in
//! lexicographic order with the *last* slice varying fastest.
//!
//! The space grows exponentially in the slice count (the paper's Section 4
//! discusses exactly this skew of the *assignments* measure), so callers
//! should bound it via [`FlexOffer::collect_assignments`] or check
//! [`count`](crate::count) first.

use crate::assignment::Assignment;
use crate::error::ModelError;
use crate::flexoffer::FlexOffer;
use crate::{Energy, TimeSlot};

/// Iterator over assignments of a flex-offer; see
/// [`FlexOffer::assignments`] and [`FlexOffer::assignments_unconstrained`].
#[derive(Debug)]
pub struct Assignments<'a> {
    fo: &'a FlexOffer,
    respect_totals: bool,
    /// Next start time to emit; `> latest_start` once exhausted.
    start: TimeSlot,
    /// Current value odometer; `None` before the first step of a start.
    values: Option<Vec<Energy>>,
    done: bool,
}

impl<'a> Assignments<'a> {
    fn new(fo: &'a FlexOffer, respect_totals: bool) -> Self {
        Self {
            fo,
            respect_totals,
            start: fo.earliest_start(),
            values: None,
            done: false,
        }
    }

    /// Advances the odometer to the next value tuple, or returns `false`
    /// when the tuple space for the current start is exhausted.
    fn step_values(&mut self) -> bool {
        match &mut self.values {
            None => {
                self.values = Some(self.fo.slices().iter().map(|s| s.min()).collect());
                true
            }
            Some(values) => {
                let slices = self.fo.slices();
                for i in (0..values.len()).rev() {
                    if values[i] < slices[i].max() {
                        values[i] += 1;
                        for (j, v) in values.iter_mut().enumerate().skip(i + 1) {
                            *v = slices[j].min();
                        }
                        return true;
                    }
                }
                false
            }
        }
    }
}

impl Iterator for Assignments<'_> {
    type Item = Assignment;

    fn next(&mut self) -> Option<Assignment> {
        if self.done {
            return None;
        }
        loop {
            if self.step_values() {
                let values = self.values.as_ref().expect("odometer was just set");
                if self.respect_totals {
                    let total: Energy = values.iter().sum();
                    if total < self.fo.total_min() || total > self.fo.total_max() {
                        continue;
                    }
                }
                return Some(Assignment::new(self.start, values.clone()));
            }
            // Value space exhausted for this start; move to the next start.
            if self.start >= self.fo.latest_start() {
                self.done = true;
                return None;
            }
            self.start += 1;
            self.values = None;
        }
    }
}

impl FlexOffer {
    /// Iterates over all *valid* assignments `L(f)` (Definition 2), i.e.
    /// respecting slice ranges, the start window and the total constraints.
    pub fn assignments(&self) -> Assignments<'_> {
        Assignments::new(self, true)
    }

    /// Iterates over the product space of starts and slice values *ignoring*
    /// the total energy constraints — the space Definition 8 counts.
    pub fn assignments_unconstrained(&self) -> Assignments<'_> {
        Assignments::new(self, false)
    }

    /// Collects all valid assignments, refusing if more than `limit` exist.
    pub fn collect_assignments(&self, limit: usize) -> Result<Vec<Assignment>, ModelError> {
        let mut out = Vec::new();
        for a in self.assignments() {
            if out.len() >= limit {
                return Err(ModelError::TooManyAssignments {
                    limit: limit as u128,
                });
            }
            out.push(a);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::Slice;

    #[test]
    fn figure3_has_nine_assignments() {
        // f2 = ([0,2], <[0,2]>) — Example 6.
        let f = FlexOffer::new(0, 2, vec![Slice::new(0, 2).unwrap()]).unwrap();
        let all: Vec<_> = f.assignments().collect();
        assert_eq!(all.len(), 9);
        // Distinct and all valid.
        for a in &all {
            assert!(f.is_valid_assignment(a));
        }
        let mut dedup = all.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 9);
    }

    #[test]
    fn figure2_has_four_assignments() {
        // f1 = ([0,1], <[0,1]>) — Example 5 says 4 assignments.
        let f = FlexOffer::new(0, 1, vec![Slice::new(0, 1).unwrap()]).unwrap();
        assert_eq!(f.assignments().count(), 4);
    }

    #[test]
    fn odometer_order_is_lexicographic() {
        let f = FlexOffer::new(
            0,
            0,
            vec![Slice::new(0, 1).unwrap(), Slice::new(0, 1).unwrap()],
        )
        .unwrap();
        let vals: Vec<Vec<i64>> = f.assignments().map(|a| a.values().to_vec()).collect();
        assert_eq!(vals, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn totals_filter_prunes() {
        let f = FlexOffer::with_totals(
            0,
            0,
            vec![Slice::new(0, 2).unwrap(), Slice::new(0, 2).unwrap()],
            2,
            2,
        )
        .unwrap();
        let all: Vec<_> = f.assignments().collect();
        // Pairs summing to 2: (0,2), (1,1), (2,0).
        assert_eq!(all.len(), 3);
        assert!(all.iter().all(|a| a.total() == 2));
        // Unconstrained space is the full 3x3 product.
        assert_eq!(f.assignments_unconstrained().count(), 9);
    }

    #[test]
    fn figure7_constrained_equals_unconstrained() {
        // f6's default totals make every tuple valid: 240 total (Example 14).
        let f = FlexOffer::new(
            0,
            2,
            vec![
                Slice::new(-1, 2).unwrap(),
                Slice::new(-4, -1).unwrap(),
                Slice::new(-3, 1).unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(f.assignments().count(), 240);
        assert_eq!(f.assignments_unconstrained().count(), 240);
    }

    #[test]
    fn collect_respects_limit() {
        let f = FlexOffer::new(0, 2, vec![Slice::new(0, 2).unwrap()]).unwrap();
        assert_eq!(f.collect_assignments(9).unwrap().len(), 9);
        assert!(matches!(
            f.collect_assignments(8),
            Err(ModelError::TooManyAssignments { limit: 8 })
        ));
    }

    #[test]
    fn single_assignment_space() {
        let f = FlexOffer::new(3, 3, vec![Slice::fixed(5)]).unwrap();
        let all: Vec<_> = f.assignments().collect();
        assert_eq!(all, vec![Assignment::new(3, vec![5])]);
    }
}
