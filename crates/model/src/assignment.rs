//! Flex-offer assignments (Definition 2): concrete instantiations.

use serde::{Deserialize, Serialize};

use flexoffers_timeseries::Series;

use crate::{Energy, TimeSlot};

/// An assignment `fa` of a flex-offer: a start time plus one energy value
/// per slice, i.e. the time series `<v(1), ..., v(s)>` anchored at
/// `tstart` (Definition 2).
///
/// An `Assignment` is a plain value — validity is always relative to a
/// particular [`FlexOffer`](crate::FlexOffer), checked with
/// [`FlexOffer::check_assignment`](crate::FlexOffer::check_assignment).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Assignment {
    start: TimeSlot,
    values: Vec<Energy>,
}

impl Assignment {
    /// Creates an assignment starting at `start` with the given slice values.
    pub fn new(start: TimeSlot, values: Vec<Energy>) -> Self {
        Self { start, values }
    }

    /// The declared start time `tstart` (the slot of the first slice value).
    pub fn start(&self) -> TimeSlot {
        self.start
    }

    /// The per-slice energy values.
    pub fn values(&self) -> &[Energy] {
        &self.values
    }

    /// Number of slice values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the assignment carries no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total assigned energy `sum(v(i))`.
    pub fn total(&self) -> Energy {
        self.values.iter().sum()
    }

    /// The slot of the first *non-zero* value.
    ///
    /// Definition 2 notes that "the first non-zero energy value of the
    /// assignment ... defines the actual starting time"; for an assignment
    /// with leading zero values this differs from the declared start. An
    /// all-zero assignment has no effective start.
    pub fn effective_start(&self) -> Option<TimeSlot> {
        self.values
            .iter()
            .position(|v| *v != 0)
            .map(|i| self.start + i as i64)
    }

    /// The assignment as a time series (zero outside its slices).
    pub fn as_series(&self) -> Series<i64> {
        Series::new(self.start, self.values.clone())
    }

    /// The value at absolute slot `t` (zero outside the profile).
    pub fn value_at(&self, t: TimeSlot) -> Energy {
        if t < self.start {
            return 0;
        }
        self.values
            .get((t - self.start) as usize)
            .copied()
            .unwrap_or(0)
    }

    /// A copy shifted `dt` slots.
    pub fn shifted(&self, dt: TimeSlot) -> Self {
        Self {
            start: self.start + dt,
            values: self.values.clone(),
        }
    }

    /// Consumes the assignment, returning its parts.
    pub fn into_parts(self) -> (TimeSlot, Vec<Energy>) {
        (self.start, self.values)
    }
}

impl std::fmt::Display for Assignment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "@{} <", self.start)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let a = Assignment::new(2, vec![2, 3, 1, 2]);
        assert_eq!(a.start(), 2);
        assert_eq!(a.len(), 4);
        assert_eq!(a.total(), 8);
        assert_eq!(a.value_at(2), 2);
        assert_eq!(a.value_at(5), 2);
        assert_eq!(a.value_at(1), 0);
        assert_eq!(a.value_at(6), 0);
    }

    #[test]
    fn effective_start_skips_leading_zeros() {
        let a = Assignment::new(3, vec![0, 0, 5, 1]);
        assert_eq!(a.effective_start(), Some(5));
        let b = Assignment::new(3, vec![4]);
        assert_eq!(b.effective_start(), Some(3));
        let z = Assignment::new(3, vec![0, 0]);
        assert_eq!(z.effective_start(), None);
    }

    #[test]
    fn as_series_matches_values() {
        let a = Assignment::new(1, vec![-1, 2]);
        let s = a.as_series();
        assert_eq!(s.start(), 1);
        assert_eq!(s.values(), &[-1, 2]);
        assert_eq!(s.sum(), a.total());
    }

    #[test]
    fn shifted_preserves_values() {
        let a = Assignment::new(1, vec![7]);
        let b = a.shifted(4);
        assert_eq!(b.start(), 5);
        assert_eq!(b.values(), a.values());
    }

    #[test]
    fn display_format() {
        let a = Assignment::new(2, vec![2, 3]);
        assert_eq!(a.to_string(), "@2 <2, 3>");
    }
}
