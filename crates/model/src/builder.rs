//! Fluent construction of flex-offers.

use crate::error::ModelError;
use crate::flexoffer::FlexOffer;
use crate::slice::Slice;
use crate::{Energy, TimeSlot};

/// A fluent builder for [`FlexOffer`].
///
/// ```
/// use flexoffers_model::FlexOfferBuilder;
///
/// // The paper's EV use case at 1-slot granularity: plug-in 23:00 (slot 23),
/// // latest start 3:00 (slot 27), 3 hours of charging at up to 10 units per
/// // hour, owner satisfied with 60 % of a full charge.
/// let ev = FlexOfferBuilder::new()
///     .start_window(23, 27)
///     .repeated_slice(0, 10, 3)
///     .total_bounds(18, 30)
///     .build()
///     .unwrap();
/// assert_eq!(ev.time_flexibility(), 4);
/// assert_eq!(ev.energy_flexibility(), 12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FlexOfferBuilder {
    earliest_start: TimeSlot,
    latest_start: TimeSlot,
    slices: Vec<Result<Slice, ModelError>>,
    totals: Option<(Energy, Energy)>,
}

impl FlexOfferBuilder {
    /// Starts an empty builder (start window `[0, 0]`, no slices).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the start-time window `[tes, tls]`.
    pub fn start_window(mut self, earliest: TimeSlot, latest: TimeSlot) -> Self {
        self.earliest_start = earliest;
        self.latest_start = latest;
        self
    }

    /// Appends one slice with energy range `[min, max]`.
    pub fn slice(mut self, min: Energy, max: Energy) -> Self {
        self.slices.push(Slice::new(min, max));
        self
    }

    /// Appends one slice admitting exactly `v`.
    pub fn fixed_slice(mut self, v: Energy) -> Self {
        self.slices.push(Ok(Slice::fixed(v)));
        self
    }

    /// Appends `count` identical slices with range `[min, max]`.
    pub fn repeated_slice(mut self, min: Energy, max: Energy, count: usize) -> Self {
        for _ in 0..count {
            self.slices.push(Slice::new(min, max));
        }
        self
    }

    /// Appends already-constructed slices.
    pub fn slices(mut self, slices: impl IntoIterator<Item = Slice>) -> Self {
        self.slices.extend(slices.into_iter().map(Ok));
        self
    }

    /// Sets explicit total energy constraints `[cmin, cmax]`; without this
    /// call the totals default to the profile sums.
    pub fn total_bounds(mut self, min: Energy, max: Energy) -> Self {
        self.totals = Some((min, max));
        self
    }

    /// Validates and builds the flex-offer.
    pub fn build(self) -> Result<FlexOffer, ModelError> {
        let slices = self
            .slices
            .into_iter()
            .collect::<Result<Vec<_>, ModelError>>()?;
        match self.totals {
            None => FlexOffer::new(self.earliest_start, self.latest_start, slices),
            Some((min, max)) => {
                FlexOffer::with_totals(self.earliest_start, self.latest_start, slices, min, max)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_figure1() {
        let f = FlexOfferBuilder::new()
            .start_window(1, 6)
            .slice(1, 3)
            .slice(2, 4)
            .slice(0, 5)
            .slice(0, 3)
            .build()
            .unwrap();
        assert_eq!(f.time_flexibility(), 5);
        assert_eq!(f.energy_flexibility(), 12);
    }

    #[test]
    fn deferred_slice_error_surfaces_at_build() {
        let r = FlexOfferBuilder::new()
            .start_window(0, 1)
            .slice(5, 2)
            .build();
        assert_eq!(r, Err(ModelError::InvalidSliceRange { min: 5, max: 2 }));
    }

    #[test]
    fn repeated_and_fixed_slices() {
        let f = FlexOfferBuilder::new()
            .start_window(0, 0)
            .repeated_slice(0, 2, 2)
            .fixed_slice(7)
            .build()
            .unwrap();
        assert_eq!(f.slice_count(), 3);
        assert_eq!(f.profile_max(), 11);
        assert!(f.slices()[2].is_fixed());
    }

    #[test]
    fn explicit_totals_applied() {
        let f = FlexOfferBuilder::new()
            .start_window(0, 2)
            .repeated_slice(0, 10, 2)
            .total_bounds(5, 15)
            .build()
            .unwrap();
        assert_eq!(f.total_min(), 5);
        assert_eq!(f.total_max(), 15);
        assert!(!f.has_default_totals());
    }

    #[test]
    fn no_slices_is_an_error() {
        assert_eq!(
            FlexOfferBuilder::new().build(),
            Err(ModelError::EmptyProfile)
        );
    }

    #[test]
    fn slices_from_iterator() {
        let f = FlexOfferBuilder::new()
            .start_window(0, 0)
            .slices(vec![Slice::fixed(1), Slice::fixed(2)])
            .build()
            .unwrap();
        assert_eq!(f.profile_min(), 3);
    }
}
